//! Cross-crate edge cases: degenerate shapes the pipeline must handle
//! gracefully — 1×1 systems, diagonal matrices, single long chains,
//! matrices where everything lands in one level, and pathological
//! option combinations.

use javelin::core::options::SolveEngine;
use javelin::core::{factorize, IluOptions, LowerMethod, ZeroPivotPolicy};
use javelin::sparse::pattern::LevelPattern;
use javelin::sparse::{CooMatrix, CsrMatrix, SparseError};

fn solve_roundtrip(a: &CsrMatrix<f64>, opts: &IluOptions) {
    let f = factorize(a, opts).expect("factorization");
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
    for engine in [
        SolveEngine::Serial,
        SolveEngine::BarrierLevel,
        SolveEngine::PointToPoint,
        SolveEngine::PointToPointLower,
    ] {
        let mut x = vec![0.0; n];
        f.solve_with(engine, &b, &mut x).expect("solve");
        assert!(x.iter().all(|v| v.is_finite()), "{engine}");
    }
}

#[test]
fn empty_matrix_factorizes_and_solves() {
    // 0×0: every phase must degrade to a no-op, not an index panic.
    let a = CooMatrix::<f64>::new(0, 0).to_csr();
    for nthreads in [1usize, 3] {
        let f = factorize(&a, &IluOptions::ilu0(nthreads)).expect("empty factorization");
        let mut x: Vec<f64> = vec![];
        f.solve_into(&[], &mut x).expect("empty solve");
        assert!(x.is_empty());
        solve_roundtrip(&a, &IluOptions::ilu0(nthreads));
    }
}

#[test]
fn all_zero_row_needs_a_pivot_policy() {
    // Row 3 carries structural entries whose values are all zero. The
    // strict policy must name the breakdown; Replace (the default) and
    // ShiftRetry must both produce finite factors and finite solves.
    let n = 20;
    let build = || {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let v = if i == 3 { 0.0 } else { 4.0 };
            coo.push(i, i, v).unwrap();
            if i > 0 {
                let v = if i == 3 { 0.0 } else { -1.0 };
                coo.push(i, i - 1, v).unwrap();
            }
        }
        coo.to_csr()
    };
    let a = build();
    let strict = IluOptions::ilu0(2).with_zero_pivot(ZeroPivotPolicy::Error);
    assert!(
        matches!(factorize(&a, &strict), Err(SparseError::ZeroPivot { .. })),
        "strict policy must fail on the all-zero row"
    );
    solve_roundtrip(&a, &IluOptions::ilu0(2)); // default Replace policy
    solve_roundtrip(
        &a,
        &IluOptions::ilu0(2).with_zero_pivot(ZeroPivotPolicy::shift_retry()),
    );
}

#[test]
fn fully_dense_row_and_column() {
    // One row (and its mirror column) touching every index: the worst
    // case for fill and for the two-stage split heuristics.
    let n = 30;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 40.0).unwrap();
    }
    for j in 0..n {
        if j != n - 1 {
            coo.push(n - 1, j, -0.5).unwrap(); // dense last row
            coo.push(j, n - 1, -0.25).unwrap(); // dense last column
        }
    }
    let a = coo.to_csr();
    for nthreads in [1usize, 4] {
        solve_roundtrip(&a, &IluOptions::ilu0(nthreads));
        solve_roundtrip(&a, &IluOptions::ilu0(nthreads).with_fill(2));
    }
}

#[test]
fn exactly_singular_two_by_two() {
    // [[1, 1], [1, 1]]: the second pivot is exactly 1 − 1·1 = 0 after
    // elimination — a *produced* zero, not a structural one.
    let mut coo = CooMatrix::new(2, 2);
    coo.push(0, 0, 1.0).unwrap();
    coo.push(0, 1, 1.0).unwrap();
    coo.push(1, 0, 1.0).unwrap();
    coo.push(1, 1, 1.0).unwrap();
    let a = coo.to_csr();
    let strict = IluOptions::default().with_zero_pivot(ZeroPivotPolicy::Error);
    assert!(
        matches!(factorize(&a, &strict), Err(SparseError::ZeroPivot { .. })),
        "exact singularity must surface under the strict policy"
    );
    // Replace and ShiftRetry both recover with finite factors.
    solve_roundtrip(&a, &IluOptions::default());
    let retry = IluOptions::default().with_zero_pivot(ZeroPivotPolicy::shift_retry());
    let f = factorize(&a, &retry).unwrap();
    assert!(f.stats().shift_attempts > 1, "recovery must have retried");
    assert!(f.stats().diag_shift > 0.0);
    solve_roundtrip(&a, &retry);
}

#[test]
fn one_by_one_system() {
    let mut coo = CooMatrix::new(1, 1);
    coo.push(0, 0, 5.0).unwrap();
    let a = coo.to_csr();
    for nthreads in [1usize, 4] {
        let f = factorize(&a, &IluOptions::ilu0(nthreads)).unwrap();
        let mut x = vec![0.0];
        f.solve_into(&[10.0], &mut x).unwrap();
        assert_eq!(x, vec![2.0]);
    }
}

#[test]
fn pure_diagonal_matrix_single_level() {
    let n = 50;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, (i + 1) as f64).unwrap();
    }
    let a = coo.to_csr();
    let f = factorize(&a, &IluOptions::ilu0(4)).unwrap();
    assert_eq!(f.stats().n_levels, 1);
    assert_eq!(f.stats().n_waits, 0, "diagonal has no dependencies");
    solve_roundtrip(&a, &IluOptions::ilu0(4));
}

#[test]
fn pure_chain_every_row_its_own_level() {
    let n = 60;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 2.0).unwrap();
        if i > 0 {
            coo.push(i, i - 1, -1.0).unwrap();
        }
    }
    let a = coo.to_csr();
    // lower(A) pattern: n levels of one row each.
    let mut opts = IluOptions::ilu0(3);
    opts.level_pattern = LevelPattern::LowerA;
    let f = factorize(&a, &opts).unwrap();
    assert!(f.stats().n_levels >= n - f.stats().n_lower_rows);
    solve_roundtrip(&a, &opts);
}

#[test]
fn everything_demoted_to_lower_stage_is_prevented() {
    // Even with absurd split settings, level 0 must stay in the upper
    // stage (the split never demotes everything).
    let n = 40;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 2.0).unwrap();
        if i > 0 {
            coo.push(i, i - 1, -1.0).unwrap();
        }
    }
    let a = coo.to_csr();
    let mut opts = IluOptions::ilu0(2);
    opts.split.min_rows_per_level = usize::MAX;
    opts.split.location_frac = 0.0;
    opts.split.max_lower_frac = 1.0;
    let f = factorize(&a, &opts).unwrap();
    assert!(f.plan().n_upper >= 1, "level 0 must survive");
    solve_roundtrip(&a, &opts);
}

#[test]
fn more_threads_than_rows() {
    let mut coo = CooMatrix::new(3, 3);
    for i in 0..3 {
        coo.push(i, i, 1.0 + i as f64).unwrap();
    }
    coo.push(2, 0, -0.5).unwrap();
    let a = coo.to_csr();
    solve_roundtrip(&a, &IluOptions::ilu0(16));
}

#[test]
fn forced_sr_on_matrix_without_lower_stage() {
    // SR requested but the split demotes nothing: must degrade cleanly.
    let n = 30;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 3.0).unwrap();
    }
    let a = coo.to_csr();
    let mut opts = IluOptions::ilu0(2);
    opts.lower_method = LowerMethod::SegmentedRows;
    let f = factorize(&a, &opts).unwrap();
    assert_eq!(f.stats().n_lower_rows, 0);
    solve_roundtrip(&a, &opts);
}

#[test]
fn dense_small_matrix_all_engines() {
    let n = 12;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        for j in 0..n {
            let v = if i == j {
                20.0
            } else {
                -0.5 - ((i * n + j) % 7) as f64 * 0.1
            };
            coo.push(i, j, v).unwrap();
        }
    }
    let a = coo.to_csr();
    for nthreads in [1usize, 2, 5] {
        solve_roundtrip(&a, &IluOptions::ilu0(nthreads));
    }
}

#[test]
fn tiny_tile_size_still_correct() {
    let n = 80;
    let mut coo = CooMatrix::<f64>::new(n, n);
    for i in 0..n {
        coo.push(i, i, 9.0).unwrap();
        if i > 4 {
            for d in 1..=4 {
                coo.push(i, i - d, -0.5).unwrap();
            }
        }
    }
    let a = coo.to_csr();
    let serial = factorize(&a, &IluOptions::default()).unwrap();
    let want: Vec<u64> = serial.lu().vals().iter().map(|v| v.to_bits()).collect();
    let mut opts = IluOptions::ilu0(3);
    opts.lower_method = LowerMethod::SegmentedRows;
    opts.tile_size = 1; // clamped to the minimum internally
    opts.split.min_rows_per_level = 8;
    opts.split.location_frac = 0.0;
    let mut serial_same_split = opts.clone();
    serial_same_split.nthreads = 1;
    let f_ser = factorize(&a, &serial_same_split).unwrap();
    let f_par = factorize(&a, &opts).unwrap();
    let bs: Vec<u64> = f_ser.lu().vals().iter().map(|v| v.to_bits()).collect();
    let bp: Vec<u64> = f_par.lu().vals().iter().map(|v| v.to_bits()).collect();
    assert_eq!(bs, bp);
    let _ = want;
}
