//! Cross-crate solver tests: Krylov methods with ILU preconditioning on
//! the reproduced suite, including the Table-II orderings machinery.

use javelin::core::precond::IdentityPrecond;
use javelin::core::{factorize, IluOptions};
use javelin::order::{compute_order, Ordering};
use javelin::solver::{bicgstab, gmres, pcg, SolverOptions};
use javelin::synth::suite::{group_a, paper_suite, SuiteGroup};
use javelin_bench::harness::preorder_dm_nd;

#[test]
fn group_a_pcg_converges_under_all_orderings() {
    for meta in group_a() {
        let a = meta.build_tiny();
        for ord in [
            Ordering::Amd,
            Ordering::Rcm,
            Ordering::Nd,
            Ordering::Natural,
        ] {
            let p = compute_order(&a, ord);
            let ax = a.permute_sym(&p).expect("perm");
            let f = factorize(&ax, &IluOptions::default()).expect("ILU");
            let n = ax.nrows();
            let b = vec![1.0; n];
            let mut x = vec![0.0; n];
            let res = pcg(&ax, &b, &mut x, &f, &SolverOptions::default());
            assert!(
                res.converged,
                "{} under {ord}: relres {:.2e} after {} iters",
                meta.name, res.relative_residual, res.iterations
            );
        }
    }
}

#[test]
fn gmres_with_ilu_converges_on_nonsymmetric_suite() {
    for meta in paper_suite() {
        if meta.group != SuiteGroup::B {
            continue;
        }
        let a = preorder_dm_nd(&meta.build_tiny());
        let f = factorize(&a, &IluOptions::default()).expect("ILU");
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut x = vec![0.0; n];
        let res = gmres(&a, &b, &mut x, &f, &SolverOptions::default());
        assert!(
            res.converged,
            "{}: GMRES relres {:.2e} after {}",
            meta.name, res.relative_residual, res.iterations
        );
        // Verify with the true residual.
        let ax = a.spmv(&x);
        let err: f64 = b
            .iter()
            .zip(&ax)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(
            err / bn < 1e-5,
            "{}: true relres {:.2e}",
            meta.name,
            err / bn
        );
    }
}

#[test]
fn bicgstab_matches_gmres_solutions() {
    let meta = &paper_suite()[5]; // trans4-like
    let a = preorder_dm_nd(&meta.build_tiny());
    let f = factorize(&a, &IluOptions::default()).expect("ILU");
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) - 5.0).collect();
    let opts = SolverOptions {
        tol: 1e-10,
        ..Default::default()
    };
    let mut xg = vec![0.0; n];
    let rg = gmres(&a, &b, &mut xg, &f, &opts);
    let mut xb = vec![0.0; n];
    let rb = bicgstab(&a, &b, &mut xb, &f, &opts);
    assert!(rg.converged && rb.converged);
    for (g, w) in xg.iter().zip(xb.iter()) {
        assert!((g - w).abs() < 1e-6 * w.abs().max(1.0), "{g} vs {w}");
    }
}

#[test]
fn preconditioning_never_hurts_iteration_counts_much() {
    // ILU(0)-preconditioned iteration counts must beat identity across
    // the suite (that is the entire point of the library).
    for meta in paper_suite().into_iter().take(6) {
        let a = preorder_dm_nd(&meta.build_tiny());
        let f = factorize(&a, &IluOptions::default()).expect("ILU");
        let n = a.nrows();
        // Non-constant rhs: several generators produce A·1 = 1 exactly
        // (unit row sums), which lets plain GMRES converge in one step.
        let b: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 29 % 7) as f64) * 0.5).collect();
        let opts = SolverOptions::default();
        let mut x0 = vec![0.0; n];
        let plain = gmres(&a, &b, &mut x0, &IdentityPrecond, &opts);
        let mut x1 = vec![0.0; n];
        let pre = gmres(&a, &b, &mut x1, &f, &opts);
        assert!(pre.converged, "{}", meta.name);
        assert!(
            pre.iterations <= plain.iterations,
            "{}: {} (ILU) vs {} (plain)",
            meta.name,
            pre.iterations,
            plain.iterations
        );
    }
}

#[test]
fn session_batched_nonsymmetric_krylov_is_columnwise_scalar_identical() {
    // The PR-4 acceptance surface end to end: a nonsymmetric suite
    // matrix solved through `Session::krylov_panel` with both batch
    // methods must reproduce, bit for bit, the scalar solver run on
    // each column with the same pinned-engine preconditioner.
    use javelin::prelude::*;
    use javelin::solver::{bicgstab_with, gmres_with};

    let meta = &paper_suite()[5]; // trans4-like (group B)
    let a = preorder_dm_nd(&meta.build_tiny());
    let n = a.nrows();
    let k = 4usize;
    let b: Vec<f64> = (0..n * k)
        .map(|i| ((i * 13 % 29) as f64 - 14.0) * 0.21)
        .collect();
    let mut session = Session::builder()
        .nthreads(2)
        .panel_width(k)
        .build(&a)
        .unwrap();
    let engine = session.engine();
    let opts = *session.solver_options();
    for method in [Method::BatchBicgstab, Method::BatchGmres] {
        let mut xp = vec![0.0; n * k];
        let results = session
            .krylov_panel(method, Panel::new(&b, n, k), PanelMut::new(&mut xp, n, k))
            .unwrap();
        assert!(
            results.iter().all(|r| r.converged),
            "{method} on {}",
            meta.name
        );
        let f = factorize(&a, &IluOptions::ilu0(2)).unwrap();
        let m = f.with_engine(engine);
        for c in 0..k {
            let mut x = vec![0.0; n];
            let r = match method {
                Method::BatchBicgstab => bicgstab_with(
                    &a,
                    &b[c * n..(c + 1) * n],
                    &mut x,
                    &m,
                    &opts,
                    &mut SolverWorkspace::new(),
                ),
                _ => gmres_with(
                    &a,
                    &b[c * n..(c + 1) * n],
                    &mut x,
                    &m,
                    &opts,
                    &mut SolverWorkspace::new(),
                ),
            };
            assert_eq!(results[c].iterations, r.iterations, "{method} col {c}");
            assert_eq!(
                xp[c * n..(c + 1) * n]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{method} col {c}"
            );
        }
    }
}

#[test]
fn milu_and_tau_variants_still_converge() {
    let meta = &group_a()[4]; // ecology2-like
    let a = preorder_dm_nd(&meta.build_tiny());
    let n = a.nrows();
    let b = vec![1.0; n];
    for opts in [
        IluOptions::default().with_fill(1),
        IluOptions::default().with_fill(1).with_drop_tol(1e-3),
        IluOptions::default()
            .with_fill(1)
            .with_drop_tol(1e-3)
            .with_milu(1.0),
    ] {
        let f = factorize(&a, &opts).expect("ILU variant");
        let mut x = vec![0.0; n];
        let res = pcg(&a, &b, &mut x, &f, &SolverOptions::default());
        assert!(
            res.converged,
            "variant k={} tau={}",
            opts.fill_level, opts.drop_tol
        );
    }
}
