//! Determinism guarantees: every engine and thread count produces
//! bit-identical factors — the property that makes Javelin's parallel
//! ILU as debuggable as the serial one (contrast with the
//! nondeterministic fine-grained ILU the paper cites as related work).

use javelin::core::{factorize, IluOptions, LowerMethod};
use javelin::synth::suite::paper_suite;
use javelin_bench::harness::preorder_dm_nd;

fn factor_bits(a: &javelin::sparse::CsrMatrix<f64>, opts: &IluOptions) -> Vec<u64> {
    let f = factorize(a, opts).expect("factors");
    f.lu().vals().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn all_engines_bitwise_equal_across_suite() {
    for meta in paper_suite() {
        let a = preorder_dm_nd(&meta.build_tiny());
        let serial = factor_bits(&a, &IluOptions::default());
        for nthreads in [2usize, 3] {
            for method in [LowerMethod::EvenRows, LowerMethod::SegmentedRows] {
                let mut opts = IluOptions::ilu0(nthreads);
                opts.lower_method = method;
                opts.split.min_rows_per_level = 12;
                opts.split.location_frac = 0.1;
                // The split changes the permutation, so compare against
                // a serial run under the same split options.
                let mut serial_opts = opts.clone();
                serial_opts.nthreads = 1;
                let want = factor_bits(&a, &serial_opts);
                let got = factor_bits(&a, &opts);
                assert_eq!(
                    got, want,
                    "{}: nthreads={nthreads} method={method}",
                    meta.name
                );
            }
        }
        // And the default-split parallel run equals the default serial.
        let got = factor_bits(&a, &IluOptions::ilu0(4));
        assert_eq!(got, serial, "{}: default options", meta.name);
    }
}

#[test]
fn repeated_runs_are_identical() {
    let meta = &paper_suite()[6]; // scircuit-like: irregular
    let a = preorder_dm_nd(&meta.build_tiny());
    let opts = IluOptions::ilu0(4);
    let first = factor_bits(&a, &opts);
    for _ in 0..3 {
        assert_eq!(factor_bits(&a, &opts), first);
    }
}

#[test]
fn parallel_corner_is_bitwise_identical() {
    for meta in paper_suite().into_iter().take(8) {
        let a = preorder_dm_nd(&meta.build_tiny());
        let mut serial_corner = IluOptions::ilu0(3);
        serial_corner.split.min_rows_per_level = 12;
        serial_corner.split.location_frac = 0.1;
        let mut parallel_corner = serial_corner.clone();
        parallel_corner.parallel_corner = true;
        let want = factor_bits(&a, &serial_corner);
        let got = factor_bits(&a, &parallel_corner);
        assert_eq!(got, want, "{}", meta.name);
    }
}

#[test]
fn pinned_team_is_bitwise_identical_and_solves_match() {
    // Core pinning + first-touch placement are locality knobs only:
    // factors AND solve vectors must be bit-identical to the unpinned
    // run, whatever mask the kernel actually granted.
    for meta in paper_suite().into_iter().take(4) {
        let a = preorder_dm_nd(&meta.build_tiny());
        let opts = IluOptions::ilu0(3);
        let mut pinned = opts.clone();
        pinned.pin_threads = true;
        let want = factorize(&a, &opts).expect("factors");
        let got = factorize(&a, &pinned).expect("factors");
        let wb: Vec<u64> = want.lu().vals().iter().map(|v| v.to_bits()).collect();
        let gb: Vec<u64> = got.lu().vals().iter().map(|v| v.to_bits()).collect();
        assert_eq!(gb, wb, "{}: pinned factor bits", meta.name);
        let rhs: Vec<f64> = (0..a.nrows()).map(|i| (i as f64).sin() + 1.5).collect();
        let mut xw = vec![0.0; a.nrows()];
        let mut xg = vec![0.0; a.nrows()];
        want.solve_into(&rhs, &mut xw).expect("solve");
        got.solve_into(&rhs, &mut xg).expect("solve");
        let xwb: Vec<u64> = xw.iter().map(|v| v.to_bits()).collect();
        let xgb: Vec<u64> = xg.iter().map(|v| v.to_bits()).collect();
        assert_eq!(xgb, xwb, "{}: pinned solve bits", meta.name);
    }
}

#[test]
fn drop_tolerance_is_deterministic_in_parallel() {
    let meta = &paper_suite()[1]; // tsopf-like: dense rows
    let a = preorder_dm_nd(&meta.build_tiny());
    let mut serial = IluOptions::default()
        .with_fill(1)
        .with_drop_tol(1e-2)
        .with_milu(0.5);
    serial.split.min_rows_per_level = 12;
    let want = factor_bits(&a, &serial);
    let mut par = serial.clone();
    par.nthreads = 3;
    let got = factor_bits(&a, &par);
    assert_eq!(got, want, "τ/MILU dropping must not depend on threads");
}
