//! Determinism guarantees: every engine and thread count produces
//! bit-identical factors — the property that makes Javelin's parallel
//! ILU as debuggable as the serial one (contrast with the
//! nondeterministic fine-grained ILU the paper cites as related work).

use javelin::core::{factorize, IluOptions, LowerMethod};
use javelin::synth::suite::paper_suite;
use javelin_bench::harness::preorder_dm_nd;

fn factor_bits(a: &javelin::sparse::CsrMatrix<f64>, opts: &IluOptions) -> Vec<u64> {
    let f = factorize(a, opts).expect("factors");
    f.lu().vals().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn all_engines_bitwise_equal_across_suite() {
    for meta in paper_suite() {
        let a = preorder_dm_nd(&meta.build_tiny());
        let serial = factor_bits(&a, &IluOptions::default());
        for nthreads in [2usize, 3] {
            for method in [LowerMethod::EvenRows, LowerMethod::SegmentedRows] {
                let mut opts = IluOptions::ilu0(nthreads);
                opts.lower_method = method;
                opts.split.min_rows_per_level = 12;
                opts.split.location_frac = 0.1;
                // The split changes the permutation, so compare against
                // a serial run under the same split options.
                let mut serial_opts = opts.clone();
                serial_opts.nthreads = 1;
                let want = factor_bits(&a, &serial_opts);
                let got = factor_bits(&a, &opts);
                assert_eq!(
                    got, want,
                    "{}: nthreads={nthreads} method={method}",
                    meta.name
                );
            }
        }
        // And the default-split parallel run equals the default serial.
        let got = factor_bits(&a, &IluOptions::ilu0(4));
        assert_eq!(got, serial, "{}: default options", meta.name);
    }
}

#[test]
fn repeated_runs_are_identical() {
    let meta = &paper_suite()[6]; // scircuit-like: irregular
    let a = preorder_dm_nd(&meta.build_tiny());
    let opts = IluOptions::ilu0(4);
    let first = factor_bits(&a, &opts);
    for _ in 0..3 {
        assert_eq!(factor_bits(&a, &opts), first);
    }
}

#[test]
fn parallel_corner_is_bitwise_identical() {
    for meta in paper_suite().into_iter().take(8) {
        let a = preorder_dm_nd(&meta.build_tiny());
        let mut serial_corner = IluOptions::ilu0(3);
        serial_corner.split.min_rows_per_level = 12;
        serial_corner.split.location_frac = 0.1;
        let mut parallel_corner = serial_corner.clone();
        parallel_corner.parallel_corner = true;
        let want = factor_bits(&a, &serial_corner);
        let got = factor_bits(&a, &parallel_corner);
        assert_eq!(got, want, "{}", meta.name);
    }
}

#[test]
fn drop_tolerance_is_deterministic_in_parallel() {
    let meta = &paper_suite()[1]; // tsopf-like: dense rows
    let a = preorder_dm_nd(&meta.build_tiny());
    let mut serial = IluOptions::default()
        .with_fill(1)
        .with_drop_tol(1e-2)
        .with_milu(0.5);
    serial.split.min_rows_per_level = 12;
    let want = factor_bits(&a, &serial);
    let mut par = serial.clone();
    par.nthreads = 3;
    let got = factor_bits(&a, &par);
    assert_eq!(got, want, "τ/MILU dropping must not depend on threads");
}
