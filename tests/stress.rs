//! Stress tests: heavy oversubscription and repeated parallel runs.
//!
//! This host may have a single core; these tests deliberately run with
//! more threads than cores to exercise the yielding backoff paths of
//! the progress counters, barriers and task graph under the worst
//! scheduling conditions (a spinning thread holding the core its
//! dependency needs).

use javelin::core::options::SolveEngine;
use javelin::core::{factorize, IluOptions, LowerMethod};
use javelin::synth::grid::laplace_2d;
use javelin::synth::suite::suite_matrix;

#[test]
fn eight_threads_on_any_core_count_terminate_and_agree() {
    let a = laplace_2d(24, 24);
    let serial = factorize(&a, &IluOptions::default()).expect("serial");
    let want: Vec<u64> = serial.lu().vals().iter().map(|v| v.to_bits()).collect();
    let mut opts = IluOptions::ilu0(8);
    opts.split.min_rows_per_level = 8;
    opts.split.location_frac = 0.1;
    for method in [LowerMethod::EvenRows, LowerMethod::SegmentedRows] {
        opts.lower_method = method;
        let f = factorize(&a, &opts).expect("oversubscribed");
        let got: Vec<u64> = f.lu().vals().iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want, "{method}");
    }
}

#[test]
fn repeated_parallel_solves_are_stable() {
    let a = suite_matrix("transient").expect("suite").build_tiny();
    let mut opts = IluOptions::ilu0(6);
    opts.split.min_rows_per_level = 10;
    let f = factorize(&a, &opts).expect("factors");
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| (i % 13) as f64 - 6.0).collect();
    let mut reference = vec![0.0; n];
    f.solve_with(SolveEngine::Serial, &b, &mut reference)
        .expect("serial");
    // Hammer the point-to-point engines repeatedly: results must be
    // identical on every run (no lost updates, no stale reads).
    for round in 0..10 {
        for engine in [SolveEngine::PointToPoint, SolveEngine::PointToPointLower] {
            let mut x = vec![0.0; n];
            f.solve_with(engine, &b, &mut x).expect("parallel");
            for (g, w) in x.iter().zip(reference.iter()) {
                assert!(
                    (g - w).abs() <= 1e-10 * w.abs().max(1.0),
                    "round {round} engine {engine}: {g} vs {w}"
                );
            }
        }
    }
}

#[test]
fn parallel_corner_under_oversubscription() {
    let a = suite_matrix("TSOPF_RS_b300_c2")
        .expect("suite")
        .build_tiny();
    let mut base = IluOptions::ilu0(6);
    base.split.min_rows_per_level = 16;
    base.split.location_frac = 0.0;
    let mut pc = base.clone();
    pc.parallel_corner = true;
    let f1 = factorize(&a, &base).expect("serial corner");
    let f2 = factorize(&a, &pc).expect("parallel corner");
    let b1: Vec<u64> = f1.lu().vals().iter().map(|v| v.to_bits()).collect();
    let b2: Vec<u64> = f2.lu().vals().iter().map(|v| v.to_bits()).collect();
    assert_eq!(b1, b2);
    assert!(f1.stats().n_lower_rows > 0, "corner must be exercised");
}
