//! Steady-state `refactor` performs **zero heap allocations**, and a
//! **first** `gmres_batch` solve through a reserved workspace
//! ([`SolverWorkspace::reserve`] + [`SolverWorkspace::reserve_gmres_basis`])
//! performs zero heap allocations too — the acceptance contracts of the
//! two-phase API and the lane-layer reserve path. A counting global
//! allocator wraps the system allocator; this file holds exactly one
//! test so no concurrent test can pollute the counters (worker-team
//! threads are counted too, which is the point: the planned numeric
//! path must not allocate on any thread).

use javelin::core::{IluOptions, SymbolicIlu, ZeroPivotPolicy};
use javelin::solver::{gmres_batch_into, SolverOptions, SolverResult, SolverWorkspace};
use javelin::sparse::{CooMatrix, CsrMatrix, Panel, PanelMut, SparseError};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static BYTES: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn snapshot() -> (usize, usize) {
    (ALLOCS.load(Ordering::SeqCst), BYTES.load(Ordering::SeqCst))
}

/// Irregular matrix with a structural diagonal, two-stage-splittable.
fn irregular(n: usize) -> CsrMatrix<f64> {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 8.0 + i as f64 * 0.01).unwrap();
        if i >= 1 {
            coo.push(i, i - 1, -1.0).unwrap();
        }
        if i >= 7 {
            coo.push(i, i - 7, -0.5).unwrap();
        }
        if i + 3 < n {
            coo.push(i, i + 3, -0.25).unwrap();
        }
    }
    coo.to_csr()
}

/// Same pattern, new values.
fn revalue(a: &CsrMatrix<f64>, seed: f64) -> CsrMatrix<f64> {
    javelin::synth::util::revalue(a, seed, 0.03)
}

#[test]
fn steady_state_refactor_allocates_zero_bytes() {
    // Threaded, with dropping enabled so the τ-threshold recomputation
    // path is exercised too; the persistent team is the default.
    let a = irregular(400);
    let mut opts = IluOptions::ilu0(3).with_fill(1).with_drop_tol(1e-4);
    opts.split.min_rows_per_level = 8;
    opts.split.location_frac = 0.0;
    let sym = SymbolicIlu::analyze(&a, &opts).expect("analysis");
    let mut factors = sym.factor(&a).expect("numeric phase");

    // Warm-up: the first refactor may lazily initialize process-global
    // state (parking-lot tables, thread parking) — after it, the path
    // must be exactly reusing preallocated buffers.
    let warm = revalue(&a, 0.37);
    factors.refactor(&warm).expect("warm-up refactor");
    factors
        .refactor(&revalue(&a, 0.71))
        .expect("second warm-up");

    for round in 0..5 {
        let a_t = revalue(&a, 1.1 + round as f64);
        // NOTE: `revalue` above allocates, so build the matrix first …
        let (allocs_mid, bytes_mid) = snapshot();
        // … and measure the refactor call alone.
        factors.refactor(&a_t).expect("steady-state refactor");
        let (allocs_after, bytes_after) = snapshot();
        assert_eq!(
            allocs_after - allocs_mid,
            0,
            "round {round}: steady-state refactor performed heap allocations"
        );
        assert_eq!(
            bytes_after - bytes_mid,
            0,
            "round {round}: steady-state refactor allocated bytes"
        );
        drop(a_t);
    }

    // And the refactored factors are still correct: bit-identical to a
    // fresh numeric factorization of the same values.
    let last = revalue(&a, 5.1);
    factors.refactor(&last).unwrap();
    let fresh = sym.factor(&last).unwrap();
    let rb: Vec<u64> = factors.lu().vals().iter().map(|v| v.to_bits()).collect();
    let fb: Vec<u64> = fresh.lu().vals().iter().map(|v| v.to_bits()).collect();
    assert_eq!(rb, fb);

    // ---- Phase 2: a FIRST `gmres_batch` solve through a reserved ----
    // workspace allocates zero bytes. `reserve` covers the lane panels
    // and the preconditioner scratch; `reserve_gmres_basis` opts into
    // the stacked Arnoldi basis — the one buffer `reserve` leaves lazy.
    let n = last.nrows();
    let k = 3usize;
    let opts_s = SolverOptions {
        restart: 20,
        ..Default::default()
    };
    let mut ws = SolverWorkspace::new();
    ws.reserve(n, opts_s.restart, k);
    ws.reserve_gmres_basis(n, opts_s.restart, k);
    factors.reserve_panel_width(k);
    let b: Vec<f64> = (0..n * k)
        .map(|i| ((i * 13 % 29) as f64) * 0.2 - 2.5)
        .collect();
    let mut x = vec![0.0; n * k];
    let mut results = vec![SolverResult::default(); k];
    let (allocs_mid, bytes_mid) = snapshot();
    gmres_batch_into(
        &last,
        Panel::new(&b, n, k),
        PanelMut::new(&mut x, n, k),
        &factors,
        &opts_s,
        &mut ws,
        &mut results,
    );
    let (allocs_after, bytes_after) = snapshot();
    assert_eq!(
        allocs_after - allocs_mid,
        0,
        "first reserved gmres_batch solve performed heap allocations"
    );
    assert_eq!(
        bytes_after - bytes_mid,
        0,
        "first reserved gmres_batch solve allocated bytes"
    );
    assert!(
        results.iter().all(|r| r.converged),
        "reserved gmres_batch must still converge: {results:?}"
    );

    // ---- Phase 3: shift-and-retry recovery reuses the planned ----
    // numeric path, so a steady-state refactor of a singular-but-
    // shiftable matrix (first attempt breaks down, second succeeds
    // with a diagonal boost) still allocates zero bytes.
    //
    // Row 0's only structural entry is a zero diagonal, and no other
    // row or column touches index 0 — so whatever ordering the
    // symbolic phase picks, no update ever lands on that pivot and
    // the first numeric attempt must collapse exactly there.
    let n3 = 200usize;
    let mut coo = CooMatrix::new(n3, n3);
    coo.push(0, 0, 0.0).unwrap();
    for i in 1..n3 {
        coo.push(i, i, 8.0 + i as f64 * 0.01).unwrap();
        if i >= 2 {
            coo.push(i, i - 1, -1.0).unwrap();
        }
        if i >= 8 {
            coo.push(i, i - 7, -0.5).unwrap();
        }
        if i + 3 < n3 {
            coo.push(i, i + 3, -0.25).unwrap();
        }
    }
    let a_sing = coo.to_csr();

    // Under the strict policy the same matrix is a hard error …
    let opts_err = IluOptions::ilu0(3).with_zero_pivot(ZeroPivotPolicy::Error);
    let sym_err = SymbolicIlu::analyze(&a_sing, &opts_err).expect("analysis (Error policy)");
    assert!(
        matches!(sym_err.factor(&a_sing), Err(SparseError::ZeroPivot { .. })),
        "Error policy must reject the singular matrix"
    );

    // … and under ShiftRetry it factors on the second attempt.
    let opts_sr = IluOptions::ilu0(3).with_zero_pivot(ZeroPivotPolicy::shift_retry());
    let sym_sr = SymbolicIlu::analyze(&a_sing, &opts_sr).expect("analysis (ShiftRetry)");
    let mut f_sr = sym_sr.factor(&a_sing).expect("shift-retry factor");
    assert_eq!(
        f_sr.stats().shift_attempts,
        2,
        "one breakdown + one shifted success"
    );
    assert!(
        f_sr.stats().diag_shift > 0.0,
        "final shift must be recorded"
    );

    // Warm up, then measure: the whole retry loop (reload values,
    // re-run the planned sweep with an escalated shift) must be
    // allocation-free.
    f_sr.refactor(&a_sing).expect("warm-up shifted refactor");
    f_sr.refactor(&a_sing).expect("second warm-up");
    let (allocs_mid, bytes_mid) = snapshot();
    f_sr.refactor(&a_sing)
        .expect("steady-state shifted refactor");
    let (allocs_after, bytes_after) = snapshot();
    assert_eq!(
        allocs_after - allocs_mid,
        0,
        "shift-retry refactor performed heap allocations"
    );
    assert_eq!(
        bytes_after - bytes_mid,
        0,
        "shift-retry refactor allocated bytes"
    );
    assert_eq!(f_sr.stats().shift_attempts, 2, "refactor retried once too");
    assert!(f_sr.stats().diag_shift > 0.0);
    assert!(
        f_sr.lu().vals().iter().all(|v| v.is_finite()),
        "shifted factors must be finite"
    );

    // ---- Phase 4: steady-state coalesced service dispatch is ----
    // allocation-free. A warmed `Engine::process` batch of eight
    // pattern-, value- and method-identical requests (a full width-8
    // fused panel: fingerprint memo hit, cache hit, no refactor, one
    // lockstep solve, scatter) must not touch the heap — request/reply
    // buffers are recycled across rounds exactly as a streaming client
    // would.
    let a4 = std::sync::Arc::new(irregular(300));
    let n4 = a4.nrows();
    let k4 = 8usize;
    let mut engine = javelin::service::Engine::new(javelin::service::EngineConfig::default());
    let mut requests: Vec<javelin::service::SolveRequest<f64>> = (0..k4)
        .map(|c| javelin::service::SolveRequest {
            a: std::sync::Arc::clone(&a4),
            b: (0..n4)
                .map(|i| ((i * 7 + c) % 23) as f64 * 0.1 - 1.0)
                .collect(),
            x: vec![0.0; n4],
            method: javelin::solver::Method::BatchGmres,
        })
        .collect();
    let mut replies: Vec<
        Result<javelin::service::SolveReply<f64>, javelin::service::ServiceError>,
    > = Vec::with_capacity(k4);
    // Two warm-up batches grow every engine-side buffer to its
    // steady-state footprint; requests are rebuilt from the replies'
    // recycled buffers between rounds (Arc::clone + Vec reuse only).
    for _warm in 0..2 {
        engine.process(&mut requests, &mut replies);
        for reply in replies.drain(..) {
            let reply = reply.expect("warm-up dispatch");
            assert!(reply.result.converged);
            requests.push(javelin::service::SolveRequest {
                a: std::sync::Arc::clone(&a4),
                b: reply.b,
                x: reply.x,
                method: javelin::solver::Method::BatchGmres,
            });
        }
    }
    let (allocs_mid, bytes_mid) = snapshot();
    engine.process(&mut requests, &mut replies);
    for reply in replies.drain(..) {
        let reply = reply.expect("steady-state dispatch");
        assert!(reply.result.converged);
        assert_eq!(reply.panel_width, k4);
        assert!(reply.symbolic_reused);
        requests.push(javelin::service::SolveRequest {
            a: std::sync::Arc::clone(&a4),
            b: reply.b,
            x: reply.x,
            method: javelin::solver::Method::BatchGmres,
        });
    }
    let (allocs_after, bytes_after) = snapshot();
    assert_eq!(
        allocs_after - allocs_mid,
        0,
        "steady-state coalesced service dispatch performed heap allocations"
    );
    assert_eq!(
        bytes_after - bytes_mid,
        0,
        "steady-state coalesced service dispatch allocated bytes"
    );
    let cs = engine.cache_stats();
    assert_eq!(cs.misses, 1, "one symbolic analysis across all rounds");
    assert_eq!(cs.refactors, 0, "identical values: no numeric refactor");

    // ---- Phase 5: steady-state `refactor_batch` is zero-alloc and ----
    // zero-spawn on the persistent team. The batch walks the schedule
    // once for k = 4 interleaved value sets; after the warm-up (which
    // grows nothing either — every buffer was sized by `factor_batch`),
    // each step must reuse the interleaved value buffer, the shared row
    // workspaces and the planned team regions verbatim.
    let a5 = irregular(300);
    let mut opts5 = IluOptions::ilu0(3).with_drop_tol(1e-4);
    opts5.split.min_rows_per_level = 8;
    opts5.split.location_frac = 0.0;
    let sym5 = SymbolicIlu::analyze(&a5, &opts5).expect("analysis (batch)");
    let k5 = 4usize;
    let corners: Vec<CsrMatrix<f64>> = (0..k5)
        .map(|c| revalue(&a5, 0.3 + c as f64 * 0.77))
        .collect();
    let mats: Vec<&CsrMatrix<f64>> = corners.iter().collect();
    let mut batch = sym5.factor_batch(&mats).expect("batch factor");
    assert!(batch.all_ok());
    // Warm-up rounds (parking-lot/thread-parking lazy init, as above).
    batch.refactor_batch(&mats).expect("warm-up refactor_batch");
    batch.refactor_batch(&mats).expect("second warm-up");
    for round in 0..5 {
        let corners_t: Vec<CsrMatrix<f64>> = (0..k5)
            .map(|c| revalue(&a5, 2.2 + round as f64 + c as f64 * 0.77))
            .collect();
        let mats_t: Vec<&CsrMatrix<f64>> = corners_t.iter().collect();
        // The corner assembly above allocates; measure the batched
        // refactor call alone.
        let (allocs_mid, bytes_mid) = snapshot();
        batch
            .refactor_batch(&mats_t)
            .expect("steady-state refactor_batch");
        let (allocs_after, bytes_after) = snapshot();
        assert_eq!(
            allocs_after - allocs_mid,
            0,
            "round {round}: steady-state refactor_batch performed heap allocations"
        );
        assert_eq!(
            bytes_after - bytes_mid,
            0,
            "round {round}: steady-state refactor_batch allocated bytes"
        );
        assert!(batch.all_ok(), "round {round}");
    }
    // And the batched columns are still exactly the scalar refactors.
    let mut scalar = sym5.factor(&a5).expect("scalar reference");
    let last_corners: Vec<CsrMatrix<f64>> = (0..k5)
        .map(|c| revalue(&a5, 9.9 + c as f64 * 0.77))
        .collect();
    let last_mats: Vec<&CsrMatrix<f64>> = last_corners.iter().collect();
    batch.refactor_batch(&last_mats).unwrap();
    for (c, m) in last_mats.iter().enumerate() {
        scalar.refactor(m).unwrap();
        let bb: Vec<u64> = batch
            .factor(c)
            .lu()
            .vals()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let sb: Vec<u64> = scalar.lu().vals().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bb, sb, "batched column {c} vs scalar refactor");
    }

    // ---- Phase 6: exclusive-slice kernels on a PINNED team. ----
    // `pin_threads` changes placement only (core binding + first-touch
    // zero-fill at analyze time); steady-state refactors and repeated
    // solves through the row-view (`LuVals::view_mut`) eliminate/retire
    // paths must stay allocation-free on the pinned team too.
    let a6 = irregular(300);
    let mut opts6 = IluOptions::ilu0(3);
    opts6.pin_threads = true;
    opts6.split.min_rows_per_level = 8;
    opts6.split.location_frac = 0.0;
    let sym6 = SymbolicIlu::analyze(&a6, &opts6).expect("analysis (pinned)");
    let mut f6 = sym6.factor(&a6).expect("pinned factor");
    let n6 = a6.nrows();
    let engine6 = f6.default_engine();
    let b6: Vec<f64> = (0..n6).map(|i| (i as f64 * 0.17).cos() + 2.0).collect();
    let mut x6 = vec![0.0; n6];
    let mut perm6: Vec<f64> = Vec::new();
    f6.refactor(&revalue(&a6, 0.4)).expect("warm-up refactor");
    f6.solve_with_buffer(engine6, &mut perm6, &b6, &mut x6)
        .expect("warm-up solve");
    f6.refactor(&revalue(&a6, 0.9)).expect("second warm-up");
    f6.solve_with_buffer(engine6, &mut perm6, &b6, &mut x6)
        .expect("second warm-up solve");
    let a6_t = revalue(&a6, 3.3);
    let (allocs_mid, bytes_mid) = snapshot();
    f6.refactor(&a6_t).expect("steady-state pinned refactor");
    f6.solve_with_buffer(engine6, &mut perm6, &b6, &mut x6)
        .expect("steady-state pinned solve");
    let (allocs_after, bytes_after) = snapshot();
    assert_eq!(
        allocs_after - allocs_mid,
        0,
        "pinned refactor+solve performed heap allocations"
    );
    assert_eq!(
        bytes_after - bytes_mid,
        0,
        "pinned refactor+solve allocated bytes"
    );
}
