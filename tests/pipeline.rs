//! End-to-end pipeline tests across crates: suite generation →
//! preordering → factorization → solves, on every matrix of the
//! reproduced test suite (tiny scale).

use javelin::core::options::SolveEngine;
use javelin::core::{factorize, IluOptions};
use javelin::synth::suite::paper_suite;
use javelin_bench::harness::preorder_dm_nd;

/// The ILU(0) defining identity holds on every suite matrix:
/// `(L·U)_ij == (P·A·Pᵀ)_ij` on the pattern, to roundoff.
#[test]
fn ilu0_product_identity_across_suite() {
    for meta in paper_suite() {
        let a = preorder_dm_nd(&meta.build_tiny());
        let f =
            factorize(&a, &IluOptions::default()).unwrap_or_else(|e| panic!("{}: {e}", meta.name));
        let scale: f64 = a.vals().iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let err = f.product_error_on_pattern(&a);
        assert!(
            err <= 1e-10 * scale.max(1.0),
            "{}: product error {err:.3e} (scale {scale:.3e})",
            meta.name
        );
    }
}

/// All four solve engines agree with serial substitution on every suite
/// matrix, with multiple thread counts.
#[test]
fn solve_engines_agree_across_suite() {
    for meta in paper_suite() {
        let a = preorder_dm_nd(&meta.build_tiny());
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i % 19) as f64) * 0.25 - 2.0).collect();
        for nthreads in [2usize, 4] {
            let mut opts = IluOptions::ilu0(nthreads);
            opts.split.min_rows_per_level = 12;
            opts.split.location_frac = 0.1;
            let f = factorize(&a, &opts).unwrap_or_else(|e| panic!("{}: {e}", meta.name));
            let mut x_ref = vec![0.0; n];
            f.solve_with(SolveEngine::Serial, &b, &mut x_ref)
                .expect("serial solve");
            for engine in [
                SolveEngine::BarrierLevel,
                SolveEngine::PointToPoint,
                SolveEngine::PointToPointLower,
            ] {
                let mut x = vec![0.0; n];
                f.solve_with(engine, &b, &mut x).expect("parallel solve");
                for (k, (g, w)) in x.iter().zip(x_ref.iter()).enumerate() {
                    assert!(
                        (g - w).abs() <= 1e-9 * w.abs().max(1.0),
                        "{} engine {engine} nthreads {nthreads} row {k}: {g} vs {w}",
                        meta.name
                    );
                }
            }
        }
    }
}

/// One preconditioner application stays bounded (no blowup) on every
/// suite matrix, and drives GMRES to convergence quickly — the
/// preconditioner-quality smoke test. (A single `M⁻¹b` need not shrink
/// the 2-norm residual for weakly dominant convection operators, so the
/// meaningful criterion is the Krylov behaviour.)
#[test]
fn preconditioner_quality_across_suite() {
    for meta in paper_suite() {
        let a = preorder_dm_nd(&meta.build_tiny());
        let n = a.nrows();
        let f = factorize(&a, &IluOptions::default()).expect("factors");
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        f.solve_into(&b, &mut x).expect("solve");
        let ax = a.spmv(&x);
        let r: f64 = b
            .iter()
            .zip(&ax)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        let bn = (n as f64).sqrt();
        assert!(
            r.is_finite() && r < 5.0 * bn,
            "{}: ||b - A M^-1 b|| = {r:.3} blown up vs ||b|| = {bn:.3}",
            meta.name
        );
        let res = javelin::solver::gmres(
            &a,
            &b,
            &mut x,
            &f,
            &javelin::solver::SolverOptions::default(),
        );
        assert!(
            res.converged && res.iterations <= 200,
            "{}: GMRES {} iters, relres {:.2e}",
            meta.name,
            res.iterations,
            res.relative_residual
        );
    }
}

/// Factor statistics are internally consistent on every suite matrix.
#[test]
fn stats_consistency_across_suite() {
    for meta in paper_suite() {
        let a = preorder_dm_nd(&meta.build_tiny());
        let mut opts = IluOptions::ilu0(3);
        opts.split.min_rows_per_level = 12;
        let f = factorize(&a, &opts).expect("factors");
        let s = f.stats();
        assert_eq!(s.n, a.nrows(), "{}", meta.name);
        assert_eq!(s.nnz_a, a.nnz());
        assert_eq!(s.nnz_lu, f.lu().nnz());
        assert!(s.n_upper_levels <= s.n_levels);
        assert!(s.n_lower_rows < s.n);
        assert!(s.n_waits <= s.n_raw_deps);
        assert_eq!(f.plan().n_upper + s.n_lower_rows, s.n);
    }
}
