//! Chaos suite: drives the graceful-degradation layer through injected
//! faults — zero/NaN pivots in the numeric kernel, NaN payloads in the
//! Matrix Market reader, and panics inside parallel trisolve regions —
//! and asserts that every failure is *contained*: a structured error or
//! a caught panic, a repairable worker team, and bit-identical results
//! afterwards.
//!
//! Runs only with the `fault-injection` feature:
//!
//! ```text
//! cargo test --features fault-injection --test chaos
//! ```
//!
//! The failpoint registry is process-global and one-shot, so every
//! scenario serializes on [`CHAOS`] and clears the registry on both
//! sides.
#![cfg(feature = "fault-injection")]

use javelin::core::options::SolveEngine;
use javelin::core::{factorize, IluOptions, SymbolicIlu, ZeroPivotPolicy};
use javelin::sparse::fault::{self, FaultAction};
use javelin::sparse::io::read_matrix_market_from;
use javelin::sparse::{CooMatrix, CsrMatrix, SparseError};
use javelin::sync::WorkerTeam;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard};

/// Serializes scenarios around the process-global failpoint registry.
static CHAOS: Mutex<()> = Mutex::new(());

fn scenario() -> MutexGuard<'static, ()> {
    // A previous test's caught panic may have poisoned the mutex; the
    // guard data is `()`, so the poison carries no meaning.
    let guard = CHAOS.lock().unwrap_or_else(|e| e.into_inner());
    fault::clear();
    guard
}

/// Diagonally dominant convection-like fixture: healthy under every
/// policy, so any breakdown observed below is the injected one.
fn healthy(n: usize) -> CsrMatrix<f64> {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 6.0 + (i % 3) as f64).unwrap();
        if i > 0 {
            coo.push(i, i - 1, -1.25).unwrap();
        }
        if i + 4 < n {
            coo.push(i, i + 4, -0.75).unwrap();
        }
        if i >= 9 {
            coo.push(i, i - 9, -0.5).unwrap();
        }
    }
    coo.to_csr()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn injected_zero_pivot_errors_strictly_and_shift_retry_recovers() {
    let _g = scenario();
    let a = healthy(64);

    // Strict policy: the injected zero pivot is a structured error.
    fault::arm("numeric.pivot", FaultAction::Zero, 10);
    let strict = IluOptions::ilu0(2).with_zero_pivot(ZeroPivotPolicy::Error);
    assert!(
        matches!(factorize(&a, &strict), Err(SparseError::ZeroPivot { .. })),
        "injected zero pivot must surface under the strict policy"
    );
    assert!(!fault::is_armed("numeric.pivot"), "failpoint is one-shot");

    // ShiftRetry: attempt 1 eats the injected fault, attempt 2 runs on
    // the (healthy) matrix with a diagonal boost and succeeds.
    fault::arm("numeric.pivot", FaultAction::Zero, 10);
    let retry = IluOptions::ilu0(2).with_zero_pivot(ZeroPivotPolicy::shift_retry());
    let f = factorize(&a, &retry).expect("shift-retry must absorb the fault");
    assert_eq!(f.stats().shift_attempts, 2);
    assert!(f.stats().diag_shift > 0.0);
    let n = a.nrows();
    let b = vec![1.0; n];
    let mut x = vec![0.0; n];
    f.solve_into(&b, &mut x).unwrap();
    assert!(x.iter().all(|v| v.is_finite()));
    fault::clear();
}

#[test]
fn injected_nan_pivot_is_a_breakdown_not_a_poison() {
    let _g = scenario();
    let a = healthy(48);

    // NaN compares false against any threshold — the kernel must catch
    // it through the explicit finiteness check.
    fault::arm("numeric.pivot", FaultAction::Nan, 5);
    let strict = IluOptions::ilu0(2).with_zero_pivot(ZeroPivotPolicy::Error);
    assert!(
        matches!(factorize(&a, &strict), Err(SparseError::ZeroPivot { .. })),
        "NaN pivot must be detected, not propagated"
    );

    // Replace: the NaN pivot is substituted and the factors stay finite.
    fault::arm("numeric.pivot", FaultAction::Nan, 5);
    let f = factorize(&a, &IluOptions::ilu0(2)).expect("Replace must absorb a NaN pivot");
    assert!(f.lu().vals().iter().all(|v| v.is_finite()));
    fault::clear();
}

#[test]
fn injected_nan_value_in_matrix_market_is_rejected_at_the_boundary() {
    let _g = scenario();
    let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 4.0\n2 2 3.0\n";
    fault::arm("io.value", FaultAction::Nan, 1);
    let e = read_matrix_market_from::<f64, _>(text.as_bytes()).unwrap_err();
    assert_eq!(e, SparseError::NonFinite { row: 1, col: 1 });
    fault::clear();
}

#[test]
fn panicked_region_poisons_the_team_and_repair_restores_bit_identity() {
    let _g = scenario();
    let a = healthy(120);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();

    let team = Arc::new(WorkerTeam::new(2));
    let opts = IluOptions::ilu0(2).with_shared_team(Arc::clone(&team));
    let sym = SymbolicIlu::analyze(&a, &opts).unwrap();
    let f = sym.factor(&a).unwrap();

    // Healthy reference through the parallel engine.
    let mut x_ref = vec![0.0; n];
    f.solve_with(SolveEngine::PointToPoint, &b, &mut x_ref)
        .unwrap();

    // Inject a panic into the next parallel trisolve region.
    let gen_before = team.generation();
    fault::arm("trisolve.region", FaultAction::Panic, 0);
    let mut x_bad = vec![0.0; n];
    let caught = catch_unwind(AssertUnwindSafe(|| {
        let _ = f.solve_with(SolveEngine::PointToPoint, &b, &mut x_bad);
    }));
    assert!(caught.is_err(), "the injected panic must propagate");
    assert!(team.is_poisoned(), "an unwound region must poison the team");
    assert!(team.generation() > gen_before, "generation must advance");

    // Explicit repair clears the poison …
    assert!(team.repair());
    assert!(!team.is_poisoned());

    // … and the SAME team then factors and solves bit-identically to a
    // brand-new team.
    let mut f_same = f;
    f_same.refactor(&a).expect("refactor on the repaired team");
    let mut x_same = vec![0.0; n];
    f_same
        .solve_with(SolveEngine::PointToPoint, &b, &mut x_same)
        .unwrap();

    let fresh_opts = IluOptions::ilu0(2).with_shared_team(Arc::new(WorkerTeam::new(2)));
    let f_fresh = factorize(&a, &fresh_opts).unwrap();
    let mut x_fresh = vec![0.0; n];
    f_fresh
        .solve_with(SolveEngine::PointToPoint, &b, &mut x_fresh)
        .unwrap();

    assert_eq!(
        bits(f_same.lu().vals()),
        bits(f_fresh.lu().vals()),
        "post-repair factors must match a fresh team bit-for-bit"
    );
    assert_eq!(bits(&x_same), bits(&x_ref), "post-repair solve vs healthy");
    assert_eq!(
        bits(&x_same),
        bits(&x_fresh),
        "post-repair solve vs fresh team"
    );
    fault::clear();
}

#[test]
fn service_contains_pivot_breakdown_to_one_tenant_and_keeps_serving() {
    use javelin::service::{EngineConfig, ServiceConfig, ServiceError, SolveRequest, SolveService};
    use javelin::solver::Method;

    let _g = scenario();

    // Strict pivot policy so the injected fault surfaces as a
    // structured solve error rather than being absorbed.
    let mut engine = EngineConfig::default();
    engine.ilu = IluOptions::ilu0(2).with_zero_pivot(ZeroPivotPolicy::Error);
    let service = SolveService::start(ServiceConfig {
        engine,
        ..Default::default()
    });
    let client = service.client();

    let a_good = Arc::new(healthy(64));
    let n = a_good.nrows();
    let solve_good = |tag: u64| {
        client.solve(SolveRequest {
            a: Arc::clone(&a_good),
            b: (0..n)
                .map(|i| 1.0 + ((i as u64 + tag) % 5) as f64)
                .collect(),
            x: vec![0.0; n],
            method: Method::BatchGmres,
        })
    };

    // Tenant A is healthy and gets cached.
    let reply = solve_good(0).expect("healthy tenant");
    assert!(reply.result.converged);

    // Tenant B shows up with a NEW pattern while the pivot failpoint is
    // armed: its first-seen factorization breaks down mid-request. The
    // error must come back typed, to B alone.
    let a_bad = Arc::new(healthy(96));
    fault::arm("numeric.pivot", FaultAction::Zero, 10);
    let err = client
        .solve(SolveRequest {
            a: Arc::clone(&a_bad),
            b: vec![1.0; a_bad.nrows()],
            x: vec![0.0; a_bad.nrows()],
            method: Method::BatchGmres,
        })
        .unwrap_err();
    assert!(
        matches!(err, ServiceError::Solve(SparseError::ZeroPivot { .. })),
        "injected breakdown must surface as a structured solve error, got {err}"
    );

    // The dispatcher survived: tenant A's cached pattern still serves
    // (zero new symbolic work), and B's pattern — fault now spent —
    // factors cleanly on retry.
    let reply = solve_good(1).expect("service must keep serving tenant A");
    assert!(reply.result.converged);
    assert!(reply.symbolic_reused, "A's pattern must still be cached");
    let reply = client
        .solve(SolveRequest {
            a: Arc::clone(&a_bad),
            b: vec![1.0; a_bad.nrows()],
            x: vec![0.0; a_bad.nrows()],
            method: Method::BatchGmres,
        })
        .expect("B recovers once the fault is spent");
    assert!(reply.result.converged);

    let snap = service.snapshot();
    assert_eq!(snap.requests, 4);
    assert_eq!(
        service
            .stats()
            .completed
            .load(std::sync::atomic::Ordering::SeqCst),
        4,
        "every request got a definite reply"
    );
    service.shutdown();
    fault::clear();
}

#[test]
fn injected_batch_pivot_fault_is_contained_to_one_scenario_column() {
    use javelin::synth::util::revalue;

    let _g = scenario();
    let a = healthy(64);
    let k = 4usize;
    let corners: Vec<CsrMatrix<f64>> = (0..k)
        .map(|c| revalue(&a, 0.3 + c as f64 * 0.77, 0.05))
        .collect();
    let mats: Vec<&CsrMatrix<f64>> = corners.iter().collect();

    // The serial batch engine finalizes row-major, lane-minor, firing
    // the `numeric.pivot` failpoint once per (row, lane) — so a skip of
    // `row·k + lane` lands the fault in exactly one scenario column.
    let (target_row, target_lane) = (10usize, 2usize);
    let skip = target_row * k + target_lane;

    // Uninjected reference batch.
    let strict = IluOptions::ilu0(1).with_zero_pivot(ZeroPivotPolicy::Error);
    let sym = SymbolicIlu::analyze(&a, &strict).unwrap();
    let clean = sym.factor_batch(&mats).unwrap();
    assert!(clean.all_ok());

    // Strict policy: scenario `target_lane` gets a typed per-scenario
    // ZeroPivot at the injected row; every other column's factors are
    // bit-identical to the uninjected run.
    fault::arm("numeric.pivot", FaultAction::Zero, skip);
    let injected = sym.factor_batch(&mats).unwrap();
    assert!(!injected.all_ok());
    assert!(
        matches!(
            injected.statuses()[target_lane],
            Err(SparseError::ZeroPivot { row }) if row == target_row
        ),
        "expected a typed ZeroPivot at row {target_row} in scenario {target_lane}, got {:?}",
        injected.statuses()[target_lane]
    );
    for c in (0..k).filter(|&c| c != target_lane) {
        assert!(injected.statuses()[c].is_ok(), "scenario {c} must survive");
        assert_eq!(
            bits(injected.factor(c).lu().vals()),
            bits(clean.factor(c).lu().vals()),
            "scenario {c} must be bit-identical to the uninjected batch"
        );
    }

    // ShiftRetry: the injected scenario absorbs the fault through a
    // shifted numeric re-run (the fault is one-shot, the re-sweep is
    // clean) while its neighbours — re-swept by the same retry loop —
    // reproduce their uninjected bits exactly.
    let retry = IluOptions::ilu0(1).with_zero_pivot(ZeroPivotPolicy::shift_retry());
    let sym_r = SymbolicIlu::analyze(&a, &retry).unwrap();
    let clean_r = sym_r.factor_batch(&mats).unwrap();
    assert!(clean_r.all_ok());
    fault::arm("numeric.pivot", FaultAction::Zero, skip);
    let healed = sym_r.factor_batch(&mats).unwrap();
    assert!(
        healed.all_ok(),
        "shift-retry must absorb the injected fault"
    );
    assert_eq!(
        healed.factor(target_lane).stats().shift_attempts,
        2,
        "the injected scenario must record its shifted retry"
    );
    assert!(healed.factor(target_lane).stats().diag_shift > 0.0);
    for c in (0..k).filter(|&c| c != target_lane) {
        assert_eq!(
            healed.factor(c).stats().shift_attempts,
            1,
            "scenario {c} must not be shifted"
        );
        assert_eq!(
            bits(healed.factor(c).lu().vals()),
            bits(clean_r.factor(c).lu().vals()),
            "scenario {c} must be bit-identical despite its neighbour's retry"
        );
    }
    fault::clear();
}

const ENGINES: [SolveEngine; 3] = [
    SolveEngine::BarrierLevel,
    SolveEngine::PointToPoint,
    SolveEngine::PointToPointLower,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sweep: an injected pivot fault at an arbitrary row is either a
    /// structured error (strict) or fully absorbed (ShiftRetry), for
    /// any thread count.
    #[test]
    fn pivot_faults_never_escape(
        nthreads in 1usize..4,
        skip in 0usize..40,
        nan in proptest::bool::ANY,
    ) {
        let _g = scenario();
        let a = healthy(40);
        let action = if nan { FaultAction::Nan } else { FaultAction::Zero };

        fault::arm("numeric.pivot", action, skip);
        let strict = IluOptions::ilu0(nthreads).with_zero_pivot(ZeroPivotPolicy::Error);
        prop_assert!(matches!(
            factorize(&a, &strict),
            Err(SparseError::ZeroPivot { .. })
        ));

        fault::arm("numeric.pivot", action, skip);
        let retry = IluOptions::ilu0(nthreads).with_zero_pivot(ZeroPivotPolicy::shift_retry());
        let f = factorize(&a, &retry).expect("shift-retry recovery");
        prop_assert_eq!(f.stats().shift_attempts, 2);
        prop_assert!(f.lu().vals().iter().all(|v| v.is_finite()));
        fault::clear();
    }

    /// Sweep: a panic in any parallel engine's region is contained, the
    /// team repairs, and the next solve on the same factors matches the
    /// healthy run bit-for-bit.
    #[test]
    fn region_panics_are_contained_for_every_engine(
        nthreads in 2usize..4,
        engine_idx in 0usize..ENGINES.len(),
    ) {
        let _g = scenario();
        let engine = ENGINES[engine_idx];
        let a = healthy(80);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| 0.5 + (i % 7) as f64).collect();

        let team = Arc::new(WorkerTeam::new(nthreads));
        let opts = IluOptions::ilu0(nthreads).with_shared_team(Arc::clone(&team));
        let f = factorize(&a, &opts).unwrap();
        let mut x_ref = vec![0.0; n];
        f.solve_with(engine, &b, &mut x_ref).unwrap();

        fault::arm("trisolve.region", FaultAction::Panic, 0);
        let mut x_bad = vec![0.0; n];
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let _ = f.solve_with(engine, &b, &mut x_bad);
        }));
        prop_assert!(caught.is_err());
        prop_assert!(team.is_poisoned());

        // `run` auto-repairs at its next entry — no explicit repair.
        let mut x_again = vec![0.0; n];
        f.solve_with(engine, &b, &mut x_again).unwrap();
        prop_assert!(!team.is_poisoned());
        prop_assert_eq!(bits(&x_again), bits(&x_ref));
        fault::clear();
    }
}
