//! Matrix Market round-trip integration: every suite matrix survives
//! write → read → factor with identical results, so experiments run on
//! the bundled synthetic suite and on real `.mtx` inputs through the
//! very same code path.

use javelin::core::{factorize, IluOptions};
use javelin::sparse::io::{read_matrix_market_from, write_matrix_market_to};
use javelin::sparse::{CsrMatrix, SparseError};
use javelin::synth::suite::paper_suite;

#[test]
fn suite_roundtrips_through_matrix_market() {
    for meta in paper_suite().into_iter().take(8) {
        let a = meta.build_tiny();
        let mut buf = Vec::new();
        write_matrix_market_to(&mut buf, &a).expect("write");
        let b: CsrMatrix<f64> = read_matrix_market_from(buf.as_slice()).expect("read");
        assert_eq!(a.nrows(), b.nrows(), "{}", meta.name);
        assert_eq!(a.nnz(), b.nnz(), "{}", meta.name);
        assert!(a.approx_eq(&b, 1e-12), "{}: values drifted", meta.name);
    }
}

#[test]
fn factorization_identical_after_roundtrip() {
    let meta = &paper_suite()[3]; // ibm-like, nonsymmetric pattern
    let a = meta.build_tiny();
    let mut buf = Vec::new();
    write_matrix_market_to(&mut buf, &a).expect("write");
    let b: CsrMatrix<f64> = read_matrix_market_from(buf.as_slice()).expect("read");
    let fa = factorize(&a, &IluOptions::default()).expect("factor a");
    let fb = factorize(&b, &IluOptions::default()).expect("factor b");
    // Same permutation and near-identical values (write/read loses at
    // most the last ulp through decimal formatting; we print with {:e}
    // which is exact for f64 -> decimal -> f64? Not guaranteed — allow
    // tiny drift).
    assert_eq!(fa.perm().new_to_old(), fb.perm().new_to_old());
    assert!(fa.lu().approx_eq(fb.lu(), 1e-9));
}

fn parse(text: &str) -> Result<CsrMatrix<f64>, SparseError> {
    read_matrix_market_from(text.as_bytes())
}

#[test]
fn malformed_matrix_market_inputs_are_rejected() {
    // Every hostile input must come back as a structured error — never
    // a panic, never a silently wrong matrix.

    // Wrong banner.
    assert!(matches!(
        parse("%%NotMatrixMarket matrix coordinate real general\n1 1 1\n1 1 2.0\n"),
        Err(SparseError::Io(_))
    ));
    // Unsupported field / symmetry keywords.
    assert!(matches!(
        parse("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 2.0 0.0\n"),
        Err(SparseError::Io(_))
    ));
    assert!(matches!(
        parse("%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 2.0\n"),
        Err(SparseError::Io(_))
    ));
    // Garbage size line.
    assert!(matches!(
        parse("%%MatrixMarket matrix coordinate real general\n2 two 1\n1 1 2.0\n"),
        Err(SparseError::Io(_))
    ));
    // Entry-count header that overflows any plausible buffer.
    let huge = format!(
        "%%MatrixMarket matrix coordinate real general\n{} {} {}\n",
        usize::MAX,
        usize::MAX,
        usize::MAX
    );
    assert!(matches!(parse(&huge), Err(SparseError::Io(_))));
    // Truncated entry list (header promises 2, file has 1).
    assert!(matches!(
        parse("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 2.0\n"),
        Err(SparseError::Io(_))
    ));
    // Short entry line and unparsable value.
    assert!(matches!(
        parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n"),
        Err(SparseError::Io(_))
    ));
    assert!(matches!(
        parse("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 fast\n"),
        Err(SparseError::Io(_))
    ));
    // 0-based and out-of-range indices.
    assert!(matches!(
        parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 2.0\n"),
        Err(SparseError::Io(_))
    ));
    assert!(matches!(
        parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 2.0\n"),
        Err(SparseError::IndexOutOfBounds { .. })
    ));
    // Non-finite payloads are stopped at the boundary, with coordinates.
    assert!(matches!(
        parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 NaN\n"),
        Err(SparseError::NonFinite { row: 0, col: 1 })
    ));
    assert!(matches!(
        parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n2 1 inf\n"),
        Err(SparseError::NonFinite { row: 1, col: 0 })
    ));
    // Empty stream.
    assert!(matches!(parse(""), Err(SparseError::Io(_))));
}
