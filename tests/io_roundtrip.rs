//! Matrix Market round-trip integration: every suite matrix survives
//! write → read → factor with identical results, so experiments run on
//! the bundled synthetic suite and on real `.mtx` inputs through the
//! very same code path.

use javelin::core::{factorize, IluOptions};
use javelin::sparse::io::{read_matrix_market_from, write_matrix_market_to};
use javelin::sparse::CsrMatrix;
use javelin::synth::suite::paper_suite;

#[test]
fn suite_roundtrips_through_matrix_market() {
    for meta in paper_suite().into_iter().take(8) {
        let a = meta.build_tiny();
        let mut buf = Vec::new();
        write_matrix_market_to(&mut buf, &a).expect("write");
        let b: CsrMatrix<f64> = read_matrix_market_from(buf.as_slice()).expect("read");
        assert_eq!(a.nrows(), b.nrows(), "{}", meta.name);
        assert_eq!(a.nnz(), b.nnz(), "{}", meta.name);
        assert!(a.approx_eq(&b, 1e-12), "{}: values drifted", meta.name);
    }
}

#[test]
fn factorization_identical_after_roundtrip() {
    let meta = &paper_suite()[3]; // ibm-like, nonsymmetric pattern
    let a = meta.build_tiny();
    let mut buf = Vec::new();
    write_matrix_market_to(&mut buf, &a).expect("write");
    let b: CsrMatrix<f64> = read_matrix_market_from(buf.as_slice()).expect("read");
    let fa = factorize(&a, &IluOptions::default()).expect("factor a");
    let fb = factorize(&b, &IluOptions::default()).expect("factor b");
    // Same permutation and near-identical values (write/read loses at
    // most the last ulp through decimal formatting; we print with {:e}
    // which is exact for f64 -> decimal -> f64? Not guaranteed — allow
    // tiny drift).
    assert_eq!(fa.perm().new_to_old(), fb.perm().new_to_old());
    assert!(fa.lu().approx_eq(fb.lu(), 1e-9));
}
