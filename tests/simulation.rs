//! Cross-crate simulation sanity: the machine models replaying real
//! schedules must produce physically sensible scaling for every suite
//! matrix (speedup bounded by thread count, monotone-ish behaviour,
//! engine ordering).

use javelin::core::options::SolveEngine;
use javelin::machine::{sim_factor_time, sim_trisolve_time, MachineModel};
use javelin::synth::suite::paper_suite;
use javelin_bench::harness::{factor_variants, prepare};
use javelin_synth::suite::Scale;

#[test]
fn factor_speedups_bounded_by_threads() {
    let h = MachineModel::haswell14();
    for meta in paper_suite() {
        let prep = prepare(meta, Scale::Tiny);
        let f = factor_variants(&prep.matrix);
        let t1 = sim_factor_time(&f.ls, &h, 1).total_s;
        for p in [2usize, 7, 14] {
            let tp = sim_factor_time(&f.ls, &h, p).total_s;
            let speedup = t1 / tp;
            assert!(
                speedup <= p as f64 * 1.01,
                "{}: superlinear speedup {speedup:.2} at p={p}",
                prep.meta.name
            );
            assert!(speedup > 0.2, "{}: collapse at p={p}", prep.meta.name);
        }
    }
}

#[test]
fn serial_sim_equals_sum_of_costs() {
    // At one thread the simulated time must be engine-independent for
    // the p2p path (it degenerates to the serial sweep).
    let h = MachineModel::haswell14();
    for meta in paper_suite().into_iter().take(4) {
        let prep = prepare(meta, Scale::Tiny);
        let f = factor_variants(&prep.matrix);
        let serial = sim_trisolve_time(&f.ls, &h, 1, SolveEngine::Serial);
        let p2p1 = sim_trisolve_time(&f.ls, &h, 1, SolveEngine::PointToPoint);
        assert!((serial - p2p1).abs() < 1e-12, "{}", prep.meta.name);
    }
}

#[test]
fn knl_slower_serially_but_scales_further() {
    let h = MachineModel::haswell14();
    let k = MachineModel::knl68();
    let mut knl_wins = 0;
    let mut total = 0;
    for meta in paper_suite() {
        let prep = prepare(meta, Scale::Tiny);
        let f = factor_variants(&prep.matrix);
        let h1 = sim_factor_time(&f.ls, &h, 1).total_s;
        let k1 = sim_factor_time(&f.ls, &k, 1).total_s;
        assert!(
            k1 > h1,
            "{}: KNL core should be slower serially",
            prep.meta.name
        );
        let h_speed = h1 / sim_factor_time(&f.ls, &h, 14).total_s;
        let k_speed = k1 / sim_factor_time(&f.ls, &k, 68).total_s;
        total += 1;
        if k_speed > h_speed {
            knl_wins += 1;
        }
    }
    // With 68 slow cores vs 14 fast ones, KNL reaches higher *speedups*
    // on most matrices (paper Fig. 10 vs Fig. 11).
    assert!(knl_wins * 2 > total, "KNL won only {knl_wins}/{total}");
}

#[test]
fn barrier_engine_pays_per_level() {
    let h = MachineModel::haswell14();
    for meta in paper_suite().into_iter().take(6) {
        let prep = prepare(meta, Scale::Tiny);
        let f = factor_variants(&prep.matrix);
        let barrier = sim_trisolve_time(&f.ls, &h, 14, SolveEngine::BarrierLevel);
        // The engine barriers once per forward (lower-pattern) level and
        // once per backward (upper-pattern) level — these differ from
        // the scheduling pattern's count on nonsymmetric matrices.
        let n_barriers =
            (f.ls.plan().fwd_levels.n_levels() + f.ls.plan().bwd_levels.n_levels()) as f64;
        assert!(
            barrier >= n_barriers * h.barrier_ns * 1e-9,
            "{}: barrier {barrier:.3e} vs {} barrier points",
            prep.meta.name,
            n_barriers
        );
    }
}
