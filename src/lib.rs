//! # Javelin
//!
//! A scalable sparse incomplete-LU factorization framework — a Rust
//! reproduction of *"Javelin: A Scalable Implementation for Sparse
//! Incomplete LU Factorization"* (Booth & Bolet, IPDPS 2019).
//!
//! This facade crate re-exports the workspace so applications can depend
//! on a single crate:
//!
//! ```
//! use javelin::prelude::*;
//!
//! // 2D Poisson problem, ILU(0) preconditioner, solve with PCG.
//! let a = javelin::synth::grid::laplace_2d(16, 16);
//! let opts = IluOptions::default();
//! let fact = IluFactorization::compute(&a, &opts).unwrap();
//! let b = vec![1.0; a.nrows()];
//! let mut x = vec![0.0; a.nrows()];
//! fact.solve_into(&b, &mut x).unwrap();
//! assert!(x.iter().all(|v| v.is_finite()));
//! ```
//!
//! The subsystem crates are re-exported under their short names:
//!
//! * [`sparse`] — CSR/CSC/COO formats, permutations, Matrix Market I/O
//! * [`synth`] — synthetic matrix generators (incl. the paper test suite)
//! * [`order`] — RCM, minimum-degree, nested dissection, DM/BTF, coloring
//! * [`level`] — level-set scheduling, two-stage split, p2p schedules
//! * [`sync`] — thread pool, progress counters, task graph, segmented scan
//! * [`core`] — the ILU framework itself (factorization, stri, spmv)
//! * [`baseline`] — serial ILUT and the heavyweight comparator
//! * [`solver`] — CG / GMRES / BiCGSTAB Krylov solvers
//! * [`machine`] — machine models and the schedule simulator

pub use javelin_baseline as baseline;
pub use javelin_core as core;
pub use javelin_level as level;
pub use javelin_machine as machine;
pub use javelin_order as order;
pub use javelin_solver as solver;
pub use javelin_sparse as sparse;
pub use javelin_sync as sync;
pub use javelin_synth as synth;

/// Commonly used items, for `use javelin::prelude::*`.
pub mod prelude {
    pub use javelin_core::factors::IluFactors;
    pub use javelin_core::options::{IluOptions, LowerMethod};
    pub use javelin_core::IluFactorization;
    pub use javelin_solver::{cg, gmres, solve_batch};
    pub use javelin_sparse::{CooMatrix, CsrMatrix, Panel, PanelMut, Perm, Scalar};
}
