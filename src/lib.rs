//! # Javelin
//!
//! A scalable sparse incomplete-LU factorization framework — a Rust
//! reproduction of *"Javelin: A Scalable Implementation for Sparse
//! Incomplete LU Factorization"* (Booth & Bolet, IPDPS 2019).
//!
//! ## The `Session` façade
//!
//! The recommended entry point is [`Session`]: one object that owns the
//! matrix, the two-phase factorization, the persistent worker team and
//! every workspace, with the whole solve surface collapsed to three
//! verbs — `solve` (one preconditioner apply), `solve_panel` (multi-RHS)
//! and `krylov` (full iterative solve):
//!
//! ```
//! use javelin::prelude::*;
//!
//! // 2D Poisson problem, ILU(0) preconditioner, solve with PCG.
//! let a = javelin::synth::grid::laplace_2d(16, 16);
//! let mut session = Session::builder().nthreads(2).build(&a).unwrap();
//! let b = vec![1.0; a.nrows()];
//! let mut x = vec![0.0; a.nrows()];
//! let res = session.krylov(Method::Pcg, &b, &mut x).unwrap();
//! assert!(res.converged);
//! ```
//!
//! ## The two-phase lifecycle: analyze → factor → refactor → solve
//!
//! Underneath the façade, the API mirrors the paper's phase structure
//! (the symbolic/numeric handle split of SuperLU/KLU-style interfaces):
//!
//! * [`SymbolicIlu::analyze`](core::SymbolicIlu::analyze) does all
//!   pattern-dependent work once — ordering, ILU(k) fill, level
//!   schedules, the two-stage split, trisolve/spmv plans, scratch and
//!   the worker team;
//! * [`SymbolicIlu::factor`](core::SymbolicIlu::factor) runs the
//!   numeric phase for one value set;
//! * [`IluFactors::refactor`](core::IluFactors::refactor) redoes the
//!   numeric phase **in place** for a pattern-identical matrix — zero
//!   allocations, zero thread spawns, bit-identical to a fresh factor —
//!   so a time stepper pays the symbolic cost exactly once;
//! * every solve/apply runs allocation-free on the persistent team.
//!
//! Time-stepping with [`Session::refactor`]:
//!
//! ```
//! use javelin::prelude::*;
//!
//! let a = javelin::synth::grid::laplace_2d(12, 12);
//! let mut session = Session::builder().build(&a).unwrap();
//! let mut u = vec![1.0; a.nrows()];
//! for _step in 0..3 {
//!     // values drift, pattern fixed → numeric-only refactorization
//!     session.refactor(&a).unwrap();
//!     let b = u.clone();
//!     let res = session.krylov(Method::Pcg, &b, &mut u).unwrap();
//!     assert!(res.converged);
//! }
//! ```
//!
//! The subsystem crates are re-exported under their short names:
//!
//! * [`sparse`] — CSR/CSC/COO formats, permutations, Matrix Market I/O
//! * [`synth`] — synthetic matrix generators (incl. the paper test suite)
//! * [`order`] — RCM, minimum-degree, nested dissection, DM/BTF, coloring
//! * [`level`] — level-set scheduling, two-stage split, p2p schedules
//! * [`sync`] — thread pool, worker team, progress counters, task graph
//! * [`core`] — the ILU framework itself (factorization, stri, spmv)
//! * [`baseline`] — serial ILUT and the heavyweight comparator
//! * [`solver`] — CG / GMRES / FGMRES / BiCGSTAB and the lockstep
//!   batched drivers (`solve_batch`, `bicgstab_batch`, `gmres_batch`)
//! * [`machine`] — machine models and the schedule simulator
//!
//! ## Multi-RHS panels and the lane layer
//!
//! Every layer is generic over a panel width `k` through the
//! width-generic **lane layer** ([`sparse::lanes`]): one kernel core
//! serves the scalar path (`FixedLanes<1>`), the SIMD-specialized
//! widths (`k ∈ {4, 8}`, monomorphized) and arbitrary dynamic widths.
//! One preconditioner schedule walk retires all `k` columns, and the
//! batched Krylov drivers run `k` systems in lockstep with per-column
//! convergence (and breakdown) masking — column `c` always carries
//! exactly the bits of the scalar solve of column `c`:
//!
//! ```
//! use javelin::prelude::*;
//!
//! let a = javelin::synth::grid::convection_diffusion_2d(12, 12, 0.4, 0.2);
//! let n = a.nrows();
//! let mut session = Session::builder().panel_width(4).build(&a).unwrap();
//! let (k, b) = (4, javelin::synth::util::rhs_panel(n, 4, 7));
//! let mut x = vec![0.0; n * k];
//! let results = session
//!     .krylov_panel(
//!         Method::BatchGmres,
//!         Panel::new(&b, n, k),
//!         PanelMut::new(&mut x, n, k),
//!     )
//!     .unwrap();
//! assert!(results.iter().all(|r| r.converged));
//! ```
//!
//! ## Further reading
//!
//! The repository ships a docs layer alongside the rustdoc:
//! `README.md` (quickstart, workspace map, headline bench numbers)
//! and `docs/ARCHITECTURE.md` — the three load-bearing lifecycles
//! (plan/execute, panel stride + lockstep masking, and
//! analyze→factor→refactor) with diagrams and pointers into the
//! crates that implement them.

pub use javelin_baseline as baseline;
pub use javelin_core as core;
pub use javelin_level as level;
pub use javelin_machine as machine;
pub use javelin_order as order;
pub use javelin_service as service;
pub use javelin_solver as solver;
pub use javelin_sparse as sparse;
pub use javelin_sync as sync;
pub use javelin_synth as synth;

pub mod session;

pub use session::{Session, SessionBuilder};

/// Commonly used items, for `use javelin::prelude::*`.
pub mod prelude {
    pub use crate::session::{Session, SessionBuilder};
    pub use javelin_core::factorize;
    pub use javelin_core::factors::IluFactors;
    pub use javelin_core::options::{IluOptions, LowerMethod, SolveEngine, ZeroPivotPolicy};
    pub use javelin_core::symbolic_ilu::SymbolicIlu;
    pub use javelin_core::{FactorsBatch, ScenarioPrecond};
    pub use javelin_solver::{
        bicgstab, bicgstab_batch, cg, fgmres, gmres, gmres_batch, krylov, krylov_panel, pcg,
        solve_batch, Method, PanelMatrices, ScenarioMatrices, SolverOptions, SolverResult,
        SolverStatus, SolverWorkspace,
    };
    pub use javelin_sparse::{
        CooMatrix, CsrMatrix, DynLanes, FixedLanes, Lanes, Panel, PanelMut, Perm, Scalar,
    };
}
