//! The unified `Session` façade: one object owning the matrix, the
//! two-phase factorization, the worker team and every workspace, with
//! the whole solve surface collapsed to three verbs —
//! [`Session::solve`], [`Session::solve_panel`] and
//! [`Session::krylov`] (with [`Session::krylov_panel`] as the batched
//! multi-RHS form of the latter) — plus [`Session::refactor`] for time
//! stepping.
//!
//! ```
//! use javelin::prelude::*;
//!
//! let a = javelin::synth::grid::laplace_2d(16, 16);
//! let mut session = Session::builder()
//!     .fill_level(0)
//!     .nthreads(2)
//!     .panel_width(4)
//!     .build(&a)
//!     .unwrap();
//! let b = vec![1.0; a.nrows()];
//! let mut x = vec![0.0; a.nrows()];
//! // Full preconditioned Krylov solve of A·x = b:
//! let res = session.krylov(Method::Pcg, &b, &mut x).unwrap();
//! assert!(res.converged);
//! // Values change, pattern does not — numeric-only refactorization:
//! session.refactor(&a).unwrap();
//! ```

use javelin_core::{
    FactorStats, FactorsBatch, IluFactors, IluOptions, SolveEngine, SymbolicIlu, ZeroPivotPolicy,
};
use javelin_solver::SolverWorkspace;
use javelin_solver::{
    krylov_panel_with, krylov_with, Method, ScenarioMatrices, SolverOptions, SolverResult,
};
use javelin_sparse::{CsrMatrix, Panel, PanelMut, Scalar, SparseError};
use javelin_sync::WorkerTeam;
use std::sync::Arc;

/// Relative diagonal shift a breakdown-retry applies before re-running
/// the solve: the preconditioner is refactored with every diagonal
/// boosted by `1e-4 · max|aᵢᵢ|`, trading a little accuracy (a few more
/// Krylov iterations) for the stability the first attempt lacked.
pub(crate) const BREAKDOWN_RETRY_SHIFT: f64 = 1e-4;

/// Builder for a [`Session`] (see [`Session::builder`]).
///
/// The common factorization and solver knobs have dedicated setters;
/// [`SessionBuilder::ilu_options`] / [`SessionBuilder::solver_options`]
/// are the escape hatches for everything else.
#[derive(Debug, Clone, Default)]
pub struct SessionBuilder {
    opts: IluOptions,
    solver: SolverOptions,
    engine: Option<SolveEngine>,
    panel_width: usize,
    warm_gmres_basis: bool,
}

impl SessionBuilder {
    /// Fill level `k` of ILU(k) (default 0).
    #[must_use]
    pub fn fill_level(mut self, k: usize) -> Self {
        self.opts.fill_level = k;
        self
    }

    /// Drop tolerance τ of ILU(k, τ) (default 0: no dropping).
    #[must_use]
    pub fn drop_tol(mut self, tau: f64) -> Self {
        self.opts.drop_tol = tau;
        self
    }

    /// Modified-ILU diagonal compensation ω (default 0).
    #[must_use]
    pub fn milu(mut self, omega: f64) -> Self {
        self.opts.milu_omega = omega;
        self
    }

    /// Worker threads (default 1: fully serial pipeline).
    #[must_use]
    pub fn nthreads(mut self, nthreads: usize) -> Self {
        self.opts.nthreads = nthreads;
        self
    }

    /// Tile size for Segmented-Rows and the tiled solve kernels.
    #[must_use]
    pub fn tile_size(mut self, tile: usize) -> Self {
        self.opts.tile_size = tile;
        self
    }

    /// What the numeric phase does when a pivot collapses (default:
    /// [`ZeroPivotPolicy::Replace`] with a tiny magnitude). With
    /// [`ZeroPivotPolicy::shift_retry`] a breakdown triggers
    /// allocation-free numeric re-runs under an escalating diagonal
    /// shift instead of failing the build:
    ///
    /// ```
    /// use javelin::prelude::*;
    ///
    /// // A structurally fine but numerically singular system: both
    /// // pivots are exactly zero, so plain ILU(0) breaks down.
    /// let mut coo = CooMatrix::new(2, 2);
    /// coo.push(0, 0, 0.0).unwrap();
    /// coo.push(0, 1, 1.0).unwrap();
    /// coo.push(1, 0, 1.0).unwrap();
    /// coo.push(1, 1, 0.0).unwrap();
    /// let a = coo.to_csr();
    /// // Under the strict policy the zero pivot aborts the build.
    /// assert!(Session::builder()
    ///     .zero_pivot(ZeroPivotPolicy::Error)
    ///     .build(&a)
    ///     .is_err());
    /// // Shift-and-retry: the factorization recovers by re-running the
    /// // numeric phase with a boosted diagonal, and reports how.
    /// let session = Session::builder()
    ///     .zero_pivot(ZeroPivotPolicy::shift_retry())
    ///     .build(&a)
    ///     .unwrap();
    /// assert!(session.stats().shift_attempts > 1);
    /// assert!(session.stats().diag_shift > 0.0);
    /// ```
    #[must_use]
    pub fn zero_pivot(mut self, policy: ZeroPivotPolicy) -> Self {
        self.opts.zero_pivot = policy;
        self
    }

    /// Magnitude below which a pivot counts as broken down (default
    /// 1e-14); the trigger for whichever [`ZeroPivotPolicy`] is set.
    #[must_use]
    pub fn pivot_threshold(mut self, threshold: f64) -> Self {
        self.opts.pivot_threshold = threshold;
        self
    }

    /// Triangular-solve engine for every apply in this session
    /// (default: the analysis's oversubscription-aware choice).
    #[must_use]
    pub fn engine(mut self, engine: SolveEngine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Pre-warms panel scratch and solver panels to width `k`, so the
    /// first [`Session::solve_panel`] / [`Session::krylov_panel`] at
    /// width ≤ `k` is already allocation-free (default 1). Exception:
    /// the batched-GMRES stacked Arnoldi basis — by far the largest
    /// buffer, `(restart + 1) × n × k` — is grown on the first
    /// `BatchGmres` panel solve instead of at build time, so sessions
    /// that never batch GMRES never pay for it; opt in with
    /// [`SessionBuilder::warm_gmres_basis`] when the workload does
    /// batch GMRES, otherwise from the second such solve on it too is
    /// allocation-free.
    #[must_use]
    pub fn panel_width(mut self, k: usize) -> Self {
        self.panel_width = k;
        self
    }

    /// Opt-in: also pre-grow the batched-GMRES stacked Arnoldi basis
    /// (`(restart + 1) × n × k` at the builder's
    /// [`panel_width`](SessionBuilder::panel_width) and the solver
    /// options' restart length) at build time, so even the session's
    /// **first** `BatchGmres` panel solve performs zero heap
    /// allocations. Off by default because the basis dwarfs every other
    /// buffer.
    #[must_use]
    pub fn warm_gmres_basis(mut self) -> Self {
        self.warm_gmres_basis = true;
        self
    }

    /// Runs this session's parallel regions on a caller-owned worker
    /// team (`nthreads` is taken from the team) — one process-wide team
    /// can serve many sessions.
    #[must_use]
    pub fn shared_team(mut self, team: Arc<WorkerTeam>) -> Self {
        self.opts = self.opts.with_shared_team(team);
        self
    }

    /// Krylov iteration controls (tolerance, caps, restart length).
    #[must_use]
    pub fn solver_options(mut self, solver: SolverOptions) -> Self {
        self.solver = solver;
        self
    }

    /// Replaces the full factorization option set (escape hatch; the
    /// dedicated setters cover the common knobs).
    #[must_use]
    pub fn ilu_options(mut self, opts: IluOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Analyzes and factors `a`, returning a ready [`Session`]. The
    /// session keeps its own copy of the matrix for the Krylov matvecs.
    ///
    /// # Errors
    /// Everything [`SymbolicIlu::analyze`] / [`SymbolicIlu::factor`]
    /// can return.
    pub fn build<T: Scalar>(&self, a: &CsrMatrix<T>) -> Result<Session<T>, SparseError> {
        let sym = SymbolicIlu::analyze(a, &self.opts)?;
        let factors = sym.factor(a)?;
        let engine = self.engine.unwrap_or_else(|| factors.default_engine());
        factors.reserve_panel_width(self.panel_width);
        let mut workspace = SolverWorkspace::new();
        workspace.reserve(a.nrows(), self.solver.restart, self.panel_width.max(1));
        if self.warm_gmres_basis {
            workspace.reserve_gmres_basis(a.nrows(), self.solver.restart, self.panel_width.max(1));
        }
        Ok(Session {
            a: a.clone(),
            factors,
            batch: None,
            engine,
            solver: self.solver,
            workspace,
            perm_buf: Vec::new(),
        })
    }
}

/// A single owner for everything one linear system needs across its
/// lifetime: the matrix, the symbolic analysis, the numeric factors,
/// the persistent worker team and all solve workspaces (see module
/// docs). Created by [`Session::builder`].
pub struct Session<T: Scalar> {
    a: CsrMatrix<T>,
    factors: IluFactors<T>,
    batch: Option<FactorsBatch<T>>,
    engine: SolveEngine,
    solver: SolverOptions,
    workspace: SolverWorkspace<T>,
    perm_buf: Vec<T>,
}

// `builder()` lives on a single concrete instantiation so that plain
// `Session::builder()` needs no type annotation — the builder itself is
// scalar-agnostic and `build` fixes `T` from the matrix it receives.
impl Session<f64> {
    /// Starts building a session. Equivalent to
    /// [`SessionBuilder::default`]; the scalar type is chosen by
    /// [`SessionBuilder::build`], not here.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }
}

impl<T: Scalar> Session<T> {
    /// Applies the factorization once: `x ← (LU)⁻¹ b` through the
    /// session's engine — one forward + backward substitution, not an
    /// iterative solve. Allocation-free after the first call.
    ///
    /// # Errors
    /// [`SparseError::DimensionMismatch`] on length mismatches.
    pub fn solve(&mut self, b: &[T], x: &mut [T]) -> Result<(), SparseError> {
        self.factors
            .solve_with_buffer(self.engine, &mut self.perm_buf, b, x)
    }

    /// Panel analogue of [`Session::solve`]: one schedule walk retires
    /// all columns of the right-hand-side panel.
    ///
    /// # Errors
    /// [`SparseError::DimensionMismatch`] on shape mismatches.
    pub fn solve_panel(&mut self, b: Panel<'_, T>, x: PanelMut<'_, T>) -> Result<(), SparseError> {
        self.factors
            .solve_panel_with_buffer(self.engine, &mut self.perm_buf, b, x)
    }

    /// Full preconditioned iterative solve of `A·x = b` with the chosen
    /// Krylov [`Method`], the session's ILU factors as the
    /// preconditioner and its reusable workspace — allocation-free in
    /// the steady state.
    ///
    /// ## Breakdown-aware retry
    ///
    /// When the solve halts with
    /// [`SolverStatus::NumericalBreakdown`](javelin_solver::SolverStatus::NumericalBreakdown)
    /// — typically a finite but wildly ill-conditioned preconditioner
    /// overflowing during its apply — the session performs **one
    /// automatic retry**: the factors are refactored with a small
    /// forced diagonal shift (`1e-4 · max|aᵢᵢ|`, the
    /// [`ZeroPivotPolicy::shift_retry`]-style boost of
    /// [`IluFactors::refactor_with_shift`]) and the solve re-runs from
    /// the frozen finite iterate. A result produced this way carries
    /// `retried == true`. On success the session *keeps* the shifted
    /// factors (self-healing: subsequent solves reuse the stable
    /// preconditioner); if the shifted refactor itself fails, the
    /// original breakdown result is returned unchanged.
    ///
    /// # Errors
    /// [`SparseError::DimensionMismatch`] on length mismatches.
    pub fn krylov(
        &mut self,
        method: Method,
        b: &[T],
        x: &mut [T],
    ) -> Result<SolverResult, SparseError> {
        let n = self.a.nrows();
        if b.len() != n || x.len() != n {
            return Err(SparseError::DimensionMismatch(format!(
                "krylov: rhs/solution lengths ({}, {}) != {}",
                b.len(),
                x.len(),
                n
            )));
        }
        let first = {
            let m = self.factors.with_engine(self.engine);
            krylov_with(method, &self.a, b, x, &m, &self.solver, &mut self.workspace)
        };
        if !first.broke_down() {
            return Ok(first);
        }
        // One automatic retry with a stabilized (diagonally shifted)
        // preconditioner; the iterate is frozen finite, so it doubles
        // as the warm start. A failed shifted refactor leaves the old
        // factors untouched — surface the original breakdown then.
        if self
            .factors
            .refactor_with_shift(&self.a, BREAKDOWN_RETRY_SHIFT)
            .is_err()
        {
            return Ok(first);
        }
        let m = self.factors.with_engine(self.engine);
        let mut retry = krylov_with(method, &self.a, b, x, &m, &self.solver, &mut self.workspace);
        retry.retried = true;
        Ok(retry)
    }

    /// Batched Krylov solve: `k` systems of the chosen [`Method`] in
    /// lockstep over one RHS panel, sharing one preconditioner schedule
    /// walk per panel apply with per-column convergence (and, for
    /// BiCGSTAB, breakdown) masking. `Pcg`/`BatchPcg` run the batched
    /// CG driver, `Bicgstab`/`BatchBicgstab` the batched BiCGSTAB,
    /// `Gmres`/`BatchGmres` the lockstep-restart block GMRES; `Fgmres`
    /// loops the scalar solver column by column. Column `c` of the
    /// result is always bit-identical to the scalar solve of column
    /// `c`. Returns one result per column.
    ///
    /// ```
    /// use javelin::prelude::*;
    ///
    /// let a = javelin::synth::grid::convection_diffusion_2d(10, 10, 0.4, 0.2);
    /// let n = a.nrows();
    /// let mut session = Session::builder().panel_width(3).build(&a).unwrap();
    /// let (k, b) = (3, javelin::synth::util::rhs_panel(n, 3, 42));
    /// let mut x = vec![0.0; n * k];
    /// let results = session
    ///     .krylov_panel(
    ///         Method::BatchBicgstab,
    ///         Panel::new(&b, n, k),
    ///         PanelMut::new(&mut x, n, k),
    ///     )
    ///     .unwrap();
    /// assert!(results.iter().all(|r| r.converged));
    /// ```
    ///
    /// # Errors
    /// [`SparseError::DimensionMismatch`] on shape mismatches.
    pub fn krylov_panel(
        &mut self,
        method: Method,
        b: Panel<'_, T>,
        x: PanelMut<'_, T>,
    ) -> Result<Vec<SolverResult>, SparseError> {
        let n = self.a.nrows();
        if b.nrows() != n || x.nrows() != n || x.ncols() != b.ncols() {
            return Err(SparseError::DimensionMismatch(format!(
                "krylov_panel: rhs {}x{} / solution {}x{} against a system of dimension {}",
                b.nrows(),
                b.ncols(),
                x.nrows(),
                x.ncols(),
                n
            )));
        }
        let m = self.factors.with_engine(self.engine);
        Ok(krylov_panel_with(
            method,
            &self.a,
            b,
            x,
            &m,
            &self.solver,
            &mut self.workspace,
        ))
    }

    /// Scenario sweep: solves `k` pattern-identical systems — one per
    /// matrix in `mats` (process corners, parameter perturbations,
    /// Monte-Carlo draws) — through **one** batched refactorization and
    /// one lockstep panel Krylov solve.
    ///
    /// Column `c` of `b`/`x` belongs to scenario `c`: matrix `mats[c]`
    /// is refactored (batched, one schedule walk for all `k` value
    /// sets; see [`FactorsBatch::refactor_batch`]), its factors
    /// precondition column `c`, and its matvec drives column `c` of
    /// the batched Krylov iteration. Each column's bits are identical
    /// to a scalar `refactor` + `krylov` of that scenario alone.
    ///
    /// The session caches the batch handle: the first call at width `k`
    /// allocates it ([`SymbolicIlu::factor_batch`]); subsequent calls
    /// at the same `k` are numeric-only and allocation-free. The handle
    /// stays inspectable through [`Session::scenario_batch`] (e.g. for
    /// per-scenario shift/breakdown statistics).
    ///
    /// # Errors
    /// * [`SparseError::DimensionMismatch`] when `mats` is empty or the
    ///   panel shapes disagree with `k = mats.len()`;
    /// * [`SparseError::PatternMismatch`] when any scenario matrix
    ///   deviates from the analyzed pattern (nothing is touched);
    /// * the first per-scenario numeric error
    ///   ([`SparseError::ZeroPivot`] / [`SparseError::Breakdown`]) when
    ///   a scenario's factorization fails — surviving scenarios keep
    ///   their factors, and [`Session::scenario_batch`] exposes every
    ///   per-scenario status.
    pub fn sweep(
        &mut self,
        method: Method,
        mats: &[&CsrMatrix<T>],
        b: Panel<'_, T>,
        x: PanelMut<'_, T>,
    ) -> Result<Vec<SolverResult>, SparseError> {
        let n = self.a.nrows();
        let k = mats.len();
        if k == 0 || b.nrows() != n || x.nrows() != n || b.ncols() != k || x.ncols() != k {
            return Err(SparseError::DimensionMismatch(format!(
                "sweep: {k} scenario matrices against rhs {}x{} / solution {}x{} (system dimension {n})",
                b.nrows(),
                b.ncols(),
                x.nrows(),
                x.ncols(),
            )));
        }
        match &mut self.batch {
            Some(batch) if batch.k() == k => batch.refactor_batch(mats)?,
            slot => *slot = Some(self.factors.symbolic().factor_batch(mats)?),
        }
        let batch = self.batch.as_ref().expect("sweep: batch just installed");
        if let Some(err) = batch
            .statuses()
            .iter()
            .find_map(|s| s.as_ref().err().cloned())
        {
            return Err(err);
        }
        let m = batch.precond(self.engine);
        Ok(krylov_panel_with(
            method,
            &ScenarioMatrices(mats),
            b,
            x,
            &m,
            &self.solver,
            &mut self.workspace,
        ))
    }

    /// The cached scenario batch of the most recent [`Session::sweep`]
    /// (None before the first sweep): per-scenario factors, statuses
    /// and shift/breakdown bookkeeping.
    pub fn scenario_batch(&self) -> Option<&FactorsBatch<T>> {
        self.batch.as_ref()
    }

    /// Numeric-only refactorization for a pattern-identical matrix with
    /// new values (see [`IluFactors::refactor`]): the session's stored
    /// matrix is updated in place and every plan, team and workspace is
    /// reused — zero allocations, zero thread spawns in the steady
    /// state.
    ///
    /// # Errors
    /// * [`SparseError::PatternMismatch`] when `a`'s pattern differs
    ///   from the analyzed one (session untouched);
    /// * [`SparseError::ZeroPivot`] when a pivot collapses under the
    ///   error policy.
    pub fn refactor(&mut self, a: &CsrMatrix<T>) -> Result<(), SparseError> {
        self.factors.refactor(a)?;
        self.a.vals_mut().copy_from_slice(a.vals());
        Ok(())
    }

    /// The system matrix the session solves against.
    pub fn matrix(&self) -> &CsrMatrix<T> {
        &self.a
    }

    /// The numeric factors (also this session's preconditioner).
    pub fn factors(&self) -> &IluFactors<T> {
        &self.factors
    }

    /// The shared symbolic analysis handle.
    pub fn symbolic(&self) -> &SymbolicIlu<T> {
        self.factors.symbolic()
    }

    /// Factorization statistics of the most recent factor/refactor.
    pub fn stats(&self) -> &FactorStats {
        self.factors.stats()
    }

    /// The triangular-solve engine every apply in this session uses.
    pub fn engine(&self) -> SolveEngine {
        self.engine
    }

    /// The Krylov iteration controls.
    pub fn solver_options(&self) -> &SolverOptions {
        &self.solver
    }

    /// Mutable access to the Krylov iteration controls (e.g. to tighten
    /// the tolerance between time steps).
    pub fn solver_options_mut(&mut self) -> &mut SolverOptions {
        &mut self.solver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use javelin_solver::pcg;
    use javelin_synth::grid::laplace_2d;

    fn b_vec(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 13 % 17) as f64) - 8.0).collect()
    }

    #[test]
    fn session_krylov_matches_direct_solver_calls() {
        let a = laplace_2d(14, 14);
        let n = a.nrows();
        let b = b_vec(n);
        let mut session = Session::builder().nthreads(2).build(&a).unwrap();
        let mut xs = vec![0.0; n];
        let res = session.krylov(Method::Pcg, &b, &mut xs).unwrap();
        assert!(res.converged);
        // Reference: plain pcg with the same factors and engine.
        let opts = IluOptions::ilu0(2);
        let factors = javelin_core::factorize(&a, &opts).unwrap();
        let mut xr = vec![0.0; n];
        let reference = pcg(&a, &b, &mut xr, &factors, &SolverOptions::default());
        assert_eq!(res.iterations, reference.iterations);
        for (g, w) in xs.iter().zip(xr.iter()) {
            assert!((g - w).abs() <= 1e-10 * w.abs().max(1.0), "{g} vs {w}");
        }
    }

    #[test]
    fn session_methods_all_converge() {
        let a = laplace_2d(12, 12);
        let n = a.nrows();
        let b = b_vec(n);
        let mut session = Session::builder().nthreads(2).build(&a).unwrap();
        for method in [
            Method::Pcg,
            Method::Gmres,
            Method::Fgmres,
            Method::Bicgstab,
            Method::BatchPcg,
            Method::BatchBicgstab,
            Method::BatchGmres,
        ] {
            let mut x = vec![0.0; n];
            let res = session.krylov(method, &b, &mut x).unwrap();
            assert!(res.converged, "{method} failed");
            let ax = a.spmv(&x);
            let rel: f64 = b
                .iter()
                .zip(&ax)
                .map(|(p, q)| (p - q) * (p - q))
                .sum::<f64>()
                .sqrt()
                / b.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(rel <= 1e-5, "{method}: residual {rel}");
        }
    }

    #[test]
    fn session_solve_is_one_preconditioner_apply() {
        let a = laplace_2d(10, 10);
        let n = a.nrows();
        let b = b_vec(n);
        let mut session = Session::builder().nthreads(2).build(&a).unwrap();
        let engine = session.engine();
        let mut xs = vec![0.0; n];
        session.solve(&b, &mut xs).unwrap();
        let mut xr = vec![0.0; n];
        session.factors().solve_with(engine, &b, &mut xr).unwrap();
        assert_eq!(
            xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            xr.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn session_panel_paths_match_scalar_paths_bitwise() {
        let a = laplace_2d(9, 9);
        let n = a.nrows();
        let k = 3;
        let b: Vec<f64> = (0..n * k)
            .map(|i| ((i * 7 % 31) as f64) * 0.11 - 1.5)
            .collect();
        let mut session = Session::builder()
            .nthreads(2)
            .panel_width(k)
            .build(&a)
            .unwrap();
        let mut xp = vec![0.0; n * k];
        session
            .solve_panel(Panel::new(&b, n, k), PanelMut::new(&mut xp, n, k))
            .unwrap();
        for c in 0..k {
            let mut x = vec![0.0; n];
            session.solve(&b[c * n..(c + 1) * n], &mut x).unwrap();
            assert_eq!(
                xp[c * n..(c + 1) * n]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "column {c}"
            );
        }
        // Batched Krylov over the same panel converges column-wise,
        // whichever batch method drives it.
        for method in [Method::BatchPcg, Method::BatchBicgstab, Method::BatchGmres] {
            let mut xk = vec![0.0; n * k];
            let results = session
                .krylov_panel(method, Panel::new(&b, n, k), PanelMut::new(&mut xk, n, k))
                .unwrap();
            assert_eq!(results.len(), k, "{method}");
            assert!(results.iter().all(|r| r.converged), "{method}");
        }
    }

    #[test]
    fn session_refactor_tracks_new_values() {
        let a = laplace_2d(10, 10);
        let n = a.nrows();
        let b = b_vec(n);
        let mut session = Session::builder().nthreads(2).build(&a).unwrap();
        // Scale the whole system: same pattern, new values.
        let (nr, nc, rp, ci, vs) = a.clone().into_parts();
        let vs2: Vec<f64> = vs.iter().map(|v| v * 2.0).collect();
        let a2 = CsrMatrix::from_raw_unchecked(nr, nc, rp, ci, vs2);
        session.refactor(&a2).unwrap();
        assert_eq!(session.matrix().vals(), a2.vals());
        let mut x = vec![0.0; n];
        let res = session.krylov(Method::Pcg, &b, &mut x).unwrap();
        assert!(res.converged);
        // A·x = b with A doubled means x is halved relative to the
        // original system's solution.
        let mut session1 = Session::builder().nthreads(2).build(&a).unwrap();
        let mut x1 = vec![0.0; n];
        session1.krylov(Method::Pcg, &b, &mut x1).unwrap();
        for (two, one) in x.iter().zip(x1.iter()) {
            assert!((2.0 * two - one).abs() <= 1e-5 * one.abs().max(1.0));
        }
    }

    #[test]
    fn session_sweep_matches_per_scenario_scalar_solves_bitwise() {
        let a = laplace_2d(11, 11);
        let n = a.nrows();
        let k = 4;
        let corners: Vec<_> = (0..k)
            .map(|c| javelin_synth::util::revalue(&a, 0.3 + c as f64 * 0.77, 0.05))
            .collect();
        let mats: Vec<&CsrMatrix<f64>> = corners.iter().collect();
        let b: Vec<f64> = (0..n * k)
            .map(|i| ((i * 7 % 29) as f64) * 0.13 - 1.7)
            .collect();
        let mut session = Session::builder()
            .nthreads(2)
            .panel_width(k)
            .build(&a)
            .unwrap();
        assert!(session.scenario_batch().is_none());
        let mut xs = vec![0.0; n * k];
        let results = session
            .sweep(
                Method::BatchPcg,
                &mats,
                Panel::new(&b, n, k),
                PanelMut::new(&mut xs, n, k),
            )
            .unwrap();
        assert_eq!(results.len(), k);
        assert!(results.iter().all(|r| r.converged));
        let batch = session.scenario_batch().unwrap();
        assert_eq!(batch.k(), k);
        assert!(batch.all_ok());
        // Reference: an independent session per scenario, scalar
        // refactor + scalar krylov. Same bits, same iteration counts.
        for (c, m) in corners.iter().enumerate() {
            let mut single = Session::builder().nthreads(2).build(&a).unwrap();
            single.refactor(m).unwrap();
            let mut x = vec![0.0; n];
            let r = single
                .krylov(Method::Pcg, &b[c * n..(c + 1) * n], &mut x)
                .unwrap();
            assert_eq!(r.iterations, results[c].iterations, "scenario {c}");
            assert_eq!(
                xs[c * n..(c + 1) * n]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "scenario {c}"
            );
        }
        // A second sweep at the same width reuses the cached batch.
        let mut xs2 = vec![0.0; n * k];
        let again = session
            .sweep(
                Method::BatchPcg,
                &mats,
                Panel::new(&b, n, k),
                PanelMut::new(&mut xs2, n, k),
            )
            .unwrap();
        assert!(again.iter().all(|r| r.converged));
        assert_eq!(
            xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            xs2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // Shape mismatches are rejected up front.
        assert!(session
            .sweep(
                Method::BatchPcg,
                &[],
                Panel::new(&b, n, k),
                PanelMut::new(&mut xs2, n, k)
            )
            .is_err());
    }

    #[test]
    fn session_rejects_mismatched_shapes() {
        let a = laplace_2d(6, 6);
        let n = a.nrows();
        let mut session = Session::builder().build(&a).unwrap();
        let b = vec![1.0; n - 1];
        let mut x = vec![0.0; n];
        assert!(session.krylov(Method::Pcg, &b, &mut x).is_err());
        assert!(session.solve(&b, &mut x).is_err());
        let bp = vec![0.0; n];
        let mut xp = vec![0.0; 2 * n];
        assert!(session
            .krylov_panel(
                Method::BatchPcg,
                Panel::new(&bp, n, 1),
                PanelMut::new(&mut xp, n, 2)
            )
            .is_err());
        // Pattern mismatch on refactor leaves the session usable.
        let other = laplace_2d(5, 5);
        assert!(matches!(
            session.refactor(&other),
            Err(SparseError::PatternMismatch(_))
        ));
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        assert!(session.krylov(Method::Pcg, &b, &mut x).unwrap().converged);
    }

    #[test]
    fn breakdown_retry_refreshes_factors_and_stamps_result() {
        // A non-finite right-hand side forces a structured breakdown on
        // the first attempt; the session must perform exactly one
        // automatic retry with a shifted preconditioner, stamp the
        // result, and surface the (still broken-down) outcome instead
        // of an error. The shifted refactor must land in the stats.
        let a = laplace_2d(10, 10);
        let n = a.nrows();
        let mut session = Session::builder().nthreads(2).build(&a).unwrap();
        assert_eq!(session.stats().diag_shift, 0.0);
        let mut b = b_vec(n);
        b[3] = f64::NAN;
        let mut x = vec![0.0; n];
        let res = session.krylov(Method::Gmres, &b, &mut x).unwrap();
        assert!(res.broke_down());
        assert!(res.retried, "the automatic retry must be recorded");
        // The retry refactored with a forced diagonal shift and the
        // session kept the stabilized factors.
        assert!(session.stats().diag_shift > 0.0);
        // A healthy solve on the shifted (slightly less accurate)
        // preconditioner still converges — and needs no retry.
        let b = b_vec(n);
        let res = session.krylov(Method::Gmres, &b, &mut x).unwrap();
        assert!(res.converged);
        assert!(!res.retried);
    }

    #[test]
    fn builder_knobs_are_applied() {
        let a = laplace_2d(8, 8);
        let session = Session::builder()
            .fill_level(1)
            .drop_tol(0.0)
            .milu(0.0)
            .nthreads(2)
            .tile_size(32)
            .engine(SolveEngine::BarrierLevel)
            .panel_width(4)
            .solver_options(SolverOptions {
                tol: 1e-10,
                ..Default::default()
            })
            .build(&a)
            .unwrap();
        assert_eq!(session.engine(), SolveEngine::BarrierLevel);
        assert_eq!(session.symbolic().options().fill_level, 1);
        assert_eq!(session.symbolic().options().tile_size, 32);
        assert_eq!(session.solver_options().tol, 1e-10);
        assert!(session.stats().nnz_lu >= a.nnz());
    }

    #[test]
    fn warmed_gmres_basis_session_matches_cold_session_bitwise() {
        let a = laplace_2d(9, 8);
        let n = a.nrows();
        let k = 3;
        let b: Vec<f64> = (0..n * k)
            .map(|i| ((i * 11 % 23) as f64) * 0.2 - 2.0)
            .collect();
        let mut warm = Session::builder()
            .panel_width(k)
            .warm_gmres_basis()
            .build(&a)
            .unwrap();
        let mut cold = Session::builder().panel_width(k).build(&a).unwrap();
        let mut xw = vec![0.0; n * k];
        let mut xc = vec![0.0; n * k];
        let rw = warm
            .krylov_panel(
                Method::BatchGmres,
                Panel::new(&b, n, k),
                PanelMut::new(&mut xw, n, k),
            )
            .unwrap();
        let rc = cold
            .krylov_panel(
                Method::BatchGmres,
                Panel::new(&b, n, k),
                PanelMut::new(&mut xc, n, k),
            )
            .unwrap();
        assert!(rw.iter().all(|r| r.converged));
        for c in 0..k {
            assert_eq!(rw[c].iterations, rc[c].iterations, "col {c}");
        }
        assert_eq!(
            xw.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            xc.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn shared_team_session() {
        let a = laplace_2d(8, 8);
        let team = Arc::new(WorkerTeam::new(2));
        let mut s1 = Session::builder()
            .shared_team(Arc::clone(&team))
            .build(&a)
            .unwrap();
        let mut s2 = Session::builder()
            .shared_team(Arc::clone(&team))
            .build(&a)
            .unwrap();
        let n = a.nrows();
        let b = b_vec(n);
        let mut x1 = vec![0.0; n];
        let mut x2 = vec![0.0; n];
        s1.krylov(Method::Pcg, &b, &mut x1).unwrap();
        s2.krylov(Method::Pcg, &b, &mut x2).unwrap();
        assert_eq!(
            x1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            x2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
