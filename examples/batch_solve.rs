//! Batched multi-RHS solving: one ILU(0) preconditioner serving a
//! whole panel of right-hand sides through `solve_batch`.
//!
//! ```text
//! cargo run --release --example batch_solve
//! ```
//!
//! Demonstrates (and asserts) the panel-execution contract end to end:
//!
//! 1. `solve_batch` converges `k` systems in lockstep, each column
//!    carrying exactly the bits (and iteration count) of a standalone
//!    `pcg_with` run on that column;
//! 2. columns converge independently (masking): faster columns retire
//!    at earlier iterations while the rest keep iterating;
//! 3. after a warm-up solve, a steady-state `solve_batch` at `k = 8`
//!    performs **zero heap allocations** — measured with a counting
//!    global allocator, not assumed;
//! 4. malformed panels are rejected with an error, not a panic.

use javelin::core::{factorize, IluOptions};
use javelin::solver::{pcg_with, solve_batch_with, SolverOptions, SolverWorkspace};
use javelin::sparse::{Panel, PanelMut};
use javelin::synth::grid::laplace_2d;
use javelin::synth::util::rhs_panel;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Counts allocations while `ARMED` — the instrument behind the
/// zero-steady-state-allocation check.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn main() {
    let a = laplace_2d(48, 48);
    let n = a.nrows();
    let k = 8usize;
    println!("matrix: {n} x {n}, panel width k = {k}");

    // Factor once; the persistent worker team and the panel-width
    // scratch inside the factors serve every solve below.
    let factors = factorize(&a, &IluOptions::ilu0(2)).expect("ILU(0)");

    // A deterministic panel whose columns are genuinely different
    // systems, so they converge at different iterations and the
    // masking actually engages.
    let b = rhs_panel(n, k, 2024);

    let opts = SolverOptions::default();
    let mut ws = SolverWorkspace::new();
    let mut x = vec![0.0; n * k];

    // Warm-up solve: grows every buffer (workspace panels, the
    // preconditioner's permutation buffer, the engines' width-k
    // scratch) to its steady-state size.
    let results = solve_batch_with(
        &a,
        Panel::new(&b, n, k),
        PanelMut::new(&mut x, n, k),
        &factors,
        &opts,
        &mut ws,
    );
    println!("\nper-column results (lockstep with convergence masking):");
    for (c, r) in results.iter().enumerate() {
        println!(
            "  column {c}: converged = {}, iterations = {:3}, relres = {:.3e}",
            r.converged, r.iterations, r.relative_residual
        );
    }
    assert!(results.iter().all(|r| r.converged), "all columns converge");
    let (min_it, max_it) = results.iter().fold((usize::MAX, 0), |(lo, hi), r| {
        (lo.min(r.iterations), hi.max(r.iterations))
    });
    assert!(
        min_it < max_it,
        "columns must retire at different iterations for masking to engage"
    );
    println!("masking engaged: columns retired between iteration {min_it} and {max_it}");

    // Contract check: every batched column is bit-identical to a
    // standalone single-RHS PCG run of that column.
    for c in 0..k {
        let mut xc = vec![0.0; n];
        let r = pcg_with(
            &a,
            &b[c * n..(c + 1) * n],
            &mut xc,
            &factors,
            &opts,
            &mut SolverWorkspace::new(),
        );
        assert_eq!(r.iterations, results[c].iterations, "column {c} iterations");
        let batch_bits: Vec<u64> = x[c * n..(c + 1) * n].iter().map(|v| v.to_bits()).collect();
        let solo_bits: Vec<u64> = xc.iter().map(|v| v.to_bits()).collect();
        assert_eq!(batch_bits, solo_bits, "column {c} bits");
    }
    println!("\nbatch == {k} independent PCG solves, bit for bit");

    // Steady state: the second batched solve must not allocate at all.
    x.fill(0.0);
    ALLOCS.store(0, Ordering::Relaxed);
    ARMED.store(true, Ordering::Relaxed);
    let results2 = solve_batch_with(
        &a,
        Panel::new(&b, n, k),
        PanelMut::new(&mut x, n, k),
        &factors,
        &opts,
        &mut ws,
    );
    ARMED.store(false, Ordering::Relaxed);
    // One allocation is permitted: the Vec<SolverResult> assembled for
    // the caller on entry (documented); the iteration loop itself —
    // matvecs, dots, panel preconditioner applies — must be clean.
    let n_allocs = ALLOCS.load(Ordering::Relaxed);
    println!("steady-state solve_batch(k = {k}): {n_allocs} allocation(s) (result vec only)");
    assert!(
        n_allocs <= 1,
        "steady-state batched solve must not allocate (saw {n_allocs})"
    );
    assert_eq!(
        results2.iter().map(|r| r.iterations).collect::<Vec<_>>(),
        results.iter().map(|r| r.iterations).collect::<Vec<_>>(),
        "steady-state rerun reproduces the warm-up"
    );

    // Malformed panels error out instead of panicking.
    let short = vec![0.0; n];
    let mut bad_x = vec![0.0; n * 2];
    assert!(factors
        .solve_panel_into(Panel::new(&short, n, 1), PanelMut::new(&mut bad_x, n, 2))
        .is_err());
    println!("shape mismatches are rejected with Err, not a panic");

    // The nonsymmetric batch drivers obey the same contract: lockstep
    // panels through `Session::krylov_panel`, column-for-column
    // bit-identical to the scalar solvers.
    let an = javelin::synth::grid::convection_diffusion_2d(32, 32, 0.4, 0.2);
    let nn = an.nrows();
    let bn = rhs_panel(nn, k, 7);
    let mut session = javelin::Session::builder()
        .nthreads(2)
        .panel_width(k)
        .build(&an)
        .expect("session");
    for method in [
        javelin::solver::Method::BatchBicgstab,
        javelin::solver::Method::BatchGmres,
    ] {
        let mut xn = vec![0.0; nn * k];
        let rn = session
            .krylov_panel(
                method,
                Panel::new(&bn, nn, k),
                PanelMut::new(&mut xn, nn, k),
            )
            .expect("panel solve");
        assert!(rn.iter().all(|r| r.converged), "{method}");
        let its: Vec<usize> = rn.iter().map(|r| r.iterations).collect();
        println!("{method} panel (k = {k}) converged, per-column iterations {its:?}");
    }
    println!("\nbatch_solve: all checks passed");
}
