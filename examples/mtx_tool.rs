//! Matrix Market workflow: run Javelin on *real* matrices.
//!
//! Point this at any SuiteSparse `.mtx` file (e.g. the paper's actual
//! test suite) to reproduce the experiments on the original inputs:
//!
//! ```text
//! cargo run --release --example mtx_tool -- path/to/matrix.mtx
//! ```
//!
//! Without an argument it demonstrates the round trip on a generated
//! matrix written to a temporary file.

use javelin::level::LevelSets;
use javelin::prelude::*;
use javelin::sparse::io::{read_matrix_market, write_matrix_market};
use javelin::sparse::pattern::lower_symmetrized_pattern;
use javelin::synth::grid::convection_diffusion_2d;
use javelin_bench::harness::preorder_dm_nd;

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            let tmp = std::env::temp_dir().join("javelin_demo.mtx");
            let demo = convection_diffusion_2d(48, 48, 30.0, -12.0);
            write_matrix_market(&tmp, &demo).expect("write demo matrix");
            println!(
                "(no argument given; wrote a demo matrix to {})",
                tmp.display()
            );
            tmp.to_string_lossy().into_owned()
        }
    };
    let raw = read_matrix_market::<f64>(&path).expect("readable Matrix Market file");
    println!(
        "{path}: {} x {}, {} nonzeros, rd {:.2}, symmetric pattern: {}",
        raw.nrows(),
        raw.ncols(),
        raw.nnz(),
        raw.row_density(),
        raw.is_pattern_symmetric()
    );
    let a = preorder_dm_nd(&raw);
    let levels = LevelSets::compute_lower(&lower_symmetrized_pattern(&a));
    let st = levels.stats();
    println!(
        "after DM+ND: {} levels (min {}, median {}, max {})",
        st.n_levels, st.min, st.median, st.max
    );
    // One Session owns the matrix, the two-phase factorization and
    // every workspace — analyze + factor here, solve below.
    let t0 = std::time::Instant::now();
    let mut session = Session::builder().build(&a).expect("ILU(0)");
    println!(
        "ILU(0) in {:.2?}; {} lower-stage rows ({}), {:.0}% of raw deps pruned",
        t0.elapsed(),
        session.stats().n_lower_rows,
        session.stats().lower_method,
        100.0 * session.stats().wait_sparsification()
    );
    let n = a.nrows();
    let b = vec![1.0; n];
    let mut x = vec![0.0; n];
    let res = session.krylov(Method::Gmres, &b, &mut x).expect("shapes");
    println!(
        "GMRES(50) + ILU(0): converged = {}, iterations = {}, relres = {:.2e}",
        res.converged, res.iterations, res.relative_residual
    );
}
