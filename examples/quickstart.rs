//! Quickstart: factor a 2D Poisson problem with ILU(0) and solve it
//! with preconditioned conjugate gradients — through the `Session`
//! façade, the one-object entry point that owns the factorization, the
//! worker team and every workspace.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use javelin::prelude::*;
use javelin::solver::cg;
use javelin::synth::grid::laplace_2d;

fn main() {
    // 1. A test problem: the 5-point Laplacian on a 64x64 grid.
    let a = laplace_2d(64, 64);
    let n = a.nrows();
    println!("matrix: {} x {} with {} nonzeros", n, n, a.nnz());

    // 2. One Session = analyze + factor + workspaces. The default
    //    options reproduce the paper's configuration: ILU(0), level
    //    scheduling on lower(A+A^T), automatic two-stage split.
    let mut session = Session::builder().build(&a).expect("ILU(0)");
    let s = session.stats();
    println!(
        "ILU(0): {} levels ({} upper-stage), {} rows in the lower stage, fill ratio {:.2}",
        s.n_levels,
        s.n_upper_levels,
        s.n_lower_rows,
        s.fill_ratio()
    );
    println!(
        "point-to-point schedule: {} waits from {} raw dependencies ({:.0}% pruned)",
        s.n_waits,
        s.n_raw_deps,
        100.0 * s.wait_sparsification()
    );

    // 3. Solve A x = b with and without the preconditioner.
    let b = vec![1.0; n];
    let mut x_plain = vec![0.0; n];
    let plain = cg(&a, &b, &mut x_plain, &SolverOptions::default());
    let mut x_pre = vec![0.0; n];
    let pre = session
        .krylov(Method::Pcg, &b, &mut x_pre)
        .expect("matching shapes");
    println!(
        "CG:          {} iterations (relative residual {:.2e})",
        plain.iterations, plain.relative_residual
    );
    println!(
        "ILU(0)-PCG:  {} iterations (relative residual {:.2e})",
        pre.iterations, pre.relative_residual
    );
    assert!(pre.converged && plain.converged);
    assert!(pre.iterations < plain.iterations);
    println!(
        "preconditioning saved {} iterations",
        plain.iterations - pre.iterations
    );
}
