//! Quickstart: factor a 2D Poisson problem with ILU(0) and solve it
//! with preconditioned conjugate gradients.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use javelin::core::{IluFactorization, IluOptions};
use javelin::solver::{cg, pcg, SolverOptions};
use javelin::synth::grid::laplace_2d;

fn main() {
    // 1. A test problem: the 5-point Laplacian on a 64x64 grid.
    let a = laplace_2d(64, 64);
    let n = a.nrows();
    println!("matrix: {} x {} with {} nonzeros", n, n, a.nnz());

    // 2. Incomplete factorization. The default options reproduce the
    //    paper's configuration: ILU(0), level scheduling on
    //    lower(A+A^T), automatic two-stage split.
    let factors = IluFactorization::compute(&a, &IluOptions::default()).expect("ILU(0)");
    let s = factors.stats();
    println!(
        "ILU(0): {} levels ({} upper-stage), {} rows in the lower stage, fill ratio {:.2}",
        s.n_levels,
        s.n_upper_levels,
        s.n_lower_rows,
        s.fill_ratio()
    );
    println!(
        "point-to-point schedule: {} waits from {} raw dependencies ({:.0}% pruned)",
        s.n_waits,
        s.n_raw_deps,
        100.0 * s.wait_sparsification()
    );

    // 3. Solve A x = b with and without the preconditioner.
    let b = vec![1.0; n];
    let opts = SolverOptions::default();
    let mut x_plain = vec![0.0; n];
    let plain = cg(&a, &b, &mut x_plain, &opts);
    let mut x_pre = vec![0.0; n];
    let pre = pcg(&a, &b, &mut x_pre, &factors, &opts);
    println!(
        "CG:          {} iterations (relative residual {:.2e})",
        plain.iterations, plain.relative_residual
    );
    println!(
        "ILU(0)-PCG:  {} iterations (relative residual {:.2e})",
        pre.iterations, pre.relative_residual
    );
    assert!(pre.converged && plain.converged);
    assert!(pre.iterations < plain.iterations);
    println!(
        "preconditioning saved {} iterations",
        plain.iterations - pre.iterations
    );
}
