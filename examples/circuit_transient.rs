//! Circuit-simulation scenario — the motivating workload from the
//! paper's introduction: "there is a growing need for iterative methods
//! in other areas that have very irregular matrices, such as certain
//! stages of circuit simulation".
//!
//! A transient-analysis-style system (irregular pattern, a dense
//! strongly-coupled core, nonsymmetric values) is preordered with the
//! paper's DM + ND pipeline, factored with ILU(0), and driven through a
//! sequence of right-hand sides the way a time stepper would — one
//! factorization, many triangular solves, which is exactly the balance
//! Javelin co-optimizes for.
//!
//! ```text
//! cargo run --release --example circuit_transient
//! ```

use javelin::core::precond::IdentityPrecond;
use javelin::core::{IluFactorization, IluOptions};
use javelin::order::{dm::dm_row_permutation, nested_dissection_order};
use javelin::solver::{gmres, SolverOptions};
use javelin::sparse::Perm;
use javelin::synth::circuit::transient_circuit;

fn main() {
    // An 8000-node transient-analysis system with a 60-node
    // strongly-coupled core.
    let raw = transient_circuit(8000, 60, true, 0x5eed);
    println!(
        "circuit matrix: n = {}, nnz = {}, rd = {:.2}, symmetric pattern = {}",
        raw.nrows(),
        raw.nnz(),
        raw.row_density(),
        raw.is_pattern_symmetric()
    );

    // Paper preordering pipeline: zero-free diagonal, then ND.
    let rowp = dm_row_permutation(&raw).expect("square");
    let a = raw
        .permute(&rowp, &Perm::identity(raw.ncols()))
        .expect("row perm");
    let nd = nested_dissection_order(&a, 64);
    let a = a.permute_sym(&nd).expect("nd perm");

    // Factor once.
    let t0 = std::time::Instant::now();
    let factors = IluFactorization::compute(&a, &IluOptions::default()).expect("ILU(0)");
    println!(
        "ILU(0) in {:.2?} ({} levels, {} lower-stage rows, method {})",
        t0.elapsed(),
        factors.stats().n_levels,
        factors.stats().n_lower_rows,
        factors.stats().lower_method
    );

    // "Time stepping": a sequence of right-hand sides; each step reuses
    // the factors for thousands-of-solves amortization.
    let n = a.nrows();
    let opts = SolverOptions {
        tol: 1e-8,
        ..Default::default()
    };
    let mut total_pre = 0usize;
    let mut total_plain = 0usize;
    for step in 0..5 {
        let b: Vec<f64> = (0..n)
            .map(|i| ((i + step * 37) % 23) as f64 * 0.1 - 1.0)
            .collect();
        let mut x = vec![0.0; n];
        let pre = gmres(&a, &b, &mut x, &factors, &opts);
        let mut x2 = vec![0.0; n];
        let plain = gmres(&a, &b, &mut x2, &IdentityPrecond, &opts);
        assert!(pre.converged, "step {step} failed to converge");
        total_pre += pre.iterations;
        total_plain += plain.iterations;
        println!(
            "step {step}: GMRES {} iters with ILU(0) vs {} without",
            pre.iterations, plain.iterations
        );
    }
    println!("total Krylov iterations over 5 steps: {total_pre} (ILU) vs {total_plain} (none)");
    assert!(total_pre < total_plain);
}
