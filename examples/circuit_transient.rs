//! Circuit-simulation scenario — the motivating workload from the
//! paper's introduction: "there is a growing need for iterative methods
//! in other areas that have very irregular matrices, such as certain
//! stages of circuit simulation".
//!
//! A transient-analysis-style system (irregular pattern, a dense
//! strongly-coupled core, nonsymmetric values) is preordered with the
//! paper's DM + ND pipeline and driven through a time loop the way a
//! transient stepper would: the conductance stamps drift every step
//! (same pattern, new values), so the loop calls [`Session::refactor`]
//! — the numeric-only path that reuses the symbolic analysis,
//! schedules, worker team and scratch — and the example prints the
//! measured symbolic-amortization speedup against redoing the full
//! analyze+factor pipeline each step.
//!
//! ```text
//! cargo run --release --example circuit_transient
//! ```

use javelin::core::precond::IdentityPrecond;
use javelin::order::{dm::dm_row_permutation, nested_dissection_order};
use javelin::prelude::*;
use javelin::solver::gmres;
use javelin::synth::circuit::transient_circuit;
use javelin::synth::util::revalue;
use std::time::{Duration, Instant};

fn main() {
    // An 8000-node transient-analysis system with a 60-node
    // strongly-coupled core.
    let raw = transient_circuit(8000, 60, true, 0x5eed);
    println!(
        "circuit matrix: n = {}, nnz = {}, rd = {:.2}, symmetric pattern = {}",
        raw.nrows(),
        raw.nnz(),
        raw.row_density(),
        raw.is_pattern_symmetric()
    );

    // Paper preordering pipeline: zero-free diagonal, then ND.
    let rowp = dm_row_permutation(&raw).expect("square");
    let a = raw
        .permute(&rowp, &Perm::identity(raw.ncols()))
        .expect("row perm");
    let nd = nested_dissection_order(&a, 64);
    let a = a.permute_sym(&nd).expect("nd perm");

    // One Session owns the analysis, factors, team and workspaces for
    // the whole transient run.
    let opts = SolverOptions {
        tol: 1e-8,
        ..Default::default()
    };
    let t0 = Instant::now();
    let mut session = Session::builder()
        .solver_options(opts)
        .build(&a)
        .expect("ILU(0) session");
    let t_first = t0.elapsed();
    println!(
        "ILU(0) analyze+factor in {:.2?} ({} levels, {} lower-stage rows, method {})",
        t_first,
        session.stats().n_levels,
        session.stats().n_lower_rows,
        session.stats().lower_method
    );

    // Time stepping: every step the stamps drift on a fixed pattern, so
    // only the numeric phase reruns; solves then reuse the factors.
    let n = a.nrows();
    let mut total_pre = 0usize;
    let mut total_plain = 0usize;
    let mut t_refactor = Duration::ZERO;
    let mut t_full = Duration::ZERO;
    let steps = 5;
    for step in 0..steps {
        // Same pattern, step-dependent values: the conductance drift
        // of a transient stamp.
        let a_t = revalue(&a, 0.3 + step as f64, 0.02);
        // Numeric-only refactorization (the production path) …
        let tr = Instant::now();
        session.refactor(&a_t).expect("pattern-stable refactor");
        t_refactor += tr.elapsed();
        // … versus redoing the whole pipeline (for the printed ratio).
        let tf = Instant::now();
        let fresh = factorize(&a_t, &IluOptions::default()).expect("full pipeline");
        t_full += tf.elapsed();
        assert!(
            session
                .factors()
                .lu()
                .vals()
                .iter()
                .zip(fresh.lu().vals())
                .all(|(r, f)| r.to_bits() == f.to_bits()),
            "refactor must be bit-identical to a fresh factorization"
        );
        let b: Vec<f64> = (0..n)
            .map(|i| ((i + step * 37) % 23) as f64 * 0.1 - 1.0)
            .collect();
        let mut x = vec![0.0; n];
        let pre = session.krylov(Method::Gmres, &b, &mut x).expect("krylov");
        let mut x2 = vec![0.0; n];
        let plain = gmres(&a_t, &b, &mut x2, &IdentityPrecond, &opts);
        assert!(pre.converged, "step {step} failed to converge");
        total_pre += pre.iterations;
        total_plain += plain.iterations;
        println!(
            "step {step}: GMRES {} iters with ILU(0) vs {} without | refactor {:.2?}",
            pre.iterations,
            plain.iterations,
            session.stats().t_numeric
        );
    }
    println!(
        "total Krylov iterations over {steps} steps: {total_pre} (ILU) vs {total_plain} (none)"
    );
    let speedup = t_full.as_secs_f64() / t_refactor.as_secs_f64().max(1e-12);
    println!(
        "symbolic amortization: {steps} refactors took {t_refactor:.2?} vs {t_full:.2?} for \
         full analyze+factor — {speedup:.1}x faster per step"
    );
    assert!(total_pre < total_plain);
}
