//! Scenario sweep — the batched-refactorization consumer: a transient
//! circuit stepped through `k` process corners at a time, where one
//! `refactor_batch` schedule walk refactors all `k` value sets and one
//! lockstep panel Krylov solve retires all `k` systems, measured
//! against the classical looped refactor-per-corner baseline and
//! cross-checked bitwise against it every step.
//!
//! ```text
//! cargo run --release --example scenario_sweep            # full run
//! cargo run --release --example scenario_sweep -- --smoke # CI-sized
//! ```

use javelin::prelude::*;
use javelin_sweep::{ScenarioSweep, SweepConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = if smoke {
        SweepConfig {
            n: 600,
            core_size: 24,
            k: 4,
            ..SweepConfig::default()
        }
    } else {
        SweepConfig::default()
    };
    let steps = if smoke { 2 } else { 5 };
    let (k, method) = (cfg.k, cfg.method);

    let mut sweep = ScenarioSweep::new(cfg).expect("sweep assembly");
    println!(
        "scenario sweep: n = {}, nnz = {}, k = {k} corners/step, {method} @ {} threads",
        sweep.matrix().nrows(),
        sweep.matrix().nnz(),
        sweep.config().nthreads,
    );

    let mut t_batched = std::time::Duration::ZERO;
    let mut t_looped = std::time::Duration::ZERO;
    for step in 0..steps {
        let report = sweep.run_step(step).expect("sweep step");
        assert!(
            report.bitwise_equal,
            "step {step}: batched and looped paths must agree bitwise"
        );
        assert!(report.batched.iter().all(|r| r.converged));
        t_batched += report.t_refactor_batched;
        t_looped += report.t_refactor_looped;
        println!(
            "step {step}: refactor {:.0} scen/s batched vs {:.0} scen/s looped ({:.2}x) | \
             solve {:.2?} batched vs {:.2?} looped | iters {:?}",
            report.scenarios_per_sec_batched(),
            report.scenarios_per_sec_looped(),
            report.refactor_speedup(),
            report.t_solve_batched,
            report.t_solve_looped,
            report
                .batched
                .iter()
                .map(|r| r.iterations)
                .collect::<Vec<_>>(),
        );
    }
    println!(
        "total refactor time over {steps} steps: {t_batched:.2?} batched vs {t_looped:.2?} looped \
         ({:.2}x)",
        t_looped.as_secs_f64() / t_batched.as_secs_f64().max(1e-12)
    );

    // The same workload through the Session façade: `Session::sweep`
    // caches the batch handle, so steady-state steps are numeric-only.
    let a = sweep.matrix().clone();
    let n = a.nrows();
    let mut session = Session::builder()
        .nthreads(sweep.config().nthreads)
        .panel_width(k)
        .solver_options(sweep.config().solver)
        .build(&a)
        .expect("session");
    let corners = sweep.corner_matrices(0);
    let mats: Vec<&CsrMatrix<f64>> = corners.iter().collect();
    let b = sweep.rhs_panel(0);
    let mut x = vec![0.0; n * k];
    let results = session
        .sweep(
            method,
            &mats,
            Panel::new(&b, n, k),
            PanelMut::new(&mut x, n, k),
        )
        .expect("session sweep");
    assert!(results.iter().all(|r| r.converged));
    println!(
        "Session::sweep: {} scenarios converged, batch cached = {}",
        results.len(),
        session.scenario_batch().is_some()
    );
}
