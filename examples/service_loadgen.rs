//! Deterministic multi-threaded load generator for the solve service:
//! measures coalesced-panel vs request-at-a-time throughput.
//!
//! ```text
//! cargo run --release --example service_loadgen
//! cargo run --release --example service_loadgen -- --smoke          # CI
//! cargo run --release --example service_loadgen -- --json loadgen.json
//! ```
//!
//! Each scenario spins up `c ∈ {2, 4, 8}` client threads against one
//! [`SolveService`], every client streaming pattern-identical BatchGmres
//! solves (same convection–diffusion matrix handle, deterministic
//! per-client right-hand sides). Two service configurations face the
//! identical workload:
//!
//! * **coalesced** — the default dispatcher: concurrent requests fuse
//!   into `k ∈ {8, 4}` panels, so one preconditioner schedule walk
//!   retires a whole batch of tenants;
//! * **request-at-a-time** — `max_batch = 1`: the same stack, the same
//!   cache, but every request dispatched alone (the baseline any
//!   service without coalescing would run).
//!
//! The workload is deterministic (fixed seeds, fixed counts); only the
//! wall-clock varies run to run. With `--json PATH` the numbers land as
//! a machine-readable snapshot that `scripts/bench_json.sh` folds into
//! the benchmark trajectory (`BENCH_results.json`).

use javelin::service::{ServiceConfig, SolveRequest, SolveService};
use javelin::solver::Method;
use javelin::synth::grid::convection_diffusion_2d;
use javelin::synth::util::rhs_panel;
use std::sync::{Arc, Barrier};
use std::time::Instant;

struct Scenario {
    clients: usize,
    coalesced_sps: f64,
    serial_sps: f64,
    coalesced_columns: u64,
    coalesced_panels: u64,
}

/// Drives `clients` threads × `solves` requests each through `service`
/// and returns (solves/sec, coalesced_columns, coalesced_panels).
fn drive(
    service: &SolveService<f64>,
    a: &Arc<javelin::sparse::CsrMatrix<f64>>,
    clients: usize,
    solves: usize,
) -> (f64, u64, u64) {
    let n = a.nrows();
    let before = service.snapshot();
    let barrier = Arc::new(Barrier::new(clients + 1));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let client = service.client();
            let a = Arc::clone(a);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                // Per-client deterministic right-hand side; buffers are
                // recycled through the reply so the steady state is
                // allocation-free on the client side too.
                let mut b = rhs_panel(n, 1, 1000 + c as u64);
                let mut x = vec![0.0; n];
                barrier.wait();
                for _ in 0..solves {
                    loop {
                        let req = SolveRequest {
                            a: Arc::clone(&a),
                            b: std::mem::take(&mut b),
                            x: std::mem::take(&mut x),
                            method: Method::BatchGmres,
                        };
                        match client.solve(req) {
                            Ok(reply) => {
                                assert!(reply.result.converged, "loadgen solve diverged");
                                b = reply.b;
                                x = reply.x;
                                break;
                            }
                            Err(javelin::service::ServiceError::Overloaded { .. }) => {
                                // Bounded queue: back off and retry.
                                b = rhs_panel(n, 1, 1000 + c as u64);
                                x = vec![0.0; n];
                                std::thread::yield_now();
                            }
                            Err(e) => panic!("loadgen request failed: {e}"),
                        }
                    }
                }
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    for h in handles {
        h.join().expect("client thread");
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    let after = service.snapshot();
    (
        (clients * solves) as f64 / secs,
        after.coalesced_columns - before.coalesced_columns,
        after.coalesced_panels - before.coalesced_panels,
    )
}

fn main() {
    let mut grid = 40usize;
    let mut solves = 64usize;
    let mut threads = 2usize;
    let mut engine_name = String::from("auto");
    let mut client_counts = vec![2usize, 4, 8];
    let mut json_out: Option<String> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => {
                grid = 16;
                solves = 8;
                client_counts = vec![2];
            }
            "--grid" => grid = argv.next().expect("--grid N").parse().expect("grid"),
            "--solves" => solves = argv.next().expect("--solves N").parse().expect("solves"),
            "--threads" => threads = argv.next().expect("--threads T").parse().expect("threads"),
            "--engine" => engine_name = argv.next().expect("--engine auto|serial|p2p"),
            "--clients" => {
                client_counts = argv
                    .next()
                    .expect("--clients a,b,c")
                    .split(',')
                    .map(|s| s.parse().expect("client count"))
                    .collect();
            }
            "--json" => json_out = Some(argv.next().expect("--json PATH")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: service_loadgen [--smoke] [--grid N] [--solves N] \
                     [--threads T] [--engine auto|serial|p2p] [--clients a,b,c] \
                     [--json PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let a = Arc::new(convection_diffusion_2d(grid, grid, 0.4, 0.2));
    let n = a.nrows();
    // The parallel persistent-team engines are where coalescing pays:
    // one point-to-point schedule walk per fused panel amortizes the
    // per-level synchronization across up to 8 tenants' columns, so
    // `--engine p2p` is the configuration the service runs in
    // production (multicore servers). `auto` defers to the analysis-
    // time hint, which falls back to serial when the thread count
    // oversubscribes the machine. Both modes always get the identical
    // configuration — the only variable is the batch window.
    let engine = match engine_name.as_str() {
        "auto" => None,
        "serial" => Some(javelin::core::options::SolveEngine::Serial),
        "p2p" => Some(javelin::core::options::SolveEngine::PointToPoint),
        other => {
            eprintln!("unknown engine: {other} (want auto|serial|p2p)");
            std::process::exit(2);
        }
    };
    let engine_cfg = javelin::service::EngineConfig {
        ilu: javelin::core::IluOptions::ilu0(threads),
        engine,
        ..Default::default()
    };
    println!(
        "service loadgen: {n}×{n} convection–diffusion, {solves} solves/client, \
         {threads} solver threads, engine {engine_name}"
    );
    println!(
        "{:>8} {:>16} {:>16} {:>9} {:>14}",
        "clients", "coalesced s/s", "one-at-a-time", "speedup", "avg panel"
    );

    let mut scenarios = Vec::new();
    for &clients in &client_counts {
        // Coalescing dispatcher (default batch window).
        let service = SolveService::start(ServiceConfig {
            engine: engine_cfg.clone(),
            ..Default::default()
        });
        // Warm the cache so both modes measure steady-state serving,
        // not the one-off symbolic analysis.
        drive(&service, &a, clients, 1);
        let (coalesced_sps, cols, panels) = drive(&service, &a, clients, solves);
        service.shutdown();

        // Same stack, batch window forced to one request.
        let cfg = ServiceConfig {
            engine: engine_cfg.clone(),
            max_batch: 1,
            ..Default::default()
        };
        let service = SolveService::start(cfg);
        drive(&service, &a, clients, 1);
        let (serial_sps, _, _) = drive(&service, &a, clients, solves);
        service.shutdown();

        let avg_panel = if panels > 0 {
            cols as f64 / panels as f64
        } else {
            1.0
        };
        println!(
            "{clients:>8} {coalesced_sps:>16.1} {serial_sps:>16.1} {:>8.2}x {avg_panel:>14.2}",
            coalesced_sps / serial_sps
        );
        scenarios.push(Scenario {
            clients,
            coalesced_sps,
            serial_sps,
            coalesced_columns: cols,
            coalesced_panels: panels,
        });
    }

    if let Some(path) = json_out {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"grid\": {grid}, \"n\": {n}, \"solves_per_client\": {solves}, \
             \"threads\": {threads}, \"engine\": \"{engine_name}\",\n"
        ));
        s.push_str("  \"scenarios\": [\n");
        for (i, sc) in scenarios.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"clients\": {}, \"coalesced_solves_per_sec\": {:.1}, \
                 \"serial_solves_per_sec\": {:.1}, \"speedup\": {:.3}, \
                 \"coalesced_columns\": {}, \"coalesced_panels\": {}}}{}\n",
                sc.clients,
                sc.coalesced_sps,
                sc.serial_sps,
                sc.coalesced_sps / sc.serial_sps,
                sc.coalesced_columns,
                sc.coalesced_panels,
                if i + 1 < scenarios.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        if path == "-" {
            print!("{s}");
        } else {
            std::fs::write(&path, s).expect("write json snapshot");
            println!("wrote {path}");
        }
    }

    // The loadgen is also a correctness gate: with enough concurrent
    // pattern-identical clients the dispatcher must actually coalesce.
    if let Some(sc) = scenarios.iter().find(|s| s.clients >= 8) {
        assert!(
            sc.coalesced_panels > 0 && sc.coalesced_columns > sc.coalesced_panels,
            "8-client run never fused a panel — coalescing is broken"
        );
    }
}
