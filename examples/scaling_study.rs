//! Scaling study on the machine models — how a user predicts Javelin's
//! behaviour on a many-core target before buying time on it.
//!
//! Prints simulated speedup curves (factorization and triangular solve)
//! for one wide-level PDE matrix and one narrow-level strip matrix, on
//! the paper's Haswell and KNL models. The curves reproduce the shapes
//! of Figs. 10–12: near-linear scaling while levels stay wide, NUMA
//! sag across sockets, and the strip matrix exposing the limits of pure
//! level scheduling.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use javelin::core::options::SolveEngine;
use javelin::machine::{sim_factor_time, sim_trisolve_time, MachineModel};
use javelin::prelude::*;
use javelin::synth::suite::{suite_matrix, Scale};
use javelin_bench::harness::preorder_dm_nd;

fn main() {
    let cases = [
        ("ecology2-like (wide levels)", "ecology2-like"),
        ("femfilter-like (narrow levels)", "fem_filter"),
    ];
    let machines = [MachineModel::haswell28(), MachineModel::knl68()];
    for (label, name) in cases {
        let a = preorder_dm_nd(
            &suite_matrix(name)
                .expect("suite matrix")
                .build_at(Scale::Standard),
        );
        // The Session façade owns the analysis, factors and team; the
        // simulator reads the real schedules straight out of it.
        let session = Session::builder().build(&a).expect("ILU");
        println!(
            "\n=== {label}: n = {}, levels = {} ===",
            a.nrows(),
            session.stats().n_levels
        );
        let f = session.factors();
        for m in &machines {
            println!("--- {} ---", m.name);
            println!(
                "{:>8} {:>12} {:>12} {:>12}",
                "threads", "ILU speedup", "stri LS", "stri LS+Low"
            );
            let base_f = sim_factor_time(f, m, 1).total_s;
            let base_s = sim_trisolve_time(f, m, 1, SolveEngine::Serial);
            let sweep: Vec<usize> = [1usize, 2, 4, 8, 14, 28, 68]
                .into_iter()
                .filter(|&p| p <= m.max_threads())
                .collect();
            for p in sweep {
                let sf = base_f / sim_factor_time(f, m, p).total_s;
                let sls = base_s / sim_trisolve_time(f, m, p, SolveEngine::PointToPoint);
                let slo = base_s / sim_trisolve_time(f, m, p, SolveEngine::PointToPointLower);
                println!("{p:>8} {sf:>12.2} {sls:>12.2} {slo:>12.2}");
            }
        }
    }
    println!(
        "\n(Simulated from the real schedules; see DESIGN.md §4.1 for the\n\
         machine-model substitution rationale.)"
    );
}
