//! Implicit 3D heat equation — the classic PDE workload behind the
//! paper's group-A matrices.
//!
//! Backward-Euler steps `(I + dt·L) u_{k+1} = u_k` on a 3D grid are
//! solved with ILU(0)-preconditioned CG. The example also reproduces the
//! paper's ordering trade-off in miniature: RCM needs fewer iterations,
//! ND exposes wider level sets for the factorization (§VII).
//!
//! ```text
//! cargo run --release --example heat_equation
//! ```

use javelin::core::{IluFactorization, IluOptions};
use javelin::level::LevelSets;
use javelin::order::{compute_order, Ordering};
use javelin::solver::{pcg, SolverOptions};
use javelin::sparse::pattern::lower_symmetrized_pattern;
use javelin::sparse::CooMatrix;
use javelin::synth::grid::laplace_3d;

fn main() {
    let (nx, ny, nz) = (16, 16, 16);
    let lap = laplace_3d(nx, ny, nz);
    let n = lap.nrows();
    let dt = 0.1;
    // A = I + dt * L
    let a = {
        let mut coo = CooMatrix::new(n, n);
        for (r, c, v) in lap.iter() {
            let v = dt * v + if r == c { 1.0 } else { 0.0 };
            coo.push(r, c, v).expect("in range");
        }
        coo.to_csr()
    };
    println!("heat system: n = {n}, nnz = {}", a.nnz());

    // Ordering study in miniature (paper §VII).
    for ord in [Ordering::Rcm, Ordering::Nd, Ordering::Natural] {
        let p = compute_order(&a, ord);
        let ax = a.permute_sym(&p).expect("perm");
        let levels = LevelSets::compute_lower(&lower_symmetrized_pattern(&ax));
        let stats = levels.stats();
        let f = IluFactorization::compute(&ax, &IluOptions::default()).expect("ILU");
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let res = pcg(&ax, &b, &mut x, &f, &SolverOptions::default());
        println!(
            "{ord:>4}: {:>3} iters | {:>3} levels (median width {:>4}) | {} waits",
            res.iterations,
            stats.n_levels,
            stats.median,
            f.stats().n_waits,
        );
    }

    // Time stepping with the natural order.
    let f = IluFactorization::compute(&a, &IluOptions::default()).expect("ILU");
    let mut u = vec![0.0; n];
    // A hot spot in the middle of the cube.
    u[(nx / 2 * ny + ny / 2) * nz + nz / 2] = 100.0;
    let opts = SolverOptions {
        tol: 1e-8,
        ..Default::default()
    };
    let mut total_iters = 0;
    for _step in 0..10 {
        let b = u.clone();
        let res = pcg(&a, &b, &mut u, &f, &opts);
        assert!(res.converged);
        total_iters += res.iterations;
    }
    let heat_total: f64 = u.iter().sum();
    println!(
        "10 implicit steps in {total_iters} total CG iterations; \
         final total heat {heat_total:.3} (diffused from 100.0)"
    );
    assert!(heat_total > 0.0 && heat_total <= 100.0 + 1e-6);
}
