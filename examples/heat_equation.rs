//! Implicit 3D heat equation — the classic PDE workload behind the
//! paper's group-A matrices.
//!
//! Backward-Euler steps `(I + dt·L) u_{k+1} = u_k` on a 3D grid are
//! solved with ILU(0)-preconditioned CG through the `javelin::Session`
//! façade. The time loop uses an *adaptive* step size, so the system
//! matrix changes every step — but only its values, never its pattern:
//! exactly the shape `Session::refactor` exists for. The example prints
//! the measured symbolic-amortization speedup of the numeric-only
//! refactorization against redoing the full pipeline per step, and
//! reproduces the paper's ordering trade-off in miniature (RCM needs
//! fewer iterations, ND exposes wider level sets; §VII).
//!
//! ```text
//! cargo run --release --example heat_equation
//! ```

use javelin::core::{factorize, IluOptions};
use javelin::level::LevelSets;
use javelin::order::{compute_order, Ordering};
use javelin::prelude::{Method, Session};
use javelin::solver::{pcg, SolverOptions};
use javelin::sparse::pattern::lower_symmetrized_pattern;
use javelin::sparse::{CooMatrix, CsrMatrix};
use javelin::synth::grid::laplace_3d;
use std::time::{Duration, Instant};

/// A = I + dt·L, on the fixed pattern of L ∪ I.
fn heat_matrix(lap: &CsrMatrix<f64>, dt: f64) -> CsrMatrix<f64> {
    let n = lap.nrows();
    let mut coo = CooMatrix::new(n, n);
    for (r, c, v) in lap.iter() {
        let v = dt * v + if r == c { 1.0 } else { 0.0 };
        coo.push(r, c, v).expect("in range");
    }
    coo.to_csr()
}

fn main() {
    let (nx, ny, nz) = (16, 16, 16);
    let lap = laplace_3d(nx, ny, nz);
    let n = lap.nrows();
    let a = heat_matrix(&lap, 0.1);
    println!("heat system: n = {n}, nnz = {}", a.nnz());

    // Ordering study in miniature (paper §VII).
    for ord in [Ordering::Rcm, Ordering::Nd, Ordering::Natural] {
        let p = compute_order(&a, ord);
        let ax = a.permute_sym(&p).expect("perm");
        let levels = LevelSets::compute_lower(&lower_symmetrized_pattern(&ax));
        let stats = levels.stats();
        let f = factorize(&ax, &IluOptions::default()).expect("ILU");
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let res = pcg(&ax, &b, &mut x, &f, &SolverOptions::default());
        println!(
            "{ord:>4}: {:>3} iters | {:>3} levels (median width {:>4}) | {} waits",
            res.iterations,
            stats.n_levels,
            stats.median,
            f.stats().n_waits,
        );
    }

    // Adaptive-dt time stepping through the Session façade: the pattern
    // is analyzed once at build; each new dt only refactors numerics.
    let mut session = Session::builder()
        .solver_options(SolverOptions {
            tol: 1e-8,
            ..Default::default()
        })
        .build(&a)
        .expect("session");
    let mut u = vec![0.0; n];
    // A hot spot in the middle of the cube.
    u[(nx / 2 * ny + ny / 2) * nz + nz / 2] = 100.0;
    let mut total_iters = 0;
    let mut t_refactor = Duration::ZERO;
    let mut t_full = Duration::ZERO;
    let steps = 10;
    for step in 0..steps {
        // The step size ramps up as the transient smooths out.
        let dt = 0.1 * (1.0 + step as f64 / steps as f64);
        let a_t = heat_matrix(&lap, dt);
        let tr = Instant::now();
        session.refactor(&a_t).expect("pattern-stable refactor");
        t_refactor += tr.elapsed();
        let tf = Instant::now();
        let _fresh = factorize(&a_t, &IluOptions::default()).expect("full pipeline");
        t_full += tf.elapsed();
        let b = u.clone();
        let res = session.krylov(Method::Pcg, &b, &mut u).expect("shapes");
        assert!(res.converged);
        total_iters += res.iterations;
    }
    let heat_total: f64 = u.iter().sum();
    println!(
        "{steps} implicit steps (adaptive dt) in {total_iters} total CG iterations; \
         final total heat {heat_total:.3} (diffused from 100.0)"
    );
    let speedup = t_full.as_secs_f64() / t_refactor.as_secs_f64().max(1e-12);
    println!(
        "symbolic amortization: {steps} refactors took {t_refactor:.2?} vs {t_full:.2?} for \
         full analyze+factor — {speedup:.1}x faster per step"
    );
    assert!(heat_total > 0.0 && heat_total <= 100.0 + 1e-6);
}
