#!/usr/bin/env bash
# Compares the two newest snapshots in a benchmark trajectory file
# (BENCH_results.json, as written by scripts/bench_json.sh) and prints
# per-benchmark median deltas. Exits non-zero when any benchmark's
# median regressed by more than THRESH percent (default 15) — the CI
# tripwire for perf-sensitive PRs. Dependency-free: bash + awk only.
#
# Usage:
#   scripts/bench_compare.sh                   # diff BENCH_results.json
#   scripts/bench_compare.sh other.json        # diff another trajectory
#   THRESH=10 scripts/bench_compare.sh         # tighter regression gate
#   scripts/bench_compare.sh --parse-only f    # just parse: report the
#                                              # snapshot/benchmark count,
#                                              # exit 1 if nothing parses
#
# Only benchmarks present in BOTH snapshots are compared; added/removed
# benchmarks are listed but never gate. Snapshots from different
# machines or feature sets (see the "machine" header bench_json.sh
# records) are compared with a warning — cross-machine deltas are
# noise, re-run both snapshots on one box before trusting them.
set -euo pipefail
cd "$(dirname "$0")/.."

THRESH=${THRESH:-15}

# Streams "snap|key|median_ns" triples (plus "meta|..." lines) from a
# trajectory file, relying on the one-result-per-line format
# bench_json.sh writes.
extract() {
    awk '
        function strfield(name,    s) {
            s = $0
            if (match(s, "\"" name "\": \"[^\"]*\"")) {
                s = substr(s, RSTART, RLENGTH)
                sub("^\"" name "\": \"", "", s); sub("\"$", "", s)
                return s
            }
            return ""
        }
        function numfield(name,    s) {
            s = $0
            if (match(s, "\"" name "\": [0-9.eE+-]+")) {
                s = substr(s, RSTART, RLENGTH)
                sub("^\"" name "\": ", "", s)
                return s + 0
            }
            return ""
        }
        /"generated_at"/ {
            snap++
            printf "meta|%d|generated_at|%s\n", snap, strfield("generated_at")
            next
        }
        /"commit"/ {
            printf "meta|%d|commit|%s\n", snap, strfield("commit")
            next
        }
        /"machine"/ && /"features"/ {
            printf "meta|%d|machine|%s\n", snap, $0
            next
        }
        /"median_ns"/ && /"bench"/ {
            printf "res|%d|%s/%s/%s|%s\n", snap, \
                strfield("suite"), strfield("group"), strfield("bench"), \
                numfield("median_ns")
        }
    ' "$1"
}

if [ "${1:-}" = "--parse-only" ]; then
    src=${2:?usage: bench_compare.sh --parse-only <trajectory-file>}
    parsed=$(extract "$src")
    snaps=$(printf '%s\n' "$parsed" | awk -F'|' '/^meta\|.*\|generated_at/ {n++} END {print n + 0}')
    benches=$(printf '%s\n' "$parsed" | awk -F'|' '/^res\|/ {n++} END {print n + 0}')
    if [ "$benches" -eq 0 ]; then
        echo "error: no benchmark results parsed from $src" >&2
        exit 1
    fi
    echo "parsed $benches benchmark results across $snaps snapshots from $src" >&2
    exit 0
fi

SRC=${1:-BENCH_results.json}
if [ ! -s "$SRC" ]; then
    echo "error: trajectory file $SRC missing or empty" >&2
    exit 1
fi

extract "$SRC" | awk -F'|' -v thresh="$THRESH" '
    $1 == "meta" {
        snap = $2
        if (snap > last_snap) last_snap = snap
        if ($3 == "generated_at") stamp[snap] = $4
        if ($3 == "commit")       commit[snap] = $4
        if ($3 == "machine")      machine[snap] = $4
        next
    }
    $1 == "res" {
        snap = $2
        if (snap > last_snap) last_snap = snap
        val[snap SUBSEP $3] = $4
        if (!(snap SUBSEP $3 in seen_key)) {
            seen_key[snap SUBSEP $3] = 1
            keys[snap, ++nkeys_of[snap]] = $3
        }
    }
    END {
        if (last_snap < 2) {
            printf "error: need at least two snapshots to compare (found %d)\n", last_snap > "/dev/stderr"
            exit 1
        }
        prev = last_snap - 1; cur = last_snap
        printf "comparing %s (%s) -> %s (%s), gate: +%s%% median\n\n", \
            commit[prev], stamp[prev], commit[cur], stamp[cur], thresh
        if (machine[prev] != machine[cur])
            printf "warning: machine/feature headers differ between snapshots — deltas may be noise\n\n" > "/dev/stderr"
        printf "%-52s %14s %14s %9s\n", "benchmark", "prev ns", "cur ns", "delta"
        worst = 0; regressed = 0
        for (i = 1; i <= nkeys_of[cur]; i++) {
            k = keys[cur, i]
            if (!((prev SUBSEP k) in val)) { added[++nadded] = k; continue }
            p = val[prev SUBSEP k]; c = val[cur SUBSEP k]
            if (p <= 0) continue
            d = (c - p) / p * 100.0
            flag = ""
            if (d > thresh) { flag = "  << REGRESSION"; regressed++ }
            if (d > worst) worst = d
            printf "%-52s %14.1f %14.1f %+8.1f%%%s\n", k, p, c, d, flag
        }
        for (i = 1; i <= nkeys_of[prev]; i++) {
            k = keys[prev, i]
            if (!((cur SUBSEP k) in val)) removed[++nremoved] = k
        }
        if (nadded)   { printf "\nnew benchmarks (no baseline):\n"; for (i = 1; i <= nadded; i++) printf "  + %s\n", added[i] }
        if (nremoved) { printf "\ndropped benchmarks:\n"; for (i = 1; i <= nremoved; i++) printf "  - %s\n", removed[i] }
        printf "\nworst delta: %+.1f%% (gate +%s%%)\n", worst, thresh
        if (regressed) {
            printf "error: %d benchmark(s) regressed beyond the gate\n", regressed > "/dev/stderr"
            exit 1
        }
    }
'
