#!/usr/bin/env bash
# Runs the criterion bench suites (and the service load generator) and
# APPENDS a timestamped perf snapshot to the benchmark trajectory
# (BENCH_results.json by default) — history is kept, not overwritten,
# so regressions are visible across commits. Dependency-free: bash +
# awk + cargo only.
#
# Usage:
#   scripts/bench_json.sh                  # all suites + loadgen -> append
#   SUITES="batch apply" OUT=/tmp/b.json scripts/bench_json.sh
#   LOADGEN=0 scripts/bench_json.sh        # skip the service loadgen
#   FEATURES=simd scripts/bench_json.sh    # bench with cargo features on
#                                          # (recorded in the snapshot)
#   scripts/bench_json.sh --parse-only report.txt
#                                          # just parse a raw shim report
#                                          # (exit 1 if nothing parses)
#
# The trajectory file is a JSON array of snapshots; each snapshot
# records the commit, the timestamp, every benchmark the shim printed
# and (unless LOADGEN=0) the service loadgen throughput comparison:
#   [
#     {"generated_at": "…", "commit": "…",
#      "loadgen": {"scenarios": [{"clients": 8, "speedup": …}, …]},
#      "results": [{"suite": "batch", "group": "panel_apply",
#                   "bench": "panel/p2p/8", "median_ns": 123456.0}, …]}
#   ]
# A legacy single-object BENCH_results.json is wrapped into the array
# form on the first append.
set -euo pipefail
cd "$(dirname "$0")/.."

# Parses a raw shim stdout report ("suite: …" headers + criterion-shim
# result lines) into JSON result entries on stdout.
parse_report() {
    awk '
        /^suite: /       { suite = $2; next }
        /^bench group: / { group = $3; next }
        # Shim report lines: "  <label>  <value> <ns|us|ms>"
        NF >= 3 && ($NF == "ns" || $NF == "us" || $NF == "ms") {
            val = $(NF - 1) + 0
            if ($NF == "us") val *= 1000
            if ($NF == "ms") val *= 1000000
            if (!first_done) first_done = 1; else printf ",\n"
            printf "    {\"suite\": \"%s\", \"group\": \"%s\", \"bench\": \"%s\", \"median_ns\": %.1f}", \
                suite, group, $1, val
        }
        END { if (first_done) printf "\n" }
    ' "$1"
}

# --parse-only: validate the parser against a captured report (the CI
# smoke feeds it a known-good sample and a garbage negative).
if [ "${1:-}" = "--parse-only" ]; then
    src=${2:?usage: bench_json.sh --parse-only <report-file>}
    parsed=$(parse_report "$src")
    count=$(printf '%s' "$parsed" | grep -c '"bench"' || true)
    if [ "$count" -eq 0 ]; then
        echo "error: no benchmarks parsed from $src" >&2
        exit 1
    fi
    printf '[\n%s\n]\n' "$parsed"
    echo "parsed $count benchmarks from $src" >&2
    exit 0
fi

SUITES=${SUITES:-"apply batch batch_krylov refactor spmv sweep trisolve"}
OUT=${OUT:-BENCH_results.json}
LOADGEN=${LOADGEN:-1}
LOADGEN_ARGS=${LOADGEN_ARGS:-"--threads 2 --engine p2p --solves 24 --clients 2,4,8"}
# Cargo features the bench crates are built with (space/comma separated,
# e.g. FEATURES=simd). Recorded in the snapshot so trajectories built
# under different feature sets are distinguishable.
FEATURES=${FEATURES:-}

raw=$(mktemp)
snap=$(mktemp)
lg=$(mktemp)
trap 'rm -f "$raw" "$snap" "$lg"' EXIT

for suite in $SUITES; do
    echo "== bench suite: $suite" >&2
    echo "suite: $suite" >>"$raw"
    # shellcheck disable=SC2086
    cargo bench -q -p javelin-bench ${FEATURES:+--features "$FEATURES"} --bench "$suite" >>"$raw"
done

results=$(parse_report "$raw")
count=$(printf '%s' "$results" | grep -c '"bench"' || true)
if [ "$count" -eq 0 ]; then
    echo "error: bench suites ran but nothing parsed — shim output format drifted?" >&2
    exit 1
fi

# Service loadgen: coalesced vs request-at-a-time solves/sec (the
# parallel-engine configuration the service targets in production).
loadgen_json="null"
if [ "$LOADGEN" != "0" ]; then
    echo "== service loadgen" >&2
    # shellcheck disable=SC2086
    cargo run -q --release --example service_loadgen -- $LOADGEN_ARGS --json "$lg" >&2
    loadgen_json=$(cat "$lg")
fi

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
# Machine/build context: hardware threads the OS reports, the process's
# available parallelism (affinity-mask aware), and the cargo feature
# set — snapshots from different machines or builds must not be
# compared silently.
nthreads=$(getconf _NPROCESSORS_ONLN 2>/dev/null || grep -c ^processor /proc/cpuinfo 2>/dev/null || echo 1)
# nproc honours the affinity mask — the same number
# std::thread::available_parallelism reports to the library.
avail=$(nproc 2>/dev/null || echo "$nthreads")

{
    printf '{\n  "generated_at": "%s",\n  "commit": "%s",\n' "$stamp" "$commit"
    printf '  "machine": {"nthreads": %s, "available_parallelism": %s, "features": "%s"},\n' \
        "$nthreads" "$avail" "${FEATURES:-default}"
    printf '  "loadgen": %s,\n' "$loadgen_json"
    printf '  "results": [\n%s  ]\n}' "$results"
} >"$snap"

# Append the snapshot to the trajectory (array of snapshots). The
# array's closing `]` is always the last line, so appending is a
# drop-last-line + re-close; a legacy single-object file is wrapped.
tmp=$(mktemp)
if [ ! -s "$OUT" ]; then
    { echo '['; cat "$snap"; echo ''; echo ']'; } >"$tmp"
else
    first=$(awk 'NF { print substr($1, 1, 1); exit }' "$OUT")
    if [ "$first" = "[" ]; then
        { sed '$d' "$OUT"; echo ','; cat "$snap"; echo ''; echo ']'; } >"$tmp"
    else
        { echo '['; cat "$OUT"; echo ','; cat "$snap"; echo ''; echo ']'; } >"$tmp"
    fi
fi
mv "$tmp" "$OUT"

snapshots=$(grep -c '"generated_at"' "$OUT" || true)
echo "appended snapshot to $OUT ($count benchmarks, $snapshots snapshots total)" >&2
