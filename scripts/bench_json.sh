#!/usr/bin/env bash
# Runs the criterion bench suites and emits a machine-readable perf
# snapshot (BENCH_results.json by default) from the shim's stdout
# report. Dependency-free: bash + awk + cargo only.
#
# Usage:
#   scripts/bench_json.sh                  # all suites -> BENCH_results.json
#   SUITES="batch apply" OUT=/tmp/b.json scripts/bench_json.sh
#
# Every entry records the suite, the bench group, the benchmark label
# and the median ns/iteration the shim printed:
#   {"suite": "batch", "group": "panel_apply",
#    "bench": "panel/p2p/8", "median_ns": 123456.0}
set -euo pipefail
cd "$(dirname "$0")/.."

SUITES=${SUITES:-"apply batch batch_krylov refactor spmv trisolve"}
OUT=${OUT:-BENCH_results.json}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

for suite in $SUITES; do
    echo "== bench suite: $suite" >&2
    echo "suite: $suite" >>"$raw"
    cargo bench -q -p javelin-bench --bench "$suite" >>"$raw"
done

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)

{
    printf '{\n  "generated_at": "%s",\n  "commit": "%s",\n  "results": [\n' \
        "$stamp" "$commit"
    awk '
        /^suite: /       { suite = $2; next }
        /^bench group: / { group = $3; next }
        # Shim report lines: "  <label>  <value> <ns|us|ms>"
        NF >= 3 && ($NF == "ns" || $NF == "us" || $NF == "ms") {
            val = $(NF - 1) + 0
            if ($NF == "us") val *= 1000
            if ($NF == "ms") val *= 1000000
            if (!first_done) first_done = 1; else printf ",\n"
            printf "    {\"suite\": \"%s\", \"group\": \"%s\", \"bench\": \"%s\", \"median_ns\": %.1f}", \
                suite, group, $1, val
        }
        END { if (first_done) printf "\n" }
    ' "$raw"
    printf '  ]\n}\n'
} >"$OUT"

count=$(grep -c '"bench"' "$OUT" || true)
echo "wrote $OUT ($count benchmarks)" >&2
