#!/usr/bin/env bash
# Markdown link check for the docs layer (README.md + docs/), so the
# prose can't rot silently: every relative link target must exist in
# the repository. External (http/https) links are skipped — CI has no
# network. Run from the repository root:
#
#   bash scripts/check_links.sh
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
fail=0
checked=0

for md in "$root"/README.md "$root"/docs/*.md; do
    [ -f "$md" ] || continue
    dir="$(dirname "$md")"
    # Inline markdown links: [text](target). One per line via grep -o.
    while IFS= read -r target; do
        # Skip external links and pure fragments.
        case "$target" in
        http://* | https://* | mailto:* | \#*) continue ;;
        esac
        # Strip a trailing #fragment.
        path="${target%%#*}"
        [ -n "$path" ] || continue
        checked=$((checked + 1))
        if [ ! -e "$dir/$path" ]; then
            echo "BROKEN: $md -> $target"
            fail=1
        fi
    done < <(grep -o '\](\([^)]*\))' "$md" | sed 's/^](\(.*\))$/\1/')
done

if [ "$fail" -ne 0 ]; then
    echo "markdown link check failed"
    exit 1
fi
echo "markdown link check: $checked relative links OK"
