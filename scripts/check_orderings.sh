#!/usr/bin/env bash
# Guards the hot numeric/solve kernels against silent memory-ordering
# creep: the whole design premise is that row ownership is handed off
# through the *existing* release/acquire edges (progress counters,
# barriers, task-graph edges, team regions), so per-element accesses
# stay plain loads/stores. A new `Ordering::SeqCst`, `Acquire` or
# `AcqRel` inside a hot kernel is either redundant (costs throughput
# for nothing) or papering over a protocol bug — both deserve a
# visible justification.
#
# Any hot-kernel line using those orderings must carry a plain `//`
# comment on the same line or within the two preceding lines saying
# why. Doc comments (`///`) don't count — they describe the API, not
# the ordering choice.
#
# Usage: scripts/check_orderings.sh   (exit 1 on unjustified uses)
set -euo pipefail
cd "$(dirname "$0")/.."

# The hot paths: numeric elimination, triangular solves, spmv tiles.
HOT_PATHS=(
    crates/core/src/numeric
    crates/core/src/trisolve
    crates/core/src/spmv.rs
)

fail=0
for path in "${HOT_PATHS[@]}"; do
    while IFS= read -r file; do
        out=$(awk '
            {
                line[NR] = $0
                # A justifying comment is a plain `//` (not `///`).
                is_comment[NR] = ($0 ~ /(^|[^\/])\/\/($|[^\/])/ && $0 !~ /^[[:space:]]*\/\/\//) ? 1 : 0
            }
            /Ordering::(SeqCst|Acquire|AcqRel)/ {
                justified = is_comment[NR]
                for (i = NR - 2; i < NR; i++)
                    if (i >= 1 && is_comment[i]) justified = 1
                if (!justified)
                    printf "%s:%d: %s\n", FILENAME, NR, $0
            }
        ' "$file")
        if [ -n "$out" ]; then
            printf '%s\n' "$out"
            fail=1
        fi
    done < <(find "$path" -name '*.rs' -type f)
done

if [ "$fail" -ne 0 ]; then
    cat >&2 <<'EOF'

error: unjustified SeqCst/Acquire/AcqRel ordering in a hot kernel.
Row handoff already happens through the progress-counter /
barrier / task-graph edges — if this ordering is really needed,
say why in a `//` comment on (or just above) the line.
EOF
    exit 1
fi
echo "ok: all strong orderings in hot kernels carry a justification" >&2
