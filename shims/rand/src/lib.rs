//! Minimal `rand` stand-in: the `Rng`/`SeedableRng` surface the
//! workspace uses, backed by a splitmix64 generator. Deterministic for a
//! given seed — the synthetic-matrix generators rely on that, not on
//! statistical quality.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "gen_range: empty range");
        let width = self.end - self.start;
        self.start + (rng.next_u64() as usize) % width
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (rng.next_u64() as usize) % (hi - lo + 1)
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, blanket-implemented for any `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample of `T` (`f64` in `[0, 1)`, full-range integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction, as in `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (splitmix64 stream).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = r.gen_range(3..9usize);
            assert!((3..9).contains(&v));
            let w = r.gen_range(2..=4usize);
            assert!((2..=4).contains(&w));
            let f = r.gen_range(0.05..1.0f64);
            assert!((0.05..1.0).contains(&f));
        }
    }

    #[test]
    fn values_spread_across_range() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..200 {
            seen[r.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
