//! Minimal `crossbeam` stand-in: just `utils::CachePadded`.

/// Utility types shared across crossbeam — here only `CachePadded`.
pub mod utils {
    use std::fmt;
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes so adjacent instances never
    /// share a cache line (two 64-byte lines: spatial-prefetcher safe).
    #[derive(Default)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value`.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwraps the value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_tuple("CachePadded").field(&self.value).finish()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn aligned_to_128() {
            let v = [CachePadded::new(0u8), CachePadded::new(1u8)];
            assert_eq!(std::mem::align_of_val(&v[0]), 128);
            let a = &v[0] as *const _ as usize;
            let b = &v[1] as *const _ as usize;
            assert!(b - a >= 128);
        }
    }
}
