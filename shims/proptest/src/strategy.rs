//! The `Strategy` trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A generator of test values. The shim generates directly (no value
/// trees, no shrinking).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the
    /// strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Shuffles generated vectors (Fisher–Yates).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle { inner: self }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Debug, Clone)]
pub struct Shuffle<S> {
    inner: S,
}

impl<T, S: Strategy<Value = Vec<T>>> Strategy for Shuffle<S> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let mut v = self.inner.generate(rng);
        for i in (1..v.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            v.swap(i, j);
        }
        v
    }
}

/// See [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.start >= self.size.end {
            self.size.start
        } else {
            rng.gen_range(self.size.clone())
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
