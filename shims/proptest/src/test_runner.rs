//! Case configuration and the per-case RNG.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Subset of `proptest::test_runner::ProptestConfig` the workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite quick while
        // still exercising varied structures.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// RNG for case number `case` (fixed global seed, varied per case).
    pub fn for_case(case: u32) -> Self {
        TestRng {
            inner: SmallRng::seed_from_u64(0x4A56_454C_494E_0000 ^ u64::from(case)),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
