//! Minimal `proptest` stand-in: the strategy combinators and the
//! `proptest!` macro the workspace uses, run as deterministic randomized
//! test cases (no shrinking — a failing case panics with its values via
//! the normal assertion message).

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — collection strategies.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// `proptest::bool` — boolean strategies.
pub mod bool {
    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy value (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl crate::strategy::Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> bool {
            rand::Rng::gen::<bool>(rng)
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs `cases` deterministic cases of `body`, seeding each case
/// differently. Used by the `proptest!` macro expansion.
///
/// Like real proptest, the `PROPTEST_CASES` environment variable
/// overrides the per-test case count — CI uses it to widen the sweeps
/// without touching the sources.
pub fn run_cases(cases: u32, mut body: impl FnMut(&mut test_runner::TestRng, u32)) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(cases);
    for case in 0..cases {
        let mut rng = test_runner::TestRng::for_case(case);
        body(&mut rng, case);
    }
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies: `proptest! { #[test] fn f(x in strat) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_functions! { ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_functions! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_functions {
    (
        ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::run_cases(config.cases, |__rng, _case| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);
                    )+
                    let run = || -> () { $body };
                    run();
                });
            }
        )*
    };
}

/// `prop_assert!` — plain assertion (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — plain equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` — plain inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(n in 3usize..10, f in -2.0..2.0f64) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-2.0..2.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Flat-mapped sizes stay consistent with the inner vector.
        #[test]
        fn flat_map_vec(v in (1usize..6).prop_flat_map(|n| {
            crate::collection::vec(0usize..9, n..n + 1).prop_map(move |v| (n, v))
        })) {
            let (n, v) = v;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < 9));
        }

        #[test]
        fn shuffle_is_permutation(v in Just((0..8usize).collect::<Vec<_>>()).prop_shuffle()) {
            let mut sorted = v.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        }

        #[test]
        fn tuples_and_bool(t in (0usize..4, 0usize..4), b in crate::bool::ANY) {
            prop_assert!(t.0 < 4 && t.1 < 4);
            let _ = b;
        }
    }
}
