//! Minimal `criterion` stand-in: groups, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros. Each benchmark
//! is timed with a calibrated batch loop and reported as the median
//! ns/iteration on stdout — enough to compare kernels, not a statistics
//! suite.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Opaque-to-the-optimizer value sink (`criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group: `function/parameter`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new<F: fmt::Display, P: fmt::Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbench group: {name}");
        BenchmarkGroup {
            _c: self,
            group: name.to_string(),
            sample_size: 10,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(10);
        f(&mut b);
        b.report(name);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.group, id));
        self
    }

    /// Benchmarks a closure with no explicit input.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.group, id.into()));
        self
    }

    /// Ends the group (prints nothing extra; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    sample_size: usize,
    median_ns: Option<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            median_ns: None,
        }
    }

    /// Times `routine`, storing the median ns/iteration across samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate the batch size to ~2 ms per sample.
        let mut batch = 1usize;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            let dt = t0.elapsed();
            if dt.as_micros() >= 2000 || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..batch {
                    std_black_box(routine());
                }
                t0.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = Some(samples[samples.len() / 2]);
    }

    fn report(&self, label: &str) {
        match self.median_ns {
            Some(ns) if ns >= 1e6 => println!("  {label:<48} {:>12.3} ms", ns / 1e6),
            Some(ns) if ns >= 1e3 => println!("  {label:<48} {:>12.3} us", ns / 1e3),
            Some(ns) => println!("  {label:<48} {ns:>12.1} ns"),
            None => println!("  {label:<48} (no measurement)"),
        }
    }
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
