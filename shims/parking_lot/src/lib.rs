//! Minimal `parking_lot` stand-in: a `Mutex` with the non-poisoning
//! `lock()` signature, implemented over `std::sync::Mutex`. A poisoned
//! std mutex is recovered (parking_lot has no poisoning).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with `parking_lot`'s panic-transparent API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() = 7; // must not panic
        assert_eq!(*m.lock(), 7);
    }
}
