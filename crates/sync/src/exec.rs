//! Execution context for parallel regions: how a plan runs its SPMD
//! closures.
//!
//! Plans (factorizations, spmv plans, solver workspaces) pick their
//! execution strategy once at construction time:
//!
//! * [`Exec::team`] — a persistent [`WorkerTeam`]; regions reuse parked
//!   threads with stable tids. The right choice for anything executed
//!   repeatedly (the Krylov hot loop).
//! * [`Exec::spawn`] — scoped spawn-per-region
//!   ([`crate::pool::run_on_threads`]); no resident threads. The right
//!   choice for one-shot phases or callers that must not keep threads
//!   alive.
//!
//! Both run `f(tid)` for `tid ∈ 0..nthreads` with the caller
//! participating as tid 0 and full fork-join semantics (all memory
//! writes of the region happen-before `run` returns).

use crate::pool;
use crate::team::WorkerTeam;
use std::sync::Arc;

/// How parallel regions are executed (see module docs).
#[derive(Debug, Clone)]
pub enum Exec {
    /// Scoped spawn-per-region fallback.
    Spawn {
        /// Number of participants per region.
        nthreads: usize,
    },
    /// Persistent parked worker team.
    Team(Arc<WorkerTeam>),
}

impl Exec {
    /// Spawn-per-region execution with `nthreads` participants.
    pub fn spawn(nthreads: usize) -> Self {
        assert!(nthreads >= 1, "need at least one thread");
        Exec::Spawn { nthreads }
    }

    /// Persistent-team execution with `nthreads` participants.
    pub fn team(nthreads: usize) -> Self {
        Exec::Team(Arc::new(WorkerTeam::new(nthreads)))
    }

    /// Persistent-team execution with compact core pinning: participant
    /// `tid` binds to core `tid % n_cores` (best-effort; see
    /// [`crate::affinity`]). The calling thread is pinned as tid 0.
    pub fn team_pinned(nthreads: usize) -> Self {
        Exec::Team(Arc::new(WorkerTeam::with_affinity(
            nthreads,
            crate::affinity::TeamAffinity::Compact,
        )))
    }

    /// Wraps an existing team.
    pub fn with_team(team: Arc<WorkerTeam>) -> Self {
        Exec::Team(team)
    }

    /// Number of participants per region.
    pub fn nthreads(&self) -> usize {
        match self {
            Exec::Spawn { nthreads } => *nthreads,
            Exec::Team(team) => team.nthreads(),
        }
    }

    /// Runs one fork-join region: `f(tid)` for every tid.
    #[inline]
    pub fn run<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        match self {
            Exec::Spawn { nthreads } => pool::run_on_threads(*nthreads, f),
            Exec::Team(team) => team.run(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn both_variants_run_all_tids() {
        for exec in [Exec::spawn(3), Exec::team(3)] {
            assert_eq!(exec.nthreads(), 3);
            let hits: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
            for _ in 0..4 {
                exec.run(|tid| {
                    hits[tid].fetch_add(1, Ordering::Relaxed);
                });
            }
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 4));
        }
    }

    #[test]
    fn cloned_team_exec_shares_workers() {
        let exec = Exec::team(2);
        let clone = exec.clone();
        let sum = AtomicUsize::new(0);
        exec.run(|tid| {
            sum.fetch_add(tid + 1, Ordering::Relaxed);
        });
        clone.run(|tid| {
            sum.fetch_add(tid + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }
}
