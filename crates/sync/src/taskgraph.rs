//! A lightweight dependency-counting task executor.
//!
//! The paper's lower stage uses OpenMP tasks and measures their overhead
//! as the limiting factor on KNL ("a specialized light weight tasking
//! library is currently being constructed in Javelin for this reason").
//! This module is that library: a task DAG with atomic indegree
//! counters, a shared ready stack, and spin/yield workers — no futures,
//! no allocations on the execution path beyond the ready stack.

use crate::backoff::Backoff;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// An immutable task DAG. Tasks are `0..n`; edges point from a task to
/// the tasks that depend on it.
#[derive(Debug, Clone)]
pub struct TaskGraph {
    n: usize,
    succ_ptr: Vec<usize>,
    succ: Vec<usize>,
    indegree: Vec<usize>,
}

impl TaskGraph {
    /// Builds a DAG from dependency pairs `(before, after)`.
    ///
    /// # Panics
    /// When an index is out of range or a self-dependency is given.
    /// Cycles are not detected here; [`TaskGraph::execute`] will panic on
    /// a cycle (tasks remain but none are ready).
    pub fn new(n: usize, deps: &[(usize, usize)]) -> Self {
        let mut succ_ptr = vec![0usize; n + 1];
        let mut indegree = vec![0usize; n];
        for &(before, after) in deps {
            assert!(before < n && after < n, "dependency out of range");
            assert_ne!(before, after, "self-dependency");
            succ_ptr[before + 1] += 1;
            indegree[after] += 1;
        }
        for i in 0..n {
            succ_ptr[i + 1] += succ_ptr[i];
        }
        let mut succ = vec![0usize; deps.len()];
        let mut next = succ_ptr.clone();
        for &(before, after) in deps {
            succ[next[before]] = after;
            next[before] += 1;
        }
        TaskGraph {
            n,
            succ_ptr,
            succ,
            indegree,
        }
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.n
    }

    /// Number of dependency edges.
    pub fn n_edges(&self) -> usize {
        self.succ.len()
    }

    /// Successors of a task.
    pub fn successors(&self, t: usize) -> &[usize] {
        &self.succ[self.succ_ptr[t]..self.succ_ptr[t + 1]]
    }

    /// Executes the DAG on `nthreads` workers, calling `run(task)` for
    /// every task exactly once, respecting all dependencies.
    ///
    /// # Panics
    /// When the graph contains a cycle (no runnable task while tasks
    /// remain).
    pub fn execute<F>(&self, nthreads: usize, run: F)
    where
        F: Fn(usize) + Sync,
    {
        self.execute_with_tid(nthreads, |_tid, task| run(task));
    }

    /// Like [`TaskGraph::execute`], but also hands workers their thread
    /// id — needed when tasks use per-thread workspaces.
    ///
    /// # Panics
    /// When the graph contains a cycle.
    pub fn execute_with_tid<F>(&self, nthreads: usize, run: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        let remaining_deps: Vec<AtomicUsize> =
            self.indegree.iter().map(|&d| AtomicUsize::new(d)).collect();
        let ready: Mutex<Vec<usize>> =
            Mutex::new((0..self.n).filter(|&t| self.indegree[t] == 0).collect());
        let remaining = AtomicUsize::new(self.n);
        let in_flight = AtomicUsize::new(0);
        if self.n > 0 {
            assert!(
                !ready.lock().is_empty(),
                "task graph has no source task: cycle detected"
            );
        }
        crate::pool::run_on_threads(nthreads, |tid| {
            let mut backoff = Backoff::new();
            loop {
                if remaining.load(Ordering::Acquire) == 0 {
                    break;
                }
                let task = {
                    let mut q = ready.lock();
                    let t = q.pop();
                    if t.is_some() {
                        // Claim inside the lock so "empty queue +
                        // nothing in flight" reliably means deadlock.
                        in_flight.fetch_add(1, Ordering::AcqRel);
                    }
                    t
                };
                match task {
                    Some(t) => {
                        backoff.reset();
                        run(tid, t);
                        for &s in self.successors(t) {
                            if remaining_deps[s].fetch_sub(1, Ordering::AcqRel) == 1 {
                                ready.lock().push(s);
                            }
                        }
                        // Retire order matters for the deadlock check
                        // below: `remaining` first, `in_flight` last, so
                        // that observing `in_flight == 0` implies every
                        // retired task's successor pushes and `remaining`
                        // decrement are already visible.
                        let left = remaining.fetch_sub(1, Ordering::AcqRel) - 1;
                        in_flight.fetch_sub(1, Ordering::AcqRel);
                        if left == 0 {
                            break;
                        }
                    }
                    None => {
                        {
                            // Evaluate the deadlock predicate under the
                            // ready lock: claiming bumps `in_flight`
                            // inside this same lock, and retiring
                            // decrements it only after its successor
                            // pushes (which need the lock) and the
                            // `remaining` decrement. So "empty queue,
                            // nothing in flight, tasks remaining" — all
                            // observed in one critical section — is a
                            // genuine cycle, not a transient of another
                            // worker mid-claim or mid-retire. Reading the
                            // three at different times without the lock
                            // used to fire this assert spuriously.
                            let q = ready.lock();
                            assert!(
                                !q.is_empty()
                                    || in_flight.load(Ordering::Acquire) > 0
                                    || remaining.load(Ordering::Acquire) == 0,
                                "task graph deadlocked: cycle detected"
                            );
                        }
                        // A task that panicked never retires: unwind
                        // instead of spinning on it forever.
                        crate::abort::check();
                        backoff.snooze();
                    }
                }
            }
        });
        assert_eq!(
            remaining.load(Ordering::Acquire),
            0,
            "task graph deadlocked: cycle detected"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PMutex;

    fn run_and_record(g: &TaskGraph, nthreads: usize) -> Vec<usize> {
        let order = PMutex::new(Vec::new());
        g.execute(nthreads, |t| order.lock().push(t));
        order.into_inner()
    }

    fn assert_topological(g: &TaskGraph, order: &[usize], deps: &[(usize, usize)]) {
        assert_eq!(order.len(), g.n_tasks());
        let mut pos = vec![usize::MAX; g.n_tasks()];
        for (i, &t) in order.iter().enumerate() {
            assert_eq!(pos[t], usize::MAX, "task {t} ran twice");
            pos[t] = i;
        }
        for &(b, a) in deps {
            assert!(pos[b] < pos[a], "dep ({b} -> {a}) violated: {order:?}");
        }
    }

    #[test]
    fn diamond_runs_in_order() {
        let deps = [(0, 1), (0, 2), (1, 3), (2, 3)];
        let g = TaskGraph::new(4, &deps);
        for nthreads in 1..=4 {
            let order = run_and_record(&g, nthreads);
            assert_topological(&g, &order, &deps);
        }
    }

    #[test]
    fn chain_is_serialized() {
        let deps: Vec<(usize, usize)> = (0..9).map(|i| (i, i + 1)).collect();
        let g = TaskGraph::new(10, &deps);
        let order = run_and_record(&g, 4);
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn independent_tasks_all_run() {
        let g = TaskGraph::new(20, &[]);
        let order = run_and_record(&g, 3);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new(0, &[]);
        g.execute(2, |_| panic!("no tasks to run"));
    }

    #[test]
    fn more_threads_than_tasks() {
        let g = TaskGraph::new(2, &[(0, 1)]);
        let order = run_and_record(&g, 8);
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_panics() {
        let g = TaskGraph::new(2, &[(0, 1), (1, 0)]);
        g.execute(2, |_| {});
    }

    #[test]
    fn layered_random_dag_stress() {
        // 6 layers × 8 tasks; each task depends on 2 tasks of the
        // previous layer.
        let layers = 6usize;
        let width = 8usize;
        let mut deps = Vec::new();
        for l in 1..layers {
            for k in 0..width {
                let t = l * width + k;
                deps.push(((l - 1) * width + k, t));
                deps.push(((l - 1) * width + (k + 3) % width, t));
            }
        }
        let g = TaskGraph::new(layers * width, &deps);
        for nthreads in [1, 2, 4] {
            let order = run_and_record(&g, nthreads);
            assert_topological(&g, &order, &deps);
        }
    }

    #[test]
    fn idle_workers_never_false_deadlock_on_narrow_graphs() {
        // Regression: the deadlock assert used to read `in_flight`, the
        // ready queue and `remaining` at three different moments with no
        // lock held, so an idle worker racing the claim of the last
        // ready task could observe "empty + idle + tasks left" on an
        // acyclic graph and panic. A chain keeps exactly one task
        // runnable at a time, maximizing idle workers racing each
        // handoff.
        let deps: Vec<(usize, usize)> = (0..31).map(|i| (i, i + 1)).collect();
        let g = TaskGraph::new(32, &deps);
        for _ in 0..100 {
            let order = run_and_record(&g, 4);
            assert_eq!(order, (0..32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn successors_accessor() {
        let g = TaskGraph::new(3, &[(0, 1), (0, 2)]);
        assert_eq!(g.successors(0), &[1, 2]);
        assert_eq!(g.successors(1), &[] as &[usize]);
        assert_eq!(g.n_edges(), 2);
    }
}
