//! Atomic floating-point accumulators.
//!
//! Safe CAS-loop wrappers over `AtomicU64`/`AtomicU32`. Javelin's
//! default Segmented-Rows pipeline is race-free by construction (update
//! tasks own whole rows), but ablation variants and user extensions that
//! tile updates across a row need atomic accumulation; these provide it
//! without any `unsafe`.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// An `f64` supporting atomic load/store/add.
#[derive(Debug, Default)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// New accumulator with initial value `v`.
    pub fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    /// Atomic load.
    #[inline]
    pub fn load(&self, order: Ordering) -> f64 {
        f64::from_bits(self.0.load(order))
    }

    /// Atomic store.
    #[inline]
    pub fn store(&self, v: f64, order: Ordering) {
        self.0.store(v.to_bits(), order);
    }

    /// Atomic `+= delta` via compare-exchange loop; returns the previous
    /// value.
    #[inline]
    pub fn fetch_add(&self, delta: f64, order: Ordering) -> f64 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, new, order, Ordering::Relaxed)
            {
                Ok(prev) => return f64::from_bits(prev),
                Err(actual) => cur = actual,
            }
        }
    }
}

/// An `f32` supporting atomic load/store/add.
#[derive(Debug, Default)]
pub struct AtomicF32(AtomicU32);

impl AtomicF32 {
    /// New accumulator with initial value `v`.
    pub fn new(v: f32) -> Self {
        AtomicF32(AtomicU32::new(v.to_bits()))
    }

    /// Atomic load.
    #[inline]
    pub fn load(&self, order: Ordering) -> f32 {
        f32::from_bits(self.0.load(order))
    }

    /// Atomic store.
    #[inline]
    pub fn store(&self, v: f32, order: Ordering) {
        self.0.store(v.to_bits(), order);
    }

    /// Atomic `+= delta` via compare-exchange loop; returns the previous
    /// value.
    #[inline]
    pub fn fetch_add(&self, delta: f32, order: Ordering) -> f32 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let new = (f32::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, new, order, Ordering::Relaxed)
            {
                Ok(prev) => return f32::from_bits(prev),
                Err(actual) => cur = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_basic_ops() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.load(Ordering::Relaxed), 1.5);
        a.store(-2.25, Ordering::Relaxed);
        assert_eq!(a.load(Ordering::Relaxed), -2.25);
        let prev = a.fetch_add(1.0, Ordering::Relaxed);
        assert_eq!(prev, -2.25);
        assert_eq!(a.load(Ordering::Relaxed), -1.25);
    }

    #[test]
    fn f32_basic_ops() {
        let a = AtomicF32::new(0.5);
        a.fetch_add(0.25, Ordering::Relaxed);
        assert_eq!(a.load(Ordering::Relaxed), 0.75);
    }

    #[test]
    fn concurrent_adds_sum_exactly() {
        // Powers of two add exactly in any order: the total is exact.
        let a = AtomicF64::new(0.0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        a.fetch_add(0.25, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(a.load(Ordering::Relaxed), 1000.0);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(AtomicF64::default().load(Ordering::Relaxed), 0.0);
        assert_eq!(AtomicF32::default().load(Ordering::Relaxed), 0.0);
    }
}
