//! Scoped fork-join execution with stable thread ids.
//!
//! The paper runs inside an OpenMP parallel region: a fixed team of
//! threads, each knowing its id, executing the same SPMD function. The
//! Rust analogue here is [`run_on_threads`], built on `std::thread::scope`
//! so worker closures can borrow the matrix, the schedule and the
//! progress counters directly — no `Arc`, no `'static` bounds, no
//! `unsafe`.
//!
//! Design note: a persistent worker pool would shave the ~tens of
//! microseconds of thread spawn per parallel region. Javelin's regions
//! wrap whole factorizations/solves (milliseconds), the paper's scaling
//! phenomena are reproduced through the machine-model simulator, and
//! spawn-per-region keeps the entire workspace `#![forbid(unsafe_code)]`
//! — so the simple scoped version is the deliberate choice.

/// Runs `f(tid)` on `nthreads` OS threads (tids `0..nthreads`) and
/// waits for all of them. `nthreads == 1` runs inline on the caller.
///
/// # Panics
/// Propagates the first worker panic after all workers finish.
pub fn run_on_threads<F>(nthreads: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    assert!(nthreads >= 1, "need at least one thread");
    if nthreads == 1 {
        f(0);
        return;
    }
    std::thread::scope(|s| {
        for tid in 1..nthreads {
            let fref = &f;
            s.spawn(move || fref(tid));
        }
        f(0);
    });
}

/// Splits `0..len` into `nthreads` contiguous chunks and runs
/// `f(tid, start..end)` on each thread; empty chunks are skipped at the
/// closure level (the closure still runs with an empty range).
pub fn parallel_chunks<F>(nthreads: usize, len: usize, f: F)
where
    F: Fn(usize, std::ops::Range<usize>) + Sync,
{
    let chunk = len.div_ceil(nthreads.max(1)).max(1);
    run_on_threads(nthreads, |tid| {
        let start = (tid * chunk).min(len);
        let end = ((tid + 1) * chunk).min(len);
        f(tid, start..end);
    });
}

/// Parallel element-wise map over mutable data: partitions `data` into
/// `nthreads` contiguous slices and hands each to `f(tid, offset, slice)`.
pub fn parallel_slices<T: Send, F>(nthreads: usize, data: &mut [T], f: F)
where
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    let len = data.len();
    if len == 0 {
        return;
    }
    let chunk = len.div_ceil(nthreads.max(1)).max(1);
    let mut parts: Vec<(usize, &mut [T])> = Vec::with_capacity(nthreads);
    let mut rest = data;
    let mut offset = 0usize;
    while !rest.is_empty() {
        let take = chunk.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        parts.push((offset, head));
        offset += take;
        rest = tail;
    }
    let parts = std::sync::Mutex::new(parts.into_iter().enumerate().collect::<Vec<_>>());
    run_on_threads(nthreads, |tid| {
        loop {
            let item = parts.lock().expect("poisoned").pop();
            match item {
                Some((idx, (off, slice))) => {
                    // Slices are handed out in reverse; idx keeps the
                    // association deterministic for callers that care.
                    let _ = idx;
                    f(tid, off, slice);
                }
                None => break,
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_tids_run_once() {
        for nthreads in 1..=6 {
            let hits = (0..nthreads).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
            run_on_threads(nthreads, |tid| {
                hits[tid].fetch_add(1, Ordering::Relaxed);
            });
            for (t, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "tid {t}");
            }
        }
    }

    #[test]
    fn borrows_stack_data() {
        let data = vec![1usize, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        run_on_threads(4, |tid| {
            sum.fetch_add(data[tid], Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn chunks_cover_range_exactly_once() {
        for nthreads in 1..=5 {
            for len in [0usize, 1, 7, 16, 33] {
                let marks: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
                parallel_chunks(nthreads, len, |_tid, range| {
                    for i in range {
                        marks[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(
                    marks.iter().all(|m| m.load(Ordering::Relaxed) == 1),
                    "nthreads={nthreads} len={len}"
                );
            }
        }
    }

    #[test]
    fn slices_partition_mutable_data() {
        let mut data = vec![0usize; 23];
        parallel_slices(4, &mut data, |_tid, offset, slice| {
            for (k, v) in slice.iter_mut().enumerate() {
                *v = offset + k;
            }
        });
        let expect: Vec<usize> = (0..23).collect();
        assert_eq!(data, expect);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        run_on_threads(2, |tid| {
            if tid == 1 {
                panic!("boom");
            }
        });
    }
}
