//! Scoped fork-join execution with stable thread ids.
//!
//! The paper runs inside an OpenMP parallel region: a fixed team of
//! threads, each knowing its id, executing the same SPMD function. This
//! module is the *spawn-per-region* Rust analogue, built on
//! `std::thread::scope` so worker closures can borrow the matrix, the
//! schedule and the progress counters directly.
//!
//! Design note: spawn-per-region is no longer the deliberate choice for
//! hot paths — it remains as the fallback for one-shot callers (the
//! symbolic and numeric factorization phases, run once per matrix) and
//! for code that must not keep resident threads. Anything executed
//! repeatedly (triangular solves and spmv inside a Krylov iteration)
//! runs on the persistent [`crate::team::WorkerTeam`] through
//! [`crate::exec::Exec`], which amortizes thread startup across the
//! whole solve exactly the way the paper amortizes its symbolic phase
//! across numeric re-factorizations. The two are interchangeable at
//! every call site: same tid semantics, same fork-join memory ordering.

use crate::abort::{self, RegionAbort};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Runs `f(tid)` on `nthreads` OS threads (tids `0..nthreads`) and
/// waits for all of them. `nthreads == 1` runs inline on the caller.
///
/// Each region carries its own [`RegionAbort`] flag: if any participant
/// panics, the flag is set before its unwind leaves the region, so
/// peers blocked in the crate's spin waits unwind promptly instead of
/// deadlocking on progress that will never come (see [`crate::abort`]).
///
/// # Panics
/// Propagates a panic after all workers finish.
pub fn run_on_threads<F>(nthreads: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    assert!(nthreads >= 1, "need at least one thread");
    if nthreads == 1 {
        f(0);
        return;
    }
    let region_abort = Arc::new(RegionAbort::new());
    std::thread::scope(|s| {
        for tid in 1..nthreads {
            let fref = &f;
            let region_abort = Arc::clone(&region_abort);
            s.spawn(move || {
                let result = {
                    let _g = abort::enter(Arc::clone(&region_abort));
                    catch_unwind(AssertUnwindSafe(|| fref(tid)))
                };
                if let Err(payload) = result {
                    region_abort.set();
                    resume_unwind(payload);
                }
            });
        }
        let caller_result = {
            let _g = abort::enter(Arc::clone(&region_abort));
            catch_unwind(AssertUnwindSafe(|| f(0)))
        };
        if let Err(payload) = caller_result {
            // Release the peers before unwinding: the scope's exit path
            // joins every spawned thread, which only terminates if they
            // can observe the abort.
            region_abort.set();
            resume_unwind(payload);
        }
    });
}

/// Splits `0..len` into at most `nthreads` contiguous chunks and runs
/// `f(tid, start..end)` on each participating thread.
///
/// Degenerate calls stay cheap: `len == 0` returns without entering a
/// parallel region, and when the chunking leaves trailing threads with
/// empty ranges only the threads that own work are started (so the
/// closure is never invoked with an empty range).
pub fn parallel_chunks<F>(nthreads: usize, len: usize, f: F)
where
    F: Fn(usize, std::ops::Range<usize>) + Sync,
{
    if len == 0 {
        return;
    }
    let chunk = len.div_ceil(nthreads.max(1)).max(1);
    // Threads `>= active` would receive empty ranges; don't start them.
    let active = len.div_ceil(chunk);
    run_on_threads(active, |tid| {
        let start = (tid * chunk).min(len);
        let end = ((tid + 1) * chunk).min(len);
        f(tid, start..end);
    });
}

/// Parallel element-wise map over mutable data: partitions `data` into
/// at most `nthreads` contiguous slices and hands slice `tid` to
/// `f(tid, offset, slice)`.
///
/// Each thread owns exactly one precomputed slice — there is no shared
/// work queue to contend on, and the `(tid, offset)` association is
/// deterministic. Threads without a slice are not started.
pub fn parallel_slices<T: Send, F>(nthreads: usize, data: &mut [T], f: F)
where
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    let len = data.len();
    if len == 0 {
        return;
    }
    let chunk = len.div_ceil(nthreads.max(1)).max(1);
    // Pre-partition into per-tid cells; each cell is taken exactly once
    // by its owning thread (one uncontended lock apiece).
    let mut parts: Vec<std::sync::Mutex<Option<(usize, &mut [T])>>> = Vec::new();
    let mut rest = data;
    let mut offset = 0usize;
    while !rest.is_empty() {
        let take = chunk.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        parts.push(std::sync::Mutex::new(Some((offset, head))));
        offset += take;
        rest = tail;
    }
    let active = parts.len();
    run_on_threads(active, |tid| {
        let item = parts[tid].lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some((off, slice)) = item {
            f(tid, off, slice);
        }
    });
}

/// Balanced per-thread column range for panel work *inside* an SPMD
/// region: thread `tid` of `nthreads` owns `col_range(ncols, nthreads,
/// tid)`. The ranges partition `0..ncols` with the first `ncols %
/// nthreads` threads taking one extra column.
///
/// Unlike ceil-div chunking, a narrow panel (`ncols < nthreads`) hands
/// the trailing threads genuinely **empty** ranges rather than
/// degenerate out-of-range ones — the in-region mirror of
/// [`parallel_chunks`]' empty-chunk early-return. Callers simply skip
/// an empty range; no clamping or bounds games required.
pub fn col_range(ncols: usize, nthreads: usize, tid: usize) -> std::ops::Range<usize> {
    let nthreads = nthreads.max(1);
    debug_assert!(tid < nthreads, "col_range: tid {tid} of {nthreads}");
    let base = ncols / nthreads;
    let extra = ncols % nthreads;
    let start = tid * base + tid.min(extra);
    let len = base + usize::from(tid < extra);
    start..start + len
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_tids_run_once() {
        for nthreads in 1..=6 {
            let hits = (0..nthreads)
                .map(|_| AtomicUsize::new(0))
                .collect::<Vec<_>>();
            run_on_threads(nthreads, |tid| {
                hits[tid].fetch_add(1, Ordering::Relaxed);
            });
            for (t, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "tid {t}");
            }
        }
    }

    #[test]
    fn borrows_stack_data() {
        let data = [1usize, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        run_on_threads(4, |tid| {
            sum.fetch_add(data[tid], Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn chunks_cover_range_exactly_once() {
        for nthreads in 1..=5 {
            for len in [0usize, 1, 7, 16, 33] {
                let marks: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
                parallel_chunks(nthreads, len, |_tid, range| {
                    for i in range {
                        marks[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(
                    marks.iter().all(|m| m.load(Ordering::Relaxed) == 1),
                    "nthreads={nthreads} len={len}"
                );
            }
        }
    }

    #[test]
    fn chunks_never_deliver_empty_ranges() {
        // 5 threads × len 6 → chunk 2 → 3 active threads, none empty.
        let calls = AtomicUsize::new(0);
        parallel_chunks(5, 6, |_tid, range| {
            assert!(!range.is_empty());
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        // Degenerate: empty input never enters a region.
        parallel_chunks(4, 0, |_tid, _range| {
            panic!("must not be called for len == 0");
        });
    }

    #[test]
    fn slices_partition_mutable_data() {
        let mut data = vec![0usize; 23];
        parallel_slices(4, &mut data, |_tid, offset, slice| {
            for (k, v) in slice.iter_mut().enumerate() {
                *v = offset + k;
            }
        });
        let expect: Vec<usize> = (0..23).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn slices_tid_matches_partition_order() {
        // Thread tid must receive the tid-th contiguous slice.
        let mut data = vec![0usize; 10];
        parallel_slices(3, &mut data, |tid, offset, slice| {
            assert_eq!(offset, tid * 4);
            for v in slice.iter_mut() {
                *v = tid;
            }
        });
        assert_eq!(data, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        run_on_threads(2, |tid| {
            if tid == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn col_ranges_partition_exactly() {
        for nthreads in 1..=6 {
            for ncols in [0usize, 1, 2, 3, 5, 8, 17] {
                let mut seen = vec![0usize; ncols];
                let mut prev_end = 0usize;
                for tid in 0..nthreads {
                    let r = col_range(ncols, nthreads, tid);
                    assert_eq!(r.start, prev_end, "ranges must be contiguous");
                    prev_end = r.end;
                    for c in r {
                        seen[c] += 1;
                    }
                }
                assert_eq!(prev_end, ncols, "nthreads={nthreads} ncols={ncols}");
                assert!(seen.iter().all(|&s| s == 1));
            }
        }
    }

    #[test]
    fn col_ranges_are_balanced() {
        // 8 columns over 3 threads: 3 + 3 + 2, never 3 + 3 + 3 + clamp.
        let lens: Vec<usize> = (0..3).map(|t| col_range(8, 3, t).len()).collect();
        assert_eq!(lens, vec![3, 3, 2]);
    }

    #[test]
    fn narrow_panels_leave_trailing_threads_empty() {
        // k = 2 columns across 5 threads: exactly two single-column
        // ranges, three genuinely empty ones — no degenerate ranges.
        let ranges: Vec<_> = (0..5).map(|t| col_range(2, 5, t)).collect();
        assert_eq!(ranges[0], 0..1);
        assert_eq!(ranges[1], 1..2);
        for r in &ranges[2..] {
            assert!(r.is_empty(), "trailing range {r:?} must be empty");
        }
        // Width-1 panel: only tid 0 works (the k = 1 fast path).
        assert_eq!(col_range(1, 4, 0), 0..1);
        assert!((1..4).all(|t| col_range(1, 4, t).is_empty()));
    }
}
