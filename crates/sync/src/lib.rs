//! # javelin-sync
//!
//! The concurrency substrate behind Javelin's "lightweight
//! synchronization" philosophy: the paper deliberately avoids heavy task
//! runtimes and barriers in favour of point-to-point spin
//! synchronization, static thread assignments, and (for the lower
//! stage) small tasking — and names "a specialized light weight tasking
//! library" as an in-progress improvement. This crate supplies those
//! pieces:
//!
//! * [`team`] — the persistent [`WorkerTeam`]: parked workers with
//!   stable tids executing borrowed SPMD regions (the OpenMP parallel
//!   region, amortized across the whole Krylov loop);
//! * [`exec`] — [`Exec`], the per-plan choice between the team and
//!   spawn-per-region execution;
//! * [`pool`] — scoped spawn-per-region fork-join (the fallback for
//!   one-shot phases);
//! * [`progress`] — cache-padded monotone progress counters with
//!   acquire/release semantics: the runtime half of the sparsified
//!   point-to-point schedule;
//! * [`barrier`] — a sense-reversing spin barrier (used by the CSR-LS
//!   baseline the paper compares against);
//! * [`backoff`] — bounded spinning that escalates to `yield_now`, so
//!   oversubscribed runs (more threads than cores) always make progress;
//! * [`taskgraph`] — the lightweight dependency-counting task executor
//!   (the paper's future-work tasking library);
//! * [`segscan`] — segmented sums/scans used by the CSR5-style tiled
//!   kernels;
//! * [`atomicf`] — atomic floating-point accumulators;
//! * [`affinity`] — best-effort core pinning for team participants
//!   (`OMP_PROC_BIND`-style placement, Linux `sched_setaffinity`).
//!
//! Almost everything is safe Rust built on `std::sync::atomic`. The
//! two exceptions: [`team`] erases a closure lifetime so persistent
//! workers can execute borrowed regions (behind a documented fork-join
//! protocol), and [`affinity`] makes one FFI call into the
//! already-linked C library.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod abort;
pub mod affinity;
pub mod atomicf;
pub mod backoff;
pub mod barrier;
pub mod exec;
pub mod pool;
pub mod progress;
pub mod segscan;
pub mod taskgraph;
pub mod team;

pub use affinity::TeamAffinity;
pub use backoff::Backoff;
pub use barrier::SpinBarrier;
pub use exec::Exec;
pub use pool::{col_range, run_on_threads};
pub use progress::ProgressCounters;
pub use taskgraph::TaskGraph;
pub use team::WorkerTeam;
