//! Region-abort protocol: turns a panic in one SPMD participant into a
//! prompt unwind of every participant instead of a deadlock.
//!
//! The point-to-point waits in this crate ([`crate::progress`],
//! [`crate::barrier`]) spin until a peer makes progress. If that peer
//! panics it never bumps its counter, and before this module existed
//! every other participant would spin forever — the region could not
//! reach the quiescent state [`crate::team::WorkerTeam::run`] needs
//! before it can propagate the panic. The fix is a per-region abort
//! flag:
//!
//! 1. the executor ([`crate::team`] / [`crate::pool`]) installs the
//!    region's flag in a thread-local for each participant;
//! 2. whichever participant panics has its unwind caught at the region
//!    edge, which sets the flag before recording completion;
//! 3. every spin wait polls the flag on its slow path and *panics* with
//!    [`ABORT_PANIC_MSG`] when it is set — unwinding that participant
//!    out of the region through the same catch, which marks it done.
//!
//! The cascade drains the whole region in bounded time, after which the
//! executor reports the original panic to the caller. Outside any
//! region (`enter` never called on this thread) the poll is a no-op, so
//! the primitives remain usable with ad-hoc `std::thread::scope` code.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Panic message used by [`check`] when a region is aborted. Executors
/// match on it to distinguish the abort echo from a root-cause panic.
pub const ABORT_PANIC_MSG: &str = "javelin parallel region aborted by a peer panic";

/// A per-region abort flag shared by all participants.
#[derive(Debug, Default)]
pub struct RegionAbort {
    flag: AtomicBool,
}

impl RegionAbort {
    /// Fresh, un-set flag.
    pub fn new() -> Self {
        RegionAbort::default()
    }

    /// Orders every participant polling this flag to unwind.
    pub fn set(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// `true` once the region is aborting.
    pub fn is_set(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Re-arms the flag for a new region. Caller must guarantee
    /// quiescence (no participant inside the previous region).
    pub fn clear(&self) {
        self.flag.store(false, Ordering::Release);
    }
}

thread_local! {
    /// Innermost-last stack of active region flags for this thread
    /// (regions can nest when a region body launches sub-phases).
    static CURRENT: RefCell<Vec<Arc<RegionAbort>>> = const { RefCell::new(Vec::new()) };
}

/// Installs `flag` as this thread's current region flag until the
/// returned guard drops.
pub fn enter(flag: Arc<RegionAbort>) -> RegionGuard {
    CURRENT.with(|c| c.borrow_mut().push(flag));
    RegionGuard { _priv: () }
}

/// Uninstalls the flag pushed by the matching [`enter`] on drop —
/// including during an unwind, so a panicking participant leaves no
/// stale flag behind.
#[must_use]
pub struct RegionGuard {
    _priv: (),
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Polled by spin waits: panics with [`ABORT_PANIC_MSG`] when the
/// current region (if any) is aborting. No-op outside a region.
#[inline]
pub fn check() {
    let aborting = CURRENT.with(|c| c.borrow().last().map(|f| f.is_set()).unwrap_or(false));
    if aborting {
        panic!("{ABORT_PANIC_MSG}");
    }
}

/// `true` when `payload` (a caught panic payload) is the abort echo
/// raised by [`check`] rather than a root-cause panic.
pub fn is_abort_payload(payload: &(dyn std::any::Any + Send)) -> bool {
    payload
        .downcast_ref::<&'static str>()
        .is_some_and(|s| *s == ABORT_PANIC_MSG)
        || payload
            .downcast_ref::<String>()
            .is_some_and(|s| s == ABORT_PANIC_MSG)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn check_is_noop_outside_regions() {
        check(); // must not panic
    }

    #[test]
    fn check_panics_once_flag_is_set() {
        let flag = Arc::new(RegionAbort::new());
        let _g = enter(Arc::clone(&flag));
        check(); // not set yet
        flag.set();
        let r = catch_unwind(AssertUnwindSafe(check));
        let payload = r.unwrap_err();
        assert!(is_abort_payload(payload.as_ref()));
    }

    #[test]
    fn guard_restores_outer_region() {
        let outer = Arc::new(RegionAbort::new());
        let inner = Arc::new(RegionAbort::new());
        let _og = enter(Arc::clone(&outer));
        outer.set();
        {
            let _ig = enter(Arc::clone(&inner));
            check(); // inner region is fine
        }
        // Back in the outer region: its abort is visible again.
        assert!(catch_unwind(AssertUnwindSafe(check)).is_err());
    }

    #[test]
    fn clear_rearms() {
        let flag = RegionAbort::new();
        flag.set();
        assert!(flag.is_set());
        flag.clear();
        assert!(!flag.is_set());
    }
}
