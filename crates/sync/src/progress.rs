//! Monotone per-thread progress counters — the runtime half of the
//! sparsified point-to-point schedule.
//!
//! Each worker owns one cache-padded counter and bumps it (release)
//! after finishing each task in its static sequence. A consumer that
//! must observe "thread `t` has completed ≥ `k` tasks" spins (acquire)
//! on `t`'s counter. The release/acquire pair makes every memory write
//! performed by the first `k` tasks of `t` visible to the waiter —
//! exactly the happens-before edge the factorization and triangular
//! solves need; no locks, no barriers.

use crate::backoff::Backoff;
use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A set of per-thread monotone progress counters.
#[derive(Debug)]
pub struct ProgressCounters {
    counters: Vec<CachePadded<AtomicUsize>>,
}

impl ProgressCounters {
    /// Creates `n` counters initialized to zero.
    pub fn new(n: usize) -> Self {
        ProgressCounters {
            counters: (0..n)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect(),
        }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// `true` when no counters exist.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Resets every counter to zero. Caller must guarantee quiescence
    /// (no concurrent waiters/bumpers) — typically between solves.
    pub fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        // Publish the zeroes before the next parallel phase begins.
        std::sync::atomic::fence(Ordering::Release);
    }

    /// Records that thread `t` completed one more task (release).
    #[inline]
    pub fn bump(&self, t: usize) {
        self.counters[t].fetch_add(1, Ordering::Release);
    }

    /// Current progress of thread `t` (acquire).
    #[inline]
    pub fn load(&self, t: usize) -> usize {
        self.counters[t].load(Ordering::Acquire)
    }

    /// Spin-waits (with yield escalation) until thread `t` has completed
    /// at least `required` tasks.
    ///
    /// # Panics
    /// With [`crate::abort::ABORT_PANIC_MSG`] if the enclosing parallel
    /// region aborts (a peer panicked) while waiting — the wait would
    /// otherwise spin forever on a counter nobody will bump.
    #[inline]
    pub fn wait_for(&self, t: usize, required: usize) {
        if self.counters[t].load(Ordering::Acquire) >= required {
            return;
        }
        let mut backoff = Backoff::new();
        while self.counters[t].load(Ordering::Acquire) < required {
            crate::abort::check();
            backoff.snooze();
        }
    }

    /// Waits for a pruned wait list: `(thread, required)` pairs, as
    /// produced by `javelin_level::P2PSchedule::waits`.
    #[inline]
    pub fn wait_all(&self, waits: &[(usize, usize)]) {
        for &(t, req) in waits {
            self.wait_for(t, req);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn bump_and_load() {
        let p = ProgressCounters::new(3);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        p.bump(1);
        p.bump(1);
        assert_eq!(p.load(0), 0);
        assert_eq!(p.load(1), 2);
        p.reset();
        assert_eq!(p.load(1), 0);
    }

    #[test]
    fn wait_for_satisfied_immediately() {
        let p = ProgressCounters::new(1);
        p.bump(0);
        p.wait_for(0, 1); // must not hang
        p.wait_all(&[(0, 1)]);
    }

    #[test]
    fn cross_thread_happens_before() {
        // Thread A writes data then bumps; thread B waits then reads.
        // Repeated to give a race a chance to show up.
        for _ in 0..50 {
            let p = ProgressCounters::new(2);
            let data = AtomicUsize::new(0);
            std::thread::scope(|s| {
                s.spawn(|| {
                    data.store(42, Ordering::Relaxed);
                    p.bump(0);
                });
                s.spawn(|| {
                    p.wait_for(0, 1);
                    assert_eq!(data.load(Ordering::Relaxed), 42);
                });
            });
        }
    }

    #[test]
    fn chain_of_waiters() {
        // t0 -> t1 -> t2 relay, oversubscribed on any core count.
        let p = ProgressCounters::new(3);
        let out = parking_lot::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            s.spawn(|| {
                p.wait_for(1, 1);
                out.lock().push(2);
                p.bump(2);
            });
            s.spawn(|| {
                p.wait_for(0, 1);
                out.lock().push(1);
                p.bump(1);
            });
            s.spawn(|| {
                out.lock().push(0);
                p.bump(0);
            });
        });
        assert_eq!(*out.lock(), vec![0, 1, 2]);
    }
}
