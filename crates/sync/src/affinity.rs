//! Optional CPU affinity for worker teams.
//!
//! The paper's experiments bind the OpenMP team to cores
//! (`OMP_PROC_BIND`-style) so that level-scheduled point-to-point waits
//! hit warm caches and first-touch page placement stays aligned with
//! the threads that later traverse the pages. This module is the
//! equivalent knob: a [`TeamAffinity`] policy that [`crate::WorkerTeam`]
//! applies to each participant at startup.
//!
//! Pinning is *best-effort*: on non-Linux targets, or when the kernel
//! rejects the mask (cgroup cpuset restrictions, core offline), the
//! thread simply stays unpinned — correctness never depends on
//! placement, only locality does. [`pin_current_thread`] reports
//! whether the kernel accepted the mask so tests and diagnostics can
//! observe the outcome.
//!
//! No external crates: the single syscall wrapper below is a minimal
//! `extern "C"` declaration against the C library that is already
//! linked into every std binary.

/// How a worker team binds its participants to cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TeamAffinity {
    /// Leave every thread where the OS scheduler puts it (default).
    #[default]
    None,
    /// Pin participant `tid` to core `tid % n_cores`: dense, stable
    /// placement. The calling thread (tid 0) is pinned too when it
    /// enters the team constructor — callers that must keep their main
    /// thread free should construct the team from a worker thread.
    Compact,
}

impl TeamAffinity {
    /// The core this policy assigns to participant `tid`, if any.
    pub fn core_for(self, tid: usize) -> Option<usize> {
        match self {
            TeamAffinity::None => None,
            TeamAffinity::Compact => Some(tid % n_cores()),
        }
    }
}

/// Number of cores visible to this process (affinity-mask aware on
/// Linux via std). Falls back to 1 if the OS won't say.
pub fn n_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Best-effort pin of the calling thread to `core`. Returns `true` if
/// the kernel accepted the mask, `false` when pinning is unsupported on
/// this target, the core index is out of range, or the syscall failed.
pub fn pin_current_thread(core: usize) -> bool {
    sys::pin(core)
}

#[cfg(target_os = "linux")]
mod sys {
    // The only unsafe here is one FFI call into the already-linked libc.
    #![allow(unsafe_code)]

    /// `cpu_set_t`: a 1024-bit CPU mask, matching glibc's layout.
    #[repr(C)]
    struct CpuSet {
        bits: [u64; 16],
    }

    extern "C" {
        /// `pid == 0` targets the calling thread.
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const CpuSet) -> i32;
    }

    pub fn pin(core: usize) -> bool {
        if core >= 16 * 64 {
            return false;
        }
        let mut set = CpuSet { bits: [0; 16] };
        set.bits[core / 64] |= 1u64 << (core % 64);
        // Safety: `set` is a valid, fully-initialized mask of the size
        // we pass; the call only touches scheduler state.
        unsafe { sched_setaffinity(0, std::mem::size_of::<CpuSet>(), &set) == 0 }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    pub fn pin(_core: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_policy_wraps_over_cores() {
        let n = n_cores();
        assert!(n >= 1);
        assert_eq!(TeamAffinity::Compact.core_for(0), Some(0));
        assert_eq!(TeamAffinity::Compact.core_for(n), Some(0));
        assert_eq!(TeamAffinity::None.core_for(3), None);
    }

    #[test]
    fn out_of_range_core_is_rejected_without_a_syscall() {
        assert!(!pin_current_thread(16 * 64));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pin_in_scratch_thread_reports_success() {
        // Pin inside a throwaway thread so the test-harness thread
        // keeps its original (permissive) mask.
        let ok = std::thread::spawn(|| pin_current_thread(0)).join().unwrap();
        assert!(ok, "pinning a scratch thread to core 0 should succeed");
    }
}
