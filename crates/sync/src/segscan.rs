//! Segmented sums and scans.
//!
//! CSR5 (Liu & Vinter) — one of the two foundations the paper builds on
//! — evaluates spmv as a *segmented sum* over fixed-size tiles: each
//! tile reduces its slice of the value stream independently, emitting
//! partial sums for the segments (rows) that straddle its boundaries,
//! which a cheap pass then combines. The same primitive powers Javelin's
//! tiled trailing-block kernels. This module implements the segmented
//! sum both serially and tiled, over an explicit segment-pointer array
//! (CSR `rowptr` works directly).

/// Serial segmented sum: `out[s] = Σ vals[seg_ptr[s]..seg_ptr[s+1]]`.
///
/// # Panics
/// When `seg_ptr` is not a valid monotone pointer array over `vals`.
pub fn segmented_sum_serial(seg_ptr: &[usize], vals: &[f64]) -> Vec<f64> {
    assert!(!seg_ptr.is_empty(), "seg_ptr must have at least one entry");
    assert_eq!(
        *seg_ptr.last().expect("nonempty"),
        vals.len(),
        "seg_ptr must cover vals"
    );
    let nseg = seg_ptr.len() - 1;
    let mut out = vec![0.0; nseg];
    for s in 0..nseg {
        debug_assert!(seg_ptr[s] <= seg_ptr[s + 1]);
        out[s] = vals[seg_ptr[s]..seg_ptr[s + 1]].iter().sum();
    }
    out
}

/// A tile's contribution to a segmented sum: partial sums for the first
/// and last (possibly straddling) segments, complete sums in between.
#[derive(Debug, Clone, PartialEq)]
pub struct TilePartial {
    /// Index of the first segment this tile touches.
    pub first_seg: usize,
    /// Per-segment sums for segments `first_seg..first_seg + sums.len()`;
    /// the first and last entries may be partial.
    pub sums: Vec<f64>,
}

/// Computes one tile's partial segmented sum over entry range
/// `lo..hi`. `seg_of_lo` must be the segment containing entry `lo`
/// (i.e. `seg_ptr[seg_of_lo] <= lo < seg_ptr[seg_of_lo + 1]`, treating
/// empty segments as skipped).
pub fn tile_partial(
    seg_ptr: &[usize],
    vals: &[f64],
    lo: usize,
    hi: usize,
    seg_of_lo: usize,
) -> TilePartial {
    debug_assert!(lo <= hi && hi <= vals.len());
    let nseg = seg_ptr.len() - 1;
    let mut sums = Vec::new();
    let mut seg = seg_of_lo;
    let mut acc = 0.0;
    let mut cursor = lo;
    while cursor < hi {
        // Advance past empty/finished segments.
        while seg < nseg && seg_ptr[seg + 1] <= cursor {
            sums.push(acc);
            acc = 0.0;
            seg += 1;
        }
        let seg_end = seg_ptr[seg + 1].min(hi);
        for v in &vals[cursor..seg_end] {
            acc += v;
        }
        cursor = seg_end;
    }
    sums.push(acc);
    TilePartial {
        first_seg: seg_of_lo,
        sums,
    }
}

/// Combines tile partials (in tile order) into the full segmented sum.
/// Deterministic: contributions are added in tile order, matching the
/// serial left-to-right reduction.
pub fn combine_partials(nseg: usize, partials: &[TilePartial]) -> Vec<f64> {
    let mut out = vec![0.0; nseg];
    for p in partials {
        for (k, &v) in p.sums.iter().enumerate() {
            out[p.first_seg + k] += v;
        }
    }
    out
}

/// Tiled segmented sum: splits `vals` into `n_tiles` equal entry ranges
/// (the CSR5 tile decomposition), computes partials, and combines them.
/// The decomposition is exposed (rather than an internal thread pool) so
/// callers can run [`tile_partial`] on their own workers; this function
/// is the serial reference of that pipeline.
pub fn segmented_sum_tiled(seg_ptr: &[usize], vals: &[f64], n_tiles: usize) -> Vec<f64> {
    assert!(!seg_ptr.is_empty());
    assert_eq!(*seg_ptr.last().expect("nonempty"), vals.len());
    let nseg = seg_ptr.len() - 1;
    let n = vals.len();
    if n == 0 {
        return vec![0.0; nseg];
    }
    let tiles = tile_ranges(seg_ptr, n, n_tiles);
    let partials: Vec<TilePartial> = tiles
        .iter()
        .map(|&(lo, hi, seg)| tile_partial(seg_ptr, vals, lo, hi, seg))
        .collect();
    combine_partials(nseg, &partials)
}

/// Computes the `(lo, hi, first_segment)` decomposition of `0..n` into
/// at most `n_tiles` equal ranges, with each tile's starting segment
/// located by binary search (the "tile descriptor" of CSR5).
pub fn tile_ranges(seg_ptr: &[usize], n: usize, n_tiles: usize) -> Vec<(usize, usize, usize)> {
    let n_tiles = n_tiles.max(1);
    let tile = n.div_ceil(n_tiles).max(1);
    let mut out = Vec::new();
    let mut lo = 0usize;
    while lo < n {
        let hi = (lo + tile).min(n);
        let seg = seg_containing(seg_ptr, lo);
        out.push((lo, hi, seg));
        lo = hi;
    }
    out
}

/// Largest segment `s` with `seg_ptr[s] <= idx` and `seg_ptr[s+1] > idx`
/// (skipping empty segments).
pub fn seg_containing(seg_ptr: &[usize], idx: usize) -> usize {
    // partition_point: first s+1 with seg_ptr[s+1] > idx.
    let nseg = seg_ptr.len() - 1;
    let s = seg_ptr[1..=nseg].partition_point(|&end| end <= idx);
    s.min(nseg.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_matches_manual() {
        let seg_ptr = vec![0, 2, 2, 5];
        let vals = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(segmented_sum_serial(&seg_ptr, &vals), vec![3.0, 0.0, 12.0]);
    }

    #[test]
    fn tiled_matches_serial_for_all_tile_counts() {
        let seg_ptr = vec![0, 3, 3, 4, 9, 12];
        let vals: Vec<f64> = (1..=12).map(|v| v as f64).collect();
        let expect = segmented_sum_serial(&seg_ptr, &vals);
        for n_tiles in 1..=14 {
            let got = segmented_sum_tiled(&seg_ptr, &vals, n_tiles);
            assert_eq!(got, expect, "n_tiles = {n_tiles}");
        }
    }

    #[test]
    fn seg_containing_skips_empty_segments() {
        let seg_ptr = vec![0, 0, 0, 3, 3, 5];
        assert_eq!(seg_containing(&seg_ptr, 0), 2);
        assert_eq!(seg_containing(&seg_ptr, 2), 2);
        assert_eq!(seg_containing(&seg_ptr, 3), 4);
        assert_eq!(seg_containing(&seg_ptr, 4), 4);
    }

    #[test]
    fn empty_input() {
        assert_eq!(segmented_sum_serial(&[0], &[]), Vec::<f64>::new());
        assert_eq!(segmented_sum_tiled(&[0, 0], &[], 4), vec![0.0]);
    }

    #[test]
    fn single_tile_partial_covers_everything() {
        let seg_ptr = vec![0, 2, 4];
        let vals = vec![1.0, 2.0, 3.0, 4.0];
        let p = tile_partial(&seg_ptr, &vals, 0, 4, 0);
        assert_eq!(p.first_seg, 0);
        assert_eq!(p.sums, vec![3.0, 7.0]);
    }

    #[test]
    fn straddling_tiles_combine() {
        let seg_ptr = vec![0, 4];
        let vals = vec![1.0, 2.0, 3.0, 4.0];
        let p1 = tile_partial(&seg_ptr, &vals, 0, 2, 0);
        let p2 = tile_partial(&seg_ptr, &vals, 2, 4, 0);
        let combined = combine_partials(1, &[p1, p2]);
        assert_eq!(combined, vec![10.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn tiled_equals_serial(
            sizes in proptest::collection::vec(0usize..6, 1..20),
            n_tiles in 1usize..9,
        ) {
            let mut seg_ptr = vec![0usize];
            for s in &sizes {
                seg_ptr.push(seg_ptr.last().unwrap() + s);
            }
            let n = *seg_ptr.last().unwrap();
            // Integer-valued floats: exact addition in any grouping.
            let vals: Vec<f64> = (0..n).map(|i| (i % 13) as f64).collect();
            let serial = segmented_sum_serial(&seg_ptr, &vals);
            let tiled = segmented_sum_tiled(&seg_ptr, &vals, n_tiles);
            prop_assert_eq!(serial, tiled);
        }
    }
}
