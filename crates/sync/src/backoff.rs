//! Bounded spinning with yield escalation.
//!
//! The paper's point-to-point waits are "inexpensive spinlocks". On a
//! dedicated many-core node pure spinning is right; in CI containers or
//! oversubscribed runs a waiting thread can occupy the core its
//! dependency needs. This backoff spins with `spin_loop` hints for a
//! few rounds, then yields to the OS scheduler, guaranteeing progress at
//! any core/thread ratio.

use std::hint;
use std::thread;

/// Exponential spin backoff that escalates to `thread::yield_now`.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Spin rounds (doubling each step) before yielding.
    const SPIN_LIMIT: u32 = 6;

    /// Fresh backoff.
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// One wait step: spins `2^step` times while below the spin limit,
    /// afterwards yields the thread.
    #[inline]
    pub fn snooze(&mut self) {
        if self.step <= Self::SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                hint::spin_loop();
            }
            self.step += 1;
        } else {
            thread::yield_now();
        }
    }

    /// `true` once the backoff has escalated past pure spinning —
    /// callers that want to park can use this as the trigger.
    pub fn is_yielding(&self) -> bool {
        self.step > Self::SPIN_LIMIT
    }

    /// Resets to pure spinning.
    pub fn reset(&mut self) {
        self.step = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_to_yield() {
        let mut b = Backoff::new();
        assert!(!b.is_yielding());
        for _ in 0..=Backoff::SPIN_LIMIT {
            b.snooze();
        }
        assert!(b.is_yielding());
        // Further snoozes stay in the yielding regime without panicking.
        for _ in 0..4 {
            b.snooze();
        }
        assert!(b.is_yielding());
    }

    #[test]
    fn reset_restores_spinning() {
        let mut b = Backoff::new();
        for _ in 0..10 {
            b.snooze();
        }
        b.reset();
        assert!(!b.is_yielding());
    }
}
