//! Persistent worker team: a fixed set of parked OS threads with stable
//! tids that repeatedly execute *borrowed* SPMD closures.
//!
//! The paper's runtime is an OpenMP parallel region: the thread team is
//! created once and every factorization/solve phase reuses it. The old
//! `pool::run_on_threads` spawned fresh OS threads per region, which is
//! fine for once-per-matrix phases but throws tens of microseconds away
//! on every preconditioner apply inside a Krylov loop. `WorkerTeam` is
//! the amortized analogue: construction spawns `nthreads - 1` workers
//! that park between regions; [`WorkerTeam::run`] publishes a borrowed
//! closure, wakes the team, participates as tid 0, and returns once
//! every worker has finished the region.
//!
//! ## Safety protocol
//!
//! This module contains the only `unsafe` in the workspace. The closure
//! reference handed to workers has its lifetime erased (workers are
//! `'static`, the closure is not). Soundness rests on one invariant:
//!
//! > `run` does not return — normally or by unwinding — until every
//! > worker has bumped the completion counter for this region, and a
//! > worker never touches the job pointer outside the epoch window in
//! > which it was published.
//!
//! The release-bump/acquire-wait pair on the completion counter also
//! carries every memory write a worker performed into the caller, the
//! same happens-before edge `std::thread::scope` provides.
//!
//! Workers wait for a region with bounded spinning (see
//! [`crate::backoff::Backoff`]) and escalate to a condvar park, so idle
//! teams consume no CPU — many live factorizations (each owning a team)
//! can coexist in one process.

#![allow(unsafe_code)]

use crate::abort::{self, RegionAbort};
use crate::affinity::{pin_current_thread, TeamAffinity};
use crate::backoff::Backoff;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A lifetime-erased pointer to the region closure.
///
/// Safety: only dereferenced by workers between the epoch bump that
/// published it and the completion bump the publisher waits on.
#[derive(Clone, Copy)]
struct RawJob(*const (dyn Fn(usize) + Sync));

// Safety: the pointee is `Sync` (shared calls are fine) and the pointer
// only crosses threads under the region protocol described above.
unsafe impl Send for RawJob {}

struct Shared {
    nthreads: usize,
    /// Region sequence number; bumped (release) to start a region.
    epoch: AtomicU64,
    /// The current region's closure, valid for exactly one epoch.
    job: Mutex<Option<RawJob>>,
    /// Workers that finished the current region.
    done: AtomicUsize,
    /// Set when any worker's closure panicked during the region.
    panicked: AtomicBool,
    /// Per-region abort flag: set when any participant (worker or
    /// caller) panics, so peers blocked in spin waits unwind instead of
    /// deadlocking (see [`crate::abort`]). Cleared at region start.
    region_abort: Arc<RegionAbort>,
    /// Sticky panic marker: set when a region ends by unwind, cleared
    /// by [`WorkerTeam::repair`] (which `run` invokes automatically).
    poisoned: AtomicBool,
    /// Bumped on every unwound region — lets callers holding long-lived
    /// plans detect that the team went through a panic/repair cycle.
    generation: AtomicU64,
    /// Orders the team to exit.
    shutdown: AtomicBool,
    /// Number of workers parked on the condvar.
    sleepers: AtomicUsize,
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
}

/// A persistent team of `nthreads` SPMD participants: the calling
/// thread (tid 0) plus `nthreads - 1` parked workers (tids
/// `1..nthreads`).
pub struct WorkerTeam {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes regions: `run` takes `&self` but the epoch protocol
    /// supports one region at a time.
    region: Mutex<()>,
}

impl std::fmt::Debug for WorkerTeam {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerTeam")
            .field("nthreads", &self.shared.nthreads)
            .finish()
    }
}

impl WorkerTeam {
    /// Spawns a team of `nthreads` participants (`nthreads - 1` OS
    /// threads; `nthreads == 1` spawns none and runs regions inline).
    ///
    /// # Panics
    /// If `nthreads == 0` or a worker thread cannot be spawned.
    pub fn new(nthreads: usize) -> Self {
        Self::with_affinity(nthreads, TeamAffinity::None)
    }

    /// Like [`WorkerTeam::new`], additionally applying `affinity` to
    /// every participant: each worker pins itself as the first thing it
    /// does on its own thread, and the calling thread (tid 0) is pinned
    /// here, before the constructor returns. Pinning is best-effort
    /// (see [`crate::affinity`]) — a rejected mask leaves the thread
    /// unpinned and the team fully functional.
    pub fn with_affinity(nthreads: usize, affinity: TeamAffinity) -> Self {
        assert!(nthreads >= 1, "team needs at least one participant");
        if let Some(core) = affinity.core_for(0) {
            pin_current_thread(core);
        }
        let shared = Arc::new(Shared {
            nthreads,
            epoch: AtomicU64::new(0),
            job: Mutex::new(None),
            done: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            region_abort: Arc::new(RegionAbort::new()),
            poisoned: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
        });
        let handles = (1..nthreads)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("javelin-worker-{tid}"))
                    .spawn(move || {
                        if let Some(core) = affinity.core_for(tid) {
                            pin_current_thread(core);
                        }
                        worker_loop(&shared, tid)
                    })
                    .expect("spawn team worker")
            })
            .collect();
        WorkerTeam {
            shared,
            handles,
            region: Mutex::new(()),
        }
    }

    /// Number of participants (including the caller).
    pub fn nthreads(&self) -> usize {
        self.shared.nthreads
    }

    /// `true` while the team carries unrepaired poison from a region
    /// that ended by unwind. [`WorkerTeam::run`] repairs automatically
    /// at its next entry; this accessor lets callers observe the state
    /// in between.
    pub fn is_poisoned(&self) -> bool {
        self.shared.poisoned.load(Ordering::Acquire)
    }

    /// Number of panic/repair cycles this team has been through. Stable
    /// across healthy regions, bumped once per unwound region — callers
    /// holding long-lived schedules can compare generations to learn
    /// that a panic happened between two uses.
    pub fn generation(&self) -> u64 {
        self.shared.generation.load(Ordering::Acquire)
    }

    /// Explicitly clears panic poison and re-arms the region-abort
    /// flag, returning `true` if there was poison to clear. Safe to
    /// call at any time (serialized with regions); [`WorkerTeam::run`]
    /// performs the same repair automatically, so this exists for
    /// callers that want the team verifiably clean *before* committing
    /// to the next region.
    pub fn repair(&self) -> bool {
        let _region = self.region.lock().unwrap_or_else(|e| e.into_inner());
        self.repair_inner()
    }

    /// Repair body; caller must hold the region lock (quiescence).
    fn repair_inner(&self) -> bool {
        self.shared.region_abort.clear();
        self.shared.panicked.store(false, Ordering::Relaxed);
        self.shared.poisoned.swap(false, Ordering::AcqRel)
    }

    /// Executes `f(tid)` for every tid in `0..nthreads`, the caller
    /// running tid 0, and returns once all participants finished. `f`
    /// may borrow from the caller's stack. Regions are serialized:
    /// concurrent `run` calls queue on an internal lock.
    ///
    /// # Panics
    /// Propagates the caller's own panic after the region completes;
    /// panics with a generic message when (only) a worker panicked —
    /// matching [`crate::pool::run_on_threads`] semantics.
    pub fn run<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.shared.nthreads == 1 {
            f(0);
            return;
        }
        let _region = self.region.lock().unwrap_or_else(|e| e.into_inner());
        let shared = &*self.shared;
        // Auto-repair poison left by a previously unwound region.
        self.repair_inner();
        shared.done.store(0, Ordering::Relaxed);
        shared.panicked.store(false, Ordering::Relaxed);
        {
            // Erase the closure lifetime. Safety: see module docs — this
            // function does not return until every worker has bumped
            // `done` for this epoch.
            let wide: &(dyn Fn(usize) + Sync) = &f;
            let raw = RawJob(unsafe {
                std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                    wide as *const _,
                )
            });
            *shared.job.lock().unwrap_or_else(|e| e.into_inner()) = Some(raw);
        }
        shared.epoch.fetch_add(1, Ordering::Release);
        if shared.sleepers.load(Ordering::SeqCst) > 0 {
            let _g = shared.sleep_lock.lock().unwrap_or_else(|e| e.into_inner());
            shared.sleep_cv.notify_all();
        }

        // Participate as tid 0, deferring any panic until the region is
        // quiescent (workers may still be reading caller-owned data).
        let caller_result = catch_unwind(AssertUnwindSafe(|| {
            let _g = abort::enter(Arc::clone(&shared.region_abort));
            f(0)
        }));
        if caller_result.is_err() {
            // Workers may be spin-waiting on progress tid 0 will never
            // make: release them so the region can reach quiescence.
            shared.region_abort.set();
        }

        let mut backoff = Backoff::new();
        while shared.done.load(Ordering::Acquire) != shared.nthreads - 1 {
            backoff.snooze();
        }
        // Region over: drop the job pointer before `f` goes out of scope.
        *shared.job.lock().unwrap_or_else(|e| e.into_inner()) = None;

        let worker_panicked = shared.panicked.load(Ordering::Relaxed);
        if caller_result.is_err() || worker_panicked {
            shared.poisoned.store(true, Ordering::Release);
            shared.generation.fetch_add(1, Ordering::AcqRel);
        }
        if let Err(payload) = caller_result {
            if worker_panicked && abort::is_abort_payload(payload.as_ref()) {
                // Tid 0 only unwound because a worker's panic aborted
                // the region: report the root cause, not the echo.
                panic!("worker thread panicked during team region");
            }
            resume_unwind(payload);
        }
        if worker_panicked {
            panic!("worker thread panicked during team region");
        }
    }
}

impl Drop for WorkerTeam {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake everyone: epoch bump for spinners, notify for sleepers.
        self.shared.epoch.fetch_add(1, Ordering::Release);
        {
            let _g = self
                .shared
                .sleep_lock
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            self.shared.sleep_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, tid: usize) {
    let mut seen = 0u64;
    loop {
        // Wait for a new epoch: bounded spin, then park.
        let mut backoff = Backoff::new();
        loop {
            let e = shared.epoch.load(Ordering::Acquire);
            if e != seen {
                seen = e;
                break;
            }
            if backoff.is_yielding() {
                shared.sleepers.fetch_add(1, Ordering::SeqCst);
                let guard = shared.sleep_lock.lock().unwrap_or_else(|e| e.into_inner());
                // Re-check under the lock: the publisher bumps the epoch
                // before taking this lock to notify, so a missed bump is
                // observed here instead of slept through.
                if shared.epoch.load(Ordering::Acquire) == seen
                    && !shared.shutdown.load(Ordering::SeqCst)
                {
                    let _guard = shared
                        .sleep_cv
                        .wait(guard)
                        .unwrap_or_else(|e| e.into_inner());
                }
                shared.sleepers.fetch_sub(1, Ordering::SeqCst);
                backoff.reset();
            } else {
                backoff.snooze();
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let job = *shared.job.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(RawJob(ptr)) = job {
            // Safety: the publisher keeps the closure alive until every
            // worker bumps `done` below.
            let f = unsafe { &*ptr };
            let result = {
                let _g = abort::enter(Arc::clone(&shared.region_abort));
                catch_unwind(AssertUnwindSafe(|| f(tid)))
            };
            if let Err(payload) = result {
                // An abort echo is this worker being *released* from a
                // wait after a peer's panic, not a root cause: it must
                // still free any peers waiting on this worker, but only
                // genuine panics mark the region as worker-panicked.
                if !abort::is_abort_payload(payload.as_ref()) {
                    shared.panicked.store(true, Ordering::Relaxed);
                }
                shared.region_abort.set();
            }
            shared.done.fetch_add(1, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn all_tids_run_once_per_region() {
        for nthreads in 1..=6 {
            let team = WorkerTeam::new(nthreads);
            for _ in 0..5 {
                let hits: Vec<AtomicUsize> = (0..nthreads).map(|_| AtomicUsize::new(0)).collect();
                team.run(|tid| {
                    hits[tid].fetch_add(1, Ordering::Relaxed);
                });
                for (t, h) in hits.iter().enumerate() {
                    assert_eq!(h.load(Ordering::Relaxed), 1, "tid {t}");
                }
            }
        }
    }

    #[test]
    fn pinned_team_runs_all_tids() {
        // Pinning is best-effort; whatever the kernel decided, the
        // region protocol must be unaffected.
        let team = WorkerTeam::with_affinity(3, crate::affinity::TeamAffinity::Compact);
        let hits: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..4 {
            team.run(|tid| {
                hits[tid].fetch_add(1, Ordering::Relaxed);
            });
        }
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 4));
    }

    #[test]
    fn borrows_stack_data_across_many_regions() {
        let team = WorkerTeam::new(4);
        for round in 0..50 {
            let data = [round; 4];
            let sum = AtomicUsize::new(0);
            team.run(|tid| {
                sum.fetch_add(data[tid], Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 4 * round);
        }
    }

    #[test]
    fn workers_see_caller_writes_and_vice_versa() {
        let team = WorkerTeam::new(3);
        let mut owned = vec![0usize; 3];
        let cells: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        team.run(|tid| {
            cells[tid].store(tid + 10, Ordering::Relaxed);
        });
        // The completion wait orders worker writes before this read.
        for (i, c) in cells.iter().enumerate() {
            owned[i] = c.load(Ordering::Relaxed);
        }
        assert_eq!(owned, vec![10, 11, 12]);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let team = WorkerTeam::new(2);
        team.run(|tid| {
            if tid == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn team_survives_a_panicked_region() {
        let team = WorkerTeam::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            team.run(|tid| {
                if tid == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err());
        // The team must still execute subsequent regions.
        let sum = AtomicUsize::new(0);
        team.run(|tid| {
            sum.fetch_add(tid + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn worker_panic_releases_peers_blocked_on_its_progress() {
        // tid 1 panics before bumping the counter tids 0 and 2 wait on.
        // Without the region-abort protocol this deadlocks forever.
        let team = WorkerTeam::new(3);
        let progress = crate::progress::ProgressCounters::new(3);
        let r = catch_unwind(AssertUnwindSafe(|| {
            team.run(|tid| {
                if tid == 1 {
                    panic!("boom");
                }
                progress.wait_for(1, 1); // never satisfied
            });
        }));
        assert!(r.is_err());
        assert_eq!(team.generation(), 1);
        // The team must still run healthy regions afterwards.
        let sum = AtomicUsize::new(0);
        team.run(|tid| {
            sum.fetch_add(tid + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
        assert_eq!(team.generation(), 1);
    }

    #[test]
    fn caller_panic_releases_workers_blocked_on_tid0() {
        // Tid 0 (the caller) panics before bumping the counter the
        // workers wait on — the symmetric deadlock.
        let team = WorkerTeam::new(3);
        let progress = crate::progress::ProgressCounters::new(3);
        let r = catch_unwind(AssertUnwindSafe(|| {
            team.run(|tid| {
                if tid == 0 {
                    panic!("caller boom");
                }
                progress.wait_for(0, 1); // never satisfied
            });
        }));
        let payload = r.unwrap_err();
        // The caller's own panic is the root cause and must win over
        // any worker abort echoes.
        assert_eq!(*payload.downcast_ref::<&str>().unwrap(), "caller boom");
        let sum = AtomicUsize::new(0);
        team.run(|tid| {
            sum.fetch_add(tid + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn barrier_waiters_unwind_on_peer_panic() {
        let team = WorkerTeam::new(3);
        let barrier = crate::barrier::SpinBarrier::new(3);
        let r = catch_unwind(AssertUnwindSafe(|| {
            team.run(|tid| {
                if tid == 2 {
                    panic!("boom");
                }
                barrier.wait(); // 2 of 3 arrivals: never completes
            });
        }));
        assert!(r.is_err());
        barrier.reset();
        team.run(|_| {
            barrier.wait();
        });
    }

    #[test]
    fn poison_and_repair_contract() {
        let team = WorkerTeam::new(2);
        assert!(!team.is_poisoned());
        assert_eq!(team.generation(), 0);
        assert!(!team.repair()); // nothing to repair
        let _ = catch_unwind(AssertUnwindSafe(|| {
            team.run(|tid| {
                if tid == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(team.is_poisoned());
        assert_eq!(team.generation(), 1);
        assert!(team.repair());
        assert!(!team.is_poisoned());
        assert!(!team.repair()); // idempotent
                                 // Generation records history; repair does not rewind it.
        assert_eq!(team.generation(), 1);
    }

    #[test]
    fn parked_team_wakes_up() {
        let team = WorkerTeam::new(3);
        let sum = AtomicUsize::new(0);
        team.run(|tid| {
            sum.fetch_add(tid, Ordering::Relaxed);
        });
        // Give workers time to escalate to the condvar park, then run
        // another region through the wake path.
        std::thread::sleep(std::time::Duration::from_millis(30));
        team.run(|tid| {
            sum.fetch_add(tid, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn drop_joins_workers() {
        let team = WorkerTeam::new(4);
        team.run(|_| {});
        drop(team); // must not hang
    }
}
