//! Sense-reversing spin barrier.
//!
//! Traditional level-scheduled triangular solves place a barrier between
//! levels; the paper's CSR-LS baseline (Fig. 12) does exactly that. This
//! barrier exists so that baseline can be reproduced faithfully *without*
//! the heavyweight std barrier: it spins with yield escalation like every
//! other primitive in the crate and is reusable across any number of
//! phases.

use crate::backoff::Backoff;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A reusable spin barrier for a fixed number of participants.
#[derive(Debug)]
pub struct SpinBarrier {
    n: usize,
    arrived: AtomicUsize,
    sense: AtomicBool,
}

impl SpinBarrier {
    /// Barrier for `n` participants (`n ≥ 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier needs at least one participant");
        SpinBarrier {
            n,
            arrived: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Resets the barrier to its initial phase. Caller must guarantee
    /// quiescence (no thread inside `wait`) — typically between parallel
    /// regions, so one barrier can be built per plan and reused across
    /// any number of solves even after a panicked region left it
    /// mid-phase.
    pub fn reset(&self) {
        self.arrived.store(0, Ordering::Relaxed);
        self.sense.store(false, Ordering::Release);
    }

    /// Blocks until all `n` participants have called `wait`. Returns
    /// `true` on exactly one participant per phase (the "leader").
    ///
    /// # Panics
    /// With [`crate::abort::ABORT_PANIC_MSG`] if the enclosing parallel
    /// region aborts (a peer panicked) while waiting — a panicked peer
    /// never arrives, so the phase can never complete.
    pub fn wait(&self) -> bool {
        let phase_sense = self.sense.load(Ordering::Relaxed);
        let arrival = self.arrived.fetch_add(1, Ordering::AcqRel) + 1;
        if arrival == self.n {
            // Last arrival: reset the counter and flip the sense,
            // releasing everyone spinning on it.
            self.arrived.store(0, Ordering::Relaxed);
            self.sense.store(!phase_sense, Ordering::Release);
            true
        } else {
            let mut backoff = Backoff::new();
            while self.sense.load(Ordering::Acquire) == phase_sense {
                crate::abort::check();
                backoff.snooze();
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_participant_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
    }

    #[test]
    fn phases_are_synchronized() {
        const THREADS: usize = 4;
        const PHASES: usize = 20;
        let b = SpinBarrier::new(THREADS);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for phase in 0..PHASES {
                        counter.fetch_add(1, Ordering::Relaxed);
                        b.wait();
                        // After the barrier every increment of this phase
                        // must be visible.
                        let seen = counter.load(Ordering::Relaxed);
                        assert!(seen >= (phase + 1) * THREADS, "phase {phase}: saw {seen}");
                        b.wait(); // second barrier so nobody races ahead
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), THREADS * PHASES);
    }

    #[test]
    fn reset_restores_initial_phase() {
        let b = SpinBarrier::new(2);
        // Simulate an abandoned phase: one arrival, then reset.
        b.arrived.store(1, Ordering::Relaxed);
        b.sense.store(true, Ordering::Relaxed);
        b.reset();
        // A fresh two-party phase must complete normally.
        std::thread::scope(|s| {
            s.spawn(|| {
                b.wait();
            });
            b.wait();
        });
    }

    #[test]
    fn exactly_one_leader_per_phase() {
        const THREADS: usize = 3;
        let b = SpinBarrier::new(THREADS);
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..10 {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), 10);
    }
}
