//! # javelin-sweep
//!
//! The scenario-sweep consumer of the batched-refactorization engine:
//! the circuit-transient workload from the paper's introduction, driven
//! `k` process corners at a time.
//!
//! A transient stepper that also explores process corners (or parameter
//! perturbations, or Monte-Carlo draws) solves `k` **pattern-identical**
//! systems per time step — the conductance stamps differ per corner,
//! the connectivity never does. [`ScenarioSweep`] assembles exactly that
//! workload (the `transient_circuit` generator plus the paper's DM + ND
//! preordering) and retires each step twice:
//!
//! * **batched** — one [`FactorsBatch::refactor_batch`] walks the level
//!   schedule once for all `k` value sets, then the per-scenario factors
//!   precondition the columns of one lockstep panel Krylov solve
//!   ([`ScenarioMatrices`] routes each column's matvec to its own
//!   corner matrix);
//! * **looped** — the classical baseline: `k` scalar
//!   [`IluFactors::refactor`] + scalar Krylov solves, one corner after
//!   another.
//!
//! Every step asserts the two paths agree **bitwise** (column `c` of
//! the batched path carries exactly the bits of the scalar solve of
//! corner `c`) and reports scenarios/sec for both, so the batch
//! speedup is measured against a fair, fully-amortized baseline — not
//! against re-running the symbolic phase.
//!
//! ```
//! use javelin_sweep::{ScenarioSweep, SweepConfig};
//!
//! let mut sweep = ScenarioSweep::new(SweepConfig {
//!     n: 400,
//!     core_size: 16,
//!     k: 4,
//!     ..SweepConfig::default()
//! })
//! .unwrap();
//! let report = sweep.run_step(0).unwrap();
//! assert!(report.bitwise_equal);
//! assert!(report.batched.iter().all(|r| r.converged));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use javelin_core::{
    FactorsBatch, IluFactors, IluOptions, SolveEngine, SymbolicIlu, ZeroPivotPolicy,
};
use javelin_order::{dm::dm_row_permutation, nested_dissection_order};
use javelin_solver::{
    krylov_panel_with, krylov_with, Method, ScenarioMatrices, SolverOptions, SolverResult,
    SolverWorkspace,
};
use javelin_sparse::{CsrMatrix, Panel, PanelMut, Perm, SparseError};
use javelin_synth::circuit::transient_circuit;
use javelin_synth::util::revalue;
use std::time::{Duration, Instant};

/// Configuration of a [`ScenarioSweep`].
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Circuit nodes (system dimension before preordering).
    pub n: usize,
    /// Size of the strongly-coupled dense core block.
    pub core_size: usize,
    /// Generator seed for the circuit assembly.
    pub seed: u64,
    /// Scenarios (process corners) per time step — the batch width `k`.
    pub k: usize,
    /// Relative stamp perturbation per corner (the `revalue` amplitude).
    pub amplitude: f64,
    /// Worker threads for factorization and solves.
    pub nthreads: usize,
    /// Panel Krylov method for the batched path (its scalar counterpart
    /// drives the looped baseline).
    pub method: Method,
    /// Krylov iteration controls shared by both paths.
    pub solver: SolverOptions,
    /// Pivot-breakdown handling for both factorization paths.
    pub zero_pivot: ZeroPivotPolicy,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            n: 2000,
            core_size: 40,
            seed: 0x5eed,
            k: 8,
            amplitude: 0.05,
            nthreads: 2,
            method: Method::BatchGmres,
            solver: SolverOptions {
                tol: 1e-8,
                ..SolverOptions::default()
            },
            zero_pivot: IluOptions::default().zero_pivot,
        }
    }
}

/// What one [`ScenarioSweep::run_step`] measured.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// The time step this report belongs to.
    pub step: usize,
    /// Scenarios retired (the batch width).
    pub k: usize,
    /// Wall time of the single batched `refactor_batch` call.
    pub t_refactor_batched: Duration,
    /// Wall time of the `k` looped scalar `refactor` calls.
    pub t_refactor_looped: Duration,
    /// Wall time of the lockstep panel Krylov solve.
    pub t_solve_batched: Duration,
    /// Wall time of the `k` looped scalar Krylov solves.
    pub t_solve_looped: Duration,
    /// Per-scenario results of the batched path.
    pub batched: Vec<SolverResult>,
    /// Per-scenario results of the looped baseline.
    pub looped: Vec<SolverResult>,
    /// Whether every batched solution column reproduced the looped
    /// baseline bit for bit.
    pub bitwise_equal: bool,
}

impl StepReport {
    /// Refactorization throughput of the batched path, scenarios/sec.
    pub fn scenarios_per_sec_batched(&self) -> f64 {
        self.k as f64 / self.t_refactor_batched.as_secs_f64().max(1e-12)
    }

    /// Refactorization throughput of the looped baseline, scenarios/sec.
    pub fn scenarios_per_sec_looped(&self) -> f64 {
        self.k as f64 / self.t_refactor_looped.as_secs_f64().max(1e-12)
    }

    /// Batched-over-looped refactorization speedup.
    pub fn refactor_speedup(&self) -> f64 {
        self.t_refactor_looped.as_secs_f64() / self.t_refactor_batched.as_secs_f64().max(1e-12)
    }
}

/// The scalar Krylov method that drives the looped baseline for a
/// batched `method` (identity for the already-scalar variants).
pub fn scalar_counterpart(method: Method) -> Method {
    match method {
        Method::BatchPcg => Method::Pcg,
        Method::BatchBicgstab => Method::Bicgstab,
        Method::BatchGmres => Method::Gmres,
        other => other,
    }
}

/// A transient circuit sweep: one assembled + preordered system, one
/// shared symbolic analysis, and the two refactor-and-solve paths the
/// module docs describe (batched vs looped), ready to step.
pub struct ScenarioSweep {
    cfg: SweepConfig,
    a: CsrMatrix<f64>,
    /// Looped-baseline factors (scalar refactor per corner).
    factors: IluFactors<f64>,
    /// Batched-path factors (one schedule walk for all corners).
    batch: FactorsBatch<f64>,
    engine: SolveEngine,
    ws_batched: SolverWorkspace<f64>,
    ws_looped: SolverWorkspace<f64>,
}

impl ScenarioSweep {
    /// Assembles the circuit, applies the paper's DM + ND preordering,
    /// analyzes the pattern once and prepares both refactorization
    /// paths (the batch is seeded from the step-0 corners).
    ///
    /// # Errors
    /// Everything [`SymbolicIlu::analyze`] / [`SymbolicIlu::factor`] /
    /// [`SymbolicIlu::factor_batch`] can return.
    pub fn new(cfg: SweepConfig) -> Result<Self, SparseError> {
        let raw = transient_circuit(cfg.n, cfg.core_size, true, cfg.seed);
        let rowp = dm_row_permutation(&raw)?;
        let a = raw.permute(&rowp, &Perm::identity(raw.ncols()))?;
        let nd = nested_dissection_order(&a, 64);
        let a = a.permute_sym(&nd)?;

        let opts = IluOptions {
            nthreads: cfg.nthreads,
            zero_pivot: cfg.zero_pivot,
            ..IluOptions::default()
        };
        let sym = SymbolicIlu::analyze(&a, &opts)?;
        let factors = sym.factor(&a)?;
        let engine = factors.default_engine();
        factors.reserve_panel_width(cfg.k);
        let corners = corner_matrices(&a, &cfg, 0);
        let mats: Vec<&CsrMatrix<f64>> = corners.iter().collect();
        let batch = factors.symbolic().factor_batch(&mats)?;
        let n = a.nrows();
        let mut ws_batched = SolverWorkspace::new();
        ws_batched.reserve(n, cfg.solver.restart, cfg.k.max(1));
        let ws_looped = SolverWorkspace::new();
        Ok(ScenarioSweep {
            cfg,
            a,
            factors,
            batch,
            engine,
            ws_batched,
            ws_looped,
        })
    }

    /// The assembled, preordered base matrix.
    pub fn matrix(&self) -> &CsrMatrix<f64> {
        &self.a
    }

    /// The sweep configuration.
    pub fn config(&self) -> &SweepConfig {
        &self.cfg
    }

    /// The batched factor handle (per-scenario factors and statuses).
    pub fn batch(&self) -> &FactorsBatch<f64> {
        &self.batch
    }

    /// The `k` corner matrices of time step `step`: the base stamps
    /// drifted by the step, perturbed per corner — same pattern, `k`
    /// value sets.
    pub fn corner_matrices(&self, step: usize) -> Vec<CsrMatrix<f64>> {
        corner_matrices(&self.a, &self.cfg, step)
    }

    /// The deterministic right-hand-side panel of time step `step`
    /// (column `c` is scenario `c`'s excitation).
    pub fn rhs_panel(&self, step: usize) -> Vec<f64> {
        let n = self.a.nrows();
        let k = self.cfg.k;
        let mut b = vec![0.0; n * k];
        for c in 0..k {
            for i in 0..n {
                b[c * n + i] = ((i * 7 + c * 13 + step * 37) % 29) as f64 * 0.1 - 1.0;
            }
        }
        b
    }

    /// Retires time step `step` through both paths and cross-checks
    /// them bitwise (see the module docs).
    ///
    /// # Errors
    /// Per-scenario factorization errors from either path (the first
    /// failing scenario's [`SparseError::ZeroPivot`] /
    /// [`SparseError::Breakdown`]); inspect [`ScenarioSweep::batch`]
    /// for the full per-scenario status picture afterwards.
    pub fn run_step(&mut self, step: usize) -> Result<StepReport, SparseError> {
        let n = self.a.nrows();
        let k = self.cfg.k;
        let corners = self.corner_matrices(step);
        let mats: Vec<&CsrMatrix<f64>> = corners.iter().collect();
        let b = self.rhs_panel(step);

        // Batched path: one schedule walk for all k value sets …
        let t0 = Instant::now();
        self.batch.refactor_batch(&mats)?;
        let t_refactor_batched = t0.elapsed();
        if let Some(err) = self
            .batch
            .statuses()
            .iter()
            .find_map(|s| s.as_ref().err().cloned())
        {
            return Err(err);
        }
        // … then per-scenario preconditioners feeding the columns of
        // one lockstep panel Krylov solve.
        let mut xb = vec![0.0; n * k];
        let m = self.batch.precond(self.engine);
        let t1 = Instant::now();
        let batched = krylov_panel_with(
            self.cfg.method,
            &ScenarioMatrices(&mats),
            Panel::new(&b, n, k),
            PanelMut::new(&mut xb, n, k),
            &m,
            &self.cfg.solver,
            &mut self.ws_batched,
        );
        let t_solve_batched = t1.elapsed();

        // Looped baseline: k scalar refactor + solve round trips.
        let scalar = scalar_counterpart(self.cfg.method);
        let mut xl = vec![0.0; n * k];
        let mut looped = Vec::with_capacity(k);
        let mut t_refactor_looped = Duration::ZERO;
        let mut t_solve_looped = Duration::ZERO;
        for (c, xc) in xl.chunks_exact_mut(n).enumerate() {
            let tr = Instant::now();
            self.factors.refactor(mats[c])?;
            t_refactor_looped += tr.elapsed();
            let m = self.factors.with_engine(self.engine);
            let ts = Instant::now();
            looped.push(krylov_with(
                scalar,
                mats[c],
                &b[c * n..(c + 1) * n],
                xc,
                &m,
                &self.cfg.solver,
                &mut self.ws_looped,
            ));
            t_solve_looped += ts.elapsed();
        }

        let bitwise_equal = xb.iter().zip(&xl).all(|(p, q)| p.to_bits() == q.to_bits());
        Ok(StepReport {
            step,
            k,
            t_refactor_batched,
            t_refactor_looped,
            t_solve_batched,
            t_solve_looped,
            batched,
            looped,
            bitwise_equal,
        })
    }
}

fn corner_matrices(a: &CsrMatrix<f64>, cfg: &SweepConfig, step: usize) -> Vec<CsrMatrix<f64>> {
    (0..cfg.k)
        .map(|c| revalue(a, 0.3 + step as f64 + c as f64 * 0.77, cfg.amplitude))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SweepConfig {
        SweepConfig {
            n: 500,
            core_size: 20,
            k: 4,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn batched_step_matches_looped_baseline_bitwise() {
        let mut sweep = ScenarioSweep::new(small()).unwrap();
        for step in 0..2 {
            let report = sweep.run_step(step).unwrap();
            assert!(report.bitwise_equal, "step {step}");
            assert_eq!(report.batched.len(), 4);
            assert!(report.batched.iter().all(|r| r.converged), "step {step}");
            for (c, (b, l)) in report.batched.iter().zip(&report.looped).enumerate() {
                assert_eq!(b.iterations, l.iterations, "step {step} scenario {c}");
            }
            assert!(sweep.batch().all_ok());
        }
    }

    #[test]
    fn methods_agree_with_their_scalar_counterparts() {
        for method in [Method::BatchPcg, Method::BatchBicgstab, Method::BatchGmres] {
            let mut sweep = ScenarioSweep::new(SweepConfig { method, ..small() }).unwrap();
            let report = sweep.run_step(0).unwrap();
            assert!(report.bitwise_equal, "{method:?}");
        }
    }

    #[test]
    fn corner_matrices_share_the_pattern() {
        let sweep = ScenarioSweep::new(small()).unwrap();
        let corners = sweep.corner_matrices(3);
        for c in &corners {
            assert_eq!(c.rowptr(), sweep.matrix().rowptr());
            assert_eq!(c.colidx(), sweep.matrix().colidx());
        }
        // Distinct value sets per corner.
        assert_ne!(corners[0].vals(), corners[1].vals());
    }
}
