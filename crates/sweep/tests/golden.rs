//! Golden regression test for the circuit-transient scenario sweep:
//! a fixed-seed assembly driven three steps, checked against committed
//! per-scenario iteration-count fixtures (exact) and residual bounds.
//!
//! The entire pipeline underneath is deterministic — fixed generator
//! seed, deterministic factorization engines (bit-identical at every
//! thread count), lockstep panel Krylov with the bitwise column
//! contract — so iteration counts are stable and any drift here means
//! a numeric behavior change somewhere in the stack, not noise.

use javelin_solver::Method;
use javelin_sweep::{ScenarioSweep, SweepConfig};

/// Committed fixture: per-step, per-scenario GMRES iteration counts of
/// the batched path (k = 4 corners, tol = 1e-8). Regenerate by running
/// this test with `GOLDEN_PRINT=1` and pasting the printed table.
const GOLDEN_ITERS: [[usize; 4]; 3] = [[7, 8, 8, 8], [8, 8, 8, 8], [7, 7, 8, 8]];

fn golden_config() -> SweepConfig {
    SweepConfig {
        n: 600,
        core_size: 24,
        seed: 0x5eed,
        k: 4,
        amplitude: 0.05,
        nthreads: 2,
        method: Method::BatchGmres,
        ..SweepConfig::default()
    }
}

#[test]
fn transient_sweep_matches_committed_fixtures() {
    let mut sweep = ScenarioSweep::new(golden_config()).unwrap();
    let mut observed = Vec::new();
    for (step, golden) in GOLDEN_ITERS.iter().enumerate() {
        let report = sweep.run_step(step).unwrap();
        assert!(report.bitwise_equal, "step {step}: paths diverged bitwise");
        let iters: Vec<usize> = report.batched.iter().map(|r| r.iterations).collect();
        observed.push(iters.clone());
        for (c, r) in report.batched.iter().enumerate() {
            assert!(r.converged, "step {step} scenario {c} did not converge");
            // Residuals are float-valued, so they get a bound rather
            // than an exact fixture: converged means ≤ tol, and the
            // reported value must be a sane positive float.
            assert!(
                r.relative_residual <= 1e-8 && r.relative_residual >= 0.0,
                "step {step} scenario {c}: residual {}",
                r.relative_residual
            );
        }
        if std::env::var("GOLDEN_PRINT").is_err() {
            assert_eq!(
                &iters[..],
                &golden[..],
                "step {step}: iteration counts drifted from the committed fixture"
            );
        }
    }
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!("GOLDEN_ITERS = {observed:?}");
    }
}
