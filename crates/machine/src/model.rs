//! Parameterized machine models with presets for the paper's testbeds.

/// Timing model of a shared-memory node. All costs in nanoseconds.
#[derive(Debug, Clone)]
pub struct MachineModel {
    /// Human-readable name (appears in reports).
    pub name: &'static str,
    /// Physical cores.
    pub n_cores: usize,
    /// Hardware threads per core (KNL runs 2 in the paper's Fig. 11b).
    pub threads_per_core: usize,
    /// Sockets; threads are assigned round-robin blocks of
    /// `n_cores / sockets`.
    pub sockets: usize,
    /// Relative per-thread throughput when a core is shared by two
    /// hardware threads (≈ 0.6–0.7 on KNL).
    pub smt_efficiency: f64,
    /// Fixed cost of factoring one row (pointer chasing, loop setup).
    pub row_factor_base_ns: f64,
    /// Cost per stored entry touched during a row factorization.
    pub row_factor_per_nnz_ns: f64,
    /// Fixed cost of solving one row in `stri`.
    pub row_solve_base_ns: f64,
    /// Cost per entry in a `stri` row sweep.
    pub row_solve_per_nnz_ns: f64,
    /// Cost of checking one (satisfied) point-to-point wait.
    pub p2p_check_ns: f64,
    /// Extra latency when a point-to-point wait actually blocks (cache
    /// line transfer + resume).
    pub p2p_block_ns: f64,
    /// Additional wait cost when the awaited thread lives on another
    /// socket (the paper's NUMA observation on 28 cores).
    pub numa_penalty_ns: f64,
    /// Cost of one full-team barrier (per level in CSR-LS).
    pub barrier_ns: f64,
    /// Per-task overhead of the tasking runtime (the OpenMP-task cost
    /// the paper measured with VTune on KNL).
    pub task_overhead_ns: f64,
}

impl MachineModel {
    /// One socket of the paper's Haswell node (14 cores, E5-2695 v3).
    pub fn haswell14() -> Self {
        MachineModel {
            name: "haswell-14",
            n_cores: 14,
            threads_per_core: 1,
            sockets: 1,
            smt_efficiency: 1.0,
            row_factor_base_ns: 45.0,
            row_factor_per_nnz_ns: 6.0,
            row_solve_base_ns: 25.0,
            row_solve_per_nnz_ns: 3.0,
            p2p_check_ns: 18.0,
            p2p_block_ns: 90.0,
            numa_penalty_ns: 0.0,
            barrier_ns: 1200.0,
            task_overhead_ns: 900.0,
        }
    }

    /// Both sockets (28 cores) — adds the NUMA penalty the paper blames
    /// for poor cross-socket scaling.
    pub fn haswell28() -> Self {
        MachineModel {
            name: "haswell-28",
            n_cores: 28,
            sockets: 2,
            numa_penalty_ns: 350.0,
            barrier_ns: 2200.0,
            ..Self::haswell14()
        }
    }

    /// The paper's KNL 7250 node, 68 cores, one thread per core:
    /// slower cores, pricier synchronization, heavier tasking.
    pub fn knl68() -> Self {
        MachineModel {
            name: "knl-68",
            n_cores: 68,
            threads_per_core: 1,
            sockets: 1,
            smt_efficiency: 1.0,
            row_factor_base_ns: 140.0,
            row_factor_per_nnz_ns: 19.0,
            row_solve_base_ns: 75.0,
            row_solve_per_nnz_ns: 9.0,
            p2p_check_ns: 45.0,
            p2p_block_ns: 220.0,
            numa_penalty_ns: 0.0,
            barrier_ns: 5200.0,
            task_overhead_ns: 2600.0,
        }
    }

    /// KNL with 2 hardware threads per core (136 threads, Fig. 11b):
    /// minor gains at best — shared cores throttle each thread.
    pub fn knl136() -> Self {
        MachineModel {
            name: "knl-136",
            threads_per_core: 2,
            smt_efficiency: 0.62,
            ..Self::knl68()
        }
    }

    /// Generic flat machine with `n` equal cores — useful in tests.
    pub fn generic(n: usize) -> Self {
        MachineModel {
            name: "generic",
            n_cores: n,
            threads_per_core: 1,
            sockets: 1,
            smt_efficiency: 1.0,
            row_factor_base_ns: 50.0,
            row_factor_per_nnz_ns: 5.0,
            row_solve_base_ns: 25.0,
            row_solve_per_nnz_ns: 2.5,
            p2p_check_ns: 15.0,
            p2p_block_ns: 75.0,
            numa_penalty_ns: 0.0,
            barrier_ns: 1000.0,
            task_overhead_ns: 800.0,
        }
    }

    /// Maximum schedulable threads.
    pub fn max_threads(&self) -> usize {
        self.n_cores * self.threads_per_core
    }

    /// Per-thread speed factor at a given thread count (SMT sharing).
    pub fn thread_speed(&self, nthreads: usize) -> f64 {
        if nthreads > self.n_cores {
            self.smt_efficiency
        } else {
            1.0
        }
    }

    /// Socket of a thread id under block assignment.
    pub fn socket_of(&self, tid: usize) -> usize {
        if self.sockets <= 1 {
            return 0;
        }
        let physical = tid % self.n_cores;
        let per_socket = self.n_cores.div_ceil(self.sockets);
        physical / per_socket
    }

    /// Cost (ns) of factoring a row with `nnz` stored entries.
    pub fn row_factor_cost(&self, nnz: usize) -> f64 {
        self.row_factor_base_ns + self.row_factor_per_nnz_ns * nnz as f64
    }

    /// Cost (ns) of one triangular-solve row sweep over `nnz` entries.
    pub fn row_solve_cost(&self, nnz: usize) -> f64 {
        self.row_solve_base_ns + self.row_solve_per_nnz_ns * nnz as f64
    }

    /// Rescales the compute costs so that a simulated serial
    /// factorization of `total_row_cost_ns` takes `measured_seconds` —
    /// calibrating the model against the host.
    pub fn calibrated_to(mut self, simulated_serial_s: f64, measured_serial_s: f64) -> Self {
        if simulated_serial_s > 0.0 && measured_serial_s > 0.0 {
            let scale = measured_serial_s / simulated_serial_s;
            self.row_factor_base_ns *= scale;
            self.row_factor_per_nnz_ns *= scale;
            self.row_solve_base_ns *= scale;
            self.row_solve_per_nnz_ns *= scale;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        assert_eq!(MachineModel::haswell14().max_threads(), 14);
        assert_eq!(MachineModel::haswell28().max_threads(), 28);
        assert_eq!(MachineModel::knl68().max_threads(), 68);
        assert_eq!(MachineModel::knl136().max_threads(), 136);
        assert!(MachineModel::haswell28().numa_penalty_ns > 0.0);
        assert_eq!(MachineModel::haswell14().numa_penalty_ns, 0.0);
    }

    #[test]
    fn knl_cores_slower_than_haswell() {
        let h = MachineModel::haswell14();
        let k = MachineModel::knl68();
        assert!(k.row_factor_cost(10) > 2.0 * h.row_factor_cost(10));
        assert!(k.task_overhead_ns > h.task_overhead_ns);
    }

    #[test]
    fn smt_throttles() {
        let k = MachineModel::knl136();
        assert_eq!(k.thread_speed(68), 1.0);
        assert!(k.thread_speed(136) < 0.7);
    }

    #[test]
    fn sockets_partition_threads() {
        let h = MachineModel::haswell28();
        assert_eq!(h.socket_of(0), 0);
        assert_eq!(h.socket_of(13), 0);
        assert_eq!(h.socket_of(14), 1);
        assert_eq!(h.socket_of(27), 1);
        let single = MachineModel::haswell14();
        assert_eq!(single.socket_of(13), 0);
    }

    #[test]
    fn calibration_scales_costs() {
        let m = MachineModel::generic(4).calibrated_to(1.0, 2.0);
        assert!((m.row_factor_base_ns - 100.0).abs() < 1e-9);
        let untouched = MachineModel::generic(4).calibrated_to(0.0, 2.0);
        assert_eq!(untouched.row_factor_base_ns, 50.0);
    }
}
