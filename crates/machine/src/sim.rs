//! Discrete-event simulation of Javelin's schedules on a machine model.
//!
//! The simulator replays the library's *actual* data structures: the
//! pruned point-to-point schedules (rebuilt for any thread count from
//! the factor's pattern), the barrier level sets, the Segmented-Rows
//! task DAG and Even-Rows chunking. Per-row costs use the true
//! elimination work (`nnz(row) + Σ_{c ∈ L(row)} |U(c)|` — the exact
//! inner-loop trip count of the up-looking kernel), so critical paths,
//! imbalance, and synchronization counts are the real ones; only the
//! nanosecond coefficients come from the model.

use crate::model::MachineModel;
use javelin_core::factors::IluFactors;
use javelin_core::options::{LowerMethod, SolveEngine};
use javelin_level::P2PSchedule;
use javelin_sparse::Scalar;

/// Simulated phase timings (seconds).
#[derive(Debug, Clone, Default)]
pub struct SimBreakdown {
    /// Total simulated wall time.
    pub total_s: f64,
    /// Upper-stage (point-to-point) portion.
    pub upper_s: f64,
    /// Lower-stage (SR/ER + corner) portion.
    pub lower_s: f64,
    /// Waits that actually blocked.
    pub blocked_waits: usize,
}

const NS: f64 = 1e-9;

/// Core event loop: processes tasks in execution-index order (all waits
/// reference earlier indices), tracking per-thread clocks.
fn sim_p2p_schedule(
    schedule: &P2PSchedule,
    machine: &MachineModel,
    nthreads: usize,
    cost_ns: impl Fn(usize) -> f64,
) -> (f64, usize) {
    let m = schedule.n_tasks();
    let speed = machine.thread_speed(nthreads);
    let mut finish = vec![0.0f64; m];
    let mut clock = vec![0.0f64; nthreads];
    let mut blocked = 0usize;
    for task in 0..m {
        let t = schedule.owner(task);
        let mut start = clock[t];
        for &(wt, req) in schedule.waits(task) {
            let dep_task = schedule.thread_tasks(wt)[req - 1];
            let mut check = machine.p2p_check_ns;
            if machine.socket_of(wt) != machine.socket_of(t) {
                check += machine.numa_penalty_ns;
            }
            start += check * NS;
            let dep_done = finish[dep_task];
            if dep_done > start {
                blocked += 1;
                start = dep_done + machine.p2p_block_ns * NS;
            }
        }
        let done = start + cost_ns(task) / speed * NS;
        finish[task] = done;
        clock[t] = done;
    }
    let makespan = clock.iter().cloned().fold(0.0, f64::max);
    (makespan, blocked)
}

/// Per-row elimination work of the up-looking kernel: the exact trip
/// count of its loops on the factor pattern.
fn factor_touches<T: Scalar>(f: &IluFactors<T>) -> Vec<f64> {
    let lu = f.lu();
    let dp = f.diag_positions();
    let n = lu.nrows();
    let mut touches = vec![0.0f64; n];
    for r in 0..n {
        let mut w = (lu.rowptr()[r + 1] - lu.rowptr()[r]) as f64;
        for k in lu.rowptr()[r]..dp[r] {
            let c = lu.colidx()[k];
            w += (lu.rowptr()[c + 1] - dp[c]) as f64;
        }
        touches[r] = w;
    }
    touches
}

/// Split of a trailing row's work at the corner boundary:
/// `(pre_corner, corner)` trip counts.
fn trailing_split<T: Scalar>(f: &IluFactors<T>, r: usize) -> (f64, f64) {
    let lu = f.lu();
    let dp = f.diag_positions();
    let n_upper = f.plan().n_upper;
    let row_nnz = (lu.rowptr()[r + 1] - lu.rowptr()[r]) as f64;
    let mut pre = 0.0;
    let mut corner = 0.0;
    for k in lu.rowptr()[r]..dp[r] {
        let c = lu.colidx()[k];
        let scan = (lu.rowptr()[c + 1] - dp[c]) as f64;
        if c < n_upper {
            pre += scan;
        } else {
            corner += scan;
        }
    }
    let pre_nnz =
        (lu.colidx()[lu.rowptr()[r]..lu.rowptr()[r + 1]].partition_point(|&c| c < n_upper)) as f64;
    (pre + pre_nnz, corner + (row_nnz - pre_nnz))
}

/// Simulated wall time of the Javelin ILU numeric factorization at
/// `nthreads` threads.
pub fn sim_factor_time<T: Scalar>(
    f: &IluFactors<T>,
    machine: &MachineModel,
    nthreads: usize,
) -> SimBreakdown {
    let nthreads = nthreads.clamp(1, machine.max_threads());
    let lu = f.lu();
    let n = lu.nrows();
    let n_upper = f.plan().n_upper;
    let touches = factor_touches(f);
    let cost = |r: usize| machine.row_factor_base_ns + machine.row_factor_per_nnz_ns * touches[r];
    let speed = machine.thread_speed(nthreads);

    // Upper stage.
    let (upper_s, blocked) = if nthreads == 1 {
        ((0..n_upper).map(&cost).sum::<f64>() * NS, 0)
    } else {
        let schedule =
            P2PSchedule::build(n_upper, nthreads, &f.plan().upper_level_ptr, |r, out| {
                for k in lu.rowptr()[r]..f.diag_positions()[r] {
                    out.push(lu.colidx()[k]);
                }
            });
        sim_p2p_schedule(&schedule, machine, nthreads, cost)
    };

    // Lower stage.
    let mut lower_s = 0.0;
    if n_upper < n {
        let splits: Vec<(f64, f64)> = (n_upper..n).map(|r| trailing_split(f, r)).collect();
        let corner_serial: f64 = splits
            .iter()
            .map(|&(_, c)| machine.row_factor_base_ns + machine.row_factor_per_nnz_ns * c)
            .sum::<f64>()
            * NS;
        let pre_costs: Vec<f64> = splits
            .iter()
            .map(|&(p, _)| machine.row_factor_base_ns + machine.row_factor_per_nnz_ns * p)
            .collect();
        let method = if nthreads == 1 {
            LowerMethod::EvenRows
        } else {
            f.stats().lower_method
        };
        lower_s = match method {
            LowerMethod::EvenRows | LowerMethod::Auto => {
                if nthreads == 1 {
                    pre_costs.iter().sum::<f64>() * NS + corner_serial
                } else {
                    // Contiguous chunks of trailing rows.
                    let chunk = splits.len().div_ceil(nthreads);
                    let mut worst = 0.0f64;
                    for c in pre_costs.chunks(chunk.max(1)) {
                        worst = worst.max(c.iter().sum());
                    }
                    worst / speed * NS + corner_serial
                }
            }
            LowerMethod::SegmentedRows => {
                // Per-(row, block) segments as chains; list-schedule with
                // per-task overhead (the paper's KNL tasking cost).
                sim_sr_taskgraph(f, machine, nthreads, &splits) + corner_serial
            }
        };
    }
    SimBreakdown {
        total_s: upper_s + lower_s,
        upper_s,
        lower_s,
        blocked_waits: blocked,
    }
}

/// List-schedules the SR segment chains (one chain per trailing row,
/// one task per (row, level-block) segment) on `nthreads` workers.
fn sim_sr_taskgraph<T: Scalar>(
    f: &IluFactors<T>,
    machine: &MachineModel,
    nthreads: usize,
    _splits: &[(f64, f64)],
) -> f64 {
    let tile = f.tile_size().max(4);
    let lu = f.lu();
    let dp = f.diag_positions();
    let n = lu.nrows();
    let n_upper = f.plan().n_upper;
    let level_ptr = &f.plan().upper_level_ptr;
    let speed = machine.thread_speed(nthreads);
    // Build per-row segment cost chains.
    let mut chains: Vec<Vec<f64>> = Vec::new();
    for r in n_upper..n {
        let (rs, re) = (lu.rowptr()[r], lu.rowptr()[r + 1]);
        let cols = &lu.colidx()[rs..re];
        let sub_end = cols.partition_point(|&c| c < n_upper);
        let mut chain = Vec::new();
        let mut k = 0usize;
        let mut lvl = 0usize;
        while k < sub_end {
            while level_ptr[lvl + 1] <= cols[k] {
                lvl += 1;
            }
            let seg_end = cols[..sub_end].partition_point(|&c| c < level_ptr[lvl + 1]);
            let mut work = (seg_end - k) as f64;
            for &c in &cols[k..seg_end] {
                work += (lu.rowptr()[c + 1] - dp[c]) as f64;
            }
            // Fork-join tile model: a segment of `len` entries splits
            // into ceil(len/tile) tile tasks (parallelizable divide +
            // delta collection) followed by a serial apply. Smaller
            // tiles buy intra-segment parallelism at the price of one
            // task overhead each — the granularity knob of Fig. 6.
            let len = (seg_end - k) as f64;
            let n_tiles = (len / tile as f64).ceil().max(1.0);
            let lanes = n_tiles.min(nthreads as f64);
            let work_ns = machine.row_factor_per_nnz_ns * work;
            let elapsed = if n_tiles > 1.0 {
                machine.task_overhead_ns * (n_tiles / lanes).ceil()
                    + machine.row_factor_base_ns
                    + 0.7 * work_ns / lanes   // tiled divide+collect
                    + 0.3 * work_ns // serial apply
            } else {
                machine.task_overhead_ns + machine.row_factor_base_ns + work_ns
            };
            chain.push(elapsed);
            k = seg_end;
        }
        if !chain.is_empty() {
            chains.push(chain);
        }
    }
    // Greedy list scheduling of chain heads onto the earliest thread.
    let mut thread_clock = vec![0.0f64; nthreads];
    let mut chain_clock = vec![0.0f64; chains.len()];
    let mut next_seg = vec![0usize; chains.len()];
    loop {
        // Pick the runnable chain whose next segment can start earliest.
        let mut best: Option<(usize, f64)> = None;
        for (ci, chain) in chains.iter().enumerate() {
            if next_seg[ci] < chain.len() {
                let ready = chain_clock[ci];
                if best.is_none_or(|(_, t)| ready < t) {
                    best = Some((ci, ready));
                }
            }
        }
        let Some((ci, ready)) = best else { break };
        // Earliest-available thread.
        let (tid, _) = thread_clock
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("threads exist");
        let start = ready.max(thread_clock[tid]);
        let done = start + chains[ci][next_seg[ci]] / speed * NS;
        thread_clock[tid] = done;
        chain_clock[ci] = done;
        next_seg[ci] += 1;
    }
    thread_clock.iter().cloned().fold(0.0, f64::max)
}

/// Simulated wall time of one preconditioner application (forward +
/// backward triangular solve) at `nthreads` threads with `engine`.
pub fn sim_trisolve_time<T: Scalar>(
    f: &IluFactors<T>,
    machine: &MachineModel,
    nthreads: usize,
    engine: SolveEngine,
) -> f64 {
    let nthreads = nthreads.clamp(1, machine.max_threads());
    let lu = f.lu();
    let dp = f.diag_positions();
    let n = lu.nrows();
    let n_upper = f.plan().n_upper;
    let speed = machine.thread_speed(nthreads);
    let fwd_cost = |r: usize| machine.row_solve_cost(dp[r] - lu.rowptr()[r]);
    let bwd_cost = |r: usize| machine.row_solve_cost(lu.rowptr()[r + 1] - dp[r]);

    match engine {
        SolveEngine::Serial => {
            ((0..n).map(fwd_cost).sum::<f64>() + (0..n).map(bwd_cost).sum::<f64>()) * NS
        }
        SolveEngine::BarrierLevel => {
            let mut t = 0.0;
            for (levels, cost) in [
                (&f.plan().fwd_levels, &fwd_cost as &dyn Fn(usize) -> f64),
                (&f.plan().bwd_levels, &bwd_cost as &dyn Fn(usize) -> f64),
            ] {
                for l in 0..levels.n_levels() {
                    let rows = levels.level(l);
                    // Round-robin distribution within the level.
                    let lanes = nthreads.min(rows.len()).max(1);
                    let mut sums = vec![0.0f64; lanes];
                    for (i, &r) in rows.iter().enumerate() {
                        sums[i % lanes] += cost(r);
                    }
                    let worst = sums.iter().cloned().fold(0.0, f64::max);
                    t += worst / speed * NS + machine.barrier_ns * NS;
                }
            }
            t
        }
        SolveEngine::PointToPoint | SolveEngine::PointToPointLower => {
            if nthreads == 1 {
                return sim_trisolve_time(f, machine, 1, SolveEngine::Serial);
            }
            // Forward: p2p over the upper stage.
            let fwd_sched =
                P2PSchedule::build(n_upper, nthreads, &f.plan().upper_level_ptr, |r, out| {
                    for k in lu.rowptr()[r]..dp[r] {
                        let c = lu.colidx()[k];
                        if c < n_upper {
                            out.push(c);
                        }
                    }
                });
            let (mut fwd_s, _) = sim_p2p_schedule(&fwd_sched, machine, nthreads, fwd_cost);
            // Trailing forward part.
            if n_upper < n {
                fwd_s += machine.barrier_ns * NS;
                let block_entries = *f.plan().block_seg_ptr.last().unwrap_or(&0) as f64;
                let corner_cost: f64 = (n_upper..n)
                    .map(|r| {
                        let (k_lo, k_hi) = f.plan().block_rows[r - n_upper];
                        let corner_l = (dp[r] - k_lo) - (k_hi - k_lo);
                        machine.row_solve_cost(corner_l)
                    })
                    .sum();
                if engine == SolveEngine::PointToPointLower {
                    // Tiled gather across all threads, a join barrier,
                    // then the serial corner (matches engines.rs).
                    let gather =
                        machine.row_solve_per_nnz_ns * block_entries / (nthreads as f64 * speed);
                    fwd_s += (gather + corner_cost) * NS + 2.0 * machine.barrier_ns * NS;
                } else {
                    // Thread 0 does the whole trailing part serially,
                    // then the team re-joins.
                    let serial_block = machine.row_solve_per_nnz_ns * block_entries;
                    fwd_s += (serial_block + corner_cost) * NS + machine.barrier_ns * NS;
                }
            }
            // Backward: corner first (serial), then p2p.
            let corner_bwd: f64 = (n_upper..n).map(bwd_cost).sum::<f64>() * NS;
            let bwd_sched =
                P2PSchedule::build(n_upper, nthreads, &f.plan().bwd_level_ptr, |task, out| {
                    let r = f.plan().bwd_row_of_task[task];
                    for k in (dp[r] + 1)..lu.rowptr()[r + 1] {
                        let c = lu.colidx()[k];
                        if c < n_upper {
                            // Map row -> backward execution index.
                            let dep_task = f
                                .plan()
                                .bwd_row_of_task
                                .iter()
                                .position(|&x| x == c)
                                .expect("row present");
                            out.push(dep_task);
                        }
                    }
                });
            let (bwd_s, _) = sim_p2p_schedule(&bwd_sched, machine, nthreads, |task| {
                bwd_cost(f.plan().bwd_row_of_task[task])
            });
            fwd_s + corner_bwd + bwd_s
        }
    }
}

/// Simulated wall time of the heavyweight (WSMP-class) comparator
/// factorization.
///
/// The comparator executes the *same* elimination sweeps as Javelin
/// (verified by the value-equality tests in `javelin-baseline`), so its
/// work is Javelin's serial work (`javelin_serial_s`, from
/// [`sim_factor_time`] at one thread) **plus** the supernodal overheads:
/// per-row gather/scatter setup and per-entry data movement charged at
/// 8× the streaming rate (indirect, cache-hostile copies), with
/// panel-level synchronization and scaling that saturates at ~8 workers
/// — the paper's observation. WSMP's additional symbolic/allocation
/// overheads are not modeled (DESIGN.md §4.3), so the absolute gap is
/// understated relative to the paper's multiple magnitudes; the shape
/// (always slower, stops scaling) is preserved.
pub fn sim_heavy_factor_time(
    javelin_serial_s: f64,
    n_rows: usize,
    moved_entries: usize,
    n_panels: usize,
    machine: &MachineModel,
    nthreads: usize,
) -> f64 {
    let nthreads = nthreads.clamp(1, machine.max_threads()) as f64;
    let move_ns = 8.0 * machine.row_factor_per_nnz_ns;
    let serial = 0.25; // non-parallelizable fraction (symbolic, assembly)
    let work = javelin_serial_s
        + (n_rows as f64 * 2.0 * machine.row_factor_base_ns + moved_entries as f64 * move_ns) * NS;
    let effective_p = nthreads.min(8.0);
    let sync = n_panels as f64 * machine.barrier_ns * (nthreads - 1.0).max(0.0).sqrt() * NS;
    work * serial + work * (1.0 - serial) / effective_p + sync
}

#[cfg(test)]
mod tests {
    use super::*;
    use javelin_core::{factorize, IluOptions};
    use javelin_sparse::{CooMatrix, CsrMatrix};

    fn grid(nx: usize, ny: usize) -> CsrMatrix<f64> {
        let n = nx * ny;
        let idx = |i: usize, j: usize| i * ny + j;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..nx {
            for j in 0..ny {
                let r = idx(i, j);
                coo.push(r, r, 4.0).unwrap();
                if i + 1 < nx {
                    coo.push(r, idx(i + 1, j), -1.0).unwrap();
                    coo.push(idx(i + 1, j), r, -1.0).unwrap();
                }
                if j + 1 < ny {
                    coo.push(r, idx(i, j + 1), -1.0).unwrap();
                    coo.push(idx(i, j + 1), r, -1.0).unwrap();
                }
            }
        }
        coo.to_csr()
    }

    fn chain(n: usize) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i > 0 {
                coo.push(i, i - 1, -1.0).unwrap();
                coo.push(i - 1, i, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn factor_speedup_grows_then_saturates() {
        let a = grid(40, 40);
        let f = factorize(&a, &IluOptions::default()).unwrap();
        let m = MachineModel::haswell14();
        let t1 = sim_factor_time(&f, &m, 1).total_s;
        let t4 = sim_factor_time(&f, &m, 4).total_s;
        let t14 = sim_factor_time(&f, &m, 14).total_s;
        assert!(t4 < t1, "4 threads should beat 1: {t4} vs {t1}");
        assert!(t14 < t4, "14 threads should beat 4");
        let s14 = t1 / t14;
        assert!(
            s14 > 3.0 && s14 < 14.0,
            "speedup {s14} out of plausible range"
        );
    }

    #[test]
    fn chain_matrix_cannot_scale() {
        // A pure dependency chain has level width 1: no speedup, only
        // sync overhead.
        let a = chain(400);
        let f = factorize(&a, &IluOptions::level_scheduling_only(1)).unwrap();
        let m = MachineModel::haswell14();
        let t1 = sim_factor_time(&f, &m, 1).total_s;
        let t8 = sim_factor_time(&f, &m, 8).total_s;
        assert!(t8 >= t1 * 0.95, "chain must not speed up: {t1} -> {t8}");
    }

    #[test]
    fn p2p_beats_barrier_for_trisolve() {
        let a = grid(30, 30);
        let f = factorize(&a, &IluOptions::default()).unwrap();
        let m = MachineModel::haswell14();
        let barrier = sim_trisolve_time(&f, &m, 14, SolveEngine::BarrierLevel);
        let p2p = sim_trisolve_time(&f, &m, 14, SolveEngine::PointToPoint);
        assert!(
            p2p < barrier,
            "p2p {p2p} should beat barriered level sets {barrier}"
        );
    }

    #[test]
    fn numa_hurts_cross_socket_scaling() {
        let a = grid(40, 40);
        let f = factorize(&a, &IluOptions::default()).unwrap();
        let h14 = MachineModel::haswell14();
        let h28 = MachineModel::haswell28();
        let s14 = sim_factor_time(&f, &h14, 1).total_s / sim_factor_time(&f, &h14, 14).total_s;
        let s28 = sim_factor_time(&f, &h28, 1).total_s / sim_factor_time(&f, &h28, 28).total_s;
        // 28 cores may still be faster, but nowhere near 2x the 14-core
        // speedup — the paper's Fig. 10 observation.
        assert!(s28 < 1.8 * s14, "s14={s14:.2} s28={s28:.2}");
    }

    #[test]
    fn smt_gains_are_minor() {
        let a = grid(40, 40);
        let f = factorize(&a, &IluOptions::default()).unwrap();
        let knl = MachineModel::knl136();
        let t68 = sim_factor_time(&f, &knl, 68).total_s;
        let t136 = sim_factor_time(&f, &knl, 136).total_s;
        // Fig. 11b: "minor performance can be gained ... performance
        // does not generally degrade" — allow ±40%.
        assert!(t136 < t68 * 1.4, "t68={t68} t136={t136}");
    }

    #[test]
    fn heavy_is_slower_and_stops_scaling() {
        let m = MachineModel::haswell14();
        let t1 = sim_heavy_factor_time(1e-3, 3000, 100_000, 100, &m, 1);
        let t8 = sim_heavy_factor_time(1e-3, 3000, 100_000, 100, &m, 8);
        let t14 = sim_heavy_factor_time(1e-3, 3000, 100_000, 100, &m, 14);
        assert!(t8 < t1);
        // Past 8 workers: no further gain (sync grows).
        assert!(t14 >= t8 * 0.95);
    }

    #[test]
    fn trisolve_engines_ranked_sensibly() {
        // A power-network matrix (TSOPF-like): dense trailing rows with
        // a substantial sub-corner block — where the paper's LS+Lower
        // tiles pay off for stri.
        let a = javelin_synth::circuit::power_grid(1800, 70, 2, 7);
        let mut opts = IluOptions::ilu0(1);
        opts.split.min_rows_per_level = 24;
        opts.split.location_frac = 0.1;
        opts.split.max_lower_frac = 0.3;
        let f = factorize(&a, &opts).unwrap();
        assert!(f.stats().n_lower_rows > 100, "want a real trailing block");
        let m = MachineModel::knl68();
        let serial = sim_trisolve_time(&f, &m, 1, SolveEngine::Serial);
        let barrier = sim_trisolve_time(&f, &m, 68, SolveEngine::BarrierLevel);
        let ls = sim_trisolve_time(&f, &m, 68, SolveEngine::PointToPoint);
        let lower = sim_trisolve_time(&f, &m, 68, SolveEngine::PointToPointLower);
        assert!(
            lower < ls,
            "LS+Lower {lower} should beat LS {ls} on a big trailing block"
        );
        assert!(
            lower < serial,
            "LS+Lower {lower} should beat serial {serial}"
        );
        assert!(
            barrier > ls,
            "per-level barriers {barrier} should lose to LS {ls}"
        );
    }

    #[test]
    fn lower_tiles_never_hurt_much_on_thin_blocks() {
        // Strip matrices park a self-coupled tail in the corner: the
        // tiled gather has little to chew on (the paper's fem_filter
        // case). LS+Lower must stay within a barrier or two of LS.
        let a = javelin_synth::fem::shell_strip(60, 3, 4, 7);
        let mut opts = IluOptions::ilu0(1);
        opts.split.min_rows_per_level = 48;
        opts.split.location_frac = 0.1;
        opts.split.max_lower_frac = 0.3;
        let f = factorize(&a, &opts).unwrap();
        let m = MachineModel::knl68();
        let ls = sim_trisolve_time(&f, &m, 68, SolveEngine::PointToPoint);
        let lower = sim_trisolve_time(&f, &m, 68, SolveEngine::PointToPointLower);
        assert!(
            lower <= ls + 2.0 * m.barrier_ns * 1e-9,
            "lower {lower} vs ls {ls}"
        );
    }

    #[test]
    fn ls_beats_serial_on_wide_levels() {
        let a = grid(36, 36);
        let f = factorize(&a, &IluOptions::default()).unwrap();
        let m = MachineModel::knl68();
        let serial = sim_trisolve_time(&f, &m, 1, SolveEngine::Serial);
        let ls = sim_trisolve_time(&f, &m, 68, SolveEngine::PointToPoint);
        assert!(
            ls < serial,
            "LS {ls} must beat serial {serial} on a wide grid"
        );
    }

    #[test]
    fn thread_count_clamped_to_machine() {
        let a = grid(10, 10);
        let f = factorize(&a, &IluOptions::default()).unwrap();
        let m = MachineModel::generic(4);
        let t4 = sim_factor_time(&f, &m, 4).total_s;
        let t99 = sim_factor_time(&f, &m, 99).total_s;
        assert_eq!(t4, t99);
    }
}
