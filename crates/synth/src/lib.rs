//! # javelin-synth
//!
//! Synthetic sparse-matrix generators.
//!
//! The paper evaluates Javelin on 18 SuiteSparse matrices (Table I).
//! Those files are not redistributable here, so this crate generates
//! *synthetic analogues*: for each paper matrix, a generator of the same
//! structural class (PDE grid, finite-element mesh, circuit graph, power
//! network) matched on pattern symmetry, approximate row density, and
//! qualitative level structure, scaled to workstation size. The mapping
//! and rationale are documented in `DESIGN.md` §4.2; users with the real
//! matrices can substitute them through `javelin_sparse::io`.
//!
//! Generators are deterministic: every randomized builder takes an
//! explicit seed.
//!
//! * [`grid`] — finite-difference stencils (2D/3D Poisson, convection–
//!   diffusion, anisotropy)
//! * [`fem`] — finite-element-flavoured meshes (triangle, tetrahedral,
//!   shell strips with multiple DOFs per node)
//! * [`circuit`] — circuit-simulation-flavoured irregular graphs
//!   (preferential attachment, dense power-network rows)
//! * [`random`] — uniform/banded random patterns with controlled row
//!   density
//! * [`suite`] — the Table-I test suite

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod fem;
pub mod grid;
pub mod random;
pub mod suite;
pub mod util;

pub use suite::{paper_suite, suite_matrix, SuiteGroup, SuiteMatrix};
