//! Finite-element-flavoured mesh matrices.
//!
//! Analogues for the paper's FEM matrices: `thermal2`/`tmt_sym`
//! (unstructured 2D diffusion, RD ≈ 7), `offshore` (3D, RD ≈ 16),
//! `af_shell3` (thin shell, RD ≈ 35, hundreds of narrow levels), and
//! `fem_filter` (strip-like structure whose level sets stay tiny —
//! median 3 rows — which is exactly the case Javelin's lower stage and
//! point-to-point scheduling are designed around).

use crate::util;
use javelin_sparse::{CooMatrix, CsrMatrix};
use rand::Rng;

/// P1 triangular-mesh stiffness matrix on a structured triangulation of
/// an `nx × ny` vertex grid (each quad split into two triangles).
///
/// Vertices couple to up to 6 neighbours plus themselves (RD ≈ 7,
/// matching `thermal2`/`tmt_sym`). Values form a graph Laplacian with a
/// `mass` term on the diagonal, hence SPD.
pub fn triangle_mesh_2d(nx: usize, ny: usize, mass: f64) -> CsrMatrix<f64> {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    let mut degree = vec![0usize; n];
    let push_edge = |coo: &mut CooMatrix<f64>, a: usize, b: usize| {
        coo.push_unchecked(a, b, -1.0);
        coo.push_unchecked(b, a, -1.0);
    };
    for i in 0..nx {
        for j in 0..ny {
            let r = idx(i, j);
            // Right and down grid edges.
            if j + 1 < ny {
                push_edge(&mut coo, r, idx(i, j + 1));
                degree[r] += 1;
                degree[idx(i, j + 1)] += 1;
            }
            if i + 1 < nx {
                push_edge(&mut coo, r, idx(i + 1, j));
                degree[r] += 1;
                degree[idx(i + 1, j)] += 1;
            }
            // Diagonal edge of the triangulation.
            if i + 1 < nx && j + 1 < ny {
                push_edge(&mut coo, r, idx(i + 1, j + 1));
                degree[r] += 1;
                degree[idx(i + 1, j + 1)] += 1;
            }
        }
    }
    for (r, &d) in degree.iter().enumerate() {
        coo.push_unchecked(r, r, d as f64 + mass);
    }
    coo.to_csr()
}

/// Tetrahedral-mesh-like 3D operator: a 3D grid graph augmented with the
/// three face diagonals per cell, giving RD ≈ 10 like `3D_28984_Tetra`.
/// Setting `asymmetry > 0` randomly drops that fraction of one-sided
/// off-diagonal entries, breaking pattern symmetry the way real tet
/// meshes assembled with nonsymmetric stabilization terms do.
pub fn tet_mesh_3d(nx: usize, ny: usize, nz: usize, asymmetry: f64, seed: u64) -> CsrMatrix<f64> {
    let n = nx * ny * nz;
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    let mut coo = CooMatrix::with_capacity(n, n, 11 * n);
    let mut degree = vec![0usize; n];
    {
        let mut push_edge = |coo: &mut CooMatrix<f64>, a: usize, b: usize| {
            coo.push_unchecked(a, b, -1.0);
            coo.push_unchecked(b, a, -1.0);
            degree[a] += 1;
            degree[b] += 1;
        };
        for i in 0..nx {
            for j in 0..ny {
                for k in 0..nz {
                    let r = idx(i, j, k);
                    if i + 1 < nx {
                        push_edge(&mut coo, r, idx(i + 1, j, k));
                    }
                    if j + 1 < ny {
                        push_edge(&mut coo, r, idx(i, j + 1, k));
                    }
                    if k + 1 < nz {
                        push_edge(&mut coo, r, idx(i, j, k + 1));
                    }
                    // Face diagonals (one per face orientation).
                    if i + 1 < nx && j + 1 < ny {
                        push_edge(&mut coo, r, idx(i + 1, j + 1, k));
                    }
                    if j + 1 < ny && k + 1 < nz {
                        push_edge(&mut coo, r, idx(i, j + 1, k + 1));
                    }
                    if i + 1 < nx && k + 1 < nz {
                        push_edge(&mut coo, r, idx(i + 1, j, k + 1));
                    }
                }
            }
        }
    }
    for (r, &d) in degree.iter().enumerate() {
        coo.push_unchecked(r, r, d as f64 + 1.0);
    }
    let a = coo.to_csr();
    if asymmetry > 0.0 {
        util::drop_random_offdiag(&a, asymmetry, seed)
    } else {
        a
    }
}

/// Shell-strip matrix: a long, thin `nx × ny` grid of nodes with `dofs`
/// unknowns per node, all DOFs of neighbouring nodes (9-point stencil)
/// fully coupled.
///
/// With `dofs = 4` the row density is ≈ 36, and — crucially — the strip
/// geometry leaves hundreds of *narrow* level sets, mimicking
/// `af_shell3` (RD 34.8, 630 levels, median level size 5) and
/// `fem_filter` (554 levels, median 3). These are the matrices the
/// paper's two-stage design struggles with and discusses at length.
pub fn shell_strip(nx: usize, ny: usize, dofs: usize, seed: u64) -> CsrMatrix<f64> {
    let nodes = nx * ny;
    let n = nodes * dofs;
    let node = |i: usize, j: usize| i * ny + j;
    let mut coo = CooMatrix::with_capacity(n, n, n * 9 * dofs);
    let mut r = util::rng(seed);
    // Collect node adjacency (9-point on the strip), then expand blocks.
    for i in 0..nx {
        for j in 0..ny {
            let a = node(i, j);
            for di in -1i64..=1 {
                for dj in -1i64..=1 {
                    let (ni, nj) = (i as i64 + di, j as i64 + dj);
                    if ni < 0 || nj < 0 || ni as usize >= nx || nj as usize >= ny {
                        continue;
                    }
                    let b = node(ni as usize, nj as usize);
                    if b < a {
                        continue; // handle each undirected pair once
                    }
                    for da in 0..dofs {
                        for db in 0..dofs {
                            let (ra, cb) = (a * dofs + da, b * dofs + db);
                            if ra == cb {
                                continue;
                            }
                            let v = -(0.2 + 0.8 * r.gen::<f64>());
                            coo.push_unchecked(ra, cb, v);
                            coo.push_unchecked(cb, ra, v);
                        }
                    }
                }
            }
        }
    }
    let base = coo.to_csr();
    // Diagonal = dominance margin + row sum of |offdiag|.
    let n_total = base.nrows();
    let mut coo2 = CooMatrix::with_capacity(n_total, n_total, base.nnz() + n_total);
    for (rr, cc, v) in base.iter() {
        coo2.push_unchecked(rr, cc, v);
    }
    for rr in 0..n_total {
        let off: f64 = base.row_vals(rr).iter().map(|v| v.abs()).sum();
        coo2.push_unchecked(rr, rr, off + 1.0);
    }
    coo2.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_mesh_is_spd_shaped() {
        let a = triangle_mesh_2d(8, 8, 1.0);
        assert!(a.is_pattern_symmetric());
        assert!(a.is_symmetric(0.0));
        // Interior vertex: 6 neighbours + diagonal = 7.
        let interior = 3 * 8 + 3;
        assert_eq!(a.row_nnz(interior), 7);
        assert!(a.row_density() > 5.0 && a.row_density() <= 7.0);
    }

    #[test]
    fn triangle_mesh_diagonally_dominant() {
        let a = triangle_mesh_2d(6, 6, 0.5);
        for r in 0..a.nrows() {
            let off: f64 = a
                .row_cols(r)
                .iter()
                .zip(a.row_vals(r))
                .filter(|(c, _)| **c != r)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(a.get(r, r).unwrap() >= off);
        }
    }

    #[test]
    fn tet_mesh_density_and_asymmetry() {
        let sym = tet_mesh_3d(6, 6, 6, 0.0, 1);
        assert!(sym.is_pattern_symmetric());
        assert!(sym.row_density() > 8.0, "rd = {}", sym.row_density());
        let asym = tet_mesh_3d(6, 6, 6, 0.15, 1);
        assert!(!asym.is_pattern_symmetric());
        assert!(asym.nnz() < sym.nnz());
        assert!(asym.diag_positions().is_ok());
    }

    #[test]
    fn shell_strip_density_scales_with_dofs() {
        let a = shell_strip(40, 3, 4, 9);
        assert_eq!(a.nrows(), 40 * 3 * 4);
        assert!(a.is_pattern_symmetric());
        // 9-pt stencil × 4 dofs ≈ up to 36 per row.
        assert!(a.row_density() > 20.0, "rd = {}", a.row_density());
        assert!(a.diag_positions().is_ok());
    }

    #[test]
    fn shell_strip_deterministic() {
        let a = shell_strip(10, 3, 2, 5);
        let b = shell_strip(10, 3, 2, 5);
        assert!(a.approx_eq(&b, 0.0));
    }
}
