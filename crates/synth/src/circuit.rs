//! Circuit-simulation-flavoured irregular matrices.
//!
//! The paper's group-B suite leans on circuit matrices (`scircuit`,
//! `trans4`, `transient`, `ASIC_320ks`, `ASIC_680ks`, `G3_circuit`,
//! `ibm_matrix_2`) precisely because they are *irregular*: power-law-ish
//! degree distributions, a handful of very dense rows (supply rails,
//! ground nets), and in some cases nonsymmetric patterns. These
//! generators reproduce those traits with a preferential-attachment
//! skeleton plus controlled dense rows.

use crate::util;
use javelin_sparse::{CooMatrix, CsrMatrix};
use rand::Rng;

/// Preferential-attachment ("rich get richer") circuit graph.
///
/// * `n` — nodes;
/// * `m` — edges added per new node (average degree ≈ 2m);
/// * `symmetric_pattern` — when false, each edge is kept one-sided with
///   probability `one_sided`, modelling nonsymmetric device stamps;
/// * diagonally dominant values (no pivoting hazards).
pub fn preferential_attachment(
    n: usize,
    m: usize,
    symmetric_pattern: bool,
    one_sided: f64,
    seed: u64,
) -> CsrMatrix<f64> {
    assert!(n > m + 1, "need n > m + 1");
    let mut rng = util::rng(seed);
    // Endpoint pool: each edge contributes both endpoints, so sampling
    // uniformly from the pool is degree-proportional sampling.
    let mut pool: Vec<usize> = Vec::with_capacity(2 * n * m);
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n * m);
    // Seed clique over the first m+1 vertices.
    for a in 0..=m {
        for b in (a + 1)..=m {
            edges.push((a, b));
            pool.push(a);
            pool.push(b);
        }
    }
    for v in (m + 1)..n {
        let mut chosen: Vec<usize> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 100 * m {
            let t = pool[rng.gen_range(0..pool.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
        }
        for &t in &chosen {
            edges.push((v, t));
            pool.push(v);
            pool.push(t);
        }
    }
    let mut coo = CooMatrix::with_capacity(n, n, edges.len() * 2 + n);
    for &(a, b) in &edges {
        if symmetric_pattern || rng.gen::<f64>() >= one_sided {
            coo.push_unchecked(a, b, 1.0);
            coo.push_unchecked(b, a, 1.0);
        } else if rng.gen_bool(0.5) {
            coo.push_unchecked(a, b, 1.0);
        } else {
            coo.push_unchecked(b, a, 1.0);
        }
    }
    for v in 0..n {
        coo.push_unchecked(v, v, 1.0);
    }
    let pattern = coo.to_csr();
    util::make_diagonally_dominant(&pattern, 1.0, seed ^ 0x9e3779b97f4a7c15)
}

/// ASIC-style matrix: a sparse grid-ish substrate (average degree
/// ≈ `base_degree`) plus `n_dense` dense rows/columns touching a
/// `dense_frac` fraction of all nodes — the supply-rail rows that give
/// `ASIC_320ks`-class matrices their huge maximum level width and tiny
/// minimum.
pub fn asic_like(
    n: usize,
    base_degree: usize,
    n_dense: usize,
    dense_frac: f64,
    seed: u64,
) -> CsrMatrix<f64> {
    let mut rng = util::rng(seed);
    let mut coo = CooMatrix::with_capacity(n, n, n * (base_degree + 1));
    // Sparse substrate: ring + random chords keeps the graph connected
    // and the degree low-variance.
    for v in 0..n {
        coo.push_unchecked(v, v, 1.0);
        let w = (v + 1) % n;
        coo.push_unchecked(v, w, 1.0);
        coo.push_unchecked(w, v, 1.0);
        for _ in 0..base_degree.saturating_sub(3) / 2 {
            let t = rng.gen_range(0..n);
            if t != v {
                coo.push_unchecked(v, t, 1.0);
                coo.push_unchecked(t, v, 1.0);
            }
        }
    }
    // Dense rails.
    let picks = ((n as f64) * dense_frac) as usize;
    for d in 0..n_dense {
        let rail = d * (n / n_dense.max(1)).max(1) % n;
        for _ in 0..picks {
            let t = rng.gen_range(0..n);
            if t != rail {
                coo.push_unchecked(rail, t, 1.0);
                coo.push_unchecked(t, rail, 1.0);
            }
        }
    }
    let pattern = coo.to_csr();
    util::make_diagonally_dominant(&pattern, 1.0, seed ^ 0xdeadbeef)
}

/// Power-network matrix in the style of `TSOPF_RS_b300_c2`: moderate
/// dimension, very high row density (≈ `block` per row in the dense
/// band), nonsymmetric pattern.
///
/// Structure: block-diagonal dense-ish blocks (bus clusters) of width
/// `block`, plus sparse random inter-block ties; each in-block entry is
/// kept one-sided with probability 0.3.
pub fn power_grid(n: usize, block: usize, tie_per_row: usize, seed: u64) -> CsrMatrix<f64> {
    let mut rng = util::rng(seed);
    let mut coo = CooMatrix::with_capacity(n, n, n * block);
    for r in 0..n {
        coo.push_unchecked(r, r, 1.0);
        let b0 = (r / block) * block;
        for c in b0..(b0 + block).min(n) {
            if c == r {
                continue;
            }
            // Nonsymmetric: keep directed entry with prob 0.7.
            if rng.gen::<f64>() < 0.7 {
                coo.push_unchecked(r, c, 1.0);
            }
        }
        for _ in 0..tie_per_row {
            let t = rng.gen_range(0..n);
            if t != r {
                coo.push_unchecked(r, t, 1.0);
            }
        }
    }
    let pattern = coo.to_csr();
    util::make_diagonally_dominant(&pattern, 1.0, seed ^ 0x5ca1ab1e)
}

/// Grid-backed circuit matrix (`G3_circuit` analogue): a 2D grid where a
/// random `drop` fraction of the stencil edges is deleted, lowering RD
/// below 5 while keeping the pattern symmetric.
pub fn thinned_grid_circuit(nx: usize, ny: usize, drop: f64, seed: u64) -> CsrMatrix<f64> {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut rng = util::rng(seed);
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    for i in 0..nx {
        for j in 0..ny {
            let r = idx(i, j);
            coo.push_unchecked(r, r, 1.0);
            if j + 1 < ny && rng.gen::<f64>() >= drop {
                coo.push_unchecked(r, idx(i, j + 1), 1.0);
                coo.push_unchecked(idx(i, j + 1), r, 1.0);
            }
            if i + 1 < nx && rng.gen::<f64>() >= drop {
                coo.push_unchecked(r, idx(i + 1, j), 1.0);
                coo.push_unchecked(idx(i + 1, j), r, 1.0);
            }
        }
    }
    let pattern = coo.to_csr();
    util::make_diagonally_dominant(&pattern, 1.0, seed ^ 0x0dd)
}

/// Transient-circuit analogue (`trans4`/`transient`): mostly very sparse
/// rows, a compact strongly-coupled core of `core_size` rows at random
/// positions, and a nonsymmetric pattern option. The resulting level
/// structure is a few wide levels plus a tiny tail — the case where the
/// paper's lower-stage methods pay off (≈2.3× on Haswell for
/// `transient`).
pub fn transient_circuit(
    n: usize,
    core_size: usize,
    symmetric_pattern: bool,
    seed: u64,
) -> CsrMatrix<f64> {
    let mut rng = util::rng(seed);
    let mut coo = CooMatrix::with_capacity(n, n, n * 6 + core_size * core_size / 2);
    // Sparse substrate: each row couples to ~3 random earlier nodes.
    for v in 0..n {
        coo.push_unchecked(v, v, 1.0);
        let links = rng.gen_range(2..=4);
        for _ in 0..links {
            if v == 0 {
                break;
            }
            let t = rng.gen_range(0..v);
            coo.push_unchecked(v, t, 1.0);
            if symmetric_pattern || rng.gen::<f64>() < 0.5 {
                coo.push_unchecked(t, v, 1.0);
            }
        }
    }
    // Strongly coupled core: dense-ish clique spread over random rows.
    let mut core: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        core.swap(i, j);
    }
    core.truncate(core_size);
    for (ai, &a) in core.iter().enumerate() {
        for &b in core.iter().skip(ai + 1) {
            if rng.gen::<f64>() < 0.5 {
                coo.push_unchecked(a, b, 1.0);
                if symmetric_pattern || rng.gen::<f64>() < 0.5 {
                    coo.push_unchecked(b, a, 1.0);
                }
            }
        }
    }
    let pattern = coo.to_csr();
    util::make_diagonally_dominant(&pattern, 1.0, seed ^ 0x7a5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pa_graph_has_powerlaw_tail() {
        let a = preferential_attachment(600, 2, true, 0.0, 3);
        assert!(a.is_pattern_symmetric());
        let max_deg = (0..a.nrows()).map(|r| a.row_nnz(r)).max().unwrap();
        let avg = a.row_density();
        assert!(
            max_deg as f64 > 4.0 * avg,
            "expected heavy tail: max {max_deg}, avg {avg}"
        );
        assert!(a.diag_positions().is_ok());
    }

    #[test]
    fn pa_nonsymmetric_option() {
        let a = preferential_attachment(300, 2, false, 0.6, 5);
        assert!(!a.is_pattern_symmetric());
        assert!(a.diag_positions().is_ok());
    }

    #[test]
    fn asic_has_dense_rails() {
        let a = asic_like(1000, 4, 3, 0.2, 7);
        let max_deg = (0..a.nrows()).map(|r| a.row_nnz(r)).max().unwrap();
        assert!(max_deg > 100, "rail row should be dense, got {max_deg}");
        assert!(a.row_density() < 10.0);
        assert!(a.is_pattern_symmetric());
    }

    #[test]
    fn power_grid_high_density_nonsym() {
        let a = power_grid(400, 60, 2, 11);
        assert!(a.row_density() > 30.0, "rd = {}", a.row_density());
        assert!(!a.is_pattern_symmetric());
        assert!(a.diag_positions().is_ok());
    }

    #[test]
    fn thinned_grid_low_density() {
        let a = thinned_grid_circuit(40, 40, 0.15, 13);
        assert!(a.is_pattern_symmetric());
        assert!(a.row_density() < 5.0);
        assert!(a.diag_positions().is_ok());
    }

    #[test]
    fn transient_has_core() {
        let a = transient_circuit(800, 40, true, 17);
        assert!(a.diag_positions().is_ok());
        assert!(a.is_pattern_symmetric());
        let max_deg = (0..a.nrows()).map(|r| a.row_nnz(r)).max().unwrap();
        assert!(max_deg > 15);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = preferential_attachment(200, 2, true, 0.0, 99);
        let b = preferential_attachment(200, 2, true, 0.0, 99);
        assert!(a.approx_eq(&b, 0.0));
        let c = power_grid(100, 20, 1, 4);
        let d = power_grid(100, 20, 1, 4);
        assert!(c.approx_eq(&d, 0.0));
    }
}
