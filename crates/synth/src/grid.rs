//! Finite-difference stencil matrices on regular grids.
//!
//! These supply the "group A" style PDE matrices of the paper's suite:
//! symmetric positive-definite Poisson operators (`ecology2`, `apache2`,
//! `parabolic_fem`, … analogues) and nonsymmetric convection–diffusion
//! operators with symmetric patterns (`wang3` analogue).

use javelin_sparse::{CooMatrix, CsrMatrix};

/// 2D 5-point Laplacian on an `nx × ny` grid (Dirichlet boundary).
///
/// SPD; row density ≤ 5 (the paper's `ecology2` has RD exactly 5).
pub fn laplace_2d(nx: usize, ny: usize) -> CsrMatrix<f64> {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    for i in 0..nx {
        for j in 0..ny {
            let r = idx(i, j);
            coo.push_unchecked(r, r, 4.0);
            if i > 0 {
                coo.push_unchecked(r, idx(i - 1, j), -1.0);
            }
            if i + 1 < nx {
                coo.push_unchecked(r, idx(i + 1, j), -1.0);
            }
            if j > 0 {
                coo.push_unchecked(r, idx(i, j - 1), -1.0);
            }
            if j + 1 < ny {
                coo.push_unchecked(r, idx(i, j + 1), -1.0);
            }
        }
    }
    coo.to_csr()
}

/// 3D 7-point Laplacian on an `nx × ny × nz` grid (Dirichlet boundary).
pub fn laplace_3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix<f64> {
    let n = nx * ny * nz;
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let r = idx(i, j, k);
                coo.push_unchecked(r, r, 6.0);
                if i > 0 {
                    coo.push_unchecked(r, idx(i - 1, j, k), -1.0);
                }
                if i + 1 < nx {
                    coo.push_unchecked(r, idx(i + 1, j, k), -1.0);
                }
                if j > 0 {
                    coo.push_unchecked(r, idx(i, j - 1, k), -1.0);
                }
                if j + 1 < ny {
                    coo.push_unchecked(r, idx(i, j + 1, k), -1.0);
                }
                if k > 0 {
                    coo.push_unchecked(r, idx(i, j, k - 1), -1.0);
                }
                if k + 1 < nz {
                    coo.push_unchecked(r, idx(i, j, k + 1), -1.0);
                }
            }
        }
    }
    coo.to_csr()
}

/// 2D 9-point Laplacian (includes diagonal neighbours); RD ≤ 9.
pub fn laplace_2d_9pt(nx: usize, ny: usize) -> CsrMatrix<f64> {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut coo = CooMatrix::with_capacity(n, n, 9 * n);
    for i in 0..nx {
        for j in 0..ny {
            let r = idx(i, j);
            coo.push_unchecked(r, r, 8.0);
            for di in -1i64..=1 {
                for dj in -1i64..=1 {
                    if di == 0 && dj == 0 {
                        continue;
                    }
                    let (ni, nj) = (i as i64 + di, j as i64 + dj);
                    if ni >= 0 && nj >= 0 && (ni as usize) < nx && (nj as usize) < ny {
                        coo.push_unchecked(r, idx(ni as usize, nj as usize), -1.0);
                    }
                }
            }
        }
    }
    coo.to_csr()
}

/// Anisotropic 2D 5-point operator: `-eps·u_xx - u_yy`.
///
/// Strong anisotropy (`eps ≪ 1`) produces long one-directional
/// dependency chains — useful for stressing level-schedule depth.
pub fn anisotropic_2d(nx: usize, ny: usize, eps: f64) -> CsrMatrix<f64> {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    for i in 0..nx {
        for j in 0..ny {
            let r = idx(i, j);
            coo.push_unchecked(r, r, 2.0 * eps + 2.0);
            if i > 0 {
                coo.push_unchecked(r, idx(i - 1, j), -eps);
            }
            if i + 1 < nx {
                coo.push_unchecked(r, idx(i + 1, j), -eps);
            }
            if j > 0 {
                coo.push_unchecked(r, idx(i, j - 1), -1.0);
            }
            if j + 1 < ny {
                coo.push_unchecked(r, idx(i, j + 1), -1.0);
            }
        }
    }
    coo.to_csr()
}

/// 2D convection–diffusion with first-order upwinding:
/// `-Δu + w·∇u`. Symmetric pattern, nonsymmetric values.
pub fn convection_diffusion_2d(nx: usize, ny: usize, wx: f64, wy: f64) -> CsrMatrix<f64> {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let h = 1.0 / (nx.max(ny) as f64 + 1.0);
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    // Upwind: convection adds |w|h to the diagonal and -|w|h upstream,
    // preserving an M-matrix (no pivoting hazards).
    let (cxm, cxp) = if wx >= 0.0 {
        (wx * h, 0.0)
    } else {
        (0.0, -wx * h)
    };
    let (cym, cyp) = if wy >= 0.0 {
        (wy * h, 0.0)
    } else {
        (0.0, -wy * h)
    };
    for i in 0..nx {
        for j in 0..ny {
            let r = idx(i, j);
            coo.push_unchecked(r, r, 4.0 + cxm + cxp + cym + cyp);
            if i > 0 {
                coo.push_unchecked(r, idx(i - 1, j), -1.0 - cxm);
            }
            if i + 1 < nx {
                coo.push_unchecked(r, idx(i + 1, j), -1.0 - cxp);
            }
            if j > 0 {
                coo.push_unchecked(r, idx(i, j - 1), -1.0 - cym);
            }
            if j + 1 < ny {
                coo.push_unchecked(r, idx(i, j + 1), -1.0 - cyp);
            }
        }
    }
    coo.to_csr()
}

/// 3D convection–diffusion (7-point, upwinded); the `wang3` analogue:
/// semiconductor-device-like, symmetric pattern, nonsymmetric values.
pub fn convection_diffusion_3d(
    nx: usize,
    ny: usize,
    nz: usize,
    w: (f64, f64, f64),
) -> CsrMatrix<f64> {
    let n = nx * ny * nz;
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    let h = 1.0 / (nx.max(ny).max(nz) as f64 + 1.0);
    let up = |wc: f64| {
        if wc >= 0.0 {
            (wc * h, 0.0)
        } else {
            (0.0, -wc * h)
        }
    };
    let (cxm, cxp) = up(w.0);
    let (cym, cyp) = up(w.1);
    let (czm, czp) = up(w.2);
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let r = idx(i, j, k);
                coo.push_unchecked(r, r, 6.0 + cxm + cxp + cym + cyp + czm + czp);
                if i > 0 {
                    coo.push_unchecked(r, idx(i - 1, j, k), -1.0 - cxm);
                }
                if i + 1 < nx {
                    coo.push_unchecked(r, idx(i + 1, j, k), -1.0 - cxp);
                }
                if j > 0 {
                    coo.push_unchecked(r, idx(i, j - 1, k), -1.0 - cym);
                }
                if j + 1 < ny {
                    coo.push_unchecked(r, idx(i, j + 1, k), -1.0 - cyp);
                }
                if k > 0 {
                    coo.push_unchecked(r, idx(i, j, k - 1), -1.0 - czm);
                }
                if k + 1 < nz {
                    coo.push_unchecked(r, idx(i, j, k + 1), -1.0 - czp);
                }
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplace_2d_structure() {
        let a = laplace_2d(4, 5);
        assert_eq!(a.nrows(), 20);
        assert!(a.is_pattern_symmetric());
        assert!(a.is_symmetric(0.0));
        // Interior row has 5 entries.
        assert_eq!(a.row_nnz(5 + 2), 5);
        // Corner has 3.
        assert_eq!(a.row_nnz(0), 3);
        assert!(a.row_density() <= 5.0);
        assert!(a.diag_positions().is_ok());
    }

    #[test]
    fn laplace_3d_structure() {
        let a = laplace_3d(3, 4, 5);
        assert_eq!(a.nrows(), 60);
        assert!(a.is_symmetric(0.0));
        assert_eq!(a.row_nnz((4 + 2) * 5 + 2), 7);
    }

    #[test]
    fn laplace_9pt_density() {
        let a = laplace_2d_9pt(10, 10);
        assert!(a.is_pattern_symmetric());
        assert!(a.row_density() > 7.0 && a.row_density() <= 9.0);
    }

    #[test]
    fn anisotropic_values() {
        let a = anisotropic_2d(4, 4, 0.01);
        assert!(a.is_symmetric(1e-15));
        assert_eq!(a.get(0, 0), Some(2.02));
    }

    #[test]
    fn convection_diffusion_nonsymmetric_values_symmetric_pattern() {
        let a = convection_diffusion_2d(6, 6, 40.0, -25.0);
        assert!(a.is_pattern_symmetric());
        assert!(!a.is_symmetric(1e-12));
        // Row sums of an upwinded M-matrix interior row are ~0 (diagonal
        // dominance with equality); boundary rows strictly dominant.
        for r in 0..a.nrows() {
            let mut diag = 0.0;
            let mut off = 0.0;
            for (k, &c) in a.row_cols(r).iter().enumerate() {
                if c == r {
                    diag = a.row_vals(r)[k];
                } else {
                    off += a.row_vals(r)[k].abs();
                }
            }
            assert!(diag >= off - 1e-12, "row {r} not dominant");
        }
    }

    #[test]
    fn convection_diffusion_3d_shape() {
        let a = convection_diffusion_3d(4, 4, 4, (10.0, 5.0, -3.0));
        assert_eq!(a.nrows(), 64);
        assert!(a.is_pattern_symmetric());
        assert!(!a.is_symmetric(1e-12));
    }
}
