//! Shared helpers for the generators: seeded RNG plumbing and value
//! assignment policies that keep ILU(0) numerically healthy without
//! pivoting (Javelin, like most incomplete factorizations, does not
//! pivot).

use javelin_sparse::{CooMatrix, CsrMatrix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG from a 64-bit seed.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Rewrites values so the matrix becomes strictly row-wise diagonally
/// dominant: off-diagonals are drawn from `[-1, -0.05] ∪ [0.05, 1]`
/// (scaled), and each diagonal is set to `margin + Σ|offdiag|`.
///
/// Diagonal dominance guarantees ILU(0) cannot hit a zero pivot and
/// keeps iteration counts of the Krylov studies finite.
pub fn make_diagonally_dominant(a: &CsrMatrix<f64>, margin: f64, seed: u64) -> CsrMatrix<f64> {
    let mut r = rng(seed);
    let n = a.nrows();
    let mut coo = CooMatrix::with_capacity(n, n, a.nnz());
    for row in 0..n {
        let mut offsum = 0.0;
        let mut entries: Vec<(usize, f64)> = Vec::with_capacity(a.row_nnz(row));
        for &c in a.row_cols(row) {
            if c != row {
                let mag: f64 = r.gen_range(0.05..1.0);
                let sign = if r.gen_bool(0.5) { 1.0 } else { -1.0 };
                let v = sign * mag;
                offsum += v.abs();
                entries.push((c, v));
            }
        }
        coo.push_unchecked(row, row, margin + offsum);
        for (c, v) in entries {
            coo.push_unchecked(row, c, v);
        }
    }
    coo.to_csr()
}

/// Ensures every diagonal position is structurally present, inserting
/// `diag_value` where absent. Required by ILU.
pub fn ensure_diagonal(a: &CsrMatrix<f64>, diag_value: f64) -> CsrMatrix<f64> {
    let n = a.nrows();
    let mut coo = CooMatrix::with_capacity(n, a.ncols(), a.nnz() + n);
    for (r, c, v) in a.iter() {
        coo.push_unchecked(r, c, v);
    }
    for r in 0..n.min(a.ncols()) {
        if a.get(r, r).is_none() {
            coo.push_unchecked(r, r, diag_value);
        }
    }
    coo.to_csr()
}

/// Deterministic column-major multi-RHS fixture: an `n × k` panel
/// (column stride `n`, ready for `javelin_sparse::Panel::new`) whose
/// columns carry visibly different structure — a smooth mode, an
/// oscillatory mode, and seeded noise — so batched-solve tests and
/// benchmarks exercise genuinely distinct systems per column rather
/// than `k` copies of one vector.
pub fn rhs_panel(n: usize, k: usize, seed: u64) -> Vec<f64> {
    let mut r = rng(seed);
    let mut data = vec![0.0f64; n * k];
    for c in 0..k {
        let freq = 1.0 + c as f64;
        for i in 0..n {
            let t = i as f64 / n.max(1) as f64;
            let smooth = (freq * std::f64::consts::PI * t).sin();
            let ripple = if c % 2 == 0 {
                (7.0 * t * freq).cos()
            } else {
                0.0
            };
            let noise: f64 = r.gen_range(-0.25..0.25);
            data[c * n + i] = smooth + 0.3 * ripple + noise;
        }
    }
    data
}

/// Deterministic same-pattern value drift: `v_k ← v_k · (1 +
/// amplitude·sin(k·seed))` — the "time step's worth of change" fixture
/// for numeric-refactorization tests and benchmarks. The sparsity
/// pattern is untouched, so the result is valid input for
/// `IluFactors::refactor` against an analysis of `a`; small amplitudes
/// (≲ 0.05) keep diagonally dominant inputs factorable.
pub fn revalue(a: &CsrMatrix<f64>, seed: f64, amplitude: f64) -> CsrMatrix<f64> {
    let (nr, nc, rp, ci, mut vs) = a.clone().into_parts();
    for (k, v) in vs.iter_mut().enumerate() {
        *v *= 1.0 + amplitude * ((k as f64 * seed).sin());
    }
    CsrMatrix::from_raw_unchecked(nr, nc, rp, ci, vs)
}

/// Random nonsymmetric perturbation of values (pattern preserved):
/// `v ← v · (1 + amp·u)` with `u ∈ [-1, 1)`. Useful for turning a
/// symmetric stencil into a "semiconductor-device-like" nonsymmetric
/// system while keeping the symmetric pattern.
pub fn perturb_values(a: &CsrMatrix<f64>, amp: f64, seed: u64) -> CsrMatrix<f64> {
    let r = std::cell::RefCell::new(rng(seed));
    a.map_values(|v| v * (1.0 + amp * (r.borrow_mut().gen::<f64>() * 2.0 - 1.0)))
}

/// Drops a random subset of *off-diagonal* entries with probability
/// `p_drop`, breaking pattern symmetry (used for tetrahedral-mesh-like
/// analogues whose patterns are not quite symmetric).
pub fn drop_random_offdiag(a: &CsrMatrix<f64>, p_drop: f64, seed: u64) -> CsrMatrix<f64> {
    let mut r = rng(seed);
    let n = a.nrows();
    let mut coo = CooMatrix::with_capacity(n, a.ncols(), a.nnz());
    for (row, c, v) in a.iter() {
        if row == c || r.gen::<f64>() >= p_drop {
            coo.push_unchecked(row, c, v);
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use javelin_sparse::CooMatrix;

    fn ring(n: usize) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0).unwrap();
            coo.push(i, (i + 1) % n, 1.0).unwrap();
            coo.push((i + 1) % n, i, 1.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn diagonal_dominance_holds() {
        let a = make_diagonally_dominant(&ring(10), 1.0, 7);
        for r in 0..a.nrows() {
            let mut off = 0.0;
            let mut diag = 0.0;
            for (k, &c) in a.row_cols(r).iter().enumerate() {
                let v = a.row_vals(r)[k];
                if c == r {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            assert!(diag >= off + 0.99, "row {r}: diag {diag} vs off {off}");
        }
    }

    #[test]
    fn rhs_panel_is_deterministic_with_distinct_columns() {
        let p1 = rhs_panel(40, 4, 9);
        let p2 = rhs_panel(40, 4, 9);
        assert_eq!(p1, p2, "same seed must reproduce the panel");
        assert_ne!(p1, rhs_panel(40, 4, 10), "seed must matter");
        for c in 1..4 {
            assert_ne!(
                &p1[..40],
                &p1[c * 40..(c + 1) * 40],
                "column {c} must differ from column 0"
            );
        }
        assert!(p1.iter().all(|v| v.is_finite()));
        assert!(rhs_panel(10, 0, 1).is_empty());
    }

    #[test]
    fn deterministic_with_same_seed() {
        let a = make_diagonally_dominant(&ring(10), 1.0, 42);
        let b = make_diagonally_dominant(&ring(10), 1.0, 42);
        assert!(a.approx_eq(&b, 0.0));
        let c = make_diagonally_dominant(&ring(10), 1.0, 43);
        assert!(!a.approx_eq(&c, 1e-12));
    }

    #[test]
    fn ensure_diagonal_inserts_missing() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        coo.push(2, 2, 5.0).unwrap();
        let a = coo.to_csr();
        let b = ensure_diagonal(&a, 9.0);
        assert_eq!(b.get(0, 0), Some(9.0));
        assert_eq!(b.get(1, 1), Some(9.0));
        assert_eq!(b.get(2, 2), Some(5.0)); // untouched
        assert_eq!(b.nnz(), 5);
    }

    #[test]
    fn perturbation_keeps_pattern() {
        let a = ring(8);
        let b = perturb_values(&a, 0.3, 3);
        assert_eq!(a.rowptr(), b.rowptr());
        assert_eq!(a.colidx(), b.colidx());
        assert!(!a.approx_eq(&b, 1e-9));
    }

    #[test]
    fn dropping_breaks_symmetry_but_keeps_diag() {
        let a = ring(50);
        let b = drop_random_offdiag(&a, 0.4, 11);
        assert!(b.nnz() < a.nnz());
        for r in 0..b.nrows() {
            assert!(b.get(r, r).is_some());
        }
        assert!(!b.is_pattern_symmetric());
    }
}
