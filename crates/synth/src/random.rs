//! Random patterns with controlled row density — used by the property
//! tests and as stress inputs for the factorization kernels.

use crate::util;
use javelin_sparse::{CooMatrix, CsrMatrix};
use rand::Rng;

/// Uniformly random sparse matrix with ~`rd` off-diagonal entries per
/// row, a full diagonal, and diagonally dominant values.
pub fn random_sparse(n: usize, rd: f64, seed: u64) -> CsrMatrix<f64> {
    let mut rng = util::rng(seed);
    let per_row = rd.max(0.0);
    let mut coo = CooMatrix::with_capacity(n, n, (n as f64 * (per_row + 1.0)) as usize);
    for r in 0..n {
        coo.push_unchecked(r, r, 1.0);
        let k = per_row.floor() as usize + usize::from(rng.gen::<f64>() < per_row.fract());
        for _ in 0..k {
            let c = rng.gen_range(0..n);
            if c != r {
                coo.push_unchecked(r, c, 1.0);
            }
        }
    }
    util::make_diagonally_dominant(&coo.to_csr(), 1.0, seed ^ 0xabcd)
}

/// Random banded matrix: entries fall within `|i - j| <= bandwidth`,
/// each off-diagonal position kept with probability `fill`.
pub fn random_banded(n: usize, bandwidth: usize, fill: f64, seed: u64) -> CsrMatrix<f64> {
    let mut rng = util::rng(seed);
    let mut coo = CooMatrix::with_capacity(n, n, n * (2 * bandwidth + 1));
    for r in 0..n {
        coo.push_unchecked(r, r, 1.0);
        let lo = r.saturating_sub(bandwidth);
        let hi = (r + bandwidth).min(n - 1);
        for c in lo..=hi {
            if c != r && rng.gen::<f64>() < fill {
                coo.push_unchecked(r, c, 1.0);
            }
        }
    }
    util::make_diagonally_dominant(&coo.to_csr(), 1.0, seed ^ 0x1234)
}

/// Random *symmetric-pattern* sparse matrix (each generated edge is
/// stored both ways), SPD-style values via diagonal dominance.
pub fn random_symmetric(n: usize, rd: f64, seed: u64) -> CsrMatrix<f64> {
    let mut rng = util::rng(seed);
    let edges_per_row = (rd / 2.0).max(0.0);
    let mut coo = CooMatrix::with_capacity(n, n, (n as f64 * (rd + 1.0)) as usize);
    for r in 0..n {
        coo.push_unchecked(r, r, 1.0);
        let k =
            edges_per_row.floor() as usize + usize::from(rng.gen::<f64>() < edges_per_row.fract());
        for _ in 0..k {
            let c = rng.gen_range(0..n);
            if c != r {
                coo.push_unchecked(r, c, 1.0);
                coo.push_unchecked(c, r, 1.0);
            }
        }
    }
    util::make_diagonally_dominant(&coo.to_csr(), 1.0, seed ^ 0x777)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_sparse_density_close() {
        let a = random_sparse(2000, 6.0, 1);
        // diag + ~6 requested (minus collisions/duplicates)
        assert!(
            a.row_density() > 5.0 && a.row_density() < 8.0,
            "rd = {}",
            a.row_density()
        );
        assert!(a.diag_positions().is_ok());
    }

    #[test]
    fn random_banded_respects_band() {
        let a = random_banded(300, 5, 0.5, 2);
        for (r, c, _) in a.iter() {
            assert!(r.abs_diff(c) <= 5);
        }
        assert!(a.diag_positions().is_ok());
    }

    #[test]
    fn random_symmetric_is_symmetric_pattern() {
        let a = random_symmetric(500, 6.0, 3);
        assert!(a.is_pattern_symmetric());
        assert!(a.diag_positions().is_ok());
    }

    #[test]
    fn deterministic() {
        assert!(random_sparse(100, 4.0, 9).approx_eq(&random_sparse(100, 4.0, 9), 0.0));
        assert!(random_banded(100, 4, 0.5, 9).approx_eq(&random_banded(100, 4, 0.5, 9), 0.0));
    }
}
