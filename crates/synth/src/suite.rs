//! The paper's Table-I test suite as synthetic analogues.
//!
//! Each entry pairs the paper's published statistics (dimension, nnz,
//! row density RD, pattern symmetry SP, level count) with a generator of
//! the same structural class scaled to workstation size. Group A is the
//! convergence-study subset (paper §VII, Table II); group B is the wider
//! scalability set.
//!
//! The analogues intentionally preserve the properties the paper's
//! algorithms are sensitive to: pattern symmetry (decides whether
//! `lower(A)` differs from `lower(A+Aᵀ)`), row density (drives the
//! two-stage split), and level-structure shape (wide-level PDE matrices
//! vs narrow-level strips like `fem_filter`/`af_shell3`).

use crate::{circuit, fem, grid};
use javelin_sparse::CsrMatrix;

/// Paper test-suite grouping (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteGroup {
    /// Convergence-study matrices (SPD; Table II / Fig. 13).
    A,
    /// General scalability matrices.
    B,
}

impl std::fmt::Display for SuiteGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuiteGroup::A => write!(f, "A"),
            SuiteGroup::B => write!(f, "B"),
        }
    }
}

/// Statistics the paper reports for the original matrix (Table I).
#[derive(Debug, Clone, Copy)]
pub struct PaperStats {
    /// Matrix dimension.
    pub n: usize,
    /// Number of nonzeros.
    pub nnz: usize,
    /// Row density (nnz / n).
    pub rd: f64,
    /// Whether the pattern is structurally symmetric in natural order.
    pub sp: bool,
    /// Number of levels found by the paper's level scheduling.
    pub lvl: usize,
}

/// Build size for suite matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Quick-test size (a few hundred to a few thousand rows).
    Tiny,
    /// Standard benchmark size (thousands to ~12k rows).
    #[default]
    Standard,
}

/// One matrix of the reproduced test suite.
pub struct SuiteMatrix {
    /// Analogue name, e.g. `"wang3-like"`.
    pub name: &'static str,
    /// Original SuiteSparse name from the paper.
    pub paper_name: &'static str,
    /// Table-I group.
    pub group: SuiteGroup,
    /// The paper's published statistics for the original.
    pub paper: PaperStats,
    generator: fn(Scale) -> CsrMatrix<f64>,
}

impl SuiteMatrix {
    /// Generates the analogue at standard benchmark size.
    pub fn build(&self) -> CsrMatrix<f64> {
        (self.generator)(Scale::Standard)
    }

    /// Generates a miniature version for fast tests.
    pub fn build_tiny(&self) -> CsrMatrix<f64> {
        (self.generator)(Scale::Tiny)
    }

    /// Generates at an explicit scale.
    pub fn build_at(&self, scale: Scale) -> CsrMatrix<f64> {
        (self.generator)(scale)
    }
}

macro_rules! entry {
    ($name:literal, $paper:literal, $group:ident,
     ($n:expr, $nnz:expr, $rd:expr, $sp:expr, $lvl:expr), $gen:expr) => {
        SuiteMatrix {
            name: $name,
            paper_name: $paper,
            group: SuiteGroup::$group,
            paper: PaperStats {
                n: $n,
                nnz: $nnz,
                rd: $rd,
                sp: $sp,
                lvl: $lvl,
            },
            generator: $gen,
        }
    };
}

/// The full 18-matrix suite in the paper's Table-I order.
pub fn paper_suite() -> Vec<SuiteMatrix> {
    vec![
        entry!(
            "wang3-like",
            "wang3",
            B,
            (26064, 177168, 6.8, true, 10),
            |s| {
                let d = if s == Scale::Tiny { 8 } else { 14 };
                grid::convection_diffusion_3d(d, d, d, (30.0, 20.0, 10.0))
            }
        ),
        entry!(
            "tsopf-like",
            "TSOPF_RS_b300_c2",
            B,
            (28338, 2943887, 103.88, false, 180),
            |s| {
                let (n, b) = if s == Scale::Tiny {
                    (360, 30)
                } else {
                    (1800, 70)
                };
                circuit::power_grid(n, b, 2, 0x7509)
            }
        ),
        entry!(
            "tetra3d-like",
            "3D_28984_Tetra",
            B,
            (28984, 285092, 9.84, false, 34),
            |s| {
                let d = if s == Scale::Tiny { 7 } else { 13 };
                fem::tet_mesh_3d(d, d, d, 0.12, 0x3d43)
            }
        ),
        entry!(
            "ibm-like",
            "ibm_matrix_2",
            B,
            (51448, 537038, 10.44, false, 29),
            |s| {
                let n = if s == Scale::Tiny { 800 } else { 4000 };
                circuit::preferential_attachment(n, 5, false, 0.4, 0x1b32)
            }
        ),
        entry!(
            "femfilter-like",
            "fem_filter",
            B,
            (74062, 1731206, 23.38, true, 554),
            |s| {
                let nx = if s == Scale::Tiny { 60 } else { 400 };
                fem::shell_strip(nx, 2, 4, 0xfe17)
            }
        ),
        entry!(
            "trans4-like",
            "trans4",
            B,
            (116835, 749800, 6.42, false, 20),
            |s| {
                let n = if s == Scale::Tiny { 900 } else { 5000 };
                circuit::transient_circuit(n, 60, false, 0x7245)
            }
        ),
        entry!(
            "scircuit-like",
            "scircuit",
            B,
            (170998, 958936, 5.61, true, 34),
            |s| {
                let n = if s == Scale::Tiny { 1200 } else { 7000 };
                circuit::asic_like(n, 4, 2, 0.05, 0x5c1c)
            }
        ),
        entry!(
            "transient-like",
            "transient",
            B,
            (178866, 961368, 5.37, true, 16),
            |s| {
                let n = if s == Scale::Tiny { 1100 } else { 7000 };
                circuit::transient_circuit(n, 50, true, 0x42a5)
            }
        ),
        entry!(
            "offshore-like",
            "offshore",
            A,
            (259789, 4242673, 16.33, true, 74),
            |s| {
                let d = if s == Scale::Tiny { 7 } else { 12 };
                fem::tet_mesh_3d(d, d, d, 0.0, 0x0f54)
            }
        ),
        entry!(
            "asic320-like",
            "ASIC_320ks",
            B,
            (321671, 1316085, 4.09, true, 16),
            |s| {
                let n = if s == Scale::Tiny { 1500 } else { 9000 };
                circuit::asic_like(n, 3, 4, 0.10, 0xa320)
            }
        ),
        entry!(
            "afshell-like",
            "af_shell3",
            A,
            (504855, 17560000, 34.79, true, 630),
            |s| {
                let nx = if s == Scale::Tiny { 70 } else { 500 };
                fem::shell_strip(nx, 3, 4, 0xaf53)
            }
        ),
        entry!(
            "parabolic-like",
            "parabolic_fem",
            A,
            (525825, 3674625, 6.99, true, 28),
            |s| {
                let d = if s == Scale::Tiny { 30 } else { 90 };
                fem::triangle_mesh_2d(d, d, 1.0)
            }
        ),
        entry!(
            "asic680-like",
            "ASIC_680ks",
            B,
            (682712, 1693767, 2.48, true, 21),
            |s| {
                let n = if s == Scale::Tiny { 1600 } else { 10000 };
                circuit::asic_like(n, 2, 3, 0.05, 0xa680)
            }
        ),
        entry!(
            "apache2-like",
            "apache2",
            A,
            (715176, 4817870, 6.74, true, 13),
            |s| {
                let d = if s == Scale::Tiny { 10 } else { 20 };
                grid::laplace_3d(d, d, d)
            }
        ),
        entry!(
            "tmtsym-like",
            "tmt_sym",
            B,
            (726713, 5080961, 6.99, true, 28),
            |s| {
                let d = if s == Scale::Tiny { 28 } else { 85 };
                fem::triangle_mesh_2d(d, d, 1.0)
            }
        ),
        entry!(
            "ecology2-like",
            "ecology2",
            A,
            (999999, 4995991, 5.0, true, 13),
            |s| {
                let d = if s == Scale::Tiny { 32 } else { 100 };
                grid::laplace_2d(d, d)
            }
        ),
        entry!(
            "thermal2-like",
            "thermal2",
            A,
            (1200000, 8580313, 6.99, true, 27),
            |s| {
                let d = if s == Scale::Tiny { 34 } else { 105 };
                fem::triangle_mesh_2d(d, d, 0.8)
            }
        ),
        entry!(
            "g3circuit-like",
            "G3_circuit",
            B,
            (1500000, 7660826, 4.83, true, 13),
            |s| {
                let d = if s == Scale::Tiny { 36 } else { 110 };
                circuit::thinned_grid_circuit(d, d, 0.12, 0x63c1)
            }
        ),
    ]
}

/// Looks up a suite entry by analogue or paper name.
pub fn suite_matrix(name: &str) -> Option<SuiteMatrix> {
    paper_suite()
        .into_iter()
        .find(|m| m.name == name || m.paper_name == name)
}

/// The group-A (convergence study) subset, in Table-II order.
pub fn group_a() -> Vec<SuiteMatrix> {
    // Table II order: offshore, parabolic_fem, af_shell3, thermal2,
    // ecology2, apache2.
    [
        "offshore",
        "parabolic_fem",
        "af_shell3",
        "thermal2",
        "ecology2",
        "apache2",
    ]
    .iter()
    .map(|n| suite_matrix(n).expect("group A member present"))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_18_matrices_in_table_order() {
        let s = paper_suite();
        assert_eq!(s.len(), 18);
        assert_eq!(s[0].paper_name, "wang3");
        assert_eq!(s[17].paper_name, "G3_circuit");
    }

    #[test]
    fn group_a_has_six() {
        let a = group_a();
        assert_eq!(a.len(), 6);
        assert!(a.iter().all(|m| m.group == SuiteGroup::A));
    }

    #[test]
    fn lookup_by_either_name() {
        assert!(suite_matrix("wang3").is_some());
        assert!(suite_matrix("wang3-like").is_some());
        assert!(suite_matrix("nope").is_none());
    }

    #[test]
    fn tiny_builds_match_symmetry_flag() {
        for m in paper_suite() {
            let a = m.build_tiny();
            assert!(a.nrows() > 0, "{} empty", m.name);
            assert!(
                a.diag_positions().is_ok(),
                "{} missing structural diagonal",
                m.name
            );
            assert_eq!(
                a.is_pattern_symmetric(),
                m.paper.sp,
                "{}: pattern symmetry should be {}",
                m.name,
                m.paper.sp
            );
        }
    }

    #[test]
    fn standard_row_densities_are_in_class() {
        // RD of the analogue should land within a factor ~2 of the paper's
        // value — close enough to exercise the same code paths (split
        // heuristics key off relative density).
        for m in paper_suite() {
            let a = m.build();
            let rd = a.row_density();
            let ratio = rd / m.paper.rd;
            assert!(
                ratio > 0.4 && ratio < 2.5,
                "{}: analogue rd {rd:.2} vs paper {:.2}",
                m.name,
                m.paper.rd
            );
        }
    }

    #[test]
    fn tiny_is_smaller_than_standard() {
        for m in paper_suite() {
            assert!(m.build_tiny().nrows() < m.build().nrows(), "{}", m.name);
        }
    }
}
