//! The pattern-keyed symbolic cache: the service's amortization engine.
//!
//! The paper's economics are "pay the symbolic/setup phase once,
//! amortize it across many numeric solves". A multi-tenant service
//! realizes that by keying completed [`SymbolicIlu`] analyses (plus
//! their numeric factors) on a **structural fingerprint** of the CSR
//! pattern ([`javelin_sparse::pattern::pattern_fingerprint`]): a
//! request whose pattern was seen before reuses the cached analysis —
//! zero symbolic work — and pays at most a numeric
//! [`IluFactors::refactor`] when its *values* differ from the cached
//! factorization.
//!
//! The fingerprint is a fast filter, not an identity proof: every
//! fingerprint match is verified with the full
//! [`SymbolicIlu::check_pattern`] comparison before reuse, so hash
//! collisions degrade to a counted miss instead of silently solving
//! with the wrong analysis. Eviction is least-recently-used over a
//! small bounded slot vector (tenant counts are small; a linear scan
//! over ≤ a few dozen entries is cheaper and simpler than a hash map
//! plus intrusive list).

use crate::error::ServiceError;
use javelin_core::{IluFactors, IluOptions, SolveEngine, SymbolicIlu};
use javelin_sparse::{value_fingerprint, CsrMatrix, Scalar};

/// One cached tenant: an analyzed pattern with its current factors.
pub struct CacheEntry<T: Scalar> {
    /// The structural fingerprint this entry is filed under (normally
    /// `pattern_fingerprint(a)`; collision tests may file entries under
    /// forced keys).
    pub pattern_fp: u64,
    /// Bit-exact fingerprint of the matrix values the factors currently
    /// represent — the coalescing level: requests whose value
    /// fingerprint matches share the factors as-is, a differing one
    /// triggers a numeric-only refactor.
    pub value_fp: u64,
    /// The cached symbolic analysis (Arc-backed, cheap to clone).
    pub sym: SymbolicIlu<T>,
    /// Numeric factors over `sym`, refactored in place as values churn.
    pub factors: IluFactors<T>,
    /// The engine solves through these factors use.
    pub engine: SolveEngine,
    /// LRU tick of the last use.
    last_used: u64,
}

/// Monotonic counters describing cache behaviour (one dispatcher
/// thread owns the cache, so these are plain integers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from a cached analysis (zero symbolic work).
    pub hits: u64,
    /// Requests that had to run a fresh symbolic analysis.
    pub misses: u64,
    /// Entries evicted to make room (least recently used first).
    pub evictions: u64,
    /// Fingerprint matches whose full pattern comparison failed — a
    /// hash collision, degraded to a miss.
    pub collisions: u64,
    /// Numeric-only refactorizations (cached pattern, new values).
    pub refactors: u64,
}

/// Bounded LRU of analyzed patterns, keyed by structural fingerprint.
pub struct PatternCache<T: Scalar> {
    entries: Vec<CacheEntry<T>>,
    capacity: usize,
    tick: u64,
    stats: CacheStats,
}

impl<T: Scalar> PatternCache<T> {
    /// An empty cache holding at most `capacity` analyzed patterns.
    ///
    /// # Panics
    /// When `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "pattern cache: zero capacity");
        PatternCache {
            entries: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Cache behaviour counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of cached patterns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached fingerprints, in slot order (test introspection).
    pub fn fingerprints(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().map(|e| e.pattern_fp)
    }

    /// Looks up `pattern_fp`, verifying every fingerprint match against
    /// `a`'s actual pattern (collisions are counted and skipped).
    /// Returns the slot index of the verified entry and bumps its LRU
    /// tick and the hit counter; on miss, bumps the miss counter.
    ///
    /// The fingerprint is a parameter (rather than recomputed from `a`)
    /// so callers can memoize it per matrix handle — and so collision
    /// tests can force two distinct patterns onto one key.
    pub fn lookup(&mut self, pattern_fp: u64, a: &CsrMatrix<T>) -> Option<usize> {
        self.tick += 1;
        for (i, e) in self.entries.iter_mut().enumerate() {
            if e.pattern_fp != pattern_fp {
                continue;
            }
            if e.sym.check_pattern(a).is_err() {
                self.stats.collisions += 1;
                continue;
            }
            e.last_used = self.tick;
            self.stats.hits += 1;
            return Some(i);
        }
        self.stats.misses += 1;
        None
    }

    /// Analyzes and factors `a`, files the result under `pattern_fp`,
    /// and returns its slot index — evicting the least recently used
    /// entry when full. The entry's value fingerprint is taken from
    /// `a`'s values; its engine is the analysis' default.
    ///
    /// # Errors
    /// [`ServiceError::Solve`] when analysis or factorization fails
    /// (the cache is left unchanged).
    pub fn insert(
        &mut self,
        pattern_fp: u64,
        a: &CsrMatrix<T>,
        opts: &IluOptions,
    ) -> Result<usize, ServiceError> {
        let sym = SymbolicIlu::analyze(a, opts)?;
        let factors = sym.factor(a)?;
        let engine = factors.default_engine();
        self.tick += 1;
        let entry = CacheEntry {
            pattern_fp,
            value_fp: value_fingerprint(a.vals()),
            sym,
            factors,
            engine,
            last_used: self.tick,
        };
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("capacity > 0");
            self.stats.evictions += 1;
            self.entries[lru] = entry;
            Ok(lru)
        } else {
            self.entries.push(entry);
            Ok(self.entries.len() - 1)
        }
    }

    /// Brings slot `i`'s factors up to date with `a`'s values: a no-op
    /// when the value fingerprint already matches, a numeric-only
    /// [`IluFactors::refactor`] (zero symbolic work, zero allocations)
    /// otherwise.
    ///
    /// # Errors
    /// [`ServiceError::Solve`] when the refactor fails; the entry keeps
    /// its previous (still consistent) factors and value fingerprint.
    pub fn sync_values(&mut self, i: usize, a: &CsrMatrix<T>) -> Result<(), ServiceError> {
        let vfp = value_fingerprint(a.vals());
        let e = &mut self.entries[i];
        if e.value_fp == vfp {
            return Ok(());
        }
        e.factors.refactor(a)?;
        e.value_fp = vfp;
        self.stats.refactors += 1;
        Ok(())
    }

    /// Slot access for dispatch (mutable: the retry path refactors the
    /// entry's factors with a diagonal shift in place).
    pub fn entry_mut(&mut self, i: usize) -> &mut CacheEntry<T> {
        &mut self.entries[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use javelin_sparse::pattern_fingerprint;
    use javelin_synth::grid::laplace_2d;

    #[test]
    fn lru_evicts_least_recently_used_pattern() {
        let opts = IluOptions::default();
        let a1 = laplace_2d(5, 5);
        let a2 = laplace_2d(6, 6);
        let a3 = laplace_2d(7, 7);
        let (f1, f2, f3) = (
            pattern_fingerprint(&a1),
            pattern_fingerprint(&a2),
            pattern_fingerprint(&a3),
        );
        let mut cache = PatternCache::new(2);
        cache.insert(f1, &a1, &opts).unwrap();
        cache.insert(f2, &a2, &opts).unwrap();
        // Touch pattern 1 so pattern 2 becomes the LRU victim.
        assert!(cache.lookup(f1, &a1).is_some());
        cache.insert(f3, &a3, &opts).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(f1, &a1).is_some(), "recently used survives");
        assert!(cache.lookup(f3, &a3).is_some(), "new entry present");
        assert!(cache.lookup(f2, &a2).is_none(), "LRU victim evicted");
    }

    #[test]
    fn fingerprint_collision_is_verified_and_counted_not_served() {
        // Two structurally different matrices forced onto one key: the
        // full pattern verification must reject the wrong entry (a
        // counted collision) and still find the right one when both
        // live under the same fingerprint.
        let opts = IluOptions::default();
        let a1 = laplace_2d(5, 5);
        let a2 = laplace_2d(6, 6);
        let forced = 0xdead_beef_u64;
        let mut cache = PatternCache::new(4);
        let s1 = cache.insert(forced, &a1, &opts).unwrap();
        // A colliding lookup for a2 must not return a1's analysis.
        assert!(cache.lookup(forced, &a2).is_none());
        assert_eq!(cache.stats().collisions, 1);
        assert_eq!(cache.stats().misses, 1);
        let s2 = cache.insert(forced, &a2, &opts).unwrap();
        assert_ne!(s1, s2);
        // Both entries now share the key; each lookup resolves to its
        // own verified analysis.
        assert_eq!(cache.lookup(forced, &a1), Some(s1));
        assert_eq!(cache.lookup(forced, &a2), Some(s2));
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn sync_values_refactors_only_on_value_change() {
        let opts = IluOptions::default();
        let a = laplace_2d(6, 6);
        let fp = pattern_fingerprint(&a);
        let mut cache = PatternCache::new(2);
        let i = cache.insert(fp, &a, &opts).unwrap();
        cache.sync_values(i, &a).unwrap();
        assert_eq!(cache.stats().refactors, 0, "identical values: no work");
        let a2 = a.map_values(|v| v * 1.5);
        cache.sync_values(i, &a2).unwrap();
        assert_eq!(cache.stats().refactors, 1);
        cache.sync_values(i, &a2).unwrap();
        assert_eq!(cache.stats().refactors, 1, "fingerprint now matches");
    }
}
