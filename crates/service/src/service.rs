//! The threaded front-end: a persistent dispatcher thread, a bounded
//! admission queue, cloneable client handles, and graceful drain.
//!
//! Concurrency model (deliberately simple — no async runtime, so the
//! whole service builds offline on `std`):
//!
//! * Clients hold a [`ServiceClient`] — a clone of the bounded
//!   `sync_channel` sender plus the shared shutdown flag and stats.
//!   [`ServiceClient::solve`] is synchronous: it enqueues the request
//!   with a non-blocking `try_send` (a full queue surfaces immediately
//!   as [`ServiceError::Overloaded`] — admission control, not
//!   buffering) and blocks on a private one-shot reply channel.
//! * One dispatcher thread owns the [`Engine`]: it blocks for the
//!   first request, then greedily drains whatever else is already
//!   queued (up to `max_batch`) into one batch — that natural queue
//!   occupancy is the coalescing window, so a loaded service fuses
//!   pattern-identical requests into wide panels while an idle one
//!   adds zero latency.
//! * [`SolveService::shutdown`] flips the flag (new solves are refused
//!   with [`ServiceError::ShuttingDown`]), sends a drain sentinel, and
//!   joins: everything already queued is still served before the
//!   thread exits.
//!
//! All actual solving — symbolic caching, value-group coalescing,
//! panel dispatch on the shared persistent worker team, breakdown
//! retries — lives in [`Engine`]; this module only moves requests.

use crate::cache::CacheStats;
use crate::engine::{Engine, EngineConfig, EngineStats, SolveReply, SolveRequest};
use crate::error::ServiceError;
use javelin_sparse::Scalar;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Service construction knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Engine knobs (factorization options, solver options, panel
    /// width, cache capacity).
    pub engine: EngineConfig,
    /// Admission bound: requests beyond this many queued are refused
    /// with [`ServiceError::Overloaded`].
    pub max_queue: usize,
    /// Most requests drained into one dispatch batch.
    pub max_batch: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            engine: EngineConfig::default(),
            max_queue: 64,
            max_batch: 64,
        }
    }
}

/// Cross-thread service counters (clients and dispatcher both bump).
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Requests admitted to the queue.
    pub accepted: AtomicU64,
    /// Requests refused because the queue was full.
    pub overloaded: AtomicU64,
    /// Requests refused because the service was draining.
    pub shut_out: AtomicU64,
    /// Replies delivered (success or typed failure).
    pub completed: AtomicU64,
}

enum Msg<T: Scalar> {
    Solve {
        req: SolveRequest<T>,
        reply: SyncSender<Result<SolveReply<T>, ServiceError>>,
    },
    Drain,
}

/// A running solve service (see module docs). Dropping it without
/// [`SolveService::shutdown`] detaches the dispatcher thread, which
/// exits once every client handle is gone.
pub struct SolveService<T: Scalar> {
    tx: SyncSender<Msg<T>>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServiceStats>,
    engine_stats: Arc<EngineStatsCell>,
    handle: Option<JoinHandle<()>>,
    max_queue: usize,
}

/// Engine counters published by the dispatcher after every batch, so
/// observers read them without a channel round-trip.
#[derive(Default)]
struct EngineStatsCell {
    requests: AtomicU64,
    batches: AtomicU64,
    coalesced_panels: AtomicU64,
    coalesced_columns: AtomicU64,
    retries: AtomicU64,
    rejected: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    cache_collisions: AtomicU64,
    cache_refactors: AtomicU64,
}

impl EngineStatsCell {
    fn publish(&self, e: EngineStats, c: CacheStats) {
        self.requests.store(e.requests, Ordering::Relaxed);
        self.batches.store(e.batches, Ordering::Relaxed);
        self.coalesced_panels
            .store(e.coalesced_panels, Ordering::Relaxed);
        self.coalesced_columns
            .store(e.coalesced_columns, Ordering::Relaxed);
        self.retries.store(e.retries, Ordering::Relaxed);
        self.rejected.store(e.rejected, Ordering::Relaxed);
        self.cache_hits.store(c.hits, Ordering::Relaxed);
        self.cache_misses.store(c.misses, Ordering::Relaxed);
        self.cache_evictions.store(c.evictions, Ordering::Relaxed);
        self.cache_collisions.store(c.collisions, Ordering::Relaxed);
        self.cache_refactors.store(c.refactors, Ordering::Relaxed);
    }
}

/// A point-in-time snapshot of the dispatcher's engine and cache
/// counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceSnapshot {
    /// Requests the engine processed.
    pub requests: u64,
    /// Dispatch batches.
    pub batches: u64,
    /// Fused panels (width > 1) dispatched.
    pub coalesced_panels: u64,
    /// Columns solved in fused panels.
    pub coalesced_columns: u64,
    /// Breakdown retries run.
    pub retries: u64,
    /// Requests rejected as malformed.
    pub rejected: u64,
    /// Symbolic-cache hits (requests with zero symbolic work).
    pub cache_hits: u64,
    /// Symbolic-cache misses (fresh analyses).
    pub cache_misses: u64,
    /// Cache evictions.
    pub cache_evictions: u64,
    /// Fingerprint collisions caught by full verification.
    pub cache_collisions: u64,
    /// Numeric-only refactors (cached pattern, new values).
    pub cache_refactors: u64,
}

impl<T: Scalar> SolveService<T> {
    /// Starts the dispatcher thread and returns the service handle.
    pub fn start(cfg: ServiceConfig) -> Self {
        let (tx, rx) = sync_channel::<Msg<T>>(cfg.max_queue.max(1));
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServiceStats::default());
        let engine_stats = Arc::new(EngineStatsCell::default());
        let max_queue = cfg.max_queue.max(1);
        let handle = {
            let stats = Arc::clone(&stats);
            let engine_stats = Arc::clone(&engine_stats);
            std::thread::Builder::new()
                .name("javelin-service".into())
                .spawn(move || dispatcher(cfg, rx, stats, engine_stats))
                .expect("spawn service dispatcher")
        };
        SolveService {
            tx,
            shutdown,
            stats,
            engine_stats,
            handle: Some(handle),
            max_queue,
        }
    }

    /// A new client handle (cheap to clone; clients are independent).
    pub fn client(&self) -> ServiceClient<T> {
        ServiceClient {
            tx: self.tx.clone(),
            shutdown: Arc::clone(&self.shutdown),
            stats: Arc::clone(&self.stats),
            max_queue: self.max_queue,
        }
    }

    /// Front-end counters (admission decisions, completions).
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Engine/cache counters as published after the most recent batch.
    pub fn snapshot(&self) -> ServiceSnapshot {
        let e = &*self.engine_stats;
        ServiceSnapshot {
            requests: e.requests.load(Ordering::Relaxed),
            batches: e.batches.load(Ordering::Relaxed),
            coalesced_panels: e.coalesced_panels.load(Ordering::Relaxed),
            coalesced_columns: e.coalesced_columns.load(Ordering::Relaxed),
            retries: e.retries.load(Ordering::Relaxed),
            rejected: e.rejected.load(Ordering::Relaxed),
            cache_hits: e.cache_hits.load(Ordering::Relaxed),
            cache_misses: e.cache_misses.load(Ordering::Relaxed),
            cache_evictions: e.cache_evictions.load(Ordering::Relaxed),
            cache_collisions: e.cache_collisions.load(Ordering::Relaxed),
            cache_refactors: e.cache_refactors.load(Ordering::Relaxed),
        }
    }

    /// Graceful drain: refuses new requests, serves everything already
    /// queued, then joins the dispatcher thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The sentinel both wakes a blocked dispatcher and marks the
        // drain point; a full queue just means the dispatcher is busy —
        // keep nudging until the sentinel fits.
        let mut msg = Msg::Drain;
        loop {
            match self.tx.try_send(msg) {
                Ok(()) => break,
                Err(TrySendError::Full(m)) => {
                    msg = m;
                    std::thread::yield_now();
                }
                Err(TrySendError::Disconnected(_)) => break,
            }
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn dispatcher<T: Scalar>(
    cfg: ServiceConfig,
    rx: Receiver<Msg<T>>,
    stats: Arc<ServiceStats>,
    engine_stats: Arc<EngineStatsCell>,
) {
    let mut engine = Engine::new(cfg.engine);
    let max_batch = cfg.max_batch.max(1);
    let mut requests: Vec<SolveRequest<T>> = Vec::new();
    let mut reply_to: Vec<SyncSender<Result<SolveReply<T>, ServiceError>>> = Vec::new();
    let mut replies: Vec<Result<SolveReply<T>, ServiceError>> = Vec::new();
    let mut draining = false;
    loop {
        // Block for the first request of the round (unless draining:
        // then only what is already queued counts).
        match if draining {
            rx.try_recv().map_err(|_| ())
        } else {
            rx.recv().map_err(|_| ())
        } {
            Ok(Msg::Solve { req, reply }) => {
                requests.push(req);
                reply_to.push(reply);
            }
            Ok(Msg::Drain) => draining = true,
            Err(()) => {
                if requests.is_empty() {
                    break;
                }
            }
        }
        // Greedy drain: whatever is queued right now is the batch (and
        // the coalescing window).
        while requests.len() < max_batch {
            match rx.try_recv() {
                Ok(Msg::Solve { req, reply }) => {
                    requests.push(req);
                    reply_to.push(reply);
                }
                Ok(Msg::Drain) => draining = true,
                Err(_) => break,
            }
        }
        if requests.is_empty() {
            if draining {
                break;
            }
            continue;
        }
        engine.process(&mut requests, &mut replies);
        // Publish counters BEFORE releasing replies: a client that has
        // its answer in hand must observe a snapshot covering its batch.
        engine_stats.publish(engine.stats(), engine.cache_stats());
        for (reply, tx) in replies.drain(..).zip(reply_to.drain(..)) {
            // A vanished client (timed out, died) must not stall the
            // service; its reply is simply dropped. Counted before the
            // send for the same reason as the publish above.
            stats.completed.fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(reply);
        }
    }
}

/// A cloneable, synchronous client of a [`SolveService`].
pub struct ServiceClient<T: Scalar> {
    tx: SyncSender<Msg<T>>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServiceStats>,
    max_queue: usize,
}

impl<T: Scalar> Clone for ServiceClient<T> {
    fn clone(&self) -> Self {
        ServiceClient {
            tx: self.tx.clone(),
            shutdown: Arc::clone(&self.shutdown),
            stats: Arc::clone(&self.stats),
            max_queue: self.max_queue,
        }
    }
}

impl<T: Scalar> ServiceClient<T> {
    /// Submits one solve and blocks for its reply.
    ///
    /// # Errors
    /// * [`ServiceError::ShuttingDown`] — the service is draining;
    /// * [`ServiceError::Overloaded`] — the admission queue is full
    ///   (the request was never enqueued; back off and retry);
    /// * [`ServiceError::Rejected`] — the request is malformed;
    /// * [`ServiceError::Solve`] — the solver stack failed this
    ///   request (other clients are unaffected);
    /// * [`ServiceError::Disconnected`] — the dispatcher died.
    pub fn solve(&self, req: SolveRequest<T>) -> Result<SolveReply<T>, ServiceError> {
        if self.shutdown.load(Ordering::SeqCst) {
            self.stats.shut_out.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::ShuttingDown);
        }
        let (rtx, rrx) = sync_channel(1);
        match self.tx.try_send(Msg::Solve { req, reply: rtx }) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                self.stats.overloaded.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::Overloaded {
                    queue_depth: self.max_queue,
                });
            }
            Err(TrySendError::Disconnected(_)) => {
                return Err(ServiceError::Disconnected);
            }
        }
        self.stats.accepted.fetch_add(1, Ordering::Relaxed);
        rrx.recv().unwrap_or(Err(ServiceError::Disconnected))
    }
}
