//! The dispatch engine: fingerprint → cache → coalesce → panel solve.
//!
//! [`Engine`] is the service's single-threaded core, separated from the
//! threaded front-end so its behaviour — grouping, caching, panel
//! chunking, breakdown retries, allocation discipline — is directly
//! testable without channels or threads. One `process` call takes a
//! batch of requests (whatever the admission queue held when the
//! dispatcher woke), groups them by *(pattern fingerprint, value
//! fingerprint, method)*, brings the cached factors for each group up
//! to date (full symbolic analysis only on a genuinely new pattern;
//! numeric-only refactor when just the values moved), fuses each
//! group's right-hand sides into `k ∈ {8, 4}` panels for the lockstep
//! batch Krylov drivers, and scatters solutions back into the
//! requests' own buffers.
//!
//! Grouping by the **value** fingerprint too is what makes coalescing
//! exact: a fused panel shares one operator and one preconditioner, so
//! only requests whose matrices are bit-identical may ride in one
//! panel. Pattern-identical requests with *different* values still win
//! — they share the symbolic analysis and pay only a numeric refactor —
//! they just solve in separate panels.
//!
//! In the steady state (all patterns cached, buffers warmed) a
//! `process` call performs **zero heap allocations** on the solve path:
//! the gather/scatter staging panels are grow-only, the workspace is
//! reused, sorting is in-place, and request/reply buffers travel by
//! ownership. The counting-allocator suite asserts this.

use crate::cache::{CacheStats, PatternCache};
use crate::error::ServiceError;
use javelin_core::options::SolveEngine;
use javelin_core::IluOptions;
use javelin_solver::{krylov_panel_into, Method, SolverOptions, SolverResult, SolverWorkspace};
use javelin_sparse::{pattern_fingerprint, value_fingerprint, CsrMatrix, PanelBuf, Scalar};
use std::sync::{Arc, Weak};

/// Relative diagonal shift the one automatic breakdown-retry applies
/// (mirrors `javelin::Session`'s retry: stability over a sliver of
/// preconditioner accuracy).
pub const BREAKDOWN_RETRY_SHIFT: f64 = 1e-4;

/// Fingerprint memo entries kept per engine (matrix handles seen
/// recently); the memo is wiped, not grown, beyond this.
const MEMO_CAP: usize = 64;

/// Engine construction knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Factorization options every cached analysis is built with
    /// (thread count, fill level, shared worker team, pivot policy, …).
    pub ilu: IluOptions,
    /// Krylov iteration controls shared by all requests.
    pub solver: SolverOptions,
    /// Widest fused panel (8 and 4 are the SIMD-specialized lane
    /// widths; chunking prefers 8, then 4, then the remainder).
    pub max_panel_width: usize,
    /// Analyzed patterns kept in the LRU cache.
    pub cache_capacity: usize,
    /// Trisolve engine for every preconditioner apply; `None` defers to
    /// the analysis-time hint ([`javelin_core::IluFactors::default_engine`]), which
    /// accounts for thread count and core oversubscription.
    pub engine: Option<SolveEngine>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            ilu: IluOptions::default(),
            solver: SolverOptions::default(),
            max_panel_width: 8,
            cache_capacity: 16,
            engine: None,
        }
    }
}

/// One client solve: `A·x = b` by `method`. The matrix travels as an
/// `Arc` — clients issuing many solves against one matrix share the
/// handle, which also lets the engine memoize its fingerprints by
/// address. `b` and `x` are owned buffers, returned in the reply so
/// steady-state clients recycle them (`x` is resized as needed).
#[derive(Debug, Clone)]
pub struct SolveRequest<T: Scalar> {
    /// System matrix (square; shared handle).
    pub a: Arc<CsrMatrix<T>>,
    /// Right-hand side (`a.nrows()` entries).
    pub b: Vec<T>,
    /// Solution buffer (resized to `a.nrows()`; contents ignored).
    pub x: Vec<T>,
    /// Krylov method to run.
    pub method: Method,
}

/// A served request: the solution, the solver outcome, and how the
/// service scheduled it.
#[derive(Debug, Clone)]
pub struct SolveReply<T: Scalar> {
    /// The right-hand-side buffer, returned for reuse.
    pub b: Vec<T>,
    /// The solution.
    pub x: Vec<T>,
    /// Solver outcome (`retried` set when the breakdown-retry ran).
    pub result: SolverResult,
    /// Width of the fused panel this request solved in (1 = alone).
    pub panel_width: usize,
    /// Whether the pattern's symbolic analysis came from the cache
    /// (zero symbolic work for this request).
    pub symbolic_reused: bool,
}

/// Monotonic dispatch counters (single dispatcher thread: plain ints).
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Requests processed (including rejected ones).
    pub requests: u64,
    /// `process` rounds.
    pub batches: u64,
    /// Fused panels dispatched with width > 1.
    pub coalesced_panels: u64,
    /// Columns solved through width-> 1 panels.
    pub coalesced_columns: u64,
    /// Requests re-run once after a numerical breakdown.
    pub retries: u64,
    /// Requests rejected before reaching the solver stack.
    pub rejected: u64,
}

enum Outcome {
    Pending,
    Failed(ServiceError),
    Solved {
        result: SolverResult,
        panel_width: usize,
        symbolic_reused: bool,
    },
}

struct MemoEntry<T: Scalar> {
    /// Keeps the `ArcInner` address reserved: as long as this weak ref
    /// lives, no new allocation can alias the pointer, so pointer
    /// equality with a live `Arc` proves it is the *same* (immutable)
    /// matrix — no rehash needed.
    weak: Weak<CsrMatrix<T>>,
    pattern_fp: u64,
    value_fp: u64,
}

/// The single-threaded dispatch core (see module docs).
pub struct Engine<T: Scalar> {
    cfg: EngineConfig,
    cache: PatternCache<T>,
    ws: SolverWorkspace<T>,
    bbuf: PanelBuf<T>,
    xbuf: PanelBuf<T>,
    results: Vec<SolverResult>,
    keys: Vec<(u64, u64, u8, usize)>,
    outcomes: Vec<Outcome>,
    retry_idx: Vec<usize>,
    memo: Vec<MemoEntry<T>>,
    stats: EngineStats,
}

fn method_tag(m: Method) -> u8 {
    match m {
        Method::Pcg => 0,
        Method::Gmres => 1,
        Method::Fgmres => 2,
        Method::Bicgstab => 3,
        Method::BatchPcg => 4,
        Method::BatchBicgstab => 5,
        Method::BatchGmres => 6,
    }
}

impl<T: Scalar> Engine<T> {
    /// A fresh engine (empty cache, cold buffers).
    pub fn new(cfg: EngineConfig) -> Self {
        let cache = PatternCache::new(cfg.cache_capacity);
        Engine {
            cfg,
            cache,
            ws: SolverWorkspace::new(),
            bbuf: PanelBuf::new(),
            xbuf: PanelBuf::new(),
            results: Vec::new(),
            keys: Vec::new(),
            outcomes: Vec::new(),
            retry_idx: Vec::new(),
            memo: Vec::new(),
            stats: EngineStats::default(),
        }
    }

    /// Symbolic-cache behaviour counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Dispatch counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    fn fingerprints(&mut self, a: &Arc<CsrMatrix<T>>) -> (u64, u64) {
        let ptr = Arc::as_ptr(a);
        for e in &self.memo {
            if std::ptr::eq(e.weak.as_ptr(), ptr) {
                return (e.pattern_fp, e.value_fp);
            }
        }
        let pattern_fp = pattern_fingerprint(a);
        let value_fp = value_fingerprint(a.vals());
        if self.memo.len() >= MEMO_CAP {
            self.memo.clear();
        }
        self.memo.push(MemoEntry {
            weak: Arc::downgrade(a),
            pattern_fp,
            value_fp,
        });
        (pattern_fp, value_fp)
    }

    /// Serves one batch: groups, caches, coalesces, solves, and fills
    /// `replies` index-aligned with `requests` (which is drained).
    /// Infallible at the batch level — every per-request failure is a
    /// typed error in that request's reply slot.
    pub fn process(
        &mut self,
        requests: &mut Vec<SolveRequest<T>>,
        replies: &mut Vec<Result<SolveReply<T>, ServiceError>>,
    ) {
        self.stats.batches += 1;
        self.stats.requests += requests.len() as u64;
        self.outcomes.clear();
        self.keys.clear();
        for (idx, req) in requests.iter().enumerate() {
            if !req.a.is_square() {
                self.outcomes
                    .push(Outcome::Failed(ServiceError::Rejected(format!(
                        "matrix is {}x{}, not square",
                        req.a.nrows(),
                        req.a.ncols()
                    ))));
                self.stats.rejected += 1;
                continue;
            }
            if req.b.len() != req.a.nrows() {
                self.outcomes
                    .push(Outcome::Failed(ServiceError::Rejected(format!(
                        "rhs length {} != dimension {}",
                        req.b.len(),
                        req.a.nrows()
                    ))));
                self.stats.rejected += 1;
                continue;
            }
            self.outcomes.push(Outcome::Pending);
            let (pfp, vfp) = self.fingerprints(&req.a);
            self.keys.push((pfp, vfp, method_tag(req.method), idx));
        }
        self.keys.sort_unstable();

        // Walk the (pattern, values, method) groups. `keys` is moved
        // out during the walk so group slices and the engine's other
        // fields can be borrowed simultaneously.
        let keys = std::mem::take(&mut self.keys);
        let mut g = 0;
        while g < keys.len() {
            let (pfp, vfp, tag, _) = keys[g];
            let mut end = g + 1;
            while end < keys.len() && (keys[end].0, keys[end].1, keys[end].2) == (pfp, vfp, tag) {
                end += 1;
            }
            self.dispatch_group(requests, &keys[g..end], pfp);
            g = end;
        }
        self.keys = keys;

        // Hand every request's buffers back with its outcome.
        replies.clear();
        for (idx, req) in requests.drain(..).enumerate() {
            match std::mem::replace(&mut self.outcomes[idx], Outcome::Pending) {
                Outcome::Failed(e) => replies.push(Err(e)),
                Outcome::Solved {
                    result,
                    panel_width,
                    symbolic_reused,
                } => replies.push(Ok(SolveReply {
                    b: req.b,
                    x: req.x,
                    result,
                    panel_width,
                    symbolic_reused,
                })),
                Outcome::Pending => replies.push(Err(ServiceError::Disconnected)),
            }
        }
    }

    /// Solves one coalescing group (pattern-, value- and
    /// method-identical requests) through the cached factors.
    fn dispatch_group(
        &mut self,
        requests: &mut [SolveRequest<T>],
        group: &[(u64, u64, u8, usize)],
        pattern_fp: u64,
    ) {
        let first = group[0].3;
        let method = requests[first].method;
        let a = Arc::clone(&requests[first].a);
        let n = a.nrows();

        // Resolve the cache: reuse a verified analysis (zero symbolic
        // work), refactor if only the values moved, analyze + factor
        // only for a genuinely new pattern.
        let (slot, symbolic_reused) = match self.cache.lookup(pattern_fp, &a) {
            Some(slot) => (slot, true),
            None => match self.cache.insert(pattern_fp, &a, &self.cfg.ilu) {
                Ok(slot) => {
                    if let Some(engine) = self.cfg.engine {
                        self.cache.entry_mut(slot).engine = engine;
                    }
                    (slot, false)
                }
                Err(e) => {
                    for k in group {
                        self.outcomes[k.3] = Outcome::Failed(e.clone());
                    }
                    return;
                }
            },
        };
        if let Err(e) = self.cache.sync_values(slot, &a) {
            for k in group {
                self.outcomes[k.3] = Outcome::Failed(e.clone());
            }
            return;
        }

        // Fuse the group's right-hand sides into panels, widest (most
        // SIMD-friendly) chunks first: 8s, then a 4, then the tail.
        let mut shifted = false;
        let mut offset = 0;
        while offset < group.len() {
            let rem = group.len() - offset;
            let preferred = if rem >= 8 {
                8
            } else if rem >= 4 {
                4
            } else {
                rem
            };
            let w = preferred.min(self.cfg.max_panel_width.max(1));
            let chunk = &group[offset..offset + w];
            offset += w;
            if w > 1 {
                self.stats.coalesced_panels += 1;
                self.stats.coalesced_columns += w as u64;
            }

            self.bbuf
                .gather(n, chunk.iter().map(|k| requests[k.3].b.as_slice()));
            self.xbuf.ensure(n, w);
            self.xbuf.fill_zero();
            self.results.clear();
            self.results.resize(w, SolverResult::default());
            {
                let entry = self.cache.entry_mut(slot);
                let m = entry.factors.with_engine(entry.engine);
                krylov_panel_into(
                    method,
                    &a,
                    self.bbuf.panel(),
                    self.xbuf.panel_mut(),
                    &m,
                    &self.cfg.solver,
                    &mut self.ws,
                    &mut self.results,
                );
            }
            for (c, k) in chunk.iter().enumerate() {
                let req = &mut requests[k.3];
                req.x.resize(n, T::ZERO);
                self.xbuf.scatter_col(c, &mut req.x);
            }

            // One automatic retry for broken-down columns: stabilize
            // the shared factors with a forced diagonal shift (once per
            // group — the shifted factors stay, self-healing exactly
            // like `Session::krylov`), then re-run just the broken
            // columns from their frozen finite iterates.
            self.retry_idx.clear();
            self.retry_idx.extend(
                self.results
                    .iter()
                    .zip(chunk)
                    .filter(|(r, _)| r.broke_down())
                    .map(|(_, k)| k.3),
            );
            if !self.retry_idx.is_empty() && !shifted {
                let entry = self.cache.entry_mut(slot);
                if entry
                    .factors
                    .refactor_with_shift(&a, BREAKDOWN_RETRY_SHIFT)
                    .is_ok()
                {
                    shifted = true;
                    let rw = self.retry_idx.len();
                    self.stats.retries += rw as u64;
                    self.bbuf
                        .gather(n, self.retry_idx.iter().map(|&i| requests[i].b.as_slice()));
                    self.xbuf
                        .gather(n, self.retry_idx.iter().map(|&i| requests[i].x.as_slice()));
                    let retry_at = self.results.len();
                    self.results.resize(retry_at + rw, SolverResult::default());
                    {
                        let m = entry.factors.with_engine(entry.engine);
                        krylov_panel_into(
                            method,
                            &a,
                            self.bbuf.panel(),
                            self.xbuf.panel_mut(),
                            &m,
                            &self.cfg.solver,
                            &mut self.ws,
                            &mut self.results[retry_at..],
                        );
                    }
                    for c in 0..rw {
                        let idx = self.retry_idx[c];
                        self.xbuf.scatter_col(c, &mut requests[idx].x);
                        let mut result = self.results[retry_at + c].clone();
                        result.retried = true;
                        self.outcomes[idx] = Outcome::Solved {
                            result,
                            panel_width: w,
                            symbolic_reused,
                        };
                    }
                    self.results.truncate(retry_at);
                }
            }

            // First-attempt outcomes for everything not overwritten by
            // the retry pass above.
            for (c, k) in chunk.iter().enumerate() {
                if matches!(self.outcomes[k.3], Outcome::Pending) {
                    self.outcomes[k.3] = Outcome::Solved {
                        result: self.results[c].clone(),
                        panel_width: w,
                        symbolic_reused,
                    };
                }
            }
        }
    }
}
