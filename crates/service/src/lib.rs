//! # javelin-service
//!
//! The solver-as-a-service layer: a persistent, multi-tenant solve
//! service over the Javelin ILU stack — the end-to-end realization of
//! the paper's amortization thesis (pay the symbolic/setup phase once,
//! amortize it across many numeric solves) under the traffic shape
//! that actually motivates it: many concurrent clients, pattern-
//! identical systems, values churning per request.
//!
//! The pipeline, end to end:
//!
//! 1. **Fingerprint** — each request's matrix pattern is hashed
//!    structurally ([`javelin_sparse::pattern_fingerprint`]); the
//!    engine memoizes fingerprints per `Arc` handle so streaming
//!    clients never re-hash.
//! 2. **Cache** — completed [`javelin_core::SymbolicIlu`] analyses and
//!    their factors live in a pattern-keyed LRU ([`PatternCache`]);
//!    every fingerprint match is verified against the full pattern, so
//!    collisions degrade to counted misses, never wrong answers. A
//!    cached pattern costs zero symbolic work; changed values cost one
//!    numeric-only refactor.
//! 3. **Coalesce** — requests that are pattern-, value- and
//!    method-identical are fused into `k ∈ {8, 4}` right-hand-side
//!    panels for the lockstep batch Krylov drivers: one preconditioner
//!    schedule walk retires 8 clients' solves at once.
//! 4. **Panel dispatch** — solves run on the shared persistent
//!    [`javelin_sync::WorkerTeam`] through the existing
//!    `solve_batch`/`bicgstab_batch`/`gmres_batch` drivers; column `c`
//!    of a fused panel is bit-identical to that client's standalone
//!    solve. Broken-down columns get one automatic retry with a
//!    diagonally shifted preconditioner.
//! 5. **Respond** — admission control bounds the queue
//!    ([`ServiceError::Overloaded`]), malformed requests are rejected
//!    before the solver stack, shutdown drains gracefully, and every
//!    failure is a typed per-request error — one tenant's breakdown
//!    never perturbs another's solve.
//!
//! Two front-ends share the dispatcher: the in-process
//! [`ServiceClient`] (channel-based, synchronous) and a thin
//! length-prefixed TCP front-end ([`TcpFrontend`]) on plain
//! `std::net` — no async runtime required.
//!
//! ```
//! use javelin_service::{ServiceConfig, SolveService, SolveRequest};
//! use javelin_solver::Method;
//! use std::sync::Arc;
//!
//! let a = Arc::new(javelin_synth::grid::laplace_2d(12, 12));
//! let n = a.nrows();
//! let service = SolveService::start(ServiceConfig::default());
//! let client = service.client();
//! let reply = client
//!     .solve(SolveRequest {
//!         a: Arc::clone(&a),
//!         b: vec![1.0; n],
//!         x: Vec::new(),
//!         method: Method::BatchGmres,
//!     })
//!     .unwrap();
//! assert!(reply.result.converged);
//! service.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod error;
pub mod service;
pub mod tcp;
pub mod wire;

pub use cache::{CacheEntry, CacheStats, PatternCache};
pub use engine::{Engine, EngineConfig, EngineStats, SolveReply, SolveRequest};
pub use error::ServiceError;
pub use service::{ServiceClient, ServiceConfig, ServiceSnapshot, ServiceStats, SolveService};
pub use tcp::{TcpFrontend, TcpSolveClient, WireReply};
