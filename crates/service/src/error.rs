//! Typed service errors: admission control and per-request failure
//! reporting. Every variant is a *contained* outcome — one request's
//! error never takes the service (or any other client) down.

use javelin_sparse::SparseError;

/// Why a solve request did not produce a solution.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The bounded admission queue is full: the request was never
    /// enqueued. Back off and retry — the service is healthy, just
    /// saturated (the whole point of admission control is that this
    /// surfaces as a cheap typed error instead of unbounded memory
    /// growth or collapse).
    Overloaded {
        /// The queue bound the request bounced off.
        queue_depth: usize,
    },
    /// The request was malformed (dimension mismatch, non-square
    /// matrix, unsupported width) and was rejected before touching the
    /// solver stack.
    Rejected(String),
    /// The service is draining: no new requests are admitted, but
    /// everything already queued is still served.
    ShuttingDown,
    /// The factorization/solve stack returned a structured error for
    /// this request (e.g. a pivot collapse under
    /// [`javelin_core::ZeroPivotPolicy::Error`]). Other in-flight
    /// requests — including pattern-identical ones coalesced into the
    /// same batch round — are unaffected.
    Solve(SparseError),
    /// The dispatcher vanished mid-request (its thread ended without
    /// replying). Only reachable if the service itself was torn down
    /// uncleanly.
    Disconnected,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded { queue_depth } => {
                write!(
                    f,
                    "service overloaded: admission queue full ({queue_depth})"
                )
            }
            ServiceError::Rejected(why) => write!(f, "request rejected: {why}"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Solve(e) => write!(f, "solve failed: {e}"),
            ServiceError::Disconnected => write!(f, "service dispatcher disconnected"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<SparseError> for ServiceError {
    fn from(e: SparseError) -> Self {
        ServiceError::Solve(e)
    }
}
