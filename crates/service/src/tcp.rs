//! Thin `std::net` TCP front-end over a [`ServiceClient`].
//!
//! One acceptor thread (non-blocking accept + stop flag, no async
//! runtime) spawns a handler thread per connection. Each connection is
//! a tenant: it uploads its matrix once and then streams solves, which
//! the in-process dispatcher coalesces with every other tenant's
//! traffic exactly as if they were in-process clients.

use crate::engine::SolveRequest;
use crate::error::ServiceError;
use crate::service::ServiceClient;
use crate::wire::{self, BodyReader, Tag, MAX_DIM};
use javelin_solver::Method;
use javelin_sparse::CsrMatrix;
use std::io::{self, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running TCP front-end; dropping it without [`TcpFrontend::stop`]
/// leaves the acceptor running until the process exits.
pub struct TcpFrontend {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl TcpFrontend {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections, each served through `client`.
    ///
    /// # Errors
    /// I/O errors from binding.
    pub fn bind(addr: &str, client: ServiceClient<f64>) -> io::Result<TcpFrontend> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("javelin-tcp-accept".into())
                .spawn(move || accept_loop(listener, client, stop))
                .expect("spawn tcp acceptor")
        };
        Ok(TcpFrontend {
            addr: local,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections and joins the acceptor.
    /// Connections already being served run to completion on their own
    /// threads.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, client: ServiceClient<f64>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let client = client.clone();
                let _ = std::thread::Builder::new()
                    .name("javelin-tcp-conn".into())
                    .spawn(move || {
                        let _ = serve_connection(stream, client);
                    });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn service_error_code(e: &ServiceError) -> u16 {
    match e {
        ServiceError::Overloaded { .. } => wire::code::OVERLOADED,
        ServiceError::Rejected(_) => wire::code::REJECTED,
        ServiceError::ShuttingDown => wire::code::SHUTTING_DOWN,
        ServiceError::Solve(_) => wire::code::SOLVE,
        ServiceError::Disconnected => wire::code::DISCONNECTED,
    }
}

fn serve_connection(mut stream: TcpStream, client: ServiceClient<f64>) -> io::Result<()> {
    let mut body = Vec::new();
    let mut out = Vec::new();
    let mut matrix: Option<Arc<CsrMatrix<f64>>> = None;
    // Reused across solves on this connection: the reply hands the
    // buffers back, so a streaming tenant settles into zero per-solve
    // allocation on this side too.
    let mut bbuf: Vec<f64> = Vec::new();
    let mut xbuf: Vec<f64> = Vec::new();
    loop {
        let tag = match wire::read_frame(&mut stream, &mut body) {
            Ok(t) => t,
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        match tag {
            Tag::SetMatrix => match decode_matrix(&body) {
                Ok(a) => {
                    matrix = Some(Arc::new(a));
                    out.clear();
                    wire::write_frame(&mut stream, Tag::MatrixOk, &out)?;
                }
                Err(msg) => {
                    wire::encode_reply_err(&mut out, wire::code::PROTOCOL, &msg);
                    wire::write_frame(&mut stream, Tag::ReplyErr, &out)?;
                }
            },
            Tag::Solve => {
                let mut r = BodyReader::new(&body);
                let method = r.u8().and_then(|v| {
                    wire::method_from_wire(v)
                        .ok_or_else(|| io::Error::new(ErrorKind::InvalidData, "unknown method tag"))
                });
                let parsed = method.and_then(|m| {
                    let len = r.u64()? as usize;
                    if len as u64 > MAX_DIM {
                        return Err(io::Error::new(
                            ErrorKind::InvalidData,
                            "rhs length exceeds bound",
                        ));
                    }
                    r.f64s(len, &mut bbuf)?;
                    Ok(m)
                });
                let (method, a) = match (parsed, &matrix) {
                    (Ok(m), Some(a)) => (m, Arc::clone(a)),
                    (Err(e), _) => {
                        wire::encode_reply_err(&mut out, wire::code::PROTOCOL, &e.to_string());
                        wire::write_frame(&mut stream, Tag::ReplyErr, &out)?;
                        continue;
                    }
                    (Ok(_), None) => {
                        wire::encode_reply_err(
                            &mut out,
                            wire::code::PROTOCOL,
                            "solve before set-matrix",
                        );
                        wire::write_frame(&mut stream, Tag::ReplyErr, &out)?;
                        continue;
                    }
                };
                let req = SolveRequest {
                    a,
                    b: std::mem::take(&mut bbuf),
                    x: std::mem::take(&mut xbuf),
                    method,
                };
                match client.solve(req) {
                    Ok(reply) => {
                        wire::encode_reply_ok(&mut out, &reply.result, &reply.x);
                        bbuf = reply.b;
                        xbuf = reply.x;
                        wire::write_frame(&mut stream, Tag::ReplyOk, &out)?;
                    }
                    Err(e) => {
                        wire::encode_reply_err(&mut out, service_error_code(&e), &e.to_string());
                        wire::write_frame(&mut stream, Tag::ReplyErr, &out)?;
                    }
                }
            }
            Tag::ReplyOk | Tag::ReplyErr | Tag::MatrixOk => {
                wire::encode_reply_err(
                    &mut out,
                    wire::code::PROTOCOL,
                    "server-to-client tag from client",
                );
                wire::write_frame(&mut stream, Tag::ReplyErr, &out)?;
            }
        }
    }
}

fn decode_matrix(body: &[u8]) -> Result<CsrMatrix<f64>, String> {
    let mut r = BodyReader::new(body);
    let n = r.u64().map_err(|e| e.to_string())?;
    let nnz = r.u64().map_err(|e| e.to_string())?;
    if n > MAX_DIM || nnz > MAX_DIM {
        return Err("matrix dimensions exceed wire bounds".into());
    }
    let (n, nnz) = (n as usize, nnz as usize);
    let mut rowptr = Vec::new();
    let mut colidx = Vec::new();
    let mut vals = Vec::new();
    r.usizes(n + 1, &mut rowptr).map_err(|e| e.to_string())?;
    r.usizes(nnz, &mut colidx).map_err(|e| e.to_string())?;
    r.f64s(nnz, &mut vals).map_err(|e| e.to_string())?;
    if r.remaining() != 0 {
        return Err("trailing bytes after matrix body".into());
    }
    CsrMatrix::try_from_parts(n, n, rowptr, colidx, vals).map_err(|e| e.to_string())
}

/// A minimal blocking TCP client for tests and examples.
pub struct TcpSolveClient {
    stream: TcpStream,
    body: Vec<u8>,
    out: Vec<u8>,
}

/// A decoded [`Tag::ReplyOk`] frame.
#[derive(Debug, Clone, Default)]
pub struct WireReply {
    /// Whether the solve converged.
    pub converged: bool,
    /// Whether the breakdown-retry ran.
    pub retried: bool,
    /// Iterations performed.
    pub iterations: u64,
    /// Final relative residual.
    pub relative_residual: f64,
    /// The solution.
    pub x: Vec<f64>,
}

impl TcpSolveClient {
    /// Connects to a [`TcpFrontend`].
    ///
    /// # Errors
    /// Connection I/O errors.
    pub fn connect(addr: SocketAddr) -> io::Result<TcpSolveClient> {
        Ok(TcpSolveClient {
            stream: TcpStream::connect(addr)?,
            body: Vec::new(),
            out: Vec::new(),
        })
    }

    /// Uploads the connection's matrix.
    ///
    /// # Errors
    /// I/O errors, or a decoded server-side rejection.
    pub fn set_matrix(&mut self, a: &CsrMatrix<f64>) -> io::Result<()> {
        wire::encode_set_matrix(&mut self.out, a.nrows(), a.rowptr(), a.colidx(), a.vals());
        wire::write_frame(&mut self.stream, Tag::SetMatrix, &self.out)?;
        let tag = wire::read_frame(&mut self.stream, &mut self.body)?;
        match tag {
            Tag::MatrixOk => Ok(()),
            Tag::ReplyErr => Err(io::Error::other(decode_err(&self.body))),
            _ => Err(io::Error::new(ErrorKind::InvalidData, "unexpected tag")),
        }
    }

    /// Solves against the uploaded matrix.
    ///
    /// # Errors
    /// I/O errors, or a decoded server-side error (code + message).
    pub fn solve(&mut self, method: Method, b: &[f64]) -> io::Result<WireReply> {
        wire::encode_solve(&mut self.out, method, b);
        wire::write_frame(&mut self.stream, Tag::Solve, &self.out)?;
        let tag = wire::read_frame(&mut self.stream, &mut self.body)?;
        match tag {
            Tag::ReplyOk => {
                let mut r = BodyReader::new(&self.body);
                let converged = r.u8()? != 0;
                let retried = r.u8()? != 0;
                let iterations = r.u64()?;
                let relative_residual = r.f64()?;
                let len = r.u64()? as usize;
                let mut x = Vec::new();
                r.f64s(len, &mut x)?;
                Ok(WireReply {
                    converged,
                    retried,
                    iterations,
                    relative_residual,
                    x,
                })
            }
            Tag::ReplyErr => Err(io::Error::other(decode_err(&self.body))),
            _ => Err(io::Error::new(ErrorKind::InvalidData, "unexpected tag")),
        }
    }
}

fn decode_err(body: &[u8]) -> String {
    let mut r = BodyReader::new(body);
    let code = r.u16().unwrap_or(0);
    let len = r.u64().unwrap_or(0).min(4096) as usize;
    let mut msg = String::new();
    if let Ok(bytes) = r.bytes(len) {
        msg = String::from_utf8_lossy(bytes).into_owned();
    }
    format!("server error {code}: {msg}")
}
