//! Length-prefixed wire format for the TCP front-end.
//!
//! Framing: `[u8 tag][u64 LE body length][body]`. All integers are
//! little-endian `u64`, all values IEEE-754 `f64` bits LE. The protocol
//! is deliberately stateful-per-connection (like the in-process API is
//! stateful-per-`Arc`): a client uploads its matrix once
//! ([`Tag::SetMatrix`]) and then streams right-hand sides
//! ([`Tag::Solve`]), which is exactly the pattern-identical traffic
//! shape the coalescing dispatcher exists for.
//!
//! Reading is hardened the same way the Matrix Market reader is: every
//! length claim is bounded *before* any allocation, so a hostile or
//! corrupt frame fails with a typed error instead of an abort.

use javelin_solver::{Method, SolverResult};
use std::io::{self, Read, Write};

/// Hard cap on any single frame body (1 GiB) — bounds allocation from
/// untrusted length claims.
pub const MAX_FRAME: u64 = 1 << 30;
/// Hard cap on a wire matrix dimension / entry count.
pub const MAX_DIM: u64 = 1 << 28;

/// Frame tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Tag {
    /// Client → server: replace this connection's matrix.
    SetMatrix = 1,
    /// Client → server: solve against the connection's matrix.
    Solve = 2,
    /// Server → client: solution + solver outcome.
    ReplyOk = 3,
    /// Server → client: typed failure for the preceding request.
    ReplyErr = 4,
    /// Server → client: matrix accepted.
    MatrixOk = 5,
}

impl Tag {
    fn from_u8(v: u8) -> Option<Tag> {
        match v {
            1 => Some(Tag::SetMatrix),
            2 => Some(Tag::Solve),
            3 => Some(Tag::ReplyOk),
            4 => Some(Tag::ReplyErr),
            5 => Some(Tag::MatrixOk),
            _ => None,
        }
    }
}

/// Wire error codes for [`Tag::ReplyErr`] bodies.
pub mod code {
    /// Admission queue full.
    pub const OVERLOADED: u16 = 1;
    /// Malformed request.
    pub const REJECTED: u16 = 2;
    /// Service draining.
    pub const SHUTTING_DOWN: u16 = 3;
    /// Solver-stack failure.
    pub const SOLVE: u16 = 4;
    /// Dispatcher gone.
    pub const DISCONNECTED: u16 = 5;
    /// Protocol violation (bad tag, length, or state).
    pub const PROTOCOL: u16 = 6;
}

/// Method ↔ wire tag.
pub fn method_to_wire(m: Method) -> u8 {
    match m {
        Method::Pcg => 0,
        Method::Gmres => 1,
        Method::Fgmres => 2,
        Method::Bicgstab => 3,
        Method::BatchPcg => 4,
        Method::BatchBicgstab => 5,
        Method::BatchGmres => 6,
    }
}

/// Wire tag ↔ method.
pub fn method_from_wire(v: u8) -> Option<Method> {
    match v {
        0 => Some(Method::Pcg),
        1 => Some(Method::Gmres),
        2 => Some(Method::Fgmres),
        3 => Some(Method::Bicgstab),
        4 => Some(Method::BatchPcg),
        5 => Some(Method::BatchBicgstab),
        6 => Some(Method::BatchGmres),
        _ => None,
    }
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// A cursor over a received frame body with bounded reads.
pub struct BodyReader<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    /// Wraps a frame body.
    pub fn new(body: &'a [u8]) -> Self {
        BodyReader { body, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.body.len())
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "frame body truncated"))?;
        let s = &self.body[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Next `u8`.
    pub fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Next `u16` (LE).
    pub fn u16(&mut self) -> io::Result<u16> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Next `u64` (LE), capped at `MAX_FRAME` to bound downstream use.
    pub fn u64(&mut self) -> io::Result<u64> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Next `f64` (LE bit pattern).
    pub fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Next `len` u64s as `usize`s (each bounded by `MAX_DIM`).
    pub fn usizes(&mut self, len: usize, out: &mut Vec<usize>) -> io::Result<()> {
        out.clear();
        out.reserve(len);
        for _ in 0..len {
            let v = self.u64()?;
            if v > MAX_DIM {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "wire index exceeds bound",
                ));
            }
            out.push(v as usize);
        }
        Ok(())
    }

    /// Next `len` f64s.
    pub fn f64s(&mut self, len: usize, out: &mut Vec<f64>) -> io::Result<()> {
        out.clear();
        out.reserve(len);
        for _ in 0..len {
            out.push(self.f64()?);
        }
        Ok(())
    }

    /// Next `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> io::Result<&'a [u8]> {
        self.take(n)
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.body.len() - self.pos
    }
}

/// Reads one frame: its tag and body. Length claims beyond
/// [`MAX_FRAME`] are refused before any allocation; `body` is a reused
/// caller buffer.
pub fn read_frame<R: Read>(r: &mut R, body: &mut Vec<u8>) -> io::Result<Tag> {
    let mut head = [0u8; 9];
    r.read_exact(&mut head)?;
    let tag = Tag::from_u8(head[0])
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unknown frame tag"))?;
    let mut lb = [0u8; 8];
    lb.copy_from_slice(&head[1..9]);
    let len = u64::from_le_bytes(lb);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds bound",
        ));
    }
    body.clear();
    body.resize(len as usize, 0);
    r.read_exact(body)?;
    Ok(tag)
}

/// Writes one frame.
pub fn write_frame<W: Write>(w: &mut W, tag: Tag, body: &[u8]) -> io::Result<()> {
    let mut head = [0u8; 9];
    head[0] = tag as u8;
    head[1..9].copy_from_slice(&(body.len() as u64).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(body)?;
    w.flush()
}

/// Encodes a [`Tag::SetMatrix`] body from CSR parts.
pub fn encode_set_matrix(
    body: &mut Vec<u8>,
    n: usize,
    rowptr: &[usize],
    colidx: &[usize],
    vals: &[f64],
) {
    body.clear();
    put_u64(body, n as u64);
    put_u64(body, vals.len() as u64);
    for &p in rowptr {
        put_u64(body, p as u64);
    }
    for &c in colidx {
        put_u64(body, c as u64);
    }
    for &v in vals {
        put_f64(body, v);
    }
}

/// Encodes a [`Tag::Solve`] body.
pub fn encode_solve(body: &mut Vec<u8>, method: Method, b: &[f64]) {
    body.clear();
    body.push(method_to_wire(method));
    put_u64(body, b.len() as u64);
    for &v in b {
        put_f64(body, v);
    }
}

/// Encodes a [`Tag::ReplyOk`] body.
pub fn encode_reply_ok(body: &mut Vec<u8>, result: &SolverResult, x: &[f64]) {
    body.clear();
    body.push(u8::from(result.converged));
    body.push(u8::from(result.retried));
    put_u64(body, result.iterations as u64);
    put_f64(body, result.relative_residual);
    put_u64(body, x.len() as u64);
    for &v in x {
        put_f64(body, v);
    }
}

/// Encodes a [`Tag::ReplyErr`] body.
pub fn encode_reply_err(body: &mut Vec<u8>, code: u16, message: &str) {
    body.clear();
    body.extend_from_slice(&code.to_le_bytes());
    put_u64(body, message.len() as u64);
    body.extend_from_slice(message.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_bound_length_claims() {
        let mut buf = Vec::new();
        let mut body = Vec::new();
        encode_solve(&mut body, Method::BatchGmres, &[1.0, -2.5, 3.25]);
        write_frame(&mut buf, Tag::Solve, &body).unwrap();
        let mut cursor = io::Cursor::new(&buf);
        let mut rbody = Vec::new();
        let tag = read_frame(&mut cursor, &mut rbody).unwrap();
        assert_eq!(tag, Tag::Solve);
        let mut r = BodyReader::new(&rbody);
        assert_eq!(method_from_wire(r.u8().unwrap()), Some(Method::BatchGmres));
        let len = r.u64().unwrap() as usize;
        let mut b = Vec::new();
        r.f64s(len, &mut b).unwrap();
        assert_eq!(b, vec![1.0, -2.5, 3.25]);
        assert_eq!(r.remaining(), 0);

        // A hostile length claim is refused before allocation.
        let mut evil = vec![Tag::Solve as u8];
        evil.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut cursor = io::Cursor::new(&evil);
        assert!(read_frame(&mut cursor, &mut rbody).is_err());
    }
}
