//! End-to-end service tests: coalescing exactness, symbolic-cache
//! amortization, admission control, graceful drain, and the TCP
//! front-end.

use javelin_core::{factorize, IluOptions};
use javelin_service::{
    Engine, EngineConfig, ServiceConfig, ServiceError, SolveRequest, SolveService, TcpFrontend,
    TcpSolveClient,
};
use javelin_solver::{krylov, Method, SolverOptions};
use javelin_sparse::CsrMatrix;
use javelin_synth::grid::{convection_diffusion_2d, laplace_2d};
use javelin_synth::util::rhs_panel;
use std::sync::Arc;

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn requests(
    a: &Arc<CsrMatrix<f64>>,
    k: usize,
    seed: u64,
    method: Method,
) -> Vec<SolveRequest<f64>> {
    let n = a.nrows();
    let b = rhs_panel(n, k, seed);
    (0..k)
        .map(|c| SolveRequest {
            a: Arc::clone(a),
            b: b[c * n..(c + 1) * n].to_vec(),
            x: vec![0.0; n],
            method,
        })
        .collect()
}

#[test]
fn engine_coalesces_pattern_identical_requests_into_panels_bit_identically() {
    let a = Arc::new(convection_diffusion_2d(14, 14, 0.4, 0.2));
    let n = a.nrows();
    let mut engine = Engine::new(EngineConfig::default());
    let mut batch = requests(&a, 8, 42, Method::BatchGmres);
    let b_ref: Vec<Vec<f64>> = batch.iter().map(|r| r.b.clone()).collect();
    let mut replies = Vec::new();
    engine.process(&mut batch, &mut replies);
    assert_eq!(replies.len(), 8);

    // 8 pattern- and value-identical requests must fuse into one
    // width-8 panel.
    let stats = engine.stats();
    assert_eq!(stats.coalesced_panels, 1);
    assert_eq!(stats.coalesced_columns, 8);

    // Every fused column is bit-identical to its standalone scalar
    // solve through an independently built preconditioner.
    let factors = factorize(&a, &IluOptions::default()).unwrap();
    for (c, reply) in replies.iter().enumerate() {
        let reply = reply.as_ref().unwrap();
        assert!(reply.result.converged, "column {c}");
        assert_eq!(reply.panel_width, 8);
        let mut x_ref = vec![0.0; n];
        let r_ref = krylov(
            Method::BatchGmres,
            &a,
            &b_ref[c],
            &mut x_ref,
            &factors.with_engine(factors.default_engine()),
            &SolverOptions::default(),
        );
        assert_eq!(reply.result.iterations, r_ref.iterations, "column {c}");
        assert_eq!(bits(&reply.x), bits(&x_ref), "column {c}");
    }
}

#[test]
fn cached_pattern_requests_do_zero_symbolic_analysis() {
    let a = Arc::new(laplace_2d(12, 12));
    let mut engine = Engine::new(EngineConfig::default());
    let mut replies = Vec::new();

    let mut batch = requests(&a, 4, 1, Method::BatchPcg);
    engine.process(&mut batch, &mut replies);
    assert_eq!(
        engine.cache_stats().misses,
        1,
        "first pattern: one analysis"
    );
    assert_eq!(engine.cache_stats().hits, 0);

    // Same pattern again — same handle and a fresh value-identical
    // copy: both must hit the cache; the analysis count must not move.
    let mut batch = requests(&a, 4, 2, Method::BatchPcg);
    engine.process(&mut batch, &mut replies);
    let a_copy = Arc::new(
        CsrMatrix::try_from_parts(
            a.nrows(),
            a.ncols(),
            a.rowptr().to_vec(),
            a.colidx().to_vec(),
            a.vals().to_vec(),
        )
        .unwrap(),
    );
    let mut batch = requests(&a_copy, 4, 3, Method::BatchPcg);
    engine.process(&mut batch, &mut replies);
    assert!(replies.iter().all(|r| r.as_ref().unwrap().result.converged));
    assert_eq!(
        engine.cache_stats().misses,
        1,
        "cached pattern must never re-analyze"
    );
    assert_eq!(engine.cache_stats().hits, 2);
    assert!(replies.iter().all(|r| r.as_ref().unwrap().symbolic_reused));

    // Same pattern, new values: still zero symbolic work — exactly one
    // numeric-only refactor.
    let a_scaled = Arc::new(a.map_values(|v| v * 2.0));
    let mut batch = requests(&a_scaled, 4, 4, Method::BatchPcg);
    engine.process(&mut batch, &mut replies);
    assert_eq!(engine.cache_stats().misses, 1);
    assert_eq!(engine.cache_stats().hits, 3);
    assert_eq!(engine.cache_stats().refactors, 1);
    assert!(replies.iter().all(|r| r.as_ref().unwrap().result.converged));
}

#[test]
fn mixed_tenants_group_by_pattern_and_values() {
    // Two different patterns plus a value-variant of the first, all in
    // one batch: three groups, each solved correctly, two analyses.
    let a1 = Arc::new(laplace_2d(10, 10));
    let a2 = Arc::new(convection_diffusion_2d(9, 11, 0.3, 0.1));
    let a1b = Arc::new(a1.map_values(|v| v * 1.25));
    let mut engine = Engine::new(EngineConfig::default());
    let mut batch = Vec::new();
    batch.extend(requests(&a1, 4, 10, Method::BatchGmres));
    batch.extend(requests(&a2, 4, 11, Method::BatchGmres));
    batch.extend(requests(&a1b, 4, 12, Method::BatchGmres));
    let mut replies = Vec::new();
    engine.process(&mut batch, &mut replies);
    assert_eq!(replies.len(), 12);
    for r in &replies {
        assert!(r.as_ref().unwrap().result.converged);
    }
    assert_eq!(engine.cache_stats().misses, 2, "two distinct patterns");
    assert_eq!(engine.cache_stats().refactors, 1, "one value variant");
    assert_eq!(engine.stats().coalesced_panels, 3, "three width-4 groups");
}

#[test]
fn malformed_requests_get_typed_rejections_without_perturbing_the_batch() {
    let a = Arc::new(laplace_2d(8, 8));
    let mut engine = Engine::new(EngineConfig::default());
    let mut batch = requests(&a, 3, 7, Method::BatchBicgstab);
    batch[1].b.truncate(5); // wrong rhs length
    let mut replies = Vec::new();
    engine.process(&mut batch, &mut replies);
    assert!(matches!(replies[1], Err(ServiceError::Rejected(_))));
    assert!(replies[0].as_ref().unwrap().result.converged);
    assert!(replies[2].as_ref().unwrap().result.converged);
    assert_eq!(engine.stats().rejected, 1);
}

#[test]
fn concurrent_clients_get_bit_identical_scalar_answers() {
    let a = Arc::new(convection_diffusion_2d(12, 12, 0.35, 0.15));
    let n = a.nrows();
    let service = SolveService::start(ServiceConfig::default());
    let clients = 8;
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let client = service.client();
            let a = Arc::clone(&a);
            std::thread::spawn(move || {
                let b = rhs_panel(n, 1, 100 + c as u64);
                let reply = client
                    .solve(SolveRequest {
                        a: Arc::clone(&a),
                        b: b.clone(),
                        x: vec![0.0; n],
                        method: Method::BatchGmres,
                    })
                    .unwrap();
                (b, reply)
            })
        })
        .collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let factors = factorize(&a, &IluOptions::default()).unwrap();
    for (b, reply) in &outcomes {
        assert!(reply.result.converged);
        let mut x_ref = vec![0.0; n];
        krylov(
            Method::BatchGmres,
            &a,
            b,
            &mut x_ref,
            &factors.with_engine(factors.default_engine()),
            &SolverOptions::default(),
        );
        assert_eq!(bits(&reply.x), bits(&x_ref));
    }
    let snap = service.snapshot();
    assert_eq!(snap.requests, clients as u64);
    assert_eq!(snap.cache_misses, 1, "one analysis serves all clients");
    service.shutdown();
}

#[test]
fn admission_control_bounces_excess_load_with_typed_overloaded() {
    // A queue of depth 1 under 8 concurrent clients issuing bursts:
    // some requests must bounce with `Overloaded`, every admitted one
    // must complete, and nothing may error any other way.
    let a = Arc::new(laplace_2d(40, 40));
    let n = a.nrows();
    let cfg = ServiceConfig {
        max_queue: 1,
        ..Default::default()
    };
    let service = SolveService::start(cfg);
    let mut overloaded = 0u64;
    let mut completed = 0u64;
    for round in 0..3 {
        let handles: Vec<_> = (0..8)
            .map(|c| {
                let client = service.client();
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    let mut counts = (0u64, 0u64);
                    for i in 0..6 {
                        let b = rhs_panel(n, 1, (round * 100 + c * 10 + i) as u64);
                        match client.solve(SolveRequest {
                            a: Arc::clone(&a),
                            b,
                            x: vec![0.0; n],
                            method: Method::BatchPcg,
                        }) {
                            Ok(reply) => {
                                assert!(reply.result.converged);
                                counts.0 += 1;
                            }
                            Err(ServiceError::Overloaded { queue_depth }) => {
                                assert_eq!(queue_depth, 1);
                                counts.1 += 1;
                            }
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                    counts
                })
            })
            .collect();
        for h in handles {
            let (ok, over) = h.join().unwrap();
            completed += ok;
            overloaded += over;
        }
        if overloaded > 0 {
            break;
        }
    }
    assert!(completed > 0);
    assert!(
        overloaded > 0,
        "depth-1 queue under 8 concurrent clients must bounce something"
    );
    service.shutdown();
}

#[test]
fn shutdown_drains_queued_requests_then_refuses_new_ones() {
    let a = Arc::new(laplace_2d(30, 30));
    let n = a.nrows();
    let service = SolveService::start(ServiceConfig::default());
    let survivor = service.client();
    let handles: Vec<_> = (0..6)
        .map(|c| {
            let client = service.client();
            let a = Arc::clone(&a);
            std::thread::spawn(move || {
                client.solve(SolveRequest {
                    a: Arc::clone(&a),
                    b: rhs_panel(n, 1, c as u64),
                    x: vec![0.0; n],
                    method: Method::BatchGmres,
                })
            })
        })
        .collect();
    // Give the burst a moment to enqueue, then drain.
    std::thread::sleep(std::time::Duration::from_millis(10));
    service.shutdown();
    for h in handles {
        match h.join().unwrap() {
            Ok(reply) => assert!(reply.result.converged),
            // A request that raced the drain may be refused — but it
            // must be *refused*, never dropped on the floor.
            Err(ServiceError::ShuttingDown) => {}
            Err(e) => panic!("drain must serve or refuse, got: {e}"),
        }
    }
    let err = survivor
        .solve(SolveRequest {
            a: Arc::clone(&a),
            b: rhs_panel(n, 1, 99),
            x: vec![0.0; n],
            method: Method::BatchGmres,
        })
        .unwrap_err();
    assert_eq!(err, ServiceError::ShuttingDown);
}

#[test]
fn tcp_front_end_serves_multiple_connections() {
    let a = convection_diffusion_2d(10, 10, 0.25, 0.1);
    let n = a.nrows();
    let service = SolveService::start(ServiceConfig::default());
    let front = TcpFrontend::bind("127.0.0.1:0", service.client()).unwrap();
    let addr = front.addr();

    // Protocol violation first: solving before uploading a matrix is a
    // typed error, not a hang or disconnect.
    let mut early = TcpSolveClient::connect(addr).unwrap();
    let err = early.solve(Method::BatchGmres, &vec![1.0; n]).unwrap_err();
    assert!(err.to_string().contains("set-matrix"), "{err}");

    let factors = factorize(&a, &IluOptions::default()).unwrap();
    let handles: Vec<_> = (0..3)
        .map(|c| {
            let a = a.clone();
            std::thread::spawn(move || {
                let mut client = TcpSolveClient::connect(addr).unwrap();
                client.set_matrix(&a).unwrap();
                let n = a.nrows();
                let mut out = Vec::new();
                for i in 0..3 {
                    let b = rhs_panel(n, 1, (c * 10 + i) as u64);
                    let reply = client.solve(Method::BatchGmres, &b).unwrap();
                    assert!(reply.converged);
                    out.push((b, reply));
                }
                out
            })
        })
        .collect();
    for h in handles {
        for (b, reply) in h.join().unwrap() {
            let mut x_ref = vec![0.0; n];
            krylov(
                Method::BatchGmres,
                &a,
                &b,
                &mut x_ref,
                &factors.with_engine(factors.default_engine()),
                &SolverOptions::default(),
            );
            assert_eq!(bits(&reply.x), bits(&x_ref), "wire solve differs");
        }
    }
    front.stop();
    service.shutdown();
}
