//! Batched BiCGSTAB: `k` independent nonsymmetric systems solved in
//! lockstep through one RHS panel.
//!
//! [`bicgstab_batch`] extends the lockstep-masking pattern of
//! [`crate::solve_batch`] to the nonsymmetric short-recurrence solver:
//! the **two** preconditioner applications a BiCGSTAB step pays
//! (`y = M⁻¹p` and `z = M⁻¹s`) each become one
//! [`javelin_core::Preconditioner::apply_panel_with`] call, so the
//! triangular schedule walk — the dominant per-iteration cost — is
//! traversed twice per *panel* instead of twice per *column*. All
//! per-column scalar recurrences (ρ, α, ω, β, residual norms) stay
//! independent: column `c` of the batch is **bit-identical** to a
//! standalone [`crate::bicgstab_with`] run on that column, iteration
//! counts, convergence flags and (on breakdown) even NaN payloads
//! included.
//!
//! ## Masking and per-column breakdown
//!
//! Columns converge at different iterations, and BiCGSTAB can also
//! *break down* per column (ρ = r̂ᵀr collapsing to zero or turning
//! non-finite, `tᵀt = 0`, or ω = 0). In every case the affected column
//! is **masked**, not the panel: its result freezes exactly where the
//! scalar solver would have returned, its storage keeps its panel slot
//! (so the shared panel applies never change shape), and the remaining
//! columns keep iterating with bit-identical arithmetic. The panel
//! trisolve processes columns independently, so even a non-finite
//! frozen column cannot perturb its neighbours — the caller can then
//! restart just the masked column (e.g. via [`crate::gmres()`]) while
//! keeping the converged ones.
//!
//! ## Allocation discipline
//!
//! All panels live in the caller's [`SolverWorkspace`]
//! (`ensure_panel_bicgstab`, grow-only): after the first solve at a
//! given `(n, k)` the per-iteration loop is matvecs, dots, axpys and
//! two panel applies — zero steady-state heap allocations, with the
//! `Vec<SolverResult>` on entry and opt-in residual histories as the
//! documented exceptions, mirroring [`crate::solve_batch`].

use crate::{PanelMatrices, SolverOptions, SolverResult, SolverStatus, SolverWorkspace};
use javelin_core::precond::Preconditioner;
use javelin_sparse::lanes::{Lanes, LANE_DONE, LANE_HALTED};
use javelin_sparse::{vecops, with_lanes, Panel, PanelMut, Scalar};

/// Batched right-preconditioned BiCGSTAB over an RHS panel, allocating
/// a fresh workspace. Repeated callers should hold a
/// [`SolverWorkspace`] and use [`bicgstab_batch_with`].
///
/// ```
/// use javelin_core::{factorize, IluOptions};
/// use javelin_solver::{bicgstab_batch, SolverOptions};
/// use javelin_sparse::{Panel, PanelMut};
///
/// let a = javelin_synth::grid::convection_diffusion_2d(12, 12, 0.4, 0.2);
/// let n = a.nrows();
/// let f = factorize(&a, &IluOptions::ilu0(2)).unwrap();
/// let (k, b) = (3, javelin_synth::util::rhs_panel(n, 3, 7));
/// let mut x = vec![0.0; n * k];
/// let results = bicgstab_batch(
///     &a,
///     Panel::new(&b, n, k),
///     PanelMut::new(&mut x, n, k),
///     &f,
///     &SolverOptions::default(),
/// );
/// assert!(results.iter().all(|r| r.converged));
/// ```
///
/// # Panics
/// On panel shape mismatches.
pub fn bicgstab_batch<T: Scalar, A: PanelMatrices<T>, P: Preconditioner<T>>(
    a: &A,
    b: Panel<'_, T>,
    x: PanelMut<'_, T>,
    m: &P,
    opts: &SolverOptions,
) -> Vec<SolverResult> {
    bicgstab_batch_with(a, b, x, m, opts, &mut SolverWorkspace::new())
}

/// [`bicgstab_batch`] with caller-owned working memory (see module docs
/// for the lockstep/masking contract). Returns one [`SolverResult`] per
/// panel column, in column order. Widths `k ∈ {1, 4, 8}` dispatch to
/// the monomorphized fixed-lane driver, everything else to the
/// bit-identical dynamic-width fallback.
///
/// # Panics
/// On panel shape mismatches.
pub fn bicgstab_batch_with<T: Scalar, A: PanelMatrices<T>, P: Preconditioner<T>>(
    a: &A,
    b: Panel<'_, T>,
    x: PanelMut<'_, T>,
    m: &P,
    opts: &SolverOptions,
    ws: &mut SolverWorkspace<T>,
) -> Vec<SolverResult> {
    let mut results = vec![SolverResult::default(); b.ncols()];
    bicgstab_batch_into(a, b, x, m, opts, ws, &mut results);
    results
}

/// [`bicgstab_batch_with`] writing into a caller-provided result slice
/// — the fully allocation-free form.
///
/// # Panics
/// On panel shape mismatches or when `results.len() != b.ncols()`.
pub fn bicgstab_batch_into<T: Scalar, A: PanelMatrices<T>, P: Preconditioner<T>>(
    a: &A,
    b: Panel<'_, T>,
    x: PanelMut<'_, T>,
    m: &P,
    opts: &SolverOptions,
    ws: &mut SolverWorkspace<T>,
    results: &mut [SolverResult],
) {
    let k = b.ncols();
    assert_eq!(b.nrows(), a.nrows(), "bicgstab_batch: rhs panel rows");
    assert_eq!(x.nrows(), a.nrows(), "bicgstab_batch: solution panel rows");
    assert_eq!(x.ncols(), k, "bicgstab_batch: panel widths differ");
    assert_eq!(results.len(), k, "bicgstab_batch: results length");
    if k == 0 {
        return;
    }
    with_lanes!(k, lanes => bicgstab_batch_lanes(lanes, a, b, x, m, opts, ws, results));
}

/// The width-generic BiCGSTAB driver core: `bicgstab_with` *is* this
/// function at `FixedLanes<1>`; the batch entry points dispatch it per
/// width. Per-lane ρ/α/ω state keeps every lane on exactly the
/// standalone recurrence, breakdowns included.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bicgstab_batch_lanes<
    T: Scalar,
    A: PanelMatrices<T>,
    P: Preconditioner<T>,
    L: Lanes,
>(
    lanes: L,
    a: &A,
    b: Panel<'_, T>,
    mut x: PanelMut<'_, T>,
    m: &P,
    opts: &SolverOptions,
    ws: &mut SolverWorkspace<T>,
    results: &mut [SolverResult],
) {
    let n = a.nrows();
    let k = lanes.width();
    assert_eq!(b.ncols(), k, "bicgstab_batch: rhs panel width vs lanes");
    assert_eq!(b.nrows(), n, "bicgstab_batch: rhs panel rows");
    assert_eq!(x.nrows(), n, "bicgstab_batch: solution panel rows");
    assert_eq!(x.ncols(), k, "bicgstab_batch: panel widths differ");
    assert_eq!(results.len(), k, "bicgstab_batch: results length");
    for r in results.iter_mut() {
        *r = SolverResult::default();
    }
    ws.ensure_panel_bicgstab(n, k);
    // Rearm every lane to ACTIVE for this solve (storage pre-sized).
    ws.mask.reset(k);
    let SolverWorkspace {
        precond,
        pr,
        pz,
        pp,
        pq,
        prhat,
        py,
        pt,
        col_rho,
        col_alpha,
        col_omega,
        col_bnorm,
        col_relres,
        mask,
        ..
    } = ws;

    // ---- Per-lane setup, the historical `bicgstab_with` prologue. ---
    for c in 0..k {
        let rc = c * n..(c + 1) * n;
        col_bnorm[c] = vecops::norm2(b.col(c)).to_f64();
        if col_bnorm[c] == 0.0 {
            // Trivial lane: x = 0, converged in 0 iterations. Zero its
            // working columns so the shared panel applies stay finite.
            x.col_mut(c).fill(T::ZERO);
            for buf in [
                &mut *pr,
                &mut *pz,
                &mut *pp,
                &mut *pq,
                &mut *prhat,
                &mut *py,
                &mut *pt,
            ] {
                buf[rc.clone()].fill(T::ZERO);
            }
            mask.set(c, LANE_DONE);
            results[c].converged = true;
            results[c].status = SolverStatus::Converged;
            continue;
        }
        if !col_bnorm[c].is_finite() {
            // Hostile RHS (NaN/∞): freeze the lane at the initial guess
            // with zeroed working columns (shared applies stay finite).
            for buf in [
                &mut *pr,
                &mut *pz,
                &mut *pp,
                &mut *pq,
                &mut *prhat,
                &mut *py,
                &mut *pt,
            ] {
                buf[rc.clone()].fill(T::ZERO);
            }
            mask.set(c, LANE_HALTED);
            results[c].relative_residual = f64::NAN;
            results[c].status = SolverStatus::NumericalBreakdown;
            continue;
        }
        // r = b - A x (matvec into q, subtract into r); r_hat = r.
        a.col_matrix(c).spmv_into(x.col(c), &mut pq[rc.clone()]);
        let bc = b.col(c);
        for i in 0..n {
            pr[c * n + i] = bc[i] - pq[c * n + i];
        }
        prhat[rc.clone()].copy_from_slice(&pr[rc.clone()]);
        col_rho[c] = T::ONE;
        col_alpha[c] = T::ONE;
        col_omega[c] = T::ONE;
        // q plays the role of `v = A·y`; z of the second preconditioned
        // direction; t of `A·z` — all zeroed like the scalar solver.
        pq[rc.clone()].fill(T::ZERO);
        pp[rc.clone()].fill(T::ZERO);
        col_relres[c] = vecops::norm2(&pr[rc.clone()]).to_f64() / col_bnorm[c];
        if opts.record_history {
            results[c].history.push(col_relres[c]);
        }
        if !col_relres[c].is_finite() {
            // First-iteration guard: non-finite initial residual.
            mask.set(c, LANE_HALTED);
            results[c].relative_residual = col_relres[c];
            results[c].status = SolverStatus::NumericalBreakdown;
        }
    }

    // ---- Lockstep iteration with per-lane masking. ------------------
    for it in 1..=opts.max_iters {
        if !mask.any_active() {
            break;
        }
        // Phase 1 (per lane): the ρ recurrence and the new direction.
        for c in 0..k {
            if !mask.is_active(c) {
                continue;
            }
            let rc = c * n..(c + 1) * n;
            let rho_new = vecops::dot(&prhat[rc.clone()], &pr[rc.clone()]);
            if rho_new == T::ZERO || !rho_new.is_finite() {
                // ρ-breakdown: mask this lane where the scalar solver
                // would have returned; the panel keeps iterating.
                mask.set(c, LANE_HALTED);
                results[c].iterations = it - 1;
                results[c].relative_residual = col_relres[c];
                results[c].status = SolverStatus::NumericalBreakdown;
                continue;
            }
            let beta = (rho_new / col_rho[c]) * (col_alpha[c] / col_omega[c]);
            col_rho[c] = rho_new;
            // p = r + beta (p - omega v)
            let omega = col_omega[c];
            for i in rc {
                pp[i] = pr[i] + beta * (pp[i] - omega * pq[i]);
            }
        }
        if !mask.any_active() {
            break;
        }
        // y = M⁻¹ p: one panel apply for every lane (masked lanes ride
        // along on frozen data without changing the panel shape).
        m.apply_panel_with(
            precond,
            Panel::new(&pp[..n * k], n, k),
            PanelMut::new(&mut py[..n * k], n, k),
        );
        // Phase 2 (per lane): v = A·y, α, the intermediate residual s
        // and its early convergence check.
        for c in 0..k {
            if !mask.is_active(c) {
                continue;
            }
            let rc = c * n..(c + 1) * n;
            a.col_matrix(c)
                .spmv_into(&py[rc.clone()], &mut pq[rc.clone()]);
            col_alpha[c] = col_rho[c] / vecops::dot(&prhat[rc.clone()], &pq[rc.clone()]);
            // s = r - alpha v  (reuse r)
            vecops::axpy(-col_alpha[c], &pq[rc.clone()], &mut pr[rc.clone()]);
            let s_norm = vecops::norm2(&pr[rc.clone()]).to_f64() / col_bnorm[c];
            col_relres[c] = s_norm;
            if s_norm < opts.tol {
                vecops::axpy(col_alpha[c], &py[rc.clone()], x.col_mut(c));
                if opts.record_history {
                    results[c].history.push(s_norm);
                }
                mask.set(c, LANE_DONE);
                results[c].converged = true;
                results[c].iterations = it;
                results[c].relative_residual = s_norm;
                results[c].status = SolverStatus::Converged;
            } else if !s_norm.is_finite() {
                // α turned non-finite (r̂ᵀv collapse) or hostile values
                // poisoned s: halt before the stabilization half-step
                // touches x with NaNs.
                mask.set(c, LANE_HALTED);
                results[c].iterations = it;
                results[c].relative_residual = s_norm;
                results[c].status = SolverStatus::NumericalBreakdown;
            }
        }
        if !mask.any_active() {
            break;
        }
        // z = M⁻¹ s: the second shared panel apply of the step.
        m.apply_panel_with(
            precond,
            Panel::new(&pr[..n * k], n, k),
            PanelMut::new(&mut pz[..n * k], n, k),
        );
        // Phase 3 (per lane): the stabilization half-step.
        for c in 0..k {
            if !mask.is_active(c) {
                continue;
            }
            let rc = c * n..(c + 1) * n;
            a.col_matrix(c)
                .spmv_into(&pz[rc.clone()], &mut pt[rc.clone()]);
            let tt = vecops::dot(&pt[rc.clone()], &pt[rc.clone()]);
            if tt == T::ZERO || !tt.is_finite() {
                mask.set(c, LANE_HALTED);
                results[c].iterations = it;
                results[c].relative_residual = col_relres[c];
                results[c].status = SolverStatus::NumericalBreakdown;
                continue;
            }
            col_omega[c] = vecops::dot(&pt[rc.clone()], &pr[rc.clone()]) / tt;
            // x += alpha y + omega z
            vecops::axpy(col_alpha[c], &py[rc.clone()], x.col_mut(c));
            vecops::axpy(col_omega[c], &pz[rc.clone()], x.col_mut(c));
            // r = s - omega t
            vecops::axpy(-col_omega[c], &pt[rc.clone()], &mut pr[rc.clone()]);
            col_relres[c] = vecops::norm2(&pr[rc.clone()]).to_f64() / col_bnorm[c];
            if opts.record_history {
                results[c].history.push(col_relres[c]);
            }
            if col_relres[c] < opts.tol {
                mask.set(c, LANE_DONE);
                results[c].converged = true;
                results[c].iterations = it;
                results[c].relative_residual = col_relres[c];
                results[c].status = SolverStatus::Converged;
            } else if col_omega[c] == T::ZERO || !col_relres[c].is_finite() {
                mask.set(c, LANE_HALTED);
                results[c].iterations = it;
                results[c].relative_residual = col_relres[c];
                results[c].status = SolverStatus::NumericalBreakdown;
            }
        }
    }
    // Lanes still active at the cap: not converged.
    for c in 0..k {
        if mask.is_active(c) {
            results[c].iterations = opts.max_iters;
            results[c].relative_residual = col_relres[c];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bicgstab_with;
    use javelin_core::precond::IdentityPrecond;
    use javelin_core::{factorize, IluOptions};
    use javelin_sparse::CooMatrix;
    use javelin_sparse::CsrMatrix;
    use javelin_synth::grid::convection_diffusion_2d;
    use javelin_synth::util::rhs_panel;

    fn assert_columns_bitwise(
        a: &CsrMatrix<f64>,
        b: &[f64],
        k: usize,
        batch_x: &[f64],
        batch_res: &[SolverResult],
        m: &impl Preconditioner<f64>,
        opts: &SolverOptions,
    ) {
        let n = a.nrows();
        for c in 0..k {
            let mut x = vec![0.0; n];
            let r = bicgstab_with(
                a,
                &b[c * n..(c + 1) * n],
                &mut x,
                m,
                opts,
                &mut SolverWorkspace::new(),
            );
            assert_eq!(batch_res[c].converged, r.converged, "col {c}");
            assert_eq!(batch_res[c].iterations, r.iterations, "col {c}");
            assert_eq!(
                batch_res[c].relative_residual.to_bits(),
                r.relative_residual.to_bits(),
                "col {c}"
            );
            assert_eq!(batch_res[c].history.len(), r.history.len(), "col {c}");
            let bb: Vec<u64> = batch_x[c * n..(c + 1) * n]
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let sb: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bb, sb, "col {c}");
        }
    }

    #[test]
    fn batch_is_bitwise_identical_to_independent_bicgstab() {
        // The defining contract on a genuinely nonsymmetric operator.
        let a = convection_diffusion_2d(13, 11, 0.4, 0.2);
        let n = a.nrows();
        let f = factorize(&a, &IluOptions::ilu0(2)).unwrap();
        let opts = SolverOptions::default();
        for k in [1usize, 3, 8] {
            let b = rhs_panel(n, k, 11);
            let mut xb = vec![0.0; n * k];
            let results = bicgstab_batch(
                &a,
                Panel::new(&b, n, k),
                PanelMut::new(&mut xb, n, k),
                &f,
                &opts,
            );
            assert!(results.iter().all(|r| r.converged), "k={k}");
            assert_columns_bitwise(&a, &b, k, &xb, &results, &f, &opts);
        }
    }

    #[test]
    fn masking_freezes_converged_columns_independently() {
        let a = convection_diffusion_2d(14, 14, 0.5, 0.1);
        let n = a.nrows();
        let f = factorize(&a, &IluOptions::default()).unwrap();
        let opts = SolverOptions::default();
        let mut b = vec![0.0; n * 2];
        // Easy column: the RHS of a constant solution (the smooth mode
        // ILU resolves almost immediately); hard column: rough data.
        let ones = vec![1.0; n];
        b[..n].copy_from_slice(&a.spmv(&ones));
        for i in 0..n {
            b[n + i] = ((i * 17 % 31) as f64 - 15.0) * 0.4;
        }
        let mut x = vec![0.0; n * 2];
        let res = bicgstab_batch(
            &a,
            Panel::new(&b, n, 2),
            PanelMut::new(&mut x, n, 2),
            &f,
            &opts,
        );
        assert!(res[0].converged && res[1].converged);
        assert!(
            res[0].iterations < res[1].iterations,
            "easy column {} vs hard column {}",
            res[0].iterations,
            res[1].iterations
        );
        assert_columns_bitwise(&a, &b, 2, &x, &res, &f, &opts);
    }

    /// A matrix whose leading 2×2 block is exactly skew-symmetric (a
    /// guaranteed ρ-chain breakdown for BiCGSTAB with x₀ = 0 and a RHS
    /// supported on that block) glued to a well-behaved nonsymmetric
    /// block. Column 0 of the panel must break down mid-iteration
    /// without perturbing a single bit of the other columns' iterates.
    fn skew_plus_dominant(m: usize) -> CsrMatrix<f64> {
        let n = 2 + m;
        let mut coo = CooMatrix::new(n, n);
        coo.push(0, 1, 2.0).unwrap();
        coo.push(1, 0, -2.0).unwrap();
        for i in 0..m {
            let r = 2 + i;
            coo.push(r, r, 5.0).unwrap();
            if i + 1 < m {
                coo.push(r, r + 1, -1.3).unwrap();
                coo.push(r + 1, r, -0.7).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn rho_breakdown_masks_one_column_without_perturbing_the_rest() {
        let m = 40;
        let a = skew_plus_dominant(m);
        let n = a.nrows();
        let k = 3;
        let mut b = vec![0.0; n * k];
        // Column 0 lives on the skew block: scalar BiCGSTAB breaks down.
        b[0] = 1.0;
        b[1] = -0.5;
        // Columns 1..k live on the dominant block and converge.
        for c in 1..k {
            for i in 0..m {
                b[c * n + 2 + i] = ((i * 7 + c) % 13) as f64 * 0.3 - 1.7;
            }
        }
        let opts = SolverOptions::default();
        // Prove the breakdown really happens in the scalar solver.
        let mut x0 = vec![0.0; n];
        let scalar0 = bicgstab_with(
            &a,
            &b[..n],
            &mut x0,
            &IdentityPrecond,
            &opts,
            &mut SolverWorkspace::new(),
        );
        assert!(!scalar0.converged, "column 0 must break down");
        assert!(
            scalar0.iterations < opts.max_iters,
            "breakdown, not cap: {}",
            scalar0.iterations
        );
        // The batch masks column 0 at the same point, bit for bit, and
        // the surviving columns match their scalar runs bit for bit.
        let mut xb = vec![0.0; n * k];
        let res = bicgstab_batch(
            &a,
            Panel::new(&b, n, k),
            PanelMut::new(&mut xb, n, k),
            &IdentityPrecond,
            &opts,
        );
        assert!(!res[0].converged);
        assert!(res[1].converged && res[2].converged);
        assert_columns_bitwise(&a, &b, k, &xb, &res, &IdentityPrecond, &opts);
    }

    #[test]
    fn zero_rhs_columns_are_trivially_converged() {
        let a = convection_diffusion_2d(6, 6, 0.3, 0.3);
        let n = a.nrows();
        let f = factorize(&a, &IluOptions::default()).unwrap();
        let mut b = vec![0.0; n * 3];
        for i in 0..n {
            b[n + i] = 1.0; // only the middle column is nontrivial
        }
        let mut x = vec![5.0; n * 3];
        let res = bicgstab_batch(
            &a,
            Panel::new(&b, n, 3),
            PanelMut::new(&mut x, n, 3),
            &f,
            &SolverOptions::default(),
        );
        assert!(res[0].converged && res[0].iterations == 0);
        assert!(res[2].converged && res[2].iterations == 0);
        assert!(x[..n].iter().all(|&v| v == 0.0));
        assert!(x[2 * n..].iter().all(|&v| v == 0.0));
        assert!(res[1].converged && res[1].iterations > 0);
    }

    #[test]
    fn workspace_reuse_across_widths_is_bitwise_stable() {
        let a = convection_diffusion_2d(10, 9, 0.2, 0.4);
        let n = a.nrows();
        let f = factorize(&a, &IluOptions::ilu0(2)).unwrap();
        let opts = SolverOptions::default();
        let b3 = rhs_panel(n, 3, 5);
        let reference = {
            let mut x = vec![0.0; n * 3];
            bicgstab_batch(
                &a,
                Panel::new(&b3, n, 3),
                PanelMut::new(&mut x, n, 3),
                &f,
                &opts,
            );
            x.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        };
        let mut ws = SolverWorkspace::new();
        for rep in 0..3 {
            let mut x = vec![0.0; n * 3];
            bicgstab_batch_with(
                &a,
                Panel::new(&b3, n, 3),
                PanelMut::new(&mut x, n, 3),
                &f,
                &opts,
                &mut ws,
            );
            let bits: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, reference, "rep {rep}");
            // Interleave a narrower solve to stress the width change.
            let mut x1 = vec![0.0; n];
            bicgstab_batch_with(
                &a,
                Panel::new(&b3[..n], n, 1),
                PanelMut::new(&mut x1, n, 1),
                &f,
                &opts,
                &mut ws,
            );
        }
    }

    #[test]
    fn iteration_cap_and_histories() {
        let a = convection_diffusion_2d(16, 16, 0.6, 0.2);
        let n = a.nrows();
        let b = rhs_panel(n, 2, 3);
        let opts = SolverOptions {
            max_iters: 2,
            tol: 1e-15,
            record_history: true,
            ..Default::default()
        };
        let mut x = vec![0.0; n * 2];
        let res = bicgstab_batch(
            &a,
            Panel::new(&b, n, 2),
            PanelMut::new(&mut x, n, 2),
            &IdentityPrecond,
            &opts,
        );
        for r in &res {
            assert!(!r.converged);
            assert_eq!(r.iterations, 2);
            assert_eq!(r.history.len(), 3); // initial + 2 full steps
        }
        assert_columns_bitwise(&a, &b, 2, &x, &res, &IdentityPrecond, &opts);
    }
}
