//! Flexible GMRES (FGMRES, Saad 1993).
//!
//! GMRES with a preconditioner that may *change between iterations* —
//! the standard pairing for preconditioners that are themselves
//! iterative or nondeterministic. Javelin's factors are deterministic,
//! but FGMRES matters for the framework's intended uses: τ/MILU factors
//! refreshed mid-solve, or polynomial/SSOR preconditioning with varying
//! sweep counts. The cost over GMRES is storing the preconditioned
//! basis `Z` alongside `V`.

use crate::{SolverOptions, SolverResult, SolverStatus, SolverWorkspace};
use javelin_core::precond::Preconditioner;
use javelin_sparse::vecops;
use javelin_sparse::{CsrMatrix, Scalar};

/// Flexible restarted GMRES: like [`crate::gmres()`], but applies the
/// (possibly varying) preconditioner through the stored `Z` basis, so
/// each iteration may use a different `M⁻¹`.
///
/// Allocates a fresh [`SolverWorkspace`]; repeated callers should hold
/// one and use [`fgmres_with`].
///
/// # Panics
/// On dimension mismatches.
pub fn fgmres<T: Scalar, P: Preconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    x: &mut [T],
    m: &P,
    opts: &SolverOptions,
) -> SolverResult {
    fgmres_with(a, b, x, m, opts, &mut SolverWorkspace::new())
}

/// [`fgmres`] with caller-owned working memory (both Arnoldi bases,
/// Hessenberg/Givens state, preconditioner scratch): allocation-free
/// once the workspace has seen this `(n, restart)` size.
///
/// # Panics
/// On dimension mismatches.
pub fn fgmres_with<T: Scalar, P: Preconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    x: &mut [T],
    m: &P,
    opts: &SolverOptions,
    ws: &mut SolverWorkspace<T>,
) -> SolverResult {
    let n = a.nrows();
    assert_eq!(b.len(), n, "fgmres: rhs length");
    assert_eq!(x.len(), n, "fgmres: solution length");
    let restart = opts.restart.max(1).min(n.max(1));
    let b_norm = vecops::norm2(b).to_f64();
    if b_norm == 0.0 {
        x.fill(T::ZERO);
        return SolverResult {
            converged: true,
            iterations: 0,
            relative_residual: 0.0,
            history: Vec::new(),
            status: SolverStatus::Converged,
            retried: false,
        };
    }
    if !b_norm.is_finite() {
        // Hostile RHS: refuse to iterate on NaN/∞ data.
        return SolverResult {
            converged: false,
            iterations: 0,
            relative_residual: f64::NAN,
            history: Vec::new(),
            status: SolverStatus::NumericalBreakdown,
            retried: false,
        };
    }
    let mut history = Vec::new();
    let mut total_iters = 0usize;
    let mut broke_down = false;
    #[allow(unused_assignments)]
    let mut relres = f64::INFINITY;

    ws.ensure_krylov(n, restart, true);
    let SolverWorkspace {
        precond,
        u,
        w,
        v_basis,
        z_basis,
        h,
        cs,
        sn,
        g,
        yk,
        ..
    } = ws;

    loop {
        // r = b - A x (into u).
        a.spmv_into(x, u);
        for i in 0..n {
            u[i] = b[i] - u[i];
        }
        let beta = vecops::norm2(u);
        relres = beta.to_f64() / b_norm;
        if opts.record_history && history.is_empty() {
            history.push(relres);
        }
        if !relres.is_finite() {
            // Per-restart guard: non-finite true residual — stop now.
            broke_down = true;
            break;
        }
        if relres < opts.tol || total_iters >= opts.max_iters {
            break;
        }
        v_basis[0].copy_from_slice(u);
        vecops::scale(T::ONE / beta, &mut v_basis[0]);
        g.iter_mut().for_each(|gi| *gi = T::ZERO);
        g[0] = beta;
        let mut j_used = 0usize;
        for j in 0..restart {
            if total_iters >= opts.max_iters {
                break;
            }
            total_iters += 1;
            // z_j = M_j^{-1} v_j (stored); w = A z_j.
            m.apply_with(precond, &v_basis[j], &mut z_basis[j]);
            a.spmv_into(&z_basis[j], w);
            for i in 0..=j {
                let hij = vecops::dot(w, &v_basis[i]);
                h[i * restart + j] = hij;
                vecops::axpy(-hij, &v_basis[i], w);
            }
            let hjp = vecops::norm2(w);
            h[(j + 1) * restart + j] = hjp;
            for i in 0..j {
                let hi = h[i * restart + j];
                let hi1 = h[(i + 1) * restart + j];
                h[i * restart + j] = cs[i] * hi + sn[i] * hi1;
                h[(i + 1) * restart + j] = -sn[i] * hi + cs[i] * hi1;
            }
            let hjj = h[j * restart + j];
            let denom = (hjj * hjj + hjp * hjp).sqrt();
            let (c, s) = if denom == T::ZERO {
                (T::ONE, T::ZERO)
            } else {
                (hjj / denom, hjp / denom)
            };
            cs[j] = c;
            sn[j] = s;
            h[j * restart + j] = c * hjj + s * hjp;
            h[(j + 1) * restart + j] = T::ZERO;
            g[j + 1] = -s * g[j];
            g[j] = c * g[j];
            j_used = j + 1;
            relres = g[j + 1].abs().to_f64() / b_norm;
            if opts.record_history {
                history.push(relres);
            }
            if relres < opts.tol || hjp == T::ZERO {
                break;
            }
            v_basis[j + 1].copy_from_slice(w);
            vecops::scale(T::ONE / hjp, &mut v_basis[j + 1]);
        }
        if j_used == 0 {
            break;
        }
        for i in (0..j_used).rev() {
            let mut s = g[i];
            for k in (i + 1)..j_used {
                s -= h[i * restart + k] * yk[k];
            }
            yk[i] = s / h[i * restart + i];
        }
        // x += Z y — no trailing M^{-1}: Z already holds the
        // preconditioned directions (the "flexible" difference).
        for (k, y) in yk[..j_used].iter().enumerate() {
            vecops::axpy(*y, &z_basis[k], x);
        }
        if relres < opts.tol || total_iters >= opts.max_iters {
            break;
        }
    }
    let converged = relres < opts.tol;
    SolverResult {
        converged,
        iterations: total_iters,
        relative_residual: relres,
        history,
        status: if converged {
            SolverStatus::Converged
        } else if broke_down || !relres.is_finite() {
            SolverStatus::NumericalBreakdown
        } else {
            SolverStatus::MaxIters
        },
        retried: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmres;
    use javelin_core::precond::{IdentityPrecond, SsorPrecond};
    use javelin_core::{factorize, IluOptions};
    use javelin_sparse::CooMatrix;
    use parking_lot::Mutex;

    fn convection(nx: usize, ny: usize) -> CsrMatrix<f64> {
        let n = nx * ny;
        let idx = |i: usize, j: usize| i * ny + j;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..nx {
            for j in 0..ny {
                let r = idx(i, j);
                coo.push(r, r, 4.6).unwrap();
                if i > 0 {
                    coo.push(r, idx(i - 1, j), -1.4).unwrap();
                }
                if i + 1 < nx {
                    coo.push(r, idx(i + 1, j), -1.0).unwrap();
                }
                if j > 0 {
                    coo.push(r, idx(i, j - 1), -1.2).unwrap();
                }
                if j + 1 < ny {
                    coo.push(r, idx(i, j + 1), -1.0).unwrap();
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn fgmres_matches_gmres_with_fixed_preconditioner() {
        let a = convection(10, 10);
        let n = a.nrows();
        let f = factorize(&a, &IluOptions::default()).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i % 9) as f64 - 4.0).collect();
        let opts = SolverOptions {
            tol: 1e-10,
            ..Default::default()
        };
        let mut xg = vec![0.0; n];
        let rg = gmres(&a, &b, &mut xg, &f, &opts);
        let mut xf = vec![0.0; n];
        let rf = fgmres(&a, &b, &mut xf, &f, &opts);
        assert!(rg.converged && rf.converged);
        // With a fixed preconditioner FGMRES spans the same space.
        assert_eq!(rg.iterations, rf.iterations);
        for (g, w) in xf.iter().zip(xg.iter()) {
            assert!((g - w).abs() < 1e-8, "{g} vs {w}");
        }
    }

    #[test]
    fn fgmres_tolerates_a_varying_preconditioner() {
        // A preconditioner that alternates between SSOR(1.0) and
        // SSOR(1.5) per application — invalid for plain GMRES's final
        // M^{-1}(V y) step, fine for FGMRES.
        struct Alternating {
            a: SsorPrecond<f64>,
            b: SsorPrecond<f64>,
            flip: Mutex<bool>,
        }
        impl Preconditioner<f64> for Alternating {
            fn apply(&self, r: &[f64], z: &mut [f64]) {
                let mut flip = self.flip.lock();
                if *flip {
                    self.a.apply(r, z);
                } else {
                    self.b.apply(r, z);
                }
                *flip = !*flip;
            }
        }
        let a = convection(12, 12);
        let n = a.nrows();
        let pre = Alternating {
            a: SsorPrecond::new(&a, 1.0).unwrap(),
            b: SsorPrecond::new(&a, 1.5).unwrap(),
            flip: Mutex::new(false),
        };
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let mut x = vec![0.0; n];
        let res = fgmres(&a, &b, &mut x, &pre, &SolverOptions::default());
        assert!(res.converged, "relres {}", res.relative_residual);
        // True residual.
        let ax = a.spmv(&x);
        let err: f64 = b
            .iter()
            .zip(&ax)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err / bn < 1e-5, "true relres {}", err / bn);
    }

    #[test]
    fn fgmres_unpreconditioned_equals_gmres() {
        let a = convection(8, 8);
        let b = vec![1.0; 64];
        let opts = SolverOptions::default();
        let mut xg = vec![0.0; 64];
        let rg = gmres(&a, &b, &mut xg, &IdentityPrecond, &opts);
        let mut xf = vec![0.0; 64];
        let rf = fgmres(&a, &b, &mut xf, &IdentityPrecond, &opts);
        assert_eq!(rg.iterations, rf.iterations);
        assert!(rg.converged && rf.converged);
    }

    #[test]
    fn zero_rhs_trivial() {
        let a = convection(4, 4);
        let b = vec![0.0; 16];
        let mut x = vec![2.0; 16];
        let res = fgmres(&a, &b, &mut x, &IdentityPrecond, &SolverOptions::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }
}
