//! Lockstep-restart batched GMRES: `k` independent nonsymmetric
//! systems driven through one RHS panel, one restart cycle at a time.
//!
//! [`gmres_batch`] extends the lockstep-masking pattern of
//! [`crate::solve_batch`] to restarted GMRES. Because a scalar GMRES
//! run only ever leaves its restart cycle at a convergence, breakdown
//! or iteration-cap boundary, every still-active column of a panel sits
//! at **the same inner step `j` of the same cycle** — so the dominant
//! per-step cost, the preconditioner application `z = M⁻¹·vⱼ`, can be
//! one shared [`javelin_core::Preconditioner::apply_panel_with`] call
//! over the stacked Arnoldi slot `j`, while the Hessenberg, Givens and
//! least-squares state stay strictly per column. Column `c` of the
//! batch is **bit-identical** to a standalone [`crate::gmres_with`] run
//! on that column: same iterates, same iteration counts, same residual
//! histories.
//!
//! ## Masking at restart boundaries
//!
//! A column that converges (or exhausts its iteration cap) mid-cycle
//! finalizes immediately — back-substitution, one single-column
//! correction apply `x += M⁻¹(V·y)`, exactly where the scalar solver
//! would have stopped — and then *freezes in its panel slot*: later
//! shared applies simply carry its stale basis column along without
//! reading the result. A column that hits the happy-breakdown case
//! (`h_{j+1,j} = 0` with the residual still above tolerance) finalizes
//! its cycle the same way and then *pauses* until the panel's next
//! restart boundary, where it re-enters with a fresh residual — the
//! same arithmetic the scalar solver performs immediately, deferred to
//! the shared boundary so the panel applies keep a single shape.
//!
//! ## Allocation discipline
//!
//! The stacked basis (`restart + 1` panels of `n × k`) and all
//! per-column small state live in the caller's [`SolverWorkspace`]
//! (`ensure_panel_gmres`, grow-only): after the first solve at a given
//! `(n, k, restart)` the whole batch runs with zero steady-state heap
//! allocations, with the `Vec<SolverResult>` on entry and opt-in
//! residual histories as the documented exceptions.

use crate::{PanelMatrices, SolverOptions, SolverResult, SolverStatus, SolverWorkspace};
use javelin_core::precond::Preconditioner;
use javelin_core::ApplyScratch;
use javelin_sparse::lanes::{Lanes, LANE_ACTIVE, LANE_DONE, LANE_HALTED, LANE_PENDING};
use javelin_sparse::{vecops, with_lanes, LaneMask, Panel, PanelMut, Scalar};

/// Batched right-preconditioned restarted GMRES(m) over an RHS panel,
/// allocating a fresh workspace. Repeated callers should hold a
/// [`SolverWorkspace`] and use [`gmres_batch_with`].
///
/// ```
/// use javelin_core::{factorize, IluOptions};
/// use javelin_solver::{gmres_batch, SolverOptions};
/// use javelin_sparse::{Panel, PanelMut};
///
/// let a = javelin_synth::grid::convection_diffusion_2d(12, 12, 0.4, 0.2);
/// let n = a.nrows();
/// let f = factorize(&a, &IluOptions::ilu0(2)).unwrap();
/// let (k, b) = (3, javelin_synth::util::rhs_panel(n, 3, 7));
/// let mut x = vec![0.0; n * k];
/// let results = gmres_batch(
///     &a,
///     Panel::new(&b, n, k),
///     PanelMut::new(&mut x, n, k),
///     &f,
///     &SolverOptions::default(),
/// );
/// assert!(results.iter().all(|r| r.converged));
/// ```
///
/// # Panics
/// On panel shape mismatches.
pub fn gmres_batch<T: Scalar, A: PanelMatrices<T>, P: Preconditioner<T>>(
    a: &A,
    b: Panel<'_, T>,
    x: PanelMut<'_, T>,
    m: &P,
    opts: &SolverOptions,
) -> Vec<SolverResult> {
    gmres_batch_with(a, b, x, m, opts, &mut SolverWorkspace::new())
}

/// [`gmres_batch`] with caller-owned working memory (see module docs
/// for the lockstep-restart contract). Returns one [`SolverResult`]
/// per panel column, in column order. Widths `k ∈ {1, 4, 8}` dispatch
/// to the monomorphized fixed-lane driver, everything else to the
/// bit-identical dynamic-width fallback.
///
/// # Panics
/// On panel shape mismatches.
pub fn gmres_batch_with<T: Scalar, A: PanelMatrices<T>, P: Preconditioner<T>>(
    a: &A,
    b: Panel<'_, T>,
    x: PanelMut<'_, T>,
    m: &P,
    opts: &SolverOptions,
    ws: &mut SolverWorkspace<T>,
) -> Vec<SolverResult> {
    let mut results = vec![SolverResult::default(); b.ncols()];
    gmres_batch_into(a, b, x, m, opts, ws, &mut results);
    results
}

/// [`gmres_batch_with`] writing into a caller-provided result slice —
/// the fully allocation-free form: with the workspace reserved via
/// [`SolverWorkspace::reserve_gmres_basis`] even the **first** solve
/// performs zero heap allocations (enforced by
/// `tests/refactor_alloc.rs`).
///
/// # Panics
/// On panel shape mismatches or when `results.len() != b.ncols()`.
pub fn gmres_batch_into<T: Scalar, A: PanelMatrices<T>, P: Preconditioner<T>>(
    a: &A,
    b: Panel<'_, T>,
    x: PanelMut<'_, T>,
    m: &P,
    opts: &SolverOptions,
    ws: &mut SolverWorkspace<T>,
    results: &mut [SolverResult],
) {
    let k = b.ncols();
    assert_eq!(b.nrows(), a.nrows(), "gmres_batch: rhs panel rows");
    assert_eq!(x.nrows(), a.nrows(), "gmres_batch: solution panel rows");
    assert_eq!(x.ncols(), k, "gmres_batch: panel widths differ");
    assert_eq!(results.len(), k, "gmres_batch: results length");
    if k == 0 {
        return;
    }
    with_lanes!(k, lanes => gmres_batch_lanes(lanes, a, b, x, m, opts, ws, results));
}

/// The width-generic lockstep-restart GMRES driver core, dispatched by
/// the entry points above.
#[allow(clippy::too_many_arguments)]
fn gmres_batch_lanes<T: Scalar, A: PanelMatrices<T>, P: Preconditioner<T>, L: Lanes>(
    lanes: L,
    a: &A,
    b: Panel<'_, T>,
    mut x: PanelMut<'_, T>,
    m: &P,
    opts: &SolverOptions,
    ws: &mut SolverWorkspace<T>,
    results: &mut [SolverResult],
) {
    let n = a.nrows();
    let k = lanes.width();
    assert_eq!(b.ncols(), k, "gmres_batch: rhs panel width vs lanes");
    assert_eq!(b.nrows(), n, "gmres_batch: rhs panel rows");
    assert_eq!(x.nrows(), n, "gmres_batch: solution panel rows");
    assert_eq!(x.ncols(), k, "gmres_batch: panel widths differ");
    assert_eq!(results.len(), k, "gmres_batch: results length");
    for r in results.iter_mut() {
        *r = SolverResult::default();
    }
    let restart = opts.restart.max(1).min(n.max(1));
    ws.ensure_panel_gmres(n, k, restart);
    // Rearm every lane to ACTIVE for this solve (storage pre-sized).
    ws.mask.reset(k);
    let SolverWorkspace {
        precond,
        pz,
        pq,
        pv,
        pu,
        ph,
        pcs,
        psn,
        pg,
        pyk,
        col_bnorm,
        col_relres,
        mask,
        col_iters,
        col_jused,
        ..
    } = ws;
    // Per-column strides into the flat small-state arrays.
    let hs = (restart + 1) * restart;
    let gs = restart + 1;

    // ---- Per-column setup, mirroring `gmres_with` exactly. ----------
    let mut any_pending = false;
    for c in 0..k {
        let rc = c * n..(c + 1) * n;
        col_bnorm[c] = vecops::norm2(b.col(c)).to_f64();
        col_iters[c] = 0;
        col_jused[c] = 0;
        if col_bnorm[c] == 0.0 {
            // Trivial column: x = 0, converged in 0 iterations. Keep its
            // panel slots finite for the shared applies.
            x.col_mut(c).fill(T::ZERO);
            for buf in [&mut *pz, &mut *pq, &mut *pu] {
                buf[rc.clone()].fill(T::ZERO);
            }
            for slot in 0..=restart {
                pv[slot * n * k + c * n..slot * n * k + (c + 1) * n].fill(T::ZERO);
            }
            mask.set(c, LANE_DONE);
            results[c].converged = true;
            results[c].status = SolverStatus::Converged;
        } else if !col_bnorm[c].is_finite() {
            // Hostile RHS (NaN/∞): freeze at the initial guess with
            // zeroed panel slots so the shared applies stay finite.
            for buf in [&mut *pz, &mut *pq, &mut *pu] {
                buf[rc.clone()].fill(T::ZERO);
            }
            for slot in 0..=restart {
                pv[slot * n * k + c * n..slot * n * k + (c + 1) * n].fill(T::ZERO);
            }
            mask.set(c, LANE_HALTED);
            results[c].relative_residual = f64::NAN;
            results[c].status = SolverStatus::NumericalBreakdown;
        } else {
            mask.set(c, LANE_PENDING);
            any_pending = true;
        }
    }
    if !any_pending {
        return;
    }

    // ---- Lockstep restart cycles. -----------------------------------
    loop {
        // Cycle start: every pending column computes its true residual
        // and either finishes or (re-)enters the shared cycle.
        let mut in_cycle = false;
        for c in 0..k {
            if !mask.is(c, LANE_PENDING) {
                continue;
            }
            let rc = c * n..(c + 1) * n;
            // r = b - A x (into u).
            a.col_matrix(c).spmv_into(x.col(c), &mut pu[rc.clone()]);
            let bc = b.col(c);
            for i in 0..n {
                pu[c * n + i] = bc[i] - pu[c * n + i];
            }
            let beta = vecops::norm2(&pu[rc.clone()]);
            col_relres[c] = beta.to_f64() / col_bnorm[c];
            if opts.record_history && results[c].history.is_empty() {
                results[c].history.push(col_relres[c]);
            }
            if !col_relres[c].is_finite() {
                // Per-restart guard: the true residual turned NaN/∞
                // (poisoned preconditioner or matrix values) — freeze
                // the column instead of re-entering the cycle.
                mask.set(c, LANE_HALTED);
                results[c].iterations = col_iters[c];
                results[c].relative_residual = col_relres[c];
                results[c].status = SolverStatus::NumericalBreakdown;
                continue;
            }
            if col_relres[c] < opts.tol || col_iters[c] >= opts.max_iters {
                let done = col_relres[c] < opts.tol;
                mask.set(c, if done { LANE_DONE } else { LANE_HALTED });
                results[c].converged = done;
                results[c].iterations = col_iters[c];
                results[c].relative_residual = col_relres[c];
                results[c].status = if done {
                    SolverStatus::Converged
                } else {
                    SolverStatus::MaxIters
                };
                continue;
            }
            // v₀ = r / β; reset the rotated RHS g.
            let v0 = &mut pv[c * n..(c + 1) * n];
            v0.copy_from_slice(&pu[rc]);
            vecops::scale(T::ONE / beta, v0);
            let g = &mut pg[c * gs..(c + 1) * gs];
            g.iter_mut().for_each(|gi| *gi = T::ZERO);
            g[0] = beta;
            col_jused[c] = 0;
            mask.set(c, LANE_ACTIVE);
            in_cycle = true;
        }
        if !in_cycle {
            break; // every column is DONE or HALTED
        }

        // Inner Arnoldi steps, in lockstep across the panel.
        for j in 0..restart {
            if !mask.any_active() {
                break;
            }
            // z = M⁻¹ vⱼ: ONE panel apply over the stacked basis slot j
            // serves every active column; masked columns carry stale
            // (finite-or-not, column-independent) data along.
            m.apply_panel_with(
                precond,
                Panel::new(&pv[j * n * k..(j + 1) * n * k], n, k),
                PanelMut::new(&mut pz[..n * k], n, k),
            );
            for c in 0..k {
                if !mask.is_active(c) {
                    continue;
                }
                if col_iters[c] >= opts.max_iters {
                    // The scalar solver leaves the inner loop here and
                    // finalizes what it has.
                    finalize_column(
                        c,
                        n,
                        k,
                        restart,
                        col_jused[c],
                        ph,
                        pg,
                        pyk,
                        pv,
                        pu,
                        pz,
                        precond,
                        m,
                        &mut x,
                    );
                    dispose(c, opts, col_relres, col_iters, mask, results);
                    continue;
                }
                col_iters[c] += 1;
                let rc = c * n..(c + 1) * n;
                // w = A zⱼ (w lives in this column's pq slot).
                a.col_matrix(c)
                    .spmv_into(&pz[rc.clone()], &mut pq[rc.clone()]);
                // Modified Gram–Schmidt against this column's basis.
                for i in 0..=j {
                    let vi = &pv[i * n * k + c * n..i * n * k + (c + 1) * n];
                    let hij = vecops::dot(&pq[rc.clone()], vi);
                    ph[c * hs + i * restart + j] = hij;
                    vecops::axpy(-hij, vi, &mut pq[rc.clone()]);
                }
                let hjp = vecops::norm2(&pq[rc.clone()]);
                ph[c * hs + (j + 1) * restart + j] = hjp;
                // Apply existing Givens rotations to the new column.
                for i in 0..j {
                    let hi = ph[c * hs + i * restart + j];
                    let hi1 = ph[c * hs + (i + 1) * restart + j];
                    let (ci, si) = (pcs[c * restart + i], psn[c * restart + i]);
                    ph[c * hs + i * restart + j] = ci * hi + si * hi1;
                    ph[c * hs + (i + 1) * restart + j] = -si * hi + ci * hi1;
                }
                // New rotation to kill h[j+1, j].
                let hjj = ph[c * hs + j * restart + j];
                let denom = (hjj * hjj + hjp * hjp).sqrt();
                let (cj, sj) = if denom == T::ZERO {
                    (T::ONE, T::ZERO)
                } else {
                    (hjj / denom, hjp / denom)
                };
                pcs[c * restart + j] = cj;
                psn[c * restart + j] = sj;
                ph[c * hs + j * restart + j] = cj * hjj + sj * hjp;
                ph[c * hs + (j + 1) * restart + j] = T::ZERO;
                pg[c * gs + j + 1] = -sj * pg[c * gs + j];
                pg[c * gs + j] = cj * pg[c * gs + j];
                col_jused[c] = j + 1;
                col_relres[c] = pg[c * gs + j + 1].abs().to_f64() / col_bnorm[c];
                if opts.record_history {
                    results[c].history.push(col_relres[c]);
                }
                if col_relres[c] < opts.tol {
                    // Converged mid-cycle: finalize and freeze.
                    finalize_column(
                        c,
                        n,
                        k,
                        restart,
                        col_jused[c],
                        ph,
                        pg,
                        pyk,
                        pv,
                        pu,
                        pz,
                        precond,
                        m,
                        &mut x,
                    );
                    dispose(c, opts, col_relres, col_iters, mask, results);
                    continue;
                }
                if hjp == T::ZERO {
                    // Happy breakdown: finalize the cycle now, pause
                    // until the panel's next restart boundary.
                    finalize_column(
                        c,
                        n,
                        k,
                        restart,
                        col_jused[c],
                        ph,
                        pg,
                        pyk,
                        pv,
                        pu,
                        pz,
                        precond,
                        m,
                        &mut x,
                    );
                    dispose(c, opts, col_relres, col_iters, mask, results);
                    continue;
                }
                // v_{j+1} = w / h_{j+1,j}.
                let (src, dst) = (rc.clone(), (j + 1) * n * k + c * n);
                let vnext = &mut pv[dst..dst + n];
                vnext.copy_from_slice(&pq[src]);
                vecops::scale(T::ONE / hjp, vnext);
            }
        }
        // Restart boundary: columns that used the full cycle update x
        // and either finish or re-enter pending.
        for c in 0..k {
            if !mask.is_active(c) {
                continue;
            }
            finalize_column(
                c,
                n,
                k,
                restart,
                col_jused[c],
                ph,
                pg,
                pyk,
                pv,
                pu,
                pz,
                precond,
                m,
                &mut x,
            );
            dispose(c, opts, col_relres, col_iters, mask, results);
        }
    }
}

/// End-of-cycle update for one column, exactly as the scalar solver
/// performs it: back-substitute `y` from the triangularized Hessenberg,
/// assemble `u = V·y`, apply the preconditioner once (single column —
/// the scalar code path, bit for bit) and add the correction to `x`.
#[allow(clippy::too_many_arguments)]
fn finalize_column<T: Scalar, P: Preconditioner<T>>(
    c: usize,
    n: usize,
    k: usize,
    restart: usize,
    j_used: usize,
    ph: &[T],
    pg: &[T],
    pyk: &mut [T],
    pv: &[T],
    pu: &mut [T],
    pz: &mut [T],
    precond: &mut ApplyScratch<T>,
    m: &P,
    x: &mut PanelMut<'_, T>,
) {
    let hs = (restart + 1) * restart;
    let h = &ph[c * hs..(c + 1) * hs];
    let g = &pg[c * (restart + 1)..(c + 1) * (restart + 1)];
    let yk = &mut pyk[c * restart..(c + 1) * restart];
    for i in (0..j_used).rev() {
        let mut s = g[i];
        for kk in (i + 1)..j_used {
            s -= h[i * restart + kk] * yk[kk];
        }
        yk[i] = s / h[i * restart + i];
    }
    // x += M⁻¹ (V y)
    let u = &mut pu[c * n..(c + 1) * n];
    u.iter_mut().for_each(|ui| *ui = T::ZERO);
    for (kk, y) in yk[..j_used].iter().enumerate() {
        let v = &pv[kk * n * k + c * n..kk * n * k + (c + 1) * n];
        vecops::axpy(*y, v, u);
    }
    let z = &mut pz[c * n..(c + 1) * n];
    m.apply_column_with(precond, c, u, z);
    for (xi, zi) in x.col_mut(c).iter_mut().zip(z.iter()) {
        *xi += *zi;
    }
}

/// Post-finalization disposition, mirroring the scalar solver's exit
/// checks: below tolerance → converged and frozen; iteration cap hit →
/// frozen unconverged; otherwise the column re-enters at the panel's
/// next restart boundary.
fn dispose(
    c: usize,
    opts: &SolverOptions,
    col_relres: &[f64],
    col_iters: &[usize],
    mask: &mut LaneMask,
    results: &mut [SolverResult],
) {
    if col_relres[c] < opts.tol {
        mask.set(c, LANE_DONE);
        results[c].converged = true;
        results[c].iterations = col_iters[c];
        results[c].relative_residual = col_relres[c];
        results[c].status = SolverStatus::Converged;
    } else if col_iters[c] >= opts.max_iters {
        mask.set(c, LANE_HALTED);
        results[c].iterations = col_iters[c];
        results[c].relative_residual = col_relres[c];
        results[c].status = if col_relres[c].is_finite() {
            SolverStatus::MaxIters
        } else {
            SolverStatus::NumericalBreakdown
        };
    } else {
        // Not converged, cap not hit: re-enter at the panel's next
        // restart boundary, where the cycle-start residual check (and
        // its non-finite guard) decides this column's fate — exactly
        // the scalar solver's control flow.
        mask.set(c, LANE_PENDING);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmres_with;
    use javelin_core::precond::IdentityPrecond;
    use javelin_core::{factorize, IluOptions};
    use javelin_sparse::CsrMatrix;
    use javelin_synth::grid::convection_diffusion_2d;
    use javelin_synth::util::rhs_panel;

    fn assert_columns_bitwise(
        a: &CsrMatrix<f64>,
        b: &[f64],
        k: usize,
        batch_x: &[f64],
        batch_res: &[SolverResult],
        m: &impl Preconditioner<f64>,
        opts: &SolverOptions,
    ) {
        let n = a.nrows();
        for c in 0..k {
            let mut x = vec![0.0; n];
            let r = gmres_with(
                a,
                &b[c * n..(c + 1) * n],
                &mut x,
                m,
                opts,
                &mut SolverWorkspace::new(),
            );
            assert_eq!(batch_res[c].converged, r.converged, "col {c}");
            assert_eq!(batch_res[c].iterations, r.iterations, "col {c}");
            assert_eq!(
                batch_res[c].relative_residual.to_bits(),
                r.relative_residual.to_bits(),
                "col {c}"
            );
            assert_eq!(batch_res[c].history.len(), r.history.len(), "col {c}");
            let bb: Vec<u64> = batch_x[c * n..(c + 1) * n]
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let sb: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bb, sb, "col {c}");
        }
    }

    #[test]
    fn batch_is_bitwise_identical_to_independent_gmres() {
        let a = convection_diffusion_2d(13, 11, 0.4, 0.2);
        let n = a.nrows();
        let f = factorize(&a, &IluOptions::ilu0(2)).unwrap();
        let opts = SolverOptions::default();
        for k in [1usize, 3, 8] {
            let b = rhs_panel(n, k, 23);
            let mut xb = vec![0.0; n * k];
            let results = gmres_batch(
                &a,
                Panel::new(&b, n, k),
                PanelMut::new(&mut xb, n, k),
                &f,
                &opts,
            );
            assert!(results.iter().all(|r| r.converged), "k={k}");
            assert_columns_bitwise(&a, &b, k, &xb, &results, &f, &opts);
        }
    }

    #[test]
    fn lockstep_restarts_preserve_bitwise_identity() {
        // A short restart length forces several full cycles per column
        // — the lockstep-restart boundary is where block GMRES variants
        // usually diverge from the scalar recurrence, so pin it with an
        // unpreconditioned run (many cycles) and histories on.
        let a = convection_diffusion_2d(12, 12, 0.6, 0.3);
        let n = a.nrows();
        let opts = SolverOptions {
            restart: 7,
            record_history: true,
            ..Default::default()
        };
        for k in [2usize, 5] {
            let b = rhs_panel(n, k, 31);
            let mut xb = vec![0.0; n * k];
            let results = gmres_batch(
                &a,
                Panel::new(&b, n, k),
                PanelMut::new(&mut xb, n, k),
                &IdentityPrecond,
                &opts,
            );
            assert!(results.iter().all(|r| r.converged), "k={k}");
            assert!(
                results.iter().any(|r| r.iterations > 7),
                "k={k}: want at least one column past the first restart"
            );
            assert_columns_bitwise(&a, &b, k, &xb, &results, &IdentityPrecond, &opts);
        }
    }

    #[test]
    fn masking_freezes_converged_columns_independently() {
        let a = convection_diffusion_2d(14, 14, 0.5, 0.1);
        let n = a.nrows();
        let f = factorize(&a, &IluOptions::default()).unwrap();
        let opts = SolverOptions::default();
        let mut b = vec![0.0; n * 2];
        b[0] = 1e-3; // nearly-aligned easy column
        for i in 0..n {
            b[n + i] = ((i * 17 % 31) as f64 - 15.0) * 0.4;
        }
        let mut x = vec![0.0; n * 2];
        let res = gmres_batch(
            &a,
            Panel::new(&b, n, 2),
            PanelMut::new(&mut x, n, 2),
            &f,
            &opts,
        );
        assert!(res[0].converged && res[1].converged);
        assert!(
            res[0].iterations <= res[1].iterations,
            "easy column {} vs hard column {}",
            res[0].iterations,
            res[1].iterations
        );
        assert_columns_bitwise(&a, &b, 2, &x, &res, &f, &opts);
    }

    #[test]
    fn zero_rhs_columns_are_trivially_converged() {
        let a = convection_diffusion_2d(6, 6, 0.3, 0.3);
        let n = a.nrows();
        let f = factorize(&a, &IluOptions::default()).unwrap();
        let mut b = vec![0.0; n * 3];
        for i in 0..n {
            b[n + i] = 1.0;
        }
        let mut x = vec![5.0; n * 3];
        let res = gmres_batch(
            &a,
            Panel::new(&b, n, 3),
            PanelMut::new(&mut x, n, 3),
            &f,
            &SolverOptions::default(),
        );
        assert!(res[0].converged && res[0].iterations == 0);
        assert!(res[2].converged && res[2].iterations == 0);
        assert!(x[..n].iter().all(|&v| v == 0.0));
        assert!(x[2 * n..].iter().all(|&v| v == 0.0));
        assert!(res[1].converged && res[1].iterations > 0);
    }

    #[test]
    fn exact_preconditioner_converges_in_one_step_per_column() {
        // ILU with full fill = exact LU: every column needs ≤ 2 inner
        // steps, and the batch must agree with the scalar runs exactly.
        let a = convection_diffusion_2d(7, 7, 0.4, 0.2);
        let n = a.nrows();
        let f = factorize(&a, &IluOptions::default().with_fill(n)).unwrap();
        let opts = SolverOptions::default();
        let k = 4;
        let b = rhs_panel(n, k, 13);
        let mut x = vec![0.0; n * k];
        let res = gmres_batch(
            &a,
            Panel::new(&b, n, k),
            PanelMut::new(&mut x, n, k),
            &f,
            &opts,
        );
        for r in &res {
            assert!(r.converged);
            assert!(r.iterations <= 2, "took {} iterations", r.iterations);
        }
        assert_columns_bitwise(&a, &b, k, &x, &res, &f, &opts);
    }

    #[test]
    fn iteration_cap_matches_scalar_exactly() {
        let a = convection_diffusion_2d(14, 14, 0.6, 0.2);
        let n = a.nrows();
        let b = rhs_panel(n, 2, 3);
        let opts = SolverOptions {
            max_iters: 5,
            tol: 1e-14,
            restart: 3, // cap lands mid-cycle: 5 = 3 + 2
            record_history: true,
        };
        let mut x = vec![0.0; n * 2];
        let res = gmres_batch(
            &a,
            Panel::new(&b, n, 2),
            PanelMut::new(&mut x, n, 2),
            &IdentityPrecond,
            &opts,
        );
        for r in &res {
            assert!(!r.converged);
            assert_eq!(r.iterations, 5);
        }
        assert_columns_bitwise(&a, &b, 2, &x, &res, &IdentityPrecond, &opts);
    }

    #[test]
    fn workspace_reuse_across_widths_is_bitwise_stable() {
        let a = convection_diffusion_2d(10, 9, 0.2, 0.4);
        let n = a.nrows();
        let f = factorize(&a, &IluOptions::ilu0(2)).unwrap();
        let opts = SolverOptions {
            restart: 9,
            ..Default::default()
        };
        let b3 = rhs_panel(n, 3, 5);
        let reference = {
            let mut x = vec![0.0; n * 3];
            gmres_batch(
                &a,
                Panel::new(&b3, n, 3),
                PanelMut::new(&mut x, n, 3),
                &f,
                &opts,
            );
            x.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        };
        let mut ws = SolverWorkspace::new();
        for rep in 0..3 {
            let mut x = vec![0.0; n * 3];
            gmres_batch_with(
                &a,
                Panel::new(&b3, n, 3),
                PanelMut::new(&mut x, n, 3),
                &f,
                &opts,
                &mut ws,
            );
            let bits: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, reference, "rep {rep}");
            let mut x1 = vec![0.0; n];
            gmres_batch_with(
                &a,
                Panel::new(&b3[..n], n, 1),
                PanelMut::new(&mut x1, n, 1),
                &f,
                &opts,
                &mut ws,
            );
        }
    }
}
