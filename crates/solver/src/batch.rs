//! Batched PCG: `k` independent SPD systems solved in lockstep through
//! one RHS panel.
//!
//! [`solve_batch`] runs `k` preconditioned-CG recurrences side by side,
//! sharing one [`javelin_core::Preconditioner::apply_panel_with`] call
//! per iteration: the preconditioner's schedule walk — the dominant
//! per-iteration cost the paper's triangular solves pay — is traversed
//! **once per panel**, not once per column. Per-column scalar state
//! (α, β, ρ, residual norms) stays independent, so each column follows
//! exactly the arithmetic of a standalone [`crate::pcg_with`] run:
//! column `c` of the batch is **bit-identical** to solving column `c`
//! alone, iteration counts included.
//!
//! Since the lane refactor the relationship is literal: the driver body
//! is one width-generic core over [`javelin_sparse::lanes::Lanes`], and
//! [`crate::pcg_with`] *is* its `FixedLanes<1>` instantiation — there
//! is no separate scalar convergence loop to keep in sync. Widths
//! `k ∈ {1, 4, 8}` run monomorphized, all others through the
//! bit-identical dynamic fallback.
//!
//! ## Convergence masking
//!
//! Columns converge (or break down) at different iterations. A finished
//! column is *masked*: its vector updates and scalar recurrences stop,
//! its result is frozen — but its storage stays in place, so the panel
//! layout (and the panel preconditioner apply) never changes shape.
//! Applying `M⁻¹` to a frozen column is redundant work, but it is
//! exactly what keeps the remaining columns on a single shared schedule
//! walk; the batch terminates as soon as every column is masked.
//!
//! ## Allocation discipline
//!
//! All panel buffers live in the caller's [`SolverWorkspace`]
//! (`ensure_panel`, grow-only). After the first solve at a given
//! `(n, k)` — and with a warmed preconditioner scratch — an entire
//! batched solve performs **zero steady-state heap allocations**: the
//! per-iteration loop is matvecs, dots, axpys and one panel apply. The
//! `Vec<SolverResult>` assembled on entry and the optional residual
//! histories (`record_history`, off by default) are the documented
//! exceptions, mirroring the single-RHS solvers.

use crate::{PanelMatrices, SolverOptions, SolverResult, SolverStatus, SolverWorkspace};
use javelin_core::precond::Preconditioner;
use javelin_sparse::lanes::{Lanes, LANE_DONE, LANE_HALTED};
use javelin_sparse::{vecops, with_lanes, Panel, PanelMut, Scalar};

/// Batched PCG over an RHS panel, allocating a fresh workspace.
/// Repeated callers should hold a [`SolverWorkspace`] and use
/// [`solve_batch_with`].
///
/// ```
/// use javelin_core::{factorize, IluOptions};
/// use javelin_solver::{solve_batch, SolverOptions};
/// use javelin_sparse::{Panel, PanelMut};
///
/// let a = javelin_synth::grid::laplace_2d(16, 16);
/// let n = a.nrows();
/// let f = factorize(&a, &IluOptions::ilu0(2)).unwrap();
/// let (k, b) = (4, javelin_synth::util::rhs_panel(n, 4, 42));
/// let mut x = vec![0.0; n * k];
/// let results = solve_batch(
///     &a,
///     Panel::new(&b, n, k),
///     PanelMut::new(&mut x, n, k),
///     &f,
///     &SolverOptions::default(),
/// );
/// assert!(results.iter().all(|r| r.converged));
/// ```
///
/// # Panics
/// On panel shape mismatches.
pub fn solve_batch<T: Scalar, A: PanelMatrices<T>, P: Preconditioner<T>>(
    a: &A,
    b: Panel<'_, T>,
    x: PanelMut<'_, T>,
    m: &P,
    opts: &SolverOptions,
) -> Vec<SolverResult> {
    solve_batch_with(a, b, x, m, opts, &mut SolverWorkspace::new())
}

/// [`solve_batch`] with caller-owned working memory (see module docs
/// for the lockstep/masking contract). Returns one [`SolverResult`]
/// per panel column, in column order. Widths `k ∈ {1, 4, 8}` dispatch
/// to the monomorphized fixed-lane driver, everything else to the
/// bit-identical dynamic-width fallback.
///
/// # Panics
/// On panel shape mismatches.
pub fn solve_batch_with<T: Scalar, A: PanelMatrices<T>, P: Preconditioner<T>>(
    a: &A,
    b: Panel<'_, T>,
    x: PanelMut<'_, T>,
    m: &P,
    opts: &SolverOptions,
    ws: &mut SolverWorkspace<T>,
) -> Vec<SolverResult> {
    let mut results = vec![SolverResult::default(); b.ncols()];
    solve_batch_into(a, b, x, m, opts, ws, &mut results);
    results
}

/// [`solve_batch_with`] writing into a caller-provided result slice —
/// the fully allocation-free form (the `Vec<SolverResult>` the other
/// entry points assemble is their one documented allocation).
///
/// # Panics
/// On panel shape mismatches or when `results.len() != b.ncols()`.
pub fn solve_batch_into<T: Scalar, A: PanelMatrices<T>, P: Preconditioner<T>>(
    a: &A,
    b: Panel<'_, T>,
    x: PanelMut<'_, T>,
    m: &P,
    opts: &SolverOptions,
    ws: &mut SolverWorkspace<T>,
    results: &mut [SolverResult],
) {
    let k = b.ncols();
    assert_eq!(b.nrows(), a.nrows(), "solve_batch: rhs panel rows");
    assert_eq!(x.nrows(), a.nrows(), "solve_batch: solution panel rows");
    assert_eq!(x.ncols(), k, "solve_batch: panel widths differ");
    assert_eq!(results.len(), k, "solve_batch: results length");
    if k == 0 {
        return;
    }
    with_lanes!(k, lanes => solve_batch_lanes(lanes, a, b, x, m, opts, ws, results));
}

/// The width-generic PCG driver core: `pcg_with` *is* this function at
/// `FixedLanes<1>`, `solve_batch_*` dispatch it per width. Per-lane
/// scalar state keeps every lane on exactly the standalone-PCG
/// recurrence, so lane `c` is bit-identical across instantiations.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_batch_lanes<T: Scalar, A: PanelMatrices<T>, P: Preconditioner<T>, L: Lanes>(
    lanes: L,
    a: &A,
    b: Panel<'_, T>,
    mut x: PanelMut<'_, T>,
    m: &P,
    opts: &SolverOptions,
    ws: &mut SolverWorkspace<T>,
    results: &mut [SolverResult],
) {
    let n = a.nrows();
    let k = lanes.width();
    assert_eq!(b.ncols(), k, "solve_batch: rhs panel width vs lanes");
    assert_eq!(b.nrows(), n, "solve_batch: rhs panel rows");
    assert_eq!(x.nrows(), n, "solve_batch: solution panel rows");
    assert_eq!(x.ncols(), k, "solve_batch: panel widths differ");
    assert_eq!(results.len(), k, "solve_batch: results length");
    for r in results.iter_mut() {
        *r = SolverResult::default();
    }
    ws.ensure_panel(n, k);
    // Rearm every lane to ACTIVE for this solve (storage pre-sized).
    ws.mask.reset(k);
    let SolverWorkspace {
        precond,
        pr,
        pz,
        pp,
        pq,
        col_rz,
        col_bnorm,
        col_relres,
        mask,
        ..
    } = ws;

    // ---- Per-lane setup, the historical `pcg_with` prologue. --------
    for c in 0..k {
        col_bnorm[c] = vecops::norm2(b.col(c)).to_f64();
        if col_bnorm[c] == 0.0 {
            // Trivial lane: x = 0, converged in 0 iterations. Zero its
            // working columns so the shared panel applies stay finite.
            x.col_mut(c).fill(T::ZERO);
            for buf in [&mut *pr, &mut *pz, &mut *pp, &mut *pq] {
                buf[c * n..(c + 1) * n].fill(T::ZERO);
            }
            mask.set(c, LANE_DONE);
            results[c].converged = true;
            results[c].status = SolverStatus::Converged;
        } else if !col_bnorm[c].is_finite() {
            // Hostile RHS (NaN/∞): freeze the lane at the initial guess
            // instead of iterating on poisoned arithmetic. Working
            // columns are zeroed so the shared applies stay finite.
            for buf in [&mut *pr, &mut *pz, &mut *pp, &mut *pq] {
                buf[c * n..(c + 1) * n].fill(T::ZERO);
            }
            mask.set(c, LANE_HALTED);
            results[c].relative_residual = f64::NAN;
            results[c].status = SolverStatus::NumericalBreakdown;
        } else {
            // r = b - A x (matvec into q, subtract into r).
            a.col_matrix(c)
                .spmv_into(x.col(c), &mut pq[c * n..(c + 1) * n]);
            let bc = b.col(c);
            for i in 0..n {
                pr[c * n + i] = bc[i] - pq[c * n + i];
            }
        }
    }
    if !mask.any_active() {
        return;
    }
    // z = M⁻¹ r: one panel apply for all lanes.
    m.apply_panel_with(
        precond,
        Panel::new(&pr[..n * k], n, k),
        PanelMut::new(&mut pz[..n * k], n, k),
    );
    for c in 0..k {
        if !mask.is_active(c) {
            continue;
        }
        pp[c * n..(c + 1) * n].copy_from_slice(&pz[c * n..(c + 1) * n]);
        col_rz[c] = vecops::dot(&pr[c * n..(c + 1) * n], &pz[c * n..(c + 1) * n]);
        col_relres[c] = vecops::norm2(&pr[c * n..(c + 1) * n]).to_f64() / col_bnorm[c];
        if opts.record_history {
            results[c].history.push(col_relres[c]);
        }
        if !col_relres[c].is_finite() {
            // First-iteration guard: a non-finite initial residual
            // (hostile matrix values, poisoned x₀) halts the lane now.
            mask.set(c, LANE_HALTED);
            results[c].relative_residual = col_relres[c];
            results[c].status = SolverStatus::NumericalBreakdown;
        }
    }

    // ---- Lockstep iteration with per-lane masking. ------------------
    for it in 1..=opts.max_iters {
        if !mask.any_active() {
            break;
        }
        for c in 0..k {
            if !mask.is_active(c) {
                continue;
            }
            let rc = c * n..(c + 1) * n;
            a.col_matrix(c)
                .spmv_into(&pp[rc.clone()], &mut pq[rc.clone()]);
            let pq_dot = vecops::dot(&pp[rc.clone()], &pq[rc.clone()]);
            if pq_dot == T::ZERO || !pq_dot.is_finite() {
                mask.set(c, LANE_HALTED);
                results[c].iterations = it - 1;
                results[c].relative_residual = col_relres[c];
                results[c].status = SolverStatus::NumericalBreakdown;
                continue;
            }
            let alpha = col_rz[c] / pq_dot;
            vecops::axpy(alpha, &pp[rc.clone()], x.col_mut(c));
            vecops::axpy(-alpha, &pq[rc.clone()], &mut pr[rc.clone()]);
            col_relres[c] = vecops::norm2(&pr[rc.clone()]).to_f64() / col_bnorm[c];
            if opts.record_history {
                results[c].history.push(col_relres[c]);
            }
            if col_relres[c] < opts.tol {
                mask.set(c, LANE_DONE);
                results[c].converged = true;
                results[c].iterations = it;
                results[c].relative_residual = col_relres[c];
                results[c].status = SolverStatus::Converged;
            } else if !col_relres[c].is_finite() {
                // Per-iteration containment: a residual that turned
                // NaN/∞ never recovers; freeze the lane here instead of
                // dragging poisoned panels to the iteration cap.
                mask.set(c, LANE_HALTED);
                results[c].iterations = it;
                results[c].relative_residual = col_relres[c];
                results[c].status = SolverStatus::NumericalBreakdown;
            }
        }
        if !mask.any_active() {
            break;
        }
        // One panel apply serves every still-active lane; masked lanes
        // ride along without breaking the panel layout.
        m.apply_panel_with(
            precond,
            Panel::new(&pr[..n * k], n, k),
            PanelMut::new(&mut pz[..n * k], n, k),
        );
        for c in 0..k {
            if !mask.is_active(c) {
                continue;
            }
            let rc = c * n..(c + 1) * n;
            let rz_new = vecops::dot(&pr[rc.clone()], &pz[rc.clone()]);
            let beta = rz_new / col_rz[c];
            col_rz[c] = rz_new;
            vecops::xpby(&pz[rc.clone()], beta, &mut pp[rc.clone()]);
        }
    }
    // Lanes still active at the cap: not converged.
    for c in 0..k {
        if mask.is_active(c) {
            results[c].iterations = opts.max_iters;
            results[c].relative_residual = col_relres[c];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcg_with;
    use javelin_core::{factorize, IluOptions};
    use javelin_sparse::CooMatrix;
    use javelin_sparse::CsrMatrix;

    fn laplace_2d(nx: usize, ny: usize) -> CsrMatrix<f64> {
        let n = nx * ny;
        let idx = |i: usize, j: usize| i * ny + j;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..nx {
            for j in 0..ny {
                let r = idx(i, j);
                coo.push(r, r, 4.0).unwrap();
                if i + 1 < nx {
                    coo.push(r, idx(i + 1, j), -1.0).unwrap();
                    coo.push(idx(i + 1, j), r, -1.0).unwrap();
                }
                if j + 1 < ny {
                    coo.push(r, idx(i, j + 1), -1.0).unwrap();
                    coo.push(idx(i, j + 1), r, -1.0).unwrap();
                }
            }
        }
        coo.to_csr()
    }

    fn rhs_panel(n: usize, k: usize) -> Vec<f64> {
        (0..n * k)
            .map(|i| ((i * 37 % 53) as f64 - 26.0) * 0.11 + ((i / n) as f64))
            .collect()
    }

    #[test]
    fn batch_is_bitwise_identical_to_independent_pcg() {
        // The defining contract: column c of a batched solve carries
        // exactly the bits (and the iteration count) of a standalone
        // pcg_with run on that column.
        let a = laplace_2d(12, 11);
        let n = a.nrows();
        let f = factorize(&a, &IluOptions::ilu0(2)).unwrap();
        let opts = SolverOptions::default();
        for k in [1usize, 3, 8] {
            let b = rhs_panel(n, k);
            let mut xb = vec![0.0; n * k];
            let results = solve_batch(
                &a,
                Panel::new(&b, n, k),
                PanelMut::new(&mut xb, n, k),
                &f,
                &opts,
            );
            for c in 0..k {
                let mut x = vec![0.0; n];
                let r = pcg_with(
                    &a,
                    &b[c * n..(c + 1) * n],
                    &mut x,
                    &f,
                    &opts,
                    &mut SolverWorkspace::new(),
                );
                assert_eq!(results[c].converged, r.converged, "k={k} col={c}");
                assert_eq!(results[c].iterations, r.iterations, "k={k} col={c}");
                assert_eq!(
                    results[c].relative_residual.to_bits(),
                    r.relative_residual.to_bits(),
                    "k={k} col={c}"
                );
                let bb: Vec<u64> = xb[c * n..(c + 1) * n].iter().map(|v| v.to_bits()).collect();
                let sb: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
                assert_eq!(bb, sb, "k={k} col={c}");
            }
        }
    }

    #[test]
    fn masking_freezes_converged_columns_independently() {
        // Column 0 carries a tiny RHS (converges almost immediately),
        // column 1 a hard one: iteration counts must differ and each
        // column's true residual must meet the tolerance.
        let a = laplace_2d(14, 14);
        let n = a.nrows();
        let f = factorize(&a, &IluOptions::default()).unwrap();
        let opts = SolverOptions::default();
        let mut b = vec![0.0; n * 2];
        b[0] = 1e-3; // nearly-aligned easy column
        for i in 0..n {
            b[n + i] = ((i * 17 % 31) as f64 - 15.0) * 0.4;
        }
        let mut x = vec![0.0; n * 2];
        let res = solve_batch(
            &a,
            Panel::new(&b, n, 2),
            PanelMut::new(&mut x, n, 2),
            &f,
            &opts,
        );
        assert!(res[0].converged && res[1].converged);
        assert!(
            res[0].iterations < res[1].iterations,
            "easy column {} vs hard column {}",
            res[0].iterations,
            res[1].iterations
        );
        for c in 0..2 {
            let ax = a.spmv(&x[c * n..(c + 1) * n]);
            let rnorm: f64 = b[c * n..(c + 1) * n]
                .iter()
                .zip(ax.iter())
                .map(|(bi, axi)| (bi - axi) * (bi - axi))
                .sum::<f64>()
                .sqrt();
            let bnorm: f64 = b[c * n..(c + 1) * n]
                .iter()
                .map(|v| v * v)
                .sum::<f64>()
                .sqrt();
            assert!(rnorm / bnorm < 1e-5, "col {c}: {}", rnorm / bnorm);
        }
    }

    #[test]
    fn zero_rhs_columns_are_trivially_converged() {
        let a = laplace_2d(6, 6);
        let n = a.nrows();
        let f = factorize(&a, &IluOptions::default()).unwrap();
        let mut b = vec![0.0; n * 3];
        for i in 0..n {
            b[n + i] = 1.0; // only the middle column is nontrivial
        }
        let mut x = vec![5.0; n * 3];
        let res = solve_batch(
            &a,
            Panel::new(&b, n, 3),
            PanelMut::new(&mut x, n, 3),
            &f,
            &SolverOptions::default(),
        );
        assert!(res[0].converged && res[0].iterations == 0);
        assert!(res[2].converged && res[2].iterations == 0);
        assert!(x[..n].iter().all(|&v| v == 0.0));
        assert!(x[2 * n..].iter().all(|&v| v == 0.0));
        assert!(res[1].converged && res[1].iterations > 0);
    }

    #[test]
    fn workspace_reuse_across_widths_is_bitwise_stable() {
        // One workspace across k = 3 → 1 → 3 (grow, narrow, re-widen)
        // must reproduce fresh-workspace bits every time.
        let a = laplace_2d(10, 9);
        let n = a.nrows();
        let f = factorize(&a, &IluOptions::ilu0(2)).unwrap();
        let opts = SolverOptions::default();
        let b3 = rhs_panel(n, 3);
        let reference = {
            let mut x = vec![0.0; n * 3];
            solve_batch(
                &a,
                Panel::new(&b3, n, 3),
                PanelMut::new(&mut x, n, 3),
                &f,
                &opts,
            );
            x.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        };
        let mut ws = SolverWorkspace::new();
        for rep in 0..3 {
            let mut x = vec![0.0; n * 3];
            solve_batch_with(
                &a,
                Panel::new(&b3, n, 3),
                PanelMut::new(&mut x, n, 3),
                &f,
                &opts,
                &mut ws,
            );
            let bits: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, reference, "rep {rep}");
            // Interleave a narrower solve to stress the width change.
            let mut x1 = vec![0.0; n];
            solve_batch_with(
                &a,
                Panel::new(&b3[..n], n, 1),
                PanelMut::new(&mut x1, n, 1),
                &f,
                &opts,
                &mut ws,
            );
        }
    }

    #[test]
    fn iteration_cap_and_histories() {
        let a = laplace_2d(16, 16);
        let n = a.nrows();
        let f = factorize(&a, &IluOptions::default()).unwrap();
        let b = rhs_panel(n, 2);
        let opts = SolverOptions {
            max_iters: 2,
            record_history: true,
            ..Default::default()
        };
        let mut x = vec![0.0; n * 2];
        let res = solve_batch(
            &a,
            Panel::new(&b, n, 2),
            PanelMut::new(&mut x, n, 2),
            &f,
            &opts,
        );
        for r in &res {
            assert!(!r.converged);
            assert_eq!(r.iterations, 2);
            assert_eq!(r.history.len(), 3); // initial + 2 iterations
        }
    }
}
