//! Restarted GMRES with right preconditioning.
//!
//! GMRES is the iterative method the paper pairs with ILU for general
//! (nonsymmetric) systems: `stri` is "the primary call needed for
//! methods like GMRES that use ILU" (§VI). Right preconditioning keeps
//! the *true* residual observable: we solve `A·M⁻¹·u = b`, `x = M⁻¹·u`,
//! so the least-squares residual equals the unpreconditioned one.

use crate::{SolverOptions, SolverResult, SolverStatus, SolverWorkspace};
use javelin_core::precond::Preconditioner;
use javelin_sparse::vecops;
use javelin_sparse::{CsrMatrix, Scalar};

/// Right-preconditioned restarted GMRES(m).
///
/// Iterations counted in [`SolverResult::iterations`] are *inner*
/// Arnoldi steps (one matvec + one preconditioner application each),
/// matching how iteration counts are reported in the paper's Table II.
///
/// Allocates a fresh [`SolverWorkspace`]; repeated callers should hold
/// one and use [`gmres_with`].
///
/// # Panics
/// On dimension mismatches.
pub fn gmres<T: Scalar, P: Preconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    x: &mut [T],
    m: &P,
    opts: &SolverOptions,
) -> SolverResult {
    gmres_with(a, b, x, m, opts, &mut SolverWorkspace::new())
}

/// [`gmres`] with caller-owned working memory (Arnoldi basis,
/// Hessenberg/Givens state, preconditioner scratch): allocation-free
/// once the workspace has seen this `(n, restart)` size.
///
/// # Panics
/// On dimension mismatches.
pub fn gmres_with<T: Scalar, P: Preconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    x: &mut [T],
    m: &P,
    opts: &SolverOptions,
    ws: &mut SolverWorkspace<T>,
) -> SolverResult {
    let n = a.nrows();
    assert_eq!(b.len(), n, "gmres: rhs length");
    assert_eq!(x.len(), n, "gmres: solution length");
    let restart = opts.restart.max(1).min(n.max(1));
    let b_norm = vecops::norm2(b).to_f64();
    if b_norm == 0.0 {
        x.fill(T::ZERO);
        return SolverResult {
            converged: true,
            iterations: 0,
            relative_residual: 0.0,
            history: Vec::new(),
            status: SolverStatus::Converged,
            retried: false,
        };
    }
    if !b_norm.is_finite() {
        // Hostile RHS: refuse to iterate on NaN/∞ data.
        return SolverResult {
            converged: false,
            iterations: 0,
            relative_residual: f64::NAN,
            history: Vec::new(),
            status: SolverStatus::NumericalBreakdown,
            retried: false,
        };
    }
    let mut history = Vec::new();
    let mut total_iters = 0usize;
    let mut broke_down = false;
    #[allow(unused_assignments)]
    let mut relres = f64::INFINITY;

    ws.ensure_krylov(n, restart, false);
    let SolverWorkspace {
        precond,
        z,
        u,
        w,
        v_basis,
        h,
        cs,
        sn,
        g,
        yk,
        ..
    } = ws;

    'outer: loop {
        // r = b - A x (into u).
        a.spmv_into(x, u);
        for i in 0..n {
            u[i] = b[i] - u[i];
        }
        let beta = vecops::norm2(u);
        relres = beta.to_f64() / b_norm;
        if opts.record_history && history.is_empty() {
            history.push(relres);
        }
        if !relres.is_finite() {
            // Per-restart guard: the true residual turned NaN/∞
            // (poisoned preconditioner or matrix values) — stop now
            // rather than spinning every remaining cycle on NaNs.
            broke_down = true;
            break;
        }
        if relres < opts.tol || total_iters >= opts.max_iters {
            break;
        }
        v_basis[0].copy_from_slice(u);
        vecops::scale(T::ONE / beta, &mut v_basis[0]);
        g.iter_mut().for_each(|gi| *gi = T::ZERO);
        g[0] = beta;
        let mut j_used = 0usize;
        for j in 0..restart {
            if total_iters >= opts.max_iters {
                break;
            }
            total_iters += 1;
            // w = A M^{-1} v_j
            m.apply_with(precond, &v_basis[j], z);
            a.spmv_into(z, w);
            // Modified Gram–Schmidt.
            for i in 0..=j {
                let hij = vecops::dot(w, &v_basis[i]);
                h[i * restart + j] = hij;
                vecops::axpy(-hij, &v_basis[i], w);
            }
            let hjp = vecops::norm2(w);
            h[(j + 1) * restart + j] = hjp;
            // Apply existing Givens rotations to the new column.
            for i in 0..j {
                let hi = h[i * restart + j];
                let hi1 = h[(i + 1) * restart + j];
                h[i * restart + j] = cs[i] * hi + sn[i] * hi1;
                h[(i + 1) * restart + j] = -sn[i] * hi + cs[i] * hi1;
            }
            // New rotation to kill h[j+1, j].
            let hjj = h[j * restart + j];
            let denom = (hjj * hjj + hjp * hjp).sqrt();
            let (c, s) = if denom == T::ZERO {
                (T::ONE, T::ZERO)
            } else {
                (hjj / denom, hjp / denom)
            };
            cs[j] = c;
            sn[j] = s;
            h[j * restart + j] = c * hjj + s * hjp;
            h[(j + 1) * restart + j] = T::ZERO;
            g[j + 1] = -s * g[j];
            g[j] = c * g[j];
            j_used = j + 1;
            relres = g[j + 1].abs().to_f64() / b_norm;
            if opts.record_history {
                history.push(relres);
            }
            if relres < opts.tol {
                break;
            }
            if hjp == T::ZERO {
                break; // happy breakdown: exact solution in the space
            }
            v_basis[j + 1].copy_from_slice(w);
            vecops::scale(T::ONE / hjp, &mut v_basis[j + 1]);
        }
        if j_used == 0 {
            break 'outer; // no progress possible
        }
        // Back-substitute y from the triangularized H, update x.
        for i in (0..j_used).rev() {
            let mut s = g[i];
            for k in (i + 1)..j_used {
                s -= h[i * restart + k] * yk[k];
            }
            yk[i] = s / h[i * restart + i];
        }
        // x += M^{-1} (V y)
        u.iter_mut().for_each(|ui| *ui = T::ZERO);
        for (k, y) in yk[..j_used].iter().enumerate() {
            vecops::axpy(*y, &v_basis[k], u);
        }
        m.apply_with(precond, u, z);
        for (xi, zi) in x.iter_mut().zip(z.iter()) {
            *xi += *zi;
        }
        if relres < opts.tol || total_iters >= opts.max_iters {
            break;
        }
    }
    let converged = relres < opts.tol;
    SolverResult {
        converged,
        iterations: total_iters,
        relative_residual: relres,
        history,
        status: if converged {
            SolverStatus::Converged
        } else if broke_down || !relres.is_finite() {
            SolverStatus::NumericalBreakdown
        } else {
            SolverStatus::MaxIters
        },
        retried: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use javelin_core::precond::IdentityPrecond;
    use javelin_core::{factorize, IluOptions};
    use javelin_sparse::CooMatrix;

    fn convection(nx: usize, ny: usize) -> CsrMatrix<f64> {
        let n = nx * ny;
        let idx = |i: usize, j: usize| i * ny + j;
        let mut coo = CooMatrix::new(n, n);
        let (w1, w2) = (0.4, 0.2);
        for i in 0..nx {
            for j in 0..ny {
                let r = idx(i, j);
                coo.push(r, r, 4.0 + w1 + w2).unwrap();
                if i > 0 {
                    coo.push(r, idx(i - 1, j), -1.0 - w1).unwrap();
                }
                if i + 1 < nx {
                    coo.push(r, idx(i + 1, j), -1.0).unwrap();
                }
                if j > 0 {
                    coo.push(r, idx(i, j - 1), -1.0 - w2).unwrap();
                }
                if j + 1 < ny {
                    coo.push(r, idx(i, j + 1), -1.0).unwrap();
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn gmres_converges_on_nonsymmetric_system() {
        let a = convection(12, 12);
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 13 % 17) as f64) * 0.1 - 0.5).collect();
        let b = a.spmv(&x_true);
        let mut x = vec![0.0; n];
        let res = gmres(&a, &b, &mut x, &IdentityPrecond, &SolverOptions::default());
        assert!(res.converged, "relres = {}", res.relative_residual);
        let ax = a.spmv(&x);
        let err: f64 = b
            .iter()
            .zip(ax.iter())
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err / bn < 1e-5, "true residual {}", err / bn);
    }

    #[test]
    fn ilu_preconditioning_cuts_gmres_iterations() {
        let a = convection(16, 16);
        let n = a.nrows();
        let b = vec![1.0; n];
        let plain = {
            let mut x = vec![0.0; n];
            gmres(&a, &b, &mut x, &IdentityPrecond, &SolverOptions::default())
        };
        let f = factorize(&a, &IluOptions::default()).unwrap();
        let pre = {
            let mut x = vec![0.0; n];
            gmres(&a, &b, &mut x, &f, &SolverOptions::default())
        };
        assert!(plain.converged && pre.converged);
        assert!(
            pre.iterations * 2 < plain.iterations,
            "ILU should at least halve iterations: {} vs {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn restart_length_one_still_converges() {
        // GMRES(1) on a well-conditioned diagonally dominant system.
        let a = convection(6, 6);
        let b = vec![1.0; 36];
        let mut x = vec![0.0; 36];
        let opts = SolverOptions {
            restart: 1,
            max_iters: 10000,
            ..Default::default()
        };
        let res = gmres(&a, &b, &mut x, &IdentityPrecond, &opts);
        assert!(res.converged, "relres = {}", res.relative_residual);
    }

    #[test]
    fn exact_preconditioner_converges_in_one_iteration() {
        // ILU with full fill = exact LU: GMRES needs a single step.
        let a = convection(7, 7);
        let n = a.nrows();
        let f = factorize(&a, &IluOptions::default().with_fill(n)).unwrap();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let mut x = vec![0.0; n];
        let res = gmres(&a, &b, &mut x, &f, &SolverOptions::default());
        assert!(res.converged);
        assert!(res.iterations <= 2, "took {} iterations", res.iterations);
    }

    #[test]
    fn zero_rhs() {
        let a = convection(4, 4);
        let b = vec![0.0; 16];
        let mut x = vec![3.0; 16];
        let res = gmres(&a, &b, &mut x, &IdentityPrecond, &SolverOptions::default());
        assert!(res.converged);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn max_iters_cap() {
        let a = convection(14, 14);
        let b = vec![1.0; a.nrows()];
        let mut x = vec![0.0; a.nrows()];
        let opts = SolverOptions {
            max_iters: 5,
            tol: 1e-14,
            ..Default::default()
        };
        let res = gmres(&a, &b, &mut x, &IdentityPrecond, &opts);
        assert!(!res.converged);
        assert_eq!(res.iterations, 5);
    }
}
