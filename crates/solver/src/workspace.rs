//! Caller-owned solver working memory.
//!
//! A [`SolverWorkspace`] holds every buffer a Krylov solver needs —
//! residual/direction panels, the Arnoldi bases, the small
//! Hessenberg/Givens arrays, the per-column [`LaneMask`] — plus the
//! [`ApplyScratch`] forwarded to
//! [`javelin_core::Preconditioner::apply_with`]. Buffers are grown on
//! first use for a given `(n, restart, k)` and then reused verbatim, so
//! a steady-state solve allocates nothing. One workspace can serve many
//! consecutive solves (and mixed solver kinds); it simply keeps the
//! high-water-mark buffers alive.
//!
//! Since the lane refactor the scalar short-recurrence drivers
//! ([`crate::pcg_with`], [`crate::bicgstab_with`]) are the
//! `FixedLanes<1>` instantiations of the batch drivers, so they solve
//! out of the same panel buffers at width 1 — one buffer family, one
//! sizing rule, every width.

use javelin_core::ApplyScratch;
use javelin_sparse::{LaneMask, Scalar};

/// Reusable working memory for the Krylov solvers (see module docs).
#[derive(Debug, Clone, Default)]
pub struct SolverWorkspace<T> {
    /// Scratch handed to `Preconditioner::apply_with`.
    pub precond: ApplyScratch<T>,
    // Length-`n` vectors for the Arnoldi-process solvers.
    pub(crate) z: Vec<T>,
    pub(crate) u: Vec<T>,
    pub(crate) w: Vec<T>,
    // Arnoldi bases: `restart + 1` (resp. `restart`) vectors of length `n`.
    pub(crate) v_basis: Vec<Vec<T>>,
    pub(crate) z_basis: Vec<Vec<T>>,
    // Small least-squares state: `(restart + 1) × restart` Hessenberg,
    // Givens rotations, the rotated rhs, and the solved coefficients.
    pub(crate) h: Vec<T>,
    pub(crate) cs: Vec<T>,
    pub(crate) sn: Vec<T>,
    pub(crate) g: Vec<T>,
    pub(crate) yk: Vec<T>,
    // Lane-driver panels: column-major `n × k` blocks (stride `n`) for
    // residuals/preconditioned residuals/directions/matvecs, plus
    // per-column iteration state. Sized by `ensure_panel`, grow-only
    // across solves like every other buffer here; the scalar drivers
    // use them at width 1.
    pub(crate) pr: Vec<T>,
    pub(crate) pz: Vec<T>,
    pub(crate) pp: Vec<T>,
    pub(crate) pq: Vec<T>,
    pub(crate) col_rz: Vec<T>,
    pub(crate) col_bnorm: Vec<f64>,
    pub(crate) col_relres: Vec<f64>,
    /// Per-column convergence/breakdown masking state of the lockstep
    /// drivers (the lane layer's masking vocabulary).
    pub(crate) mask: LaneMask,
    // Nonsymmetric lane extensions (`bicgstab_batch`): the shadow
    // residual, the two preconditioned directions and `A·z`, plus the
    // per-column BiCGSTAB scalar recurrences.
    pub(crate) prhat: Vec<T>,
    pub(crate) py: Vec<T>,
    pub(crate) pt: Vec<T>,
    pub(crate) col_rho: Vec<T>,
    pub(crate) col_alpha: Vec<T>,
    pub(crate) col_omega: Vec<T>,
    // Lockstep-restart GMRES (`gmres_batch`): a stacked Arnoldi basis
    // of `restart + 1` panels (layout `[j][c][i]`, so step `j`'s basis
    // vectors form one contiguous `n × k` panel), a correction panel,
    // and per-column Hessenberg/Givens/least-squares state.
    pub(crate) pv: Vec<T>,
    pub(crate) pu: Vec<T>,
    pub(crate) ph: Vec<T>,
    pub(crate) pcs: Vec<T>,
    pub(crate) psn: Vec<T>,
    pub(crate) pg: Vec<T>,
    pub(crate) pyk: Vec<T>,
    pub(crate) col_iters: Vec<usize>,
    pub(crate) col_jused: Vec<usize>,
}

fn ensure<T: Scalar>(v: &mut Vec<T>, n: usize) {
    if v.len() != n {
        v.clear();
        v.resize(n, T::ZERO);
    }
}

impl<T: Scalar> SolverWorkspace<T> {
    /// Fresh, empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes the Arnoldi-process buffers (GMRES / FGMRES) for `n` and
    /// restart length `m`; `with_z_basis` additionally sizes the stored
    /// preconditioned basis FGMRES needs.
    pub(crate) fn ensure_krylov(&mut self, n: usize, m: usize, with_z_basis: bool) {
        for buf in [&mut self.z, &mut self.u, &mut self.w] {
            ensure(buf, n);
        }
        if self.v_basis.len() != m + 1 {
            self.v_basis.resize_with(m + 1, Vec::new);
        }
        for v in self.v_basis.iter_mut() {
            ensure(v, n);
        }
        if with_z_basis {
            if self.z_basis.len() != m {
                self.z_basis.resize_with(m, Vec::new);
            }
            for z in self.z_basis.iter_mut() {
                ensure(z, n);
            }
        }
        ensure(&mut self.h, (m + 1) * m);
        ensure(&mut self.cs, m);
        ensure(&mut self.sn, m);
        ensure(&mut self.g, m + 1);
        ensure(&mut self.yk, m);
    }

    /// Pre-grows every buffer family a session-style caller may hit —
    /// the Arnoldi state for `restart` and the lane panels (PCG and
    /// BiCGSTAB, which the scalar drivers share at width 1) for `k`
    /// columns — plus the preconditioner scratch at panel width, so the
    /// first solve of those kinds is already allocation-free. The
    /// lockstep-restart GMRES driver's stacked `(restart + 1) × n × k`
    /// Arnoldi basis is deliberately **not** pre-grown here: it dwarfs
    /// every other buffer (gigabytes for large `n·k`) and would tax
    /// every session whether or not it ever runs batched GMRES — opt in
    /// with [`SolverWorkspace::reserve_gmres_basis`] when the workload
    /// does, otherwise `gmres_batch` grows it on first use (grow-only;
    /// allocation-free from the second solve on). Growing is
    /// idempotent; steady-state callers never need this.
    pub fn reserve(&mut self, n: usize, restart: usize, k: usize) {
        let k = k.max(1);
        self.ensure_krylov(n, restart.max(1), true);
        self.ensure_panel(n, k);
        self.ensure_panel_bicgstab(n, k);
        self.precond.buffer(n * k);
    }

    /// Opt-in pre-growth of the batched-GMRES state — the stacked
    /// `(restart + 1) × n × k` Arnoldi basis plus the per-column
    /// least-squares arrays — so even the **first** `gmres_batch` solve
    /// at `(n, restart, k)` performs zero heap allocations (enforced by
    /// `tests/refactor_alloc.rs`). The restart length is clamped the
    /// way the driver clamps it (`max(1).min(n)`), so reserving with
    /// the solve's `SolverOptions::restart` always matches.
    pub fn reserve_gmres_basis(&mut self, n: usize, restart: usize, k: usize) {
        let k = k.max(1);
        let m = restart.max(1).min(n.max(1));
        self.ensure_panel_gmres(n, k, m);
        self.precond.buffer(n * k);
    }

    /// Sizes the lane-driver panel buffers for `k` columns of `n`
    /// entries (`solve_batch`, and `pcg_with` at `k = 1`).
    pub(crate) fn ensure_panel(&mut self, n: usize, k: usize) {
        for buf in [&mut self.pr, &mut self.pz, &mut self.pp, &mut self.pq] {
            ensure(buf, n * k);
        }
        ensure(&mut self.col_rz, k);
        ensure(&mut self.col_bnorm, k);
        ensure(&mut self.col_relres, k);
        // Size the mask storage only (grow-only, like every buffer
        // here) so the drivers' explicit `mask.reset(k)` at solve entry
        // — the one semantic rearm — never allocates after a reserve.
        if self.mask.len() != k {
            self.mask.reset(k);
        }
    }

    /// Sizes the extra panels/per-column scalars `bicgstab_batch` (and
    /// `bicgstab_with` at `k = 1`) needs on top of
    /// [`SolverWorkspace::ensure_panel`].
    pub(crate) fn ensure_panel_bicgstab(&mut self, n: usize, k: usize) {
        self.ensure_panel(n, k);
        for buf in [&mut self.prhat, &mut self.py, &mut self.pt] {
            ensure(buf, n * k);
        }
        ensure(&mut self.col_rho, k);
        ensure(&mut self.col_alpha, k);
        ensure(&mut self.col_omega, k);
    }

    /// Sizes the stacked Arnoldi basis and per-column least-squares
    /// state `gmres_batch` needs for `k` columns at restart length `m`.
    pub(crate) fn ensure_panel_gmres(&mut self, n: usize, k: usize, m: usize) {
        self.ensure_panel(n, k);
        ensure(&mut self.pv, (m + 1) * n * k);
        ensure(&mut self.pu, n * k);
        ensure(&mut self.ph, (m + 1) * m * k);
        ensure(&mut self.pcs, m * k);
        ensure(&mut self.psn, m * k);
        ensure(&mut self.pg, (m + 1) * k);
        ensure(&mut self.pyk, m * k);
        for buf in [&mut self.col_iters, &mut self.col_jused] {
            if buf.len() != k {
                buf.clear();
                buf.resize(k, 0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_grow_and_stabilize() {
        let mut ws = SolverWorkspace::<f64>::new();
        ws.ensure_panel(10, 1);
        assert_eq!(ws.pr.len(), 10);
        let ptr = ws.pr.as_ptr();
        ws.ensure_panel(10, 1); // same size: no reallocation
        assert_eq!(ws.pr.as_ptr(), ptr);
        ws.ensure_krylov(10, 5, true);
        assert_eq!(ws.v_basis.len(), 6);
        assert_eq!(ws.z_basis.len(), 5);
        assert_eq!(ws.h.len(), 30);
    }

    #[test]
    fn reserve_gmres_basis_matches_driver_sizing() {
        let (n, restart, k) = (20usize, 50usize, 3usize);
        let mut ws = SolverWorkspace::<f64>::new();
        ws.reserve_gmres_basis(n, restart, k);
        // The driver clamps restart to n; the reserved basis must match
        // that clamped shape exactly so the first solve never regrows.
        let m = restart.min(n);
        assert_eq!(ws.pv.len(), (m + 1) * n * k);
        assert_eq!(ws.ph.len(), (m + 1) * m * k);
        let ptr = ws.pv.as_ptr();
        ws.ensure_panel_gmres(n, k, m);
        assert_eq!(ws.pv.as_ptr(), ptr, "reserve must pre-grow the basis");
    }
}
