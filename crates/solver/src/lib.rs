//! # javelin-solver
//!
//! Krylov iterative solvers — the consumers of Javelin's preconditioner
//! and the measurement instrument of the paper's Table II (iterations
//! to a 1e-6 relative residual under different orderings).
//!
//! * [`fn@cg`] — (preconditioned) conjugate gradients for SPD systems;
//! * [`fn@gmres`] — restarted GMRES with right preconditioning and Givens
//!   least-squares;
//! * [`fn@fgmres`] — flexible GMRES for iteration-varying preconditioners;
//! * [`fn@bicgstab`] — BiCGSTAB for nonsymmetric systems;
//! * [`solve_batch`] — `k` independent PCG systems in lockstep over one
//!   RHS panel, sharing one preconditioner schedule walk per iteration
//!   with per-column convergence masking (the serving-scale multi-RHS
//!   driver);
//! * [`bicgstab_batch`] / [`gmres_batch`] — the nonsymmetric batch
//!   drivers: lockstep BiCGSTAB with per-column breakdown masking, and
//!   lockstep-restart GMRES with per-column Hessenberg/Givens state.
//!
//! All solvers share [`SolverOptions`] / [`SolverResult`] and take any
//! [`javelin_core::Preconditioner`]; the [`Method`] enum plus
//! [`krylov_with`] / [`krylov_panel_with`] give a single dispatched
//! entry over all of them — the method axis of the `javelin::Session`
//! façade.
//!
//! Every solver comes in two forms: the plain entry point (`pcg`,
//! `gmres`, …) that allocates its own working vectors, and a `_with`
//! variant threading a caller-owned [`SolverWorkspace`] through the
//! iteration — including the [`javelin_core::ApplyScratch`] handed to
//! [`javelin_core::Preconditioner::apply_with`]. The batch drivers add
//! a third, `_into`, writing results into a caller slice for fully
//! allocation-free solves. After the workspace's first use at a given
//! size, a full solve performs **zero heap allocations**
//! (residual-history recording, off by default, is the one documented
//! exception), pairing with the factorization's persistent worker team
//! for an allocation-free, spawn-free Krylov hot loop.
//!
//! ## One convergence loop per method — the lane layer
//!
//! The short-recurrence drivers are **width-generic** over
//! [`javelin_sparse::lanes::Lanes`]: [`fn@pcg`] / [`fn@bicgstab`] are
//! the `FixedLanes<1>` instantiations of the batch cores (there is no
//! separate scalar convergence loop to keep in sync), panel widths
//! `k ∈ {4, 8}` monomorphize the drivers' per-lane bookkeeping loops,
//! and every other width runs the bit-identical `DynLanes` fallback.
//! (The SIMD-relevant inner loops live below the drivers, in the
//! preconditioner's trisolve and spmv kernels, which pick their own
//! fixed-lane instantiation from the panel width.) Column `c` of any
//! width is bit-identical to the scalar solve of that column.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod batch_bicgstab;
pub mod batch_gmres;
pub mod bicgstab;
pub mod cg;
pub mod fgmres;
pub mod gmres;
mod proptests;
pub mod workspace;

pub use batch::{solve_batch, solve_batch_into, solve_batch_with};
pub use batch_bicgstab::{bicgstab_batch, bicgstab_batch_into, bicgstab_batch_with};
pub use batch_gmres::{gmres_batch, gmres_batch_into, gmres_batch_with};
pub use bicgstab::{bicgstab, bicgstab_with};
pub use cg::{cg, pcg, pcg_with};
pub use fgmres::{fgmres, fgmres_with};
pub use gmres::{gmres, gmres_with};
pub use workspace::SolverWorkspace;

use javelin_core::Preconditioner;
use javelin_sparse::{CsrMatrix, Panel, PanelMut, Scalar};

/// The operator axis of a batched panel solve: which matrix drives
/// panel column `c`'s recurrence.
///
/// Ordinary multi-RHS solves share one matrix across all columns
/// (`&CsrMatrix` implements this by ignoring the column index).
/// Scenario sweeps — `k` pattern-identical systems, one per panel
/// column — use [`ScenarioMatrices`] so each column iterates on its own
/// operator while still sharing the lockstep loop and the panel
/// preconditioner applies. The batch drivers only ever touch the
/// operator through per-column `spmv`s, so the single-matrix case
/// compiles to exactly the historical code and stays bit-identical.
pub trait PanelMatrices<T: Scalar>: Sync {
    /// Row dimension (shared by every column's matrix).
    fn nrows(&self) -> usize;
    /// The matrix driving panel column `c`.
    fn col_matrix(&self, c: usize) -> &CsrMatrix<T>;
}

impl<T: Scalar> PanelMatrices<T> for CsrMatrix<T> {
    fn nrows(&self) -> usize {
        CsrMatrix::nrows(self)
    }
    fn col_matrix(&self, _c: usize) -> &CsrMatrix<T> {
        self
    }
}

// Smart-pointer and reference pass-throughs, so callers holding an
// `Arc<CsrMatrix<T>>` (the solve-service shape) or a plain reference
// keep working without an explicit deref at the call site.
impl<T: Scalar, A: PanelMatrices<T> + ?Sized> PanelMatrices<T> for &A {
    fn nrows(&self) -> usize {
        (**self).nrows()
    }
    fn col_matrix(&self, c: usize) -> &CsrMatrix<T> {
        (**self).col_matrix(c)
    }
}

impl<T: Scalar, A: PanelMatrices<T> + Send + ?Sized> PanelMatrices<T> for std::sync::Arc<A> {
    fn nrows(&self) -> usize {
        (**self).nrows()
    }
    fn col_matrix(&self, c: usize) -> &CsrMatrix<T> {
        (**self).col_matrix(c)
    }
}

/// One matrix per panel column — the scenario-sweep consumer shape
/// (pair with [`javelin_core::ScenarioPrecond`] for per-scenario
/// preconditioning). The matrices must agree in shape; the solve
/// asserts the slice covers the panel width.
pub struct ScenarioMatrices<'a, T>(pub &'a [&'a CsrMatrix<T>]);

impl<T: Scalar> PanelMatrices<T> for ScenarioMatrices<'_, T> {
    fn nrows(&self) -> usize {
        self.0[0].nrows()
    }
    fn col_matrix(&self, c: usize) -> &CsrMatrix<T> {
        self.0[c]
    }
}

/// Which Krylov method a dispatched solve runs — the method axis of the
/// unified `javelin::Session` façade (each variant maps onto one of the
/// dedicated entry points below).
///
/// ```
/// use javelin_core::{factorize, IluOptions};
/// use javelin_solver::{krylov, Method, SolverOptions};
///
/// let a = javelin_synth::grid::convection_diffusion_2d(10, 10, 0.4, 0.2);
/// let f = factorize(&a, &IluOptions::ilu0(1)).unwrap();
/// let b = vec![1.0; a.nrows()];
/// for method in [Method::Gmres, Method::Bicgstab, Method::BatchGmres] {
///     let mut x = vec![0.0; a.nrows()];
///     let res = krylov(method, &a, &b, &mut x, &f, &SolverOptions::default());
///     assert!(res.converged, "{method}");
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Preconditioned conjugate gradients ([`pcg`]) — SPD systems.
    Pcg,
    /// Restarted GMRES with right preconditioning ([`fn@gmres`]).
    Gmres,
    /// Flexible GMRES ([`fn@fgmres`]) — iteration-varying preconditioners.
    Fgmres,
    /// BiCGSTAB ([`fn@bicgstab`]) — nonsymmetric systems.
    Bicgstab,
    /// Lockstep batched PCG ([`solve_batch`]); on a single right-hand
    /// side this runs the panel driver at width 1, which is
    /// bit-identical to [`pcg`] by the panel contract.
    BatchPcg,
    /// Lockstep batched BiCGSTAB ([`bicgstab_batch`]) — nonsymmetric
    /// panels with per-column convergence/breakdown masking; width 1 is
    /// bit-identical to [`fn@bicgstab`].
    BatchBicgstab,
    /// Lockstep-restart batched GMRES ([`gmres_batch`]) — shared panel
    /// applies per inner step, per-column Hessenberg/Givens state;
    /// width 1 is bit-identical to [`fn@gmres`].
    BatchGmres,
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Method::Pcg => write!(f, "pcg"),
            Method::Gmres => write!(f, "gmres"),
            Method::Fgmres => write!(f, "fgmres"),
            Method::Bicgstab => write!(f, "bicgstab"),
            Method::BatchPcg => write!(f, "batch-pcg"),
            Method::BatchBicgstab => write!(f, "batch-bicgstab"),
            Method::BatchGmres => write!(f, "batch-gmres"),
        }
    }
}

/// Runs the chosen Krylov [`Method`] with caller-owned working memory —
/// the dispatch behind `javelin::Session::krylov`. Allocation behavior
/// and semantics are those of the underlying `_with` entry point.
///
/// # Panics
/// On dimension mismatches (as the underlying solvers do).
pub fn krylov_with<T: Scalar, P: Preconditioner<T>>(
    method: Method,
    a: &CsrMatrix<T>,
    b: &[T],
    x: &mut [T],
    m: &P,
    opts: &SolverOptions,
    ws: &mut SolverWorkspace<T>,
) -> SolverResult {
    match method {
        Method::Pcg => pcg_with(a, b, x, m, opts, ws),
        Method::Gmres => gmres_with(a, b, x, m, opts, ws),
        Method::Fgmres => fgmres_with(a, b, x, m, opts, ws),
        Method::Bicgstab => bicgstab_with(a, b, x, m, opts, ws),
        Method::BatchPcg | Method::BatchBicgstab | Method::BatchGmres => {
            let n = a.nrows();
            assert_eq!(b.len(), n, "krylov: rhs length");
            assert_eq!(x.len(), n, "krylov: solution length");
            let results = krylov_panel_with(
                method,
                a,
                Panel::new(b, n, 1),
                PanelMut::new(x, n, 1),
                m,
                opts,
                ws,
            );
            results.into_iter().next().expect("one column")
        }
    }
}

/// [`krylov_with`] allocating a fresh workspace — convenience for
/// one-shot solves.
pub fn krylov<T: Scalar, P: Preconditioner<T>>(
    method: Method,
    a: &CsrMatrix<T>,
    b: &[T],
    x: &mut [T],
    m: &P,
    opts: &SolverOptions,
) -> SolverResult {
    krylov_with(method, a, b, x, m, opts, &mut SolverWorkspace::new())
}

/// Runs the chosen Krylov [`Method`] over a whole RHS panel with
/// caller-owned working memory — the dispatch behind
/// `javelin::Session::krylov_panel`. The three batch methods (and their
/// scalar synonyms: [`Method::Pcg`] routes to [`solve_batch_with`],
/// [`Method::Bicgstab`] to [`bicgstab_batch_with`], [`Method::Gmres`]
/// to [`gmres_batch_with`]) run `k` systems in lockstep sharing one
/// preconditioner schedule walk per apply; [`Method::Fgmres`], which
/// has no batch variant, loops the scalar solver over the columns.
/// Panel widths `k ∈ {1, 4, 8}` pick the monomorphized fixed-lane
/// instantiations (and the preconditioner's trisolve/spmv kernels pick
/// theirs from the same width); every other width runs the
/// bit-identical dynamic fallback.
/// Either way column `c` of the result is bit-identical to the scalar
/// solve of column `c`. Returns one [`SolverResult`] per column.
///
/// # Panics
/// On panel shape mismatches.
pub fn krylov_panel_with<T: Scalar, A: PanelMatrices<T>, P: Preconditioner<T>>(
    method: Method,
    a: &A,
    b: Panel<'_, T>,
    mut x: PanelMut<'_, T>,
    m: &P,
    opts: &SolverOptions,
    ws: &mut SolverWorkspace<T>,
) -> Vec<SolverResult> {
    match method {
        Method::Pcg | Method::BatchPcg => solve_batch_with(a, b, x, m, opts, ws),
        Method::Bicgstab | Method::BatchBicgstab => bicgstab_batch_with(a, b, x, m, opts, ws),
        Method::Gmres | Method::BatchGmres => gmres_batch_with(a, b, x, m, opts, ws),
        Method::Fgmres => {
            let n = a.nrows();
            let k = b.ncols();
            assert_eq!(b.nrows(), n, "krylov_panel: rhs panel rows");
            assert_eq!(x.nrows(), n, "krylov_panel: solution panel rows");
            assert_eq!(x.ncols(), k, "krylov_panel: panel widths differ");
            (0..k)
                .map(|c| fgmres_with(a.col_matrix(c), b.col(c), x.col_mut(c), m, opts, ws))
                .collect()
        }
    }
}

/// [`krylov_panel_with`] writing per-column results into a caller
/// slice instead of returning a fresh `Vec` — the fully
/// allocation-free dispatched panel entry (the service hot path). Each
/// result slot is reset to [`SolverResult::default`] before the solve,
/// so stale state (including a previous `retried` stamp) never leaks
/// through. `results.len()` must equal the panel width.
///
/// # Panics
/// On panel shape mismatches or a wrong `results` length.
#[allow(clippy::too_many_arguments)]
pub fn krylov_panel_into<T: Scalar, A: PanelMatrices<T>, P: Preconditioner<T>>(
    method: Method,
    a: &A,
    b: Panel<'_, T>,
    mut x: PanelMut<'_, T>,
    m: &P,
    opts: &SolverOptions,
    ws: &mut SolverWorkspace<T>,
    results: &mut [SolverResult],
) {
    match method {
        Method::Pcg | Method::BatchPcg => solve_batch_into(a, b, x, m, opts, ws, results),
        Method::Bicgstab | Method::BatchBicgstab => {
            bicgstab_batch_into(a, b, x, m, opts, ws, results)
        }
        Method::Gmres | Method::BatchGmres => gmres_batch_into(a, b, x, m, opts, ws, results),
        Method::Fgmres => {
            let n = a.nrows();
            let k = b.ncols();
            assert_eq!(b.nrows(), n, "krylov_panel: rhs panel rows");
            assert_eq!(x.nrows(), n, "krylov_panel: solution panel rows");
            assert_eq!(x.ncols(), k, "krylov_panel: panel widths differ");
            assert_eq!(results.len(), k, "krylov_panel: results length");
            for (c, r) in results.iter_mut().enumerate() {
                *r = fgmres_with(a.col_matrix(c), b.col(c), x.col_mut(c), m, opts, ws);
            }
        }
    }
}

/// [`krylov_panel_with`] allocating a fresh workspace — convenience for
/// one-shot panel solves.
pub fn krylov_panel<T: Scalar, A: PanelMatrices<T>, P: Preconditioner<T>>(
    method: Method,
    a: &A,
    b: Panel<'_, T>,
    x: PanelMut<'_, T>,
    m: &P,
    opts: &SolverOptions,
) -> Vec<SolverResult> {
    krylov_panel_with(method, a, b, x, m, opts, &mut SolverWorkspace::new())
}

/// Iteration controls shared by all solvers.
#[derive(Debug, Clone, Copy)]
pub struct SolverOptions {
    /// Relative residual target `‖b − A·x‖₂ / ‖b‖₂` (the paper's 1e-6).
    pub tol: f64,
    /// Hard iteration cap (matrix–vector products for CG/BiCGSTAB,
    /// inner iterations for GMRES).
    pub max_iters: usize,
    /// GMRES restart length `m`.
    pub restart: usize,
    /// Record the residual history (costs one allocation per iteration).
    pub record_history: bool,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            tol: 1e-6,
            max_iters: 5000,
            restart: 50,
            record_history: false,
        }
    }
}

/// How a solve terminated — the structured companion to
/// [`SolverResult::converged`]. Every driver distinguishes *running out
/// of iterations* from *numerical breakdown* (a non-finite residual or
/// a collapsed recurrence scalar): a breakdown freezes the affected
/// column where a healthy solver would have kept iterating on NaNs, so
/// the caller can react (refactor with a diagonal shift, switch
/// methods, restart the one bad column) instead of paying `max_iters`
/// of poisoned arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverStatus {
    /// The tolerance was met within the iteration cap.
    Converged,
    /// The iteration cap was exhausted with finite arithmetic. This is
    /// the `Default` (the reset state of [`SolverResult`]).
    #[default]
    MaxIters,
    /// The recurrence broke down: a residual norm turned NaN/∞, a
    /// direction dot-product collapsed to zero, or the right-hand side
    /// itself was non-finite. The iterate is frozen at the last finite
    /// state the driver produced.
    NumericalBreakdown,
}

/// Outcome of a solve. The `Default` value (unconverged, zero
/// iterations, empty history) is the reset state the `*_into` batch
/// entry points write over.
#[derive(Debug, Clone, Default)]
pub struct SolverResult {
    /// Whether the tolerance was met within the iteration cap.
    pub converged: bool,
    /// Iterations performed (the paper's Table-II statistic).
    pub iterations: usize,
    /// Final relative residual.
    pub relative_residual: f64,
    /// Per-iteration relative residuals (empty unless requested).
    pub history: Vec<f64>,
    /// Structured termination reason (see [`SolverStatus`]).
    pub status: SolverStatus,
    /// Whether this result came from an automatic breakdown-retry (the
    /// first attempt hit [`SolverStatus::NumericalBreakdown`] and the
    /// caller re-ran the solve with a stabilized preconditioner).
    /// Drivers never set this themselves — retry layers
    /// (`Session::krylov`, the solve service) stamp it.
    pub retried: bool,
}

impl SolverResult {
    /// True when the solve halted on a numerical breakdown rather than
    /// converging or exhausting its iteration cap.
    pub fn broke_down(&self) -> bool {
        self.status == SolverStatus::NumericalBreakdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use javelin_core::precond::IdentityPrecond;
    use javelin_sparse::CooMatrix;

    #[test]
    fn defaults_match_paper_tolerance() {
        let o = SolverOptions::default();
        assert_eq!(o.tol, 1e-6);
        assert!(o.max_iters >= 1000);
        assert_eq!(o.restart, 50);
    }

    #[test]
    fn default_status_is_max_iters() {
        assert_eq!(SolverResult::default().status, SolverStatus::MaxIters);
        assert!(!SolverResult::default().broke_down());
    }

    const ALL_METHODS: [Method; 7] = [
        Method::Pcg,
        Method::Gmres,
        Method::Fgmres,
        Method::Bicgstab,
        Method::BatchPcg,
        Method::BatchBicgstab,
        Method::BatchGmres,
    ];

    fn diag_dominant(n: usize) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn nan_rhs_halts_every_method_immediately() {
        // A poisoned right-hand side must produce a structured
        // NumericalBreakdown at iteration 0, not max_iters of NaN
        // arithmetic — and never a NaN solution with converged = true.
        let a = diag_dominant(30);
        let mut b = vec![1.0; 30];
        b[7] = f64::NAN;
        for method in ALL_METHODS {
            let mut x = vec![0.0; 30];
            let res = krylov(
                method,
                &a,
                &b,
                &mut x,
                &IdentityPrecond,
                &SolverOptions::default(),
            );
            assert!(!res.converged, "{method}");
            assert_eq!(res.status, SolverStatus::NumericalBreakdown, "{method}");
            assert_eq!(res.iterations, 0, "{method}");
            assert!(res.broke_down(), "{method}");
            // The iterate is frozen at the (finite) initial guess.
            assert!(x.iter().all(|v| v.is_finite()), "{method}");
        }
    }

    #[test]
    fn nan_matrix_value_halts_with_breakdown_not_cap() {
        // One NaN in the operator: every driver must freeze the solve
        // within the first couple of iterations with a breakdown
        // status, far from the 5000-iteration cap.
        let n = 30;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
        }
        coo.push(12, 13, f64::NAN).unwrap();
        let a = coo.to_csr();
        let b = vec![1.0; n];
        let opts = SolverOptions::default();
        for method in ALL_METHODS {
            let mut x = vec![0.0; n];
            let res = krylov(method, &a, &b, &mut x, &IdentityPrecond, &opts);
            assert!(!res.converged, "{method}");
            assert_eq!(res.status, SolverStatus::NumericalBreakdown, "{method}");
            assert!(
                res.iterations + 2 < opts.max_iters,
                "{method}: froze at {} of {}",
                res.iterations,
                opts.max_iters
            );
        }
    }

    #[test]
    fn poisoned_panel_column_freezes_without_perturbing_neighbours() {
        // Column 1 carries a NaN RHS; columns 0 and 2 must converge
        // bit-identically to their standalone scalar solves.
        let a = diag_dominant(40);
        let n = a.nrows();
        let k = 3;
        let mut b = vec![0.0; n * k];
        for i in 0..n {
            b[i] = ((i % 7) as f64) - 3.0;
            b[2 * n + i] = ((i % 5) as f64) * 0.5 - 1.0;
        }
        b[n + 4] = f64::NAN;
        let opts = SolverOptions::default();
        for method in [Method::BatchPcg, Method::BatchBicgstab, Method::BatchGmres] {
            let mut xb = vec![0.0; n * k];
            let res = krylov_panel_with(
                method,
                &a,
                Panel::new(&b, n, k),
                PanelMut::new(&mut xb, n, k),
                &IdentityPrecond,
                &opts,
                &mut SolverWorkspace::new(),
            );
            assert_eq!(res[1].status, SolverStatus::NumericalBreakdown, "{method}");
            assert!(!res[1].converged, "{method}");
            for c in [0usize, 2] {
                assert!(res[c].converged, "{method} col {c}");
                assert_eq!(res[c].status, SolverStatus::Converged, "{method} col {c}");
                let mut xs = vec![0.0; n];
                let scalar = krylov(
                    method,
                    &a,
                    &b[c * n..(c + 1) * n],
                    &mut xs,
                    &IdentityPrecond,
                    &opts,
                );
                assert_eq!(scalar.iterations, res[c].iterations, "{method} col {c}");
                let pb: Vec<u64> = xb[c * n..(c + 1) * n].iter().map(|v| v.to_bits()).collect();
                let sb: Vec<u64> = xs.iter().map(|v| v.to_bits()).collect();
                assert_eq!(pb, sb, "{method} col {c}");
            }
        }
    }
}
