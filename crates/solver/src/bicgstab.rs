//! BiCGSTAB with right preconditioning — the low-memory alternative to
//! GMRES for nonsymmetric systems (circuit-style matrices in the
//! paper's group B often pair with BiCGSTAB in practice).
//!
//! The convergence loop lives in one place: the width-generic lane
//! driver in [`crate::batch_bicgstab`]. [`bicgstab_with`] is its
//! `FixedLanes<1>` instantiation, so the scalar and batched solvers —
//! breakdown semantics included — are literally the same code.

use crate::{SolverOptions, SolverResult, SolverWorkspace};
use javelin_core::precond::Preconditioner;
use javelin_sparse::lanes::FixedLanes;
use javelin_sparse::{CsrMatrix, Panel, PanelMut, Scalar};

/// Right-preconditioned BiCGSTAB. Iterations count full BiCGSTAB steps
/// (two matvecs and two preconditioner applications each).
///
/// Allocates a fresh [`SolverWorkspace`]; repeated callers should hold
/// one and use [`bicgstab_with`].
///
/// # Panics
/// On dimension mismatches.
pub fn bicgstab<T: Scalar, P: Preconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    x: &mut [T],
    m: &P,
    opts: &SolverOptions,
) -> SolverResult {
    bicgstab_with(a, b, x, m, opts, &mut SolverWorkspace::new())
}

/// [`bicgstab`] with caller-owned working memory: allocation-free once
/// the workspace has seen this size.
///
/// This is the `FixedLanes<1>` instantiation of the lane-generic batch
/// driver ([`crate::bicgstab_batch_with`] at width 1): one convergence
/// loop serves the scalar and panel paths, and at width 1 the compiler
/// folds every per-lane loop into the scalar BiCGSTAB recurrence —
/// bit-identical results, breakdown exits (NaN payloads included) and
/// iteration counts.
///
/// # Panics
/// On dimension mismatches.
pub fn bicgstab_with<T: Scalar, P: Preconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    x: &mut [T],
    m: &P,
    opts: &SolverOptions,
    ws: &mut SolverWorkspace<T>,
) -> SolverResult {
    let n = a.nrows();
    assert_eq!(b.len(), n, "bicgstab: rhs length");
    assert_eq!(x.len(), n, "bicgstab: solution length");
    let mut results = [SolverResult::default()];
    crate::batch_bicgstab::bicgstab_batch_lanes(
        FixedLanes::<1>,
        a,
        Panel::from_col(b),
        PanelMut::from_col(x),
        m,
        opts,
        ws,
        &mut results,
    );
    let [res] = results;
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use javelin_core::precond::IdentityPrecond;
    use javelin_core::{factorize, IluOptions};
    use javelin_sparse::CooMatrix;

    fn nonsym(n: usize) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 5.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.3).unwrap();
                coo.push(i + 1, i, -0.7).unwrap();
            }
            if i + 4 < n {
                coo.push(i, i + 4, -0.4).unwrap();
                coo.push(i + 4, i, -0.9).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn converges_with_true_residual() {
        let a = nonsym(150);
        let x_true: Vec<f64> = (0..150).map(|i| (i as f64 * 0.11).sin()).collect();
        let b = a.spmv(&x_true);
        let mut x = vec![0.0; 150];
        let res = bicgstab(&a, &b, &mut x, &IdentityPrecond, &SolverOptions::default());
        assert!(res.converged, "relres = {}", res.relative_residual);
        let ax = a.spmv(&x);
        let err: f64 = b
            .iter()
            .zip(ax.iter())
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err / bn < 1e-5);
    }

    #[test]
    fn preconditioning_helps() {
        let a = nonsym(300);
        let b = vec![1.0; 300];
        let plain = {
            let mut x = vec![0.0; 300];
            bicgstab(&a, &b, &mut x, &IdentityPrecond, &SolverOptions::default())
        };
        let f = factorize(&a, &IluOptions::default()).unwrap();
        let pre = {
            let mut x = vec![0.0; 300];
            bicgstab(&a, &b, &mut x, &f, &SolverOptions::default())
        };
        assert!(plain.converged && pre.converged);
        assert!(pre.iterations <= plain.iterations);
    }

    #[test]
    fn zero_rhs_trivial() {
        let a = nonsym(20);
        let b = vec![0.0; 20];
        let mut x = vec![1.0; 20];
        let res = bicgstab(&a, &b, &mut x, &IdentityPrecond, &SolverOptions::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn cap_respected() {
        let a = nonsym(200);
        let b = vec![1.0; 200];
        let mut x = vec![0.0; 200];
        let opts = SolverOptions {
            max_iters: 2,
            tol: 1e-15,
            ..Default::default()
        };
        let res = bicgstab(&a, &b, &mut x, &IdentityPrecond, &opts);
        assert!(!res.converged);
        assert!(res.iterations <= 2);
    }
}
