//! BiCGSTAB with right preconditioning — the low-memory alternative to
//! GMRES for nonsymmetric systems (circuit-style matrices in the
//! paper's group B often pair with BiCGSTAB in practice).

use crate::{SolverOptions, SolverResult, SolverWorkspace};
use javelin_core::precond::Preconditioner;
use javelin_sparse::vecops;
use javelin_sparse::{CsrMatrix, Scalar};

/// Right-preconditioned BiCGSTAB. Iterations count full BiCGSTAB steps
/// (two matvecs and two preconditioner applications each).
///
/// Allocates a fresh [`SolverWorkspace`]; repeated callers should hold
/// one and use [`bicgstab_with`].
///
/// # Panics
/// On dimension mismatches.
pub fn bicgstab<T: Scalar, P: Preconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    x: &mut [T],
    m: &P,
    opts: &SolverOptions,
) -> SolverResult {
    bicgstab_with(a, b, x, m, opts, &mut SolverWorkspace::new())
}

/// [`bicgstab`] with caller-owned working memory: allocation-free once
/// the workspace has seen this size.
///
/// # Panics
/// On dimension mismatches.
pub fn bicgstab_with<T: Scalar, P: Preconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    x: &mut [T],
    m: &P,
    opts: &SolverOptions,
    ws: &mut SolverWorkspace<T>,
) -> SolverResult {
    let n = a.nrows();
    assert_eq!(b.len(), n, "bicgstab: rhs length");
    assert_eq!(x.len(), n, "bicgstab: solution length");
    let b_norm = vecops::norm2(b).to_f64();
    if b_norm == 0.0 {
        x.fill(T::ZERO);
        return SolverResult {
            converged: true,
            iterations: 0,
            relative_residual: 0.0,
            history: Vec::new(),
        };
    }
    ws.ensure_short(n);
    let SolverWorkspace {
        precond,
        r,
        rhat,
        z,
        p,
        q,
        y,
        t,
        ..
    } = ws;
    // r = b - A x (matvec into q, subtract into r); r_hat = r.
    a.spmv_into(x, q);
    for i in 0..n {
        r[i] = b[i] - q[i];
    }
    rhat.copy_from_slice(r);
    let mut rho = T::ONE;
    let mut alpha = T::ONE;
    let mut omega = T::ONE;
    // q plays the role of `v = A·y`; z of the second preconditioned
    // direction; t of `A·z`.
    q.iter_mut().for_each(|qi| *qi = T::ZERO);
    p.iter_mut().for_each(|pi| *pi = T::ZERO);
    let mut history = Vec::new();
    let mut relres = vecops::norm2(r).to_f64() / b_norm;
    if opts.record_history {
        history.push(relres);
    }
    for it in 1..=opts.max_iters {
        let rho_new = vecops::dot(rhat, r);
        if rho_new == T::ZERO || !rho_new.is_finite() {
            return SolverResult {
                converged: false,
                iterations: it - 1,
                relative_residual: relres,
                history,
            };
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        // p = r + beta (p - omega v)
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * q[i]);
        }
        m.apply_with(precond, p, y);
        a.spmv_into(y, q);
        alpha = rho / vecops::dot(rhat, q);
        // s = r - alpha v  (reuse r)
        vecops::axpy(-alpha, q, r);
        let s_norm = vecops::norm2(r).to_f64() / b_norm;
        if s_norm < opts.tol {
            vecops::axpy(alpha, y, x);
            if opts.record_history {
                history.push(s_norm);
            }
            return SolverResult {
                converged: true,
                iterations: it,
                relative_residual: s_norm,
                history,
            };
        }
        m.apply_with(precond, r, z);
        a.spmv_into(z, t);
        let tt = vecops::dot(t, t);
        if tt == T::ZERO {
            return SolverResult {
                converged: false,
                iterations: it,
                relative_residual: s_norm,
                history,
            };
        }
        omega = vecops::dot(t, r) / tt;
        // x += alpha y + omega z
        vecops::axpy(alpha, y, x);
        vecops::axpy(omega, z, x);
        // r = s - omega t
        vecops::axpy(-omega, t, r);
        relres = vecops::norm2(r).to_f64() / b_norm;
        if opts.record_history {
            history.push(relres);
        }
        if relres < opts.tol {
            return SolverResult {
                converged: true,
                iterations: it,
                relative_residual: relres,
                history,
            };
        }
        if omega == T::ZERO {
            return SolverResult {
                converged: false,
                iterations: it,
                relative_residual: relres,
                history,
            };
        }
    }
    SolverResult {
        converged: false,
        iterations: opts.max_iters,
        relative_residual: relres,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use javelin_core::precond::IdentityPrecond;
    use javelin_core::{factorize, IluOptions};
    use javelin_sparse::CooMatrix;

    fn nonsym(n: usize) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 5.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.3).unwrap();
                coo.push(i + 1, i, -0.7).unwrap();
            }
            if i + 4 < n {
                coo.push(i, i + 4, -0.4).unwrap();
                coo.push(i + 4, i, -0.9).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn converges_with_true_residual() {
        let a = nonsym(150);
        let x_true: Vec<f64> = (0..150).map(|i| (i as f64 * 0.11).sin()).collect();
        let b = a.spmv(&x_true);
        let mut x = vec![0.0; 150];
        let res = bicgstab(&a, &b, &mut x, &IdentityPrecond, &SolverOptions::default());
        assert!(res.converged, "relres = {}", res.relative_residual);
        let ax = a.spmv(&x);
        let err: f64 = b
            .iter()
            .zip(ax.iter())
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err / bn < 1e-5);
    }

    #[test]
    fn preconditioning_helps() {
        let a = nonsym(300);
        let b = vec![1.0; 300];
        let plain = {
            let mut x = vec![0.0; 300];
            bicgstab(&a, &b, &mut x, &IdentityPrecond, &SolverOptions::default())
        };
        let f = factorize(&a, &IluOptions::default()).unwrap();
        let pre = {
            let mut x = vec![0.0; 300];
            bicgstab(&a, &b, &mut x, &f, &SolverOptions::default())
        };
        assert!(plain.converged && pre.converged);
        assert!(pre.iterations <= plain.iterations);
    }

    #[test]
    fn zero_rhs_trivial() {
        let a = nonsym(20);
        let b = vec![0.0; 20];
        let mut x = vec![1.0; 20];
        let res = bicgstab(&a, &b, &mut x, &IdentityPrecond, &SolverOptions::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn cap_respected() {
        let a = nonsym(200);
        let b = vec![1.0; 200];
        let mut x = vec![0.0; 200];
        let opts = SolverOptions {
            max_iters: 2,
            tol: 1e-15,
            ..Default::default()
        };
        let res = bicgstab(&a, &b, &mut x, &IdentityPrecond, &opts);
        assert!(!res.converged);
        assert!(res.iterations <= 2);
    }
}
