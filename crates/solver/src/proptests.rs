//! Property-based tests for the batched Krylov drivers: the defining
//! contract — column `c` of any batch solve is **bit-identical** to
//! the scalar solver run on that column — must hold across random
//! nonsymmetric matrices, every trisolve engine, thread counts and
//! panel widths, for BiCGSTAB, GMRES and PCG alike.

#![cfg(test)]

use crate::{
    bicgstab_with, gmres_with, krylov_panel_with, pcg_with, Method, SolverOptions, SolverResult,
    SolverWorkspace,
};
use javelin_core::{factorize, IluOptions, SolveEngine};
use javelin_sparse::{CsrMatrix, Panel, PanelMut};
use javelin_synth::grid::{convection_diffusion_2d, laplace_2d};
use javelin_synth::util::revalue;
use proptest::prelude::*;

const ENGINES: [SolveEngine; 4] = [
    SolveEngine::Serial,
    SolveEngine::BarrierLevel,
    SolveEngine::PointToPoint,
    SolveEngine::PointToPointLower,
];
/// The issue's width matrix: the monomorphized lane widths (1, 4, 8)
/// and the `DynLanes` fallback widths (2, 3, 5).
const WIDTHS: [usize; 6] = [1, 2, 3, 4, 5, 8];

/// Deterministic panel with visibly different columns.
fn panel(n: usize, k: usize, seed: u64) -> Vec<f64> {
    javelin_synth::util::rhs_panel(n, k, seed)
}

fn scalar_reference(
    method: Method,
    a: &CsrMatrix<f64>,
    b: &[f64],
    x: &mut [f64],
    m: &javelin_core::EnginePinned<'_, f64>,
    opts: &SolverOptions,
) -> SolverResult {
    let mut ws = SolverWorkspace::new();
    match method {
        Method::BatchBicgstab => bicgstab_with(a, b, x, m, opts, &mut ws),
        Method::BatchGmres => gmres_with(a, b, x, m, opts, &mut ws),
        Method::BatchPcg => pcg_with(a, b, x, m, opts, &mut ws),
        _ => unreachable!("batch methods only"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance contract of the nonsymmetric batch drivers:
    /// bitwise column identity across engines × threads × widths.
    #[test]
    fn batch_columns_bitwise_equal_scalar_runs(
        nthreads in 1usize..4,
        engine_idx in 0usize..4,
        k_idx in 0usize..6,
        seed in 1u64..500,
        method_idx in 0usize..3,
    ) {
        let engine = ENGINES[engine_idx];
        let k = WIDTHS[k_idx];
        let method = [Method::BatchBicgstab, Method::BatchGmres, Method::BatchPcg][method_idx];
        // PCG needs SPD; the nonsymmetric drivers get a convection
        // operator with seeded value drift (pattern-stable revalue).
        let base = if method == Method::BatchPcg {
            laplace_2d(9, 8)
        } else {
            convection_diffusion_2d(9, 8, 0.4, 0.2)
        };
        let a = if method == Method::BatchPcg {
            base
        } else {
            revalue(&base, seed as f64 * 0.01, 0.05)
        };
        let n = a.nrows();
        let f = factorize(&a, &IluOptions::ilu0(nthreads)).unwrap();
        let m = f.with_engine(engine);
        let opts = SolverOptions { restart: 11, ..Default::default() };
        let b = panel(n, k, seed);
        let mut xb = vec![0.0; n * k];
        let results = krylov_panel_with(
            method,
            &a,
            Panel::new(&b, n, k),
            PanelMut::new(&mut xb, n, k),
            &m,
            &opts,
            &mut SolverWorkspace::new(),
        );
        for c in 0..k {
            let mut x = vec![0.0; n];
            let r = scalar_reference(method, &a, &b[c * n..(c + 1) * n], &mut x, &m, &opts);
            prop_assert_eq!(results[c].converged, r.converged, "{} col {}", method, c);
            prop_assert_eq!(results[c].iterations, r.iterations, "{} col {}", method, c);
            prop_assert_eq!(
                results[c].relative_residual.to_bits(),
                r.relative_residual.to_bits(),
                "{} col {}", method, c
            );
            prop_assert_eq!(results[c].history.len(), r.history.len(), "{} col {}", method, c);
            let bb: Vec<u64> = xb[c * n..(c + 1) * n].iter().map(|v| v.to_bits()).collect();
            let sb: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(bb, sb, "{} col {}", method, c);
        }
    }

    /// The `DynLanes` fallback widths (5, 7) — which the dispatch table
    /// never monomorphizes — are pinned bitwise per column to the
    /// scalar path, so the fallback is as trusted as the fixed-width
    /// specializations.
    #[test]
    fn dyn_lane_widths_bitwise_equal_scalar_runs(
        nthreads in 1usize..3,
        engine_idx in 0usize..4,
        k_idx in 0usize..2,
        seed in 1u64..300,
        method_idx in 0usize..3,
    ) {
        let engine = ENGINES[engine_idx];
        let k = [5usize, 7][k_idx];
        let method = [Method::BatchBicgstab, Method::BatchGmres, Method::BatchPcg][method_idx];
        let a = if method == Method::BatchPcg {
            laplace_2d(8, 9)
        } else {
            revalue(&convection_diffusion_2d(8, 9, 0.3, 0.4), seed as f64 * 0.01, 0.05)
        };
        let n = a.nrows();
        let f = factorize(&a, &IluOptions::ilu0(nthreads)).unwrap();
        let m = f.with_engine(engine);
        let opts = SolverOptions { restart: 9, ..Default::default() };
        let b = panel(n, k, seed);
        let mut xb = vec![0.0; n * k];
        let results = krylov_panel_with(
            method,
            &a,
            Panel::new(&b, n, k),
            PanelMut::new(&mut xb, n, k),
            &m,
            &opts,
            &mut SolverWorkspace::new(),
        );
        for c in 0..k {
            let mut x = vec![0.0; n];
            let r = scalar_reference(method, &a, &b[c * n..(c + 1) * n], &mut x, &m, &opts);
            prop_assert_eq!(results[c].converged, r.converged, "{} k={} col {}", method, k, c);
            prop_assert_eq!(results[c].iterations, r.iterations, "{} k={} col {}", method, k, c);
            let bb: Vec<u64> = xb[c * n..(c + 1) * n].iter().map(|v| v.to_bits()).collect();
            let sb: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(bb, sb, "{} k={} col {}", method, k, c);
        }
    }

    /// Width 1 of every batch method is bit-identical to the scalar
    /// entry point through the `krylov_with` dispatch as well.
    #[test]
    fn width_one_dispatch_matches_scalar(
        nthreads in 1usize..3,
        seed in 1u64..200,
        method_idx in 0usize..3,
    ) {
        let method = [Method::BatchBicgstab, Method::BatchGmres, Method::BatchPcg][method_idx];
        let a = if method == Method::BatchPcg {
            laplace_2d(8, 8)
        } else {
            convection_diffusion_2d(8, 8, 0.3, 0.5)
        };
        let n = a.nrows();
        let f = factorize(&a, &IluOptions::ilu0(nthreads)).unwrap();
        let m = f.with_engine(f.default_engine());
        let opts = SolverOptions { restart: 13, ..Default::default() };
        let b = panel(n, 1, seed);
        let mut xb = vec![0.0; n];
        let rb = crate::krylov_with(method, &a, &b, &mut xb, &m, &opts, &mut SolverWorkspace::new());
        let mut xs = vec![0.0; n];
        let rs = scalar_reference(method, &a, &b, &mut xs, &m, &opts);
        prop_assert_eq!(rb.iterations, rs.iterations);
        prop_assert_eq!(rb.converged, rs.converged);
        let bb: Vec<u64> = xb.iter().map(|v| v.to_bits()).collect();
        let sb: Vec<u64> = xs.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(bb, sb);
    }
}
