//! (Preconditioned) conjugate gradients.

use crate::{SolverOptions, SolverResult};
use javelin_core::precond::{IdentityPrecond, Preconditioner};
use javelin_sparse::vecops;
use javelin_sparse::{CsrMatrix, Scalar};

/// Unpreconditioned CG for SPD systems.
pub fn cg<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &[T],
    x: &mut [T],
    opts: &SolverOptions,
) -> SolverResult {
    pcg(a, b, x, &IdentityPrecond, opts)
}

/// Preconditioned CG: solves `A·x = b` with SPD `A` and a (symmetric
/// positive) preconditioner `M` applied as `z = M⁻¹·r`.
///
/// With `M = L·U` from ILU(0) of an SPD matrix this is the classic
/// IC-preconditioned CG workhorse the paper's iteration study drives.
///
/// # Panics
/// On dimension mismatches.
pub fn pcg<T: Scalar, P: Preconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    x: &mut [T],
    m: &P,
    opts: &SolverOptions,
) -> SolverResult {
    let n = a.nrows();
    assert_eq!(b.len(), n, "cg: rhs length");
    assert_eq!(x.len(), n, "cg: solution length");
    let b_norm = vecops::norm2(b).to_f64();
    if b_norm == 0.0 {
        x.fill(T::ZERO);
        return SolverResult {
            converged: true,
            iterations: 0,
            relative_residual: 0.0,
            history: Vec::new(),
        };
    }
    // r = b - A x
    let mut r = {
        let ax = a.spmv(x);
        vecops::sub(b, &ax)
    };
    let mut z = vec![T::ZERO; n];
    m.apply(&r, &mut z);
    let mut p = z.clone();
    let mut rz = vecops::dot(&r, &z);
    let mut history = Vec::new();
    let mut relres = vecops::norm2(&r).to_f64() / b_norm;
    if opts.record_history {
        history.push(relres);
    }
    let mut q = vec![T::ZERO; n];
    for it in 1..=opts.max_iters {
        a.spmv_into(&p, &mut q);
        let pq = vecops::dot(&p, &q);
        if pq == T::ZERO || !pq.is_finite() {
            return SolverResult { converged: false, iterations: it - 1, relative_residual: relres, history };
        }
        let alpha = rz / pq;
        vecops::axpy(alpha, &p, x);
        vecops::axpy(-alpha, &q, &mut r);
        relres = vecops::norm2(&r).to_f64() / b_norm;
        if opts.record_history {
            history.push(relres);
        }
        if relres < opts.tol {
            return SolverResult { converged: true, iterations: it, relative_residual: relres, history };
        }
        m.apply(&r, &mut z);
        let rz_new = vecops::dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        vecops::xpby(&z, beta, &mut p);
    }
    SolverResult {
        converged: false,
        iterations: opts.max_iters,
        relative_residual: relres,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use javelin_core::{IluFactorization, IluOptions};
    use javelin_sparse::CooMatrix;

    fn laplace_2d(nx: usize, ny: usize) -> CsrMatrix<f64> {
        let n = nx * ny;
        let idx = |i: usize, j: usize| i * ny + j;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..nx {
            for j in 0..ny {
                let r = idx(i, j);
                coo.push(r, r, 4.0).unwrap();
                if i + 1 < nx {
                    coo.push(r, idx(i + 1, j), -1.0).unwrap();
                    coo.push(idx(i + 1, j), r, -1.0).unwrap();
                }
                if j + 1 < ny {
                    coo.push(r, idx(i, j + 1), -1.0).unwrap();
                    coo.push(idx(i, j + 1), r, -1.0).unwrap();
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn cg_converges_on_laplacian() {
        let a = laplace_2d(12, 12);
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 11) as f64 - 5.0) * 0.3).collect();
        let b = a.spmv(&x_true);
        let mut x = vec![0.0; n];
        let res = cg(&a, &b, &mut x, &SolverOptions::default());
        assert!(res.converged, "relres = {}", res.relative_residual);
        // True residual check, not just the recurrence.
        let ax = a.spmv(&x);
        let err: f64 = b.iter().zip(ax.iter()).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt();
        assert!(err / b.iter().map(|v| v * v).sum::<f64>().sqrt() < 1e-5);
    }

    #[test]
    fn ilu_preconditioning_reduces_iterations() {
        let a = laplace_2d(16, 16);
        let n = a.nrows();
        let b = vec![1.0; n];
        let plain = {
            let mut x = vec![0.0; n];
            cg(&a, &b, &mut x, &SolverOptions::default())
        };
        let f = IluFactorization::compute(&a, &IluOptions::default()).unwrap();
        let pre = {
            let mut x = vec![0.0; n];
            pcg(&a, &b, &mut x, &f, &SolverOptions::default())
        };
        assert!(plain.converged && pre.converged);
        assert!(
            pre.iterations < plain.iterations,
            "ILU(0) PCG {} should beat CG {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn zero_rhs_is_trivial() {
        let a = laplace_2d(4, 4);
        let b = vec![0.0; 16];
        let mut x = vec![5.0; 16];
        let res = cg(&a, &b, &mut x, &SolverOptions::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn history_recorded_when_requested() {
        let a = laplace_2d(6, 6);
        let b = vec![1.0; 36];
        let mut x = vec![0.0; 36];
        let opts = SolverOptions { record_history: true, ..Default::default() };
        let res = cg(&a, &b, &mut x, &opts);
        assert!(res.converged);
        assert_eq!(res.history.len(), res.iterations + 1); // initial + per-iter
        assert!(res.history.windows(2).filter(|w| w[1] < w[0]).count() > res.history.len() / 2);
    }

    #[test]
    fn iteration_cap_respected() {
        let a = laplace_2d(20, 20);
        let b = vec![1.0; 400];
        let mut x = vec![0.0; 400];
        let opts = SolverOptions { max_iters: 3, ..Default::default() };
        let res = cg(&a, &b, &mut x, &opts);
        assert!(!res.converged);
        assert_eq!(res.iterations, 3);
    }
}
