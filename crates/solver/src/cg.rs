//! (Preconditioned) conjugate gradients.
//!
//! The convergence loop lives in one place: the width-generic lane
//! driver in [`crate::batch`]. [`pcg_with`] is its `FixedLanes<1>`
//! instantiation — a plain vector viewed as a width-1 panel — so the
//! scalar solver and the batched solver cannot drift apart, and the
//! scalar bits are exactly the historical ones (the width-1 identity
//! the test suite has pinned since the panel drivers landed).

use crate::{SolverOptions, SolverResult, SolverWorkspace};
use javelin_core::precond::{IdentityPrecond, Preconditioner};
use javelin_sparse::lanes::FixedLanes;
use javelin_sparse::{CsrMatrix, Panel, PanelMut, Scalar};

/// Unpreconditioned CG for SPD systems.
pub fn cg<T: Scalar>(a: &CsrMatrix<T>, b: &[T], x: &mut [T], opts: &SolverOptions) -> SolverResult {
    pcg(a, b, x, &IdentityPrecond, opts)
}

/// Preconditioned CG: solves `A·x = b` with SPD `A` and a (symmetric
/// positive) preconditioner `M` applied as `z = M⁻¹·r`.
///
/// With `M = L·U` from ILU(0) of an SPD matrix this is the classic
/// IC-preconditioned CG workhorse the paper's iteration study drives.
///
/// Allocates a fresh [`SolverWorkspace`]; repeated callers should hold
/// one and use [`pcg_with`].
///
/// # Panics
/// On dimension mismatches.
pub fn pcg<T: Scalar, P: Preconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    x: &mut [T],
    m: &P,
    opts: &SolverOptions,
) -> SolverResult {
    pcg_with(a, b, x, m, opts, &mut SolverWorkspace::new())
}

/// [`pcg`] with caller-owned working memory: after the workspace's
/// first use at this size, the whole solve — matvecs, preconditioner
/// applies, vector updates — performs no heap allocation (residual
/// history, off by default, excepted).
///
/// This is the `FixedLanes<1>` instantiation of the lane-generic batch
/// driver ([`crate::solve_batch_with`] at width 1): the compiler
/// monomorphizes every per-lane loop to a single iteration, so the
/// generated code — and the result, bit for bit — is the scalar PCG
/// recurrence.
///
/// # Panics
/// On dimension mismatches.
pub fn pcg_with<T: Scalar, P: Preconditioner<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    x: &mut [T],
    m: &P,
    opts: &SolverOptions,
    ws: &mut SolverWorkspace<T>,
) -> SolverResult {
    let n = a.nrows();
    assert_eq!(b.len(), n, "cg: rhs length");
    assert_eq!(x.len(), n, "cg: solution length");
    let mut results = [SolverResult::default()];
    crate::batch::solve_batch_lanes(
        FixedLanes::<1>,
        a,
        Panel::from_col(b),
        PanelMut::from_col(x),
        m,
        opts,
        ws,
        &mut results,
    );
    let [res] = results;
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use javelin_core::{factorize, IluOptions};
    use javelin_sparse::CooMatrix;

    fn laplace_2d(nx: usize, ny: usize) -> CsrMatrix<f64> {
        let n = nx * ny;
        let idx = |i: usize, j: usize| i * ny + j;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..nx {
            for j in 0..ny {
                let r = idx(i, j);
                coo.push(r, r, 4.0).unwrap();
                if i + 1 < nx {
                    coo.push(r, idx(i + 1, j), -1.0).unwrap();
                    coo.push(idx(i + 1, j), r, -1.0).unwrap();
                }
                if j + 1 < ny {
                    coo.push(r, idx(i, j + 1), -1.0).unwrap();
                    coo.push(idx(i, j + 1), r, -1.0).unwrap();
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn cg_converges_on_laplacian() {
        let a = laplace_2d(12, 12);
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 11) as f64 - 5.0) * 0.3).collect();
        let b = a.spmv(&x_true);
        let mut x = vec![0.0; n];
        let res = cg(&a, &b, &mut x, &SolverOptions::default());
        assert!(res.converged, "relres = {}", res.relative_residual);
        // True residual check, not just the recurrence.
        let ax = a.spmv(&x);
        let err: f64 = b
            .iter()
            .zip(ax.iter())
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        assert!(err / b.iter().map(|v| v * v).sum::<f64>().sqrt() < 1e-5);
    }

    #[test]
    fn ilu_preconditioning_reduces_iterations() {
        let a = laplace_2d(16, 16);
        let n = a.nrows();
        let b = vec![1.0; n];
        let plain = {
            let mut x = vec![0.0; n];
            cg(&a, &b, &mut x, &SolverOptions::default())
        };
        let f = factorize(&a, &IluOptions::default()).unwrap();
        let pre = {
            let mut x = vec![0.0; n];
            pcg(&a, &b, &mut x, &f, &SolverOptions::default())
        };
        assert!(plain.converged && pre.converged);
        assert!(
            pre.iterations < plain.iterations,
            "ILU(0) PCG {} should beat CG {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn workspace_reuse_matches_fresh_solves() {
        // One workspace across repeated solves (and across a size
        // change) must give bit-identical results to fresh workspaces.
        let a = laplace_2d(14, 14);
        let n = a.nrows();
        let f = factorize(&a, &IluOptions::ilu0(2)).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin()).collect();
        let opts = SolverOptions::default();
        let mut x_ref = vec![0.0; n];
        let r_ref = pcg(&a, &b, &mut x_ref, &f, &opts);
        let bits_ref: Vec<u64> = x_ref.iter().map(|v| v.to_bits()).collect();
        let mut ws = SolverWorkspace::new();
        // Warm the workspace on a different (smaller) system first.
        let a_small = laplace_2d(5, 5);
        let mut xs = vec![0.0; 25];
        pcg_with(
            &a_small,
            &[1.0; 25],
            &mut xs,
            &IdentityPrecond,
            &opts,
            &mut ws,
        );
        for rep in 0..3 {
            let mut x = vec![0.0; n];
            let r = pcg_with(&a, &b, &mut x, &f, &opts, &mut ws);
            assert_eq!(r.iterations, r_ref.iterations, "rep {rep}");
            let bits: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, bits_ref, "rep {rep}");
        }
    }

    #[test]
    fn zero_rhs_is_trivial() {
        let a = laplace_2d(4, 4);
        let b = vec![0.0; 16];
        let mut x = vec![5.0; 16];
        let res = cg(&a, &b, &mut x, &SolverOptions::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn history_recorded_when_requested() {
        let a = laplace_2d(6, 6);
        let b = vec![1.0; 36];
        let mut x = vec![0.0; 36];
        let opts = SolverOptions {
            record_history: true,
            ..Default::default()
        };
        let res = cg(&a, &b, &mut x, &opts);
        assert!(res.converged);
        assert_eq!(res.history.len(), res.iterations + 1); // initial + per-iter
        assert!(res.history.windows(2).filter(|w| w[1] < w[0]).count() > res.history.len() / 2);
    }

    #[test]
    fn iteration_cap_respected() {
        let a = laplace_2d(20, 20);
        let b = vec![1.0; 400];
        let mut x = vec![0.0; 400];
        let opts = SolverOptions {
            max_iters: 3,
            ..Default::default()
        };
        let res = cg(&a, &b, &mut x, &opts);
        assert!(!res.converged);
        assert_eq!(res.iterations, 3);
    }
}
