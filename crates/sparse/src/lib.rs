//! # javelin-sparse
//!
//! Sparse-matrix substrate for the Javelin incomplete-LU framework.
//!
//! Javelin (Booth & Bolet, IPDPS 2019) deliberately stays in the
//! *conventional Compressed Sparse Row* format: the factorization, the
//! triangular solves and the matrix–vector products all operate on plain
//! CSR with at most a handful of auxiliary index arrays. This crate
//! provides that substrate:
//!
//! * [`CsrMatrix`] — the central format, with construction, validation,
//!   transposition, permutation (`P·A·Qᵀ`), triangular extraction and
//!   pattern algebra;
//! * [`CooMatrix`] — a triplet builder used by the generators and by
//!   Matrix Market I/O;
//! * [`CscMatrix`] — a thin column-major companion;
//! * [`Perm`] — permutations with composition and inversion;
//! * [`Scalar`] — the "templated" numeric abstraction (the paper's C++
//!   implementation is templated over the value type; we mirror that with
//!   a trait implemented for `f32` and `f64`);
//! * [`Panel`] / [`PanelMut`] — column-major dense right-hand-side
//!   panels (`n × k` blocks with a column stride) consumed by the
//!   multi-RHS execution paths;
//! * [`lanes`] — the width-generic lane layer ([`FixedLanes`] /
//!   [`DynLanes`] plus the [`with_lanes!`] dispatch table): one kernel
//!   core serves the scalar path (`K = 1`), the SIMD-specialized panel
//!   widths (`K = 4, 8`) and arbitrary dynamic widths;
//! * [`io`] — Matrix Market reading/writing so that the real SuiteSparse
//!   inputs used by the paper can be substituted for the bundled synthetic
//!   suite;
//! * [`pattern`] — pattern-only helpers (`lower(A)`, `lower(A+Aᵀ)`, …)
//!   that feed the level scheduler.
//!
//! Everything here is deterministic and allocation-conscious: hot paths
//! never allocate, and construction routines take `Vec`s by value so the
//! caller controls reuse.

// `deny`, not `forbid`: the optional explicit-SIMD lane micro-ops
// (`lanes/simd.rs`, behind the `simd` feature) need `core::arch`
// intrinsics and opt back in per-module; everything else stays
// unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod coo;
pub mod csc;
pub mod csr;
pub mod error;
pub mod fault;
pub mod io;
pub mod lanes;
pub mod panel;
pub mod pattern;
pub mod perm;
pub mod scalar;
pub mod vecops;

pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use error::SparseError;
pub use lanes::{DynLanes, FixedLanes, LaneMask, Lanes};
pub use panel::{Panel, PanelBuf, PanelMut};
pub use pattern::{pattern_fingerprint, value_fingerprint};
pub use perm::Perm;
pub use scalar::Scalar;
