//! The numeric abstraction over which the framework is "templated".
//!
//! The reference Javelin implementation is a templated C++ library; the
//! Rust analogue is a small trait implemented for `f32` and `f64`. The
//! trait is intentionally minimal — exactly the operations incomplete
//! factorization, triangular solves and Krylov methods need — so that
//! adding a new real scalar (e.g. a software quad type) only requires a
//! handful of methods.

use std::fmt::{Debug, Display, LowerExp};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Real scalar usable as the value type of every matrix, factorization
/// and solver in the workspace.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + PartialOrd
    + PartialEq
    + Debug
    + Display
    + LowerExp
    + Default
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Lossy conversion from `f64` (used by generators and tolerances).
    fn from_f64(v: f64) -> Self;
    /// Lossy conversion to `f64` (used for reporting and norms).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Fused (or emulated) multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Machine epsilon of the type.
    fn epsilon() -> Self;
    /// Smallest positive normal value.
    fn min_positive() -> Self;
    /// `true` when the value is finite (not NaN/Inf).
    fn is_finite(self) -> bool;
    /// Larger of two values (NaN-propagating like `f64::max` is fine).
    fn max(self, other: Self) -> Self;
    /// Smaller of two values.
    fn min(self, other: Self) -> Self;
    /// Raw bit pattern widened to 64 bits; used by the atomic-accumulate
    /// helpers in `javelin-sync`.
    fn to_bits64(self) -> u64;
    /// Inverse of [`Scalar::to_bits64`].
    fn from_bits64(bits: u64) -> Self;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        // Plain `a*b+c` keeps results bit-identical between serial and
        // parallel paths on every target; hardware FMA contraction is not
        // guaranteed by rustc anyway.
        self * a + b
    }
    #[inline(always)]
    fn epsilon() -> Self {
        f64::EPSILON
    }
    #[inline(always)]
    fn min_positive() -> Self {
        f64::MIN_POSITIVE
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f64::min(self, other)
    }
    #[inline(always)]
    fn to_bits64(self) -> u64 {
        self.to_bits()
    }
    #[inline(always)]
    fn from_bits64(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        self * a + b
    }
    #[inline(always)]
    fn epsilon() -> Self {
        f32::EPSILON
    }
    #[inline(always)]
    fn min_positive() -> Self {
        f32::MIN_POSITIVE
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f32::min(self, other)
    }
    #[inline(always)]
    fn to_bits64(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline(always)]
    fn from_bits64(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>(v: f64) {
        let x = T::from_f64(v);
        assert!((x.to_f64() - v).abs() < 1e-6 * v.abs().max(1.0));
        assert_eq!(T::from_bits64(x.to_bits64()).to_f64(), x.to_f64());
    }

    #[test]
    fn f64_roundtrips() {
        for v in [0.0, 1.0, -2.5, 3.25e10, -1.0e-8] {
            roundtrip::<f64>(v);
        }
    }

    #[test]
    fn f32_roundtrips() {
        for v in [0.0, 1.0, -2.5, 3.25e4, -1.0e-6] {
            roundtrip::<f32>(v);
        }
    }

    #[test]
    fn constants_behave() {
        assert_eq!(f64::ZERO + f64::ONE, 1.0);
        assert_eq!(f32::ZERO + f32::ONE, 1.0);
        assert!(f64::epsilon() > 0.0);
        assert!(f32::epsilon() > f32::from_f64(f64::epsilon().to_f64()));
    }

    #[test]
    fn minmax_and_abs() {
        assert_eq!(Scalar::max(2.0f64, 3.0), 3.0);
        assert_eq!(Scalar::min(2.0f64, 3.0), 2.0);
        assert_eq!(Scalar::abs(-4.0f32), 4.0);
        assert!(Scalar::is_finite(1.0f64));
        assert!(!Scalar::is_finite(f64::NAN));
        assert!(!Scalar::is_finite(f64::INFINITY));
    }

    #[test]
    fn mul_add_matches_plain() {
        let (a, b, c) = (1.5f64, 2.5, -0.75);
        assert_eq!(a.mul_add(b, c), a * b + c);
    }
}
