//! Permutations.
//!
//! Every Javelin preprocessing step — Dulmage–Mendelsohn, fill-reducing
//! orderings, and the level-set ordering itself — is expressed as a
//! [`Perm`]. The convention throughout the workspace is **new-to-old**:
//! `perm.new_to_old()[i]` names the *old* index that lands at *new*
//! position `i`. Applying a permutation to a vector therefore reads
//! `y[i] = x[p[i]]`, and the symmetrically permuted matrix is
//! `B[i,j] = A[p[i], p[j]]`.

use crate::error::SparseError;
use crate::scalar::Scalar;

/// A permutation of `0..n` with its inverse precomputed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Perm {
    new_to_old: Vec<usize>,
    old_to_new: Vec<usize>,
}

impl Perm {
    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        let v: Vec<usize> = (0..n).collect();
        Perm {
            new_to_old: v.clone(),
            old_to_new: v,
        }
    }

    /// Builds a permutation from its new-to-old form, validating that it
    /// is a bijection on `0..n`.
    ///
    /// # Errors
    /// [`SparseError::InvalidPermutation`] when an index is out of range
    /// or repeated.
    pub fn from_new_to_old(new_to_old: Vec<usize>) -> Result<Self, SparseError> {
        let n = new_to_old.len();
        let mut old_to_new = vec![usize::MAX; n];
        for (newi, &oldi) in new_to_old.iter().enumerate() {
            if oldi >= n {
                return Err(SparseError::InvalidPermutation(format!(
                    "index {oldi} out of range for permutation of length {n}"
                )));
            }
            if old_to_new[oldi] != usize::MAX {
                return Err(SparseError::InvalidPermutation(format!(
                    "index {oldi} appears more than once"
                )));
            }
            old_to_new[oldi] = newi;
        }
        Ok(Perm {
            new_to_old,
            old_to_new,
        })
    }

    /// Builds a permutation from its old-to-new form.
    ///
    /// # Errors
    /// [`SparseError::InvalidPermutation`] when not a bijection.
    pub fn from_old_to_new(old_to_new: Vec<usize>) -> Result<Self, SparseError> {
        let p = Perm::from_new_to_old(old_to_new)?;
        Ok(p.inverse())
    }

    /// Length of the permuted index range.
    pub fn len(&self) -> usize {
        self.new_to_old.len()
    }

    /// `true` for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.new_to_old.is_empty()
    }

    /// `true` when this is the identity.
    pub fn is_identity(&self) -> bool {
        self.new_to_old.iter().enumerate().all(|(i, &p)| i == p)
    }

    /// The new-to-old mapping: `new_to_old[new] = old`.
    #[inline(always)]
    pub fn new_to_old(&self) -> &[usize] {
        &self.new_to_old
    }

    /// The old-to-new mapping: `old_to_new[old] = new`.
    #[inline(always)]
    pub fn old_to_new(&self) -> &[usize] {
        &self.old_to_new
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Perm {
        Perm {
            new_to_old: self.old_to_new.clone(),
            old_to_new: self.new_to_old.clone(),
        }
    }

    /// Composition `self ∘ other`: applying the result is equivalent to
    /// applying `other` first, then `self`.
    ///
    /// In new-to-old form: `r[i] = other[self[i]]`.
    ///
    /// # Panics
    /// When lengths differ.
    pub fn compose(&self, other: &Perm) -> Perm {
        assert_eq!(self.len(), other.len(), "compose: length mismatch");
        let new_to_old: Vec<usize> = self
            .new_to_old
            .iter()
            .map(|&mid| other.new_to_old[mid])
            .collect();
        Perm::from_new_to_old(new_to_old).expect("composition of bijections is a bijection")
    }

    /// Applies the permutation to a vector: `out[i] = x[new_to_old[i]]`.
    ///
    /// # Panics
    /// When `x.len() != self.len()`.
    pub fn apply_vec<T: Scalar>(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.len(), "apply_vec: length mismatch");
        self.new_to_old.iter().map(|&o| x[o]).collect()
    }

    /// Applies the inverse permutation: `out[new_to_old[i]] = x[i]`.
    ///
    /// # Panics
    /// When `x.len() != self.len()`.
    pub fn apply_inv_vec<T: Scalar>(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.len(), "apply_inv_vec: length mismatch");
        let mut out = vec![T::ZERO; x.len()];
        for (i, &o) in self.new_to_old.iter().enumerate() {
            out[o] = x[i];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_properties() {
        let p = Perm::identity(5);
        assert!(p.is_identity());
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        assert_eq!(p.inverse(), p);
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(p.apply_vec(&x), x);
    }

    #[test]
    fn validation() {
        assert!(Perm::from_new_to_old(vec![0, 0]).is_err());
        assert!(Perm::from_new_to_old(vec![0, 5]).is_err());
        assert!(Perm::from_new_to_old(vec![2, 0, 1]).is_ok());
        assert!(Perm::from_new_to_old(vec![]).is_ok());
    }

    #[test]
    fn inverse_roundtrip() {
        let p = Perm::from_new_to_old(vec![2, 0, 3, 1]).unwrap();
        let inv = p.inverse();
        assert!(p.compose(&inv).is_identity());
        assert!(inv.compose(&p).is_identity());
        let x = vec![10.0, 20.0, 30.0, 40.0];
        let y = p.apply_vec(&x);
        assert_eq!(y, vec![30.0, 10.0, 40.0, 20.0]);
        assert_eq!(p.apply_inv_vec(&y), x);
    }

    #[test]
    fn old_to_new_consistency() {
        let p = Perm::from_new_to_old(vec![2, 0, 1]).unwrap();
        for newi in 0..3 {
            assert_eq!(p.old_to_new()[p.new_to_old()[newi]], newi);
        }
        let q = Perm::from_old_to_new(vec![2, 0, 1]).unwrap();
        assert_eq!(q.old_to_new(), &[2, 0, 1]);
    }

    #[test]
    fn compose_applies_right_then_left() {
        // other: reverse, self: rotate
        let rev = Perm::from_new_to_old(vec![2, 1, 0]).unwrap();
        let rot = Perm::from_new_to_old(vec![1, 2, 0]).unwrap();
        let c = rot.compose(&rev);
        let x = vec![1.0, 2.0, 3.0];
        // rev first: [3,2,1]; then rot: [2,1,3]
        assert_eq!(c.apply_vec(&x), rot.apply_vec(&rev.apply_vec(&x)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_perm(max_n: usize) -> impl Strategy<Value = Perm> {
        (1..max_n).prop_flat_map(|n| {
            Just((0..n).collect::<Vec<usize>>())
                .prop_shuffle()
                .prop_map(|v| Perm::from_new_to_old(v).unwrap())
        })
    }

    proptest! {
        #[test]
        fn inverse_composes_to_identity(p in arb_perm(64)) {
            prop_assert!(p.compose(&p.inverse()).is_identity());
            prop_assert!(p.inverse().compose(&p).is_identity());
        }

        #[test]
        fn apply_then_apply_inv_roundtrips(p in arb_perm(64)) {
            let x: Vec<f64> = (0..p.len()).map(|i| i as f64).collect();
            let y = p.apply_vec(&x);
            prop_assert_eq!(p.apply_inv_vec(&y), x);
        }

        #[test]
        fn compose_is_associative(n in 2usize..32) {
            let mk = |seed: u64| {
                let mut v: Vec<usize> = (0..n).collect();
                // Cheap deterministic shuffle.
                let mut s = seed;
                for i in (1..n).rev() {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let j = (s >> 33) as usize % (i + 1);
                    v.swap(i, j);
                }
                Perm::from_new_to_old(v).unwrap()
            };
            let (a, b, c) = (mk(1), mk(2), mk(3));
            prop_assert_eq!(a.compose(&b).compose(&c), a.compose(&b.compose(&c)));
        }
    }
}
