//! Pattern-only (structural) operations.
//!
//! Level scheduling operates on the *sparsity pattern* of the lower
//! triangle — either `lower(A)` or `lower(A + Aᵀ)` (Javelin §III). These
//! helpers materialize those patterns without touching values, using the
//! same CSR layout (a `SparsityPattern` is a value-less CSR).

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;

/// A value-less CSR structure: the sparsity pattern of a matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsityPattern {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colidx: Vec<usize>,
}

impl SparsityPattern {
    /// Builds a pattern from raw arrays. Debug builds validate.
    pub fn from_raw(nrows: usize, ncols: usize, rowptr: Vec<usize>, colidx: Vec<usize>) -> Self {
        debug_assert_eq!(rowptr.len(), nrows + 1);
        debug_assert_eq!(*rowptr.last().unwrap(), colidx.len());
        debug_assert!(rowptr.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!((0..nrows).all(|r| {
            let row = &colidx[rowptr[r]..rowptr[r + 1]];
            row.iter().all(|&c| c < ncols) && row.windows(2).all(|w| w[0] < w[1])
        }));
        SparsityPattern {
            nrows,
            ncols,
            rowptr,
            colidx,
        }
    }

    /// Pattern of an existing matrix.
    pub fn of<T: Scalar>(a: &CsrMatrix<T>) -> Self {
        SparsityPattern {
            nrows: a.nrows(),
            ncols: a.ncols(),
            rowptr: a.rowptr().to_vec(),
            colidx: a.colidx().to_vec(),
        }
    }

    /// Number of rows.
    #[inline(always)]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of structural entries.
    #[inline(always)]
    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }

    /// Row pointer array.
    #[inline(always)]
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// Column index array.
    #[inline(always)]
    pub fn colidx(&self) -> &[usize] {
        &self.colidx
    }

    /// Column indices of one row.
    #[inline(always)]
    pub fn row_cols(&self, row: usize) -> &[usize] {
        &self.colidx[self.rowptr[row]..self.rowptr[row + 1]]
    }

    /// Materializes the pattern as a CSR matrix with all values `ONE`.
    pub fn to_csr<T: Scalar>(&self) -> CsrMatrix<T> {
        CsrMatrix::from_raw_unchecked(
            self.nrows,
            self.ncols,
            self.rowptr.clone(),
            self.colidx.clone(),
            vec![T::ONE; self.colidx.len()],
        )
    }

    /// 64-bit structural fingerprint of this pattern (see
    /// [`pattern_fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        fingerprint_parts(self.nrows, self.ncols, &self.rowptr, &self.colidx)
    }
}

// ---------------------------------------------------------------------
// Structural fingerprints — the cache keys of the solve service.
//
// A pattern-keyed cache (the `javelin-service` symbolic LRU) needs a
// cheap, deterministic, allocation-free digest of "same sparsity
// structure". The hash below is a word-wise FNV-1a variant with a
// splitmix64 finalizer: one multiply per index word, good dispersion
// for equal-length integer streams, and no dependencies. It is a *fast
// filter*, not a proof — collisions are possible (and unit-tested for
// at the cache layer), so any consumer must verify the full pattern on
// a fingerprint match before reusing cached analysis.
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// splitmix64 finalizer: full-avalanche mixing of the running hash.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Incremental word hasher behind the fingerprint functions (word-wise
/// FNV-1a core + `mix64` finalizer).
#[derive(Debug, Clone, Copy)]
pub struct FingerprintHasher {
    state: u64,
}

impl FingerprintHasher {
    /// Fresh hasher (FNV-1a offset basis).
    pub fn new() -> Self {
        FingerprintHasher { state: FNV_OFFSET }
    }

    /// Absorbs one 64-bit word.
    #[inline]
    pub fn write(&mut self, word: u64) {
        self.state = (self.state ^ word).wrapping_mul(FNV_PRIME);
    }

    /// Absorbs a slice of index words.
    #[inline]
    pub fn write_usizes(&mut self, words: &[usize]) {
        for &w in words {
            self.write(w as u64);
        }
    }

    /// Finalized 64-bit digest.
    #[inline]
    pub fn finish(&self) -> u64 {
        mix64(self.state)
    }
}

impl Default for FingerprintHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// 64-bit fingerprint of a sparsity structure given as raw CSR arrays:
/// dimensions, row pointers and column indices (values ignored).
/// Allocation-free, deterministic across runs and platforms.
pub fn fingerprint_parts(nrows: usize, ncols: usize, rowptr: &[usize], colidx: &[usize]) -> u64 {
    let mut h = FingerprintHasher::new();
    h.write(nrows as u64);
    h.write(ncols as u64);
    h.write_usizes(rowptr);
    h.write_usizes(colidx);
    h.finish()
}

/// 64-bit *structural* fingerprint of a matrix: a digest of its
/// dimensions and CSR index arrays, independent of the stored values.
/// Two matrices with equal fingerprints *probably* share a sparsity
/// pattern — callers caching per-pattern state must still verify the
/// actual index arrays on a match (see module comment).
pub fn pattern_fingerprint<T: Scalar>(a: &CsrMatrix<T>) -> u64 {
    fingerprint_parts(a.nrows(), a.ncols(), a.rowptr(), a.colidx())
}

/// 64-bit fingerprint of a value slice (bit-exact: hashes each value's
/// IEEE bits, so `-0.0 ≠ 0.0` and NaN payloads are distinguished).
/// Paired with [`pattern_fingerprint`] this keys "same matrix, same
/// values" — the coalescing group key of the solve service.
pub fn value_fingerprint<T: Scalar>(vals: &[T]) -> u64 {
    let mut h = FingerprintHasher::new();
    h.write(vals.len() as u64);
    for v in vals {
        h.write(v.to_f64().to_bits());
    }
    h.finish()
}

/// Which triangular pattern drives level scheduling — the paper's
/// `lower(A)` vs `lower(A + Aᵀ)` option (§III, §VII "Levels and lower
/// size").
///
/// `lower(A+Aᵀ)` is the default: it is required by the Segmented-Rows
/// lower stage (same-level columns become mutually independent) and
/// enables tiling for the triangular solve. `lower(A)` generally yields
/// more/larger levels for nonsymmetric patterns but restricts the lower
/// stage to Even-Rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LevelPattern {
    /// Use the strictly-lower pattern of `A + Aᵀ` (symmetrized).
    #[default]
    LowerSymmetrized,
    /// Use the strictly-lower pattern of `A` alone.
    LowerA,
}

/// Strictly-lower-triangular pattern of `A` (no diagonal).
pub fn lower_pattern<T: Scalar>(a: &CsrMatrix<T>) -> SparsityPattern {
    let n = a.nrows();
    let mut rowptr = vec![0usize; n + 1];
    let mut colidx = Vec::new();
    for r in 0..n {
        for &c in a.row_cols(r) {
            if c >= r {
                break; // columns are sorted
            }
            colidx.push(c);
        }
        rowptr[r + 1] = colidx.len();
    }
    SparsityPattern::from_raw(n, a.ncols(), rowptr, colidx)
}

/// Strictly-lower-triangular pattern of `A + Aᵀ`.
///
/// Entry `(i,j)` with `j < i` is present when either `A[i,j]` or
/// `A[j,i]` is stored.
pub fn lower_symmetrized_pattern<T: Scalar>(a: &CsrMatrix<T>) -> SparsityPattern {
    assert!(
        a.is_square(),
        "symmetrized pattern requires a square matrix"
    );
    let n = a.nrows();
    // Count contributions: (i,j) from lower(A) and (j,i) mirrored from
    // upper(A).
    let mut counts = vec![0usize; n];
    for r in 0..n {
        for &c in a.row_cols(r) {
            use std::cmp::Ordering;
            match c.cmp(&r) {
                Ordering::Less => counts[r] += 1,
                Ordering::Greater => counts[c] += 1,
                Ordering::Equal => {}
            }
        }
    }
    let mut rowptr = vec![0usize; n + 1];
    for i in 0..n {
        rowptr[i + 1] = rowptr[i] + counts[i];
    }
    let mut colidx = vec![0usize; rowptr[n]];
    let mut next = rowptr.clone();
    for r in 0..n {
        for &c in a.row_cols(r) {
            use std::cmp::Ordering;
            match c.cmp(&r) {
                Ordering::Less => {
                    colidx[next[r]] = c;
                    next[r] += 1;
                }
                Ordering::Greater => {
                    colidx[next[c]] = r;
                    next[c] += 1;
                }
                Ordering::Equal => {}
            }
        }
    }
    // Each target row receives its lower(A) entries first (sorted) then
    // mirrored entries in ascending source row order; merge-sort and
    // dedup per row.
    let mut out_colidx = Vec::with_capacity(colidx.len());
    let mut out_rowptr = vec![0usize; n + 1];
    let mut scratch: Vec<usize> = Vec::new();
    for r in 0..n {
        scratch.clear();
        scratch.extend_from_slice(&colidx[rowptr[r]..rowptr[r + 1]]);
        scratch.sort_unstable();
        scratch.dedup();
        out_colidx.extend_from_slice(&scratch);
        out_rowptr[r + 1] = out_colidx.len();
    }
    SparsityPattern::from_raw(n, n, out_rowptr, out_colidx)
}

/// Dispatches on [`LevelPattern`].
pub fn level_pattern<T: Scalar>(a: &CsrMatrix<T>, which: LevelPattern) -> SparsityPattern {
    match which {
        LevelPattern::LowerSymmetrized => lower_symmetrized_pattern(a),
        LevelPattern::LowerA => lower_pattern(a),
    }
}

/// Strictly-upper-triangular pattern of `A` (used to schedule backward
/// triangular solves).
pub fn upper_pattern<T: Scalar>(a: &CsrMatrix<T>) -> SparsityPattern {
    let n = a.nrows();
    let mut rowptr = vec![0usize; n + 1];
    let mut colidx = Vec::new();
    for r in 0..n {
        for &c in a.row_cols(r) {
            if c > r {
                colidx.push(c);
            }
        }
        rowptr[r + 1] = colidx.len();
    }
    SparsityPattern::from_raw(n, a.ncols(), rowptr, colidx)
}

/// Strictly-lower part of an existing pattern.
pub fn lower_of_pattern(p: &SparsityPattern) -> SparsityPattern {
    let n = p.nrows();
    let mut rowptr = vec![0usize; n + 1];
    let mut colidx = Vec::new();
    for r in 0..n {
        for &c in p.row_cols(r) {
            if c >= r {
                break;
            }
            colidx.push(c);
        }
        rowptr[r + 1] = colidx.len();
    }
    SparsityPattern::from_raw(n, p.ncols(), rowptr, colidx)
}

/// Strictly-upper part of an existing pattern.
pub fn upper_of_pattern(p: &SparsityPattern) -> SparsityPattern {
    let n = p.nrows();
    let mut rowptr = vec![0usize; n + 1];
    let mut colidx = Vec::new();
    for r in 0..n {
        for &c in p.row_cols(r) {
            if c > r {
                colidx.push(c);
            }
        }
        rowptr[r + 1] = colidx.len();
    }
    SparsityPattern::from_raw(n, p.ncols(), rowptr, colidx)
}

/// Strictly-lower part of the symmetrization `P + Pᵀ` of a pattern.
pub fn lower_symmetrized_of_pattern(p: &SparsityPattern) -> SparsityPattern {
    assert_eq!(
        p.nrows(),
        p.ncols(),
        "symmetrization requires a square pattern"
    );
    let n = p.nrows();
    let mut rows: Vec<Vec<usize>> = vec![Vec::new(); n];
    for r in 0..n {
        for &c in p.row_cols(r) {
            use std::cmp::Ordering;
            match c.cmp(&r) {
                Ordering::Less => rows[r].push(c),
                Ordering::Greater => rows[c].push(r),
                Ordering::Equal => {}
            }
        }
    }
    let mut rowptr = vec![0usize; n + 1];
    let mut colidx = Vec::new();
    for (r, row) in rows.iter_mut().enumerate() {
        row.sort_unstable();
        row.dedup();
        colidx.extend_from_slice(row);
        rowptr[r + 1] = colidx.len();
    }
    SparsityPattern::from_raw(n, n, rowptr, colidx)
}

/// Dispatches on [`LevelPattern`] for value-less patterns.
pub fn level_pattern_of(p: &SparsityPattern, which: LevelPattern) -> SparsityPattern {
    match which {
        LevelPattern::LowerSymmetrized => lower_symmetrized_of_pattern(p),
        LevelPattern::LowerA => lower_of_pattern(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn nonsym() -> CsrMatrix<f64> {
        // [ 1 . 2 ]
        // [ . 3 . ]
        // [ . 4 5 ]
        let mut coo = CooMatrix::new(3, 3);
        for (r, c, v) in [
            (0, 0, 1.0),
            (0, 2, 2.0),
            (1, 1, 3.0),
            (2, 1, 4.0),
            (2, 2, 5.0),
        ] {
            coo.push(r, c, v).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn lower_pattern_strict() {
        let a = nonsym();
        let l = lower_pattern(&a);
        assert_eq!(l.nnz(), 1);
        assert_eq!(l.row_cols(2), &[1]);
        assert_eq!(l.row_cols(0), &[] as &[usize]);
    }

    #[test]
    fn upper_pattern_strict() {
        let a = nonsym();
        let u = upper_pattern(&a);
        assert_eq!(u.nnz(), 1);
        assert_eq!(u.row_cols(0), &[2]);
    }

    #[test]
    fn symmetrized_includes_mirror() {
        let a = nonsym();
        let ls = lower_symmetrized_pattern(&a);
        // lower(A+A^T): (2,1) from A, (2,0) mirrored from (0,2).
        assert_eq!(ls.nnz(), 2);
        assert_eq!(ls.row_cols(2), &[0, 1]);
    }

    #[test]
    fn symmetrized_equals_lower_for_symmetric_pattern() {
        let mut coo = CooMatrix::new(3, 3);
        for (r, c) in [(0, 0), (0, 1), (1, 0), (1, 1), (1, 2), (2, 1), (2, 2)] {
            coo.push(r, c, 1.0).unwrap();
        }
        let a = coo.to_csr();
        assert!(a.is_pattern_symmetric());
        assert_eq!(lower_pattern(&a), lower_symmetrized_pattern(&a));
    }

    #[test]
    fn symmetrized_dedups_two_sided_entries() {
        // (1,0) and (0,1) both present: lower sym must hold (1,0) once.
        let mut coo = CooMatrix::new(2, 2);
        for (r, c) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            coo.push(r, c, 1.0).unwrap();
        }
        let a = coo.to_csr();
        let ls = lower_symmetrized_pattern(&a);
        assert_eq!(ls.nnz(), 1);
        assert_eq!(ls.row_cols(1), &[0]);
    }

    #[test]
    fn pattern_of_and_to_csr() {
        let a = nonsym();
        let p = SparsityPattern::of(&a);
        assert_eq!(p.nnz(), a.nnz());
        let ones: CsrMatrix<f64> = p.to_csr();
        assert_eq!(ones.get(0, 2), Some(1.0));
        assert_eq!(ones.nnz(), a.nnz());
    }

    #[test]
    fn level_pattern_dispatch() {
        let a = nonsym();
        assert_eq!(level_pattern(&a, LevelPattern::LowerA), lower_pattern(&a));
        assert_eq!(
            level_pattern(&a, LevelPattern::LowerSymmetrized),
            lower_symmetrized_pattern(&a)
        );
    }

    #[test]
    fn pattern_level_helpers_match_matrix_versions() {
        let a = nonsym();
        let p = SparsityPattern::of(&a);
        assert_eq!(lower_of_pattern(&p), lower_pattern(&a));
        assert_eq!(upper_of_pattern(&p), upper_pattern(&a));
        assert_eq!(
            lower_symmetrized_of_pattern(&p),
            lower_symmetrized_pattern(&a)
        );
        assert_eq!(
            level_pattern_of(&p, LevelPattern::LowerA),
            lower_pattern(&a)
        );
        assert_eq!(
            level_pattern_of(&p, LevelPattern::LowerSymmetrized),
            lower_symmetrized_pattern(&a)
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::coo::CooMatrix;
    use proptest::prelude::*;

    fn arb_square(n_max: usize) -> impl Strategy<Value = CsrMatrix<f64>> {
        (2..n_max).prop_flat_map(|n| {
            proptest::collection::vec((0..n, 0..n, -4.0..4.0f64), 1..n * 4).prop_map(move |trips| {
                let mut coo = CooMatrix::new(n, n);
                for (r, c, v) in trips {
                    coo.push(r, c, v).unwrap();
                }
                coo.to_csr()
            })
        })
    }

    #[test]
    fn fingerprint_ignores_values_and_sees_structure() {
        let mut coo = CooMatrix::new(3, 3);
        for i in 0..3 {
            coo.push(i, i, 2.0 + i as f64).unwrap();
        }
        coo.push(0, 2, -1.0).unwrap();
        let a = coo.to_csr();
        // Same pattern, different values → same structural fingerprint,
        // different value fingerprint.
        let a2 = a.map_values(|v| v * 3.5);
        assert_eq!(pattern_fingerprint(&a), pattern_fingerprint(&a2));
        assert_ne!(value_fingerprint(a.vals()), value_fingerprint(a2.vals()));
        // Value fingerprints are bit-exact: -0.0 and 0.0 differ.
        assert_ne!(value_fingerprint(&[0.0f64]), value_fingerprint(&[-0.0f64]));
        // Different structure → different fingerprint (with overwhelming
        // probability; these fixed fixtures are part of the contract).
        let mut coo3 = CooMatrix::new(3, 3);
        for i in 0..3 {
            coo3.push(i, i, 1.0).unwrap();
        }
        coo3.push(2, 0, -1.0).unwrap();
        let b = coo3.to_csr();
        assert_ne!(pattern_fingerprint(&a), pattern_fingerprint(&b));
        // Dimensions participate: a 3×3 and a 4×4 all-diagonal pattern
        // must not collide even though the shared prefix matches.
        let d3 = SparsityPattern::from_raw(3, 3, vec![0, 1, 2, 3], vec![0, 1, 2]);
        let d4 = SparsityPattern::from_raw(4, 4, vec![0, 1, 2, 3, 4], vec![0, 1, 2, 3]);
        assert_ne!(d3.fingerprint(), d4.fingerprint());
        // And the pattern-level fingerprint agrees with the matrix-level
        // one.
        assert_eq!(
            SparsityPattern::of(&a).fingerprint(),
            pattern_fingerprint(&a)
        );
    }

    proptest! {
        #[test]
        fn fingerprint_is_deterministic_and_value_blind(a in arb_square(24)) {
            let fp1 = pattern_fingerprint(&a);
            let fp2 = pattern_fingerprint(&a.map_values(|v| v * 0.5 - 1.0));
            prop_assert_eq!(fp1, fp2);
            prop_assert_eq!(fp1, SparsityPattern::of(&a).fingerprint());
        }

        #[test]
        fn symmetrized_lower_is_superset_of_lower(a in arb_square(24)) {
            let l = lower_pattern(&a);
            let ls = lower_symmetrized_pattern(&a);
            for r in 0..a.nrows() {
                for &c in l.row_cols(r) {
                    prop_assert!(ls.row_cols(r).binary_search(&c).is_ok());
                }
            }
        }

        #[test]
        fn symmetrized_matches_explicit_aat(a in arb_square(24)) {
            // Reference: form A + A^T explicitly via COO and take lower.
            let n = a.nrows();
            let mut coo = CooMatrix::new(n, n);
            for (r, c, v) in a.iter() {
                coo.push(r, c, v).unwrap();
                coo.push(c, r, v).unwrap();
            }
            let aat = coo.to_csr();
            let expect = lower_pattern(&aat);
            let got = lower_symmetrized_pattern(&a);
            // Patterns agree (values may differ; we only compare structure).
            prop_assert_eq!(got.rowptr(), expect.rowptr());
            prop_assert_eq!(got.colidx(), expect.colidx());
        }
    }
}
