//! Dense-vector kernels used by the iterative solvers.
//!
//! Serial building blocks only; the parallel spmv/stri variants live in
//! `javelin-core` where they can use the shared thread pool.

use crate::scalar::Scalar;

/// Dot product `xᵀ·y`.
///
/// # Panics
/// When lengths differ.
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y.iter()).map(|(&a, &b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2<T: Scalar>(x: &[T]) -> T {
    dot(x, x).sqrt()
}

/// Infinity norm `‖x‖∞`.
pub fn norm_inf<T: Scalar>(x: &[T]) -> T {
    x.iter().fold(T::ZERO, |m, &v| m.max(v.abs()))
}

/// `y ← a·x + y`.
///
/// # Panics
/// When lengths differ.
pub fn axpy<T: Scalar>(a: T, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += a * xi;
    }
}

/// `y ← x + b·y` (the "xpby" update CG uses for direction vectors).
///
/// # Panics
/// When lengths differ.
pub fn xpby<T: Scalar>(x: &[T], b: T, y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "xpby: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi = xi + b * *yi;
    }
}

/// `x ← a·x`.
pub fn scale<T: Scalar>(a: T, x: &mut [T]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Copies `src` into `dst`.
///
/// # Panics
/// When lengths differ.
pub fn copy<T: Scalar>(src: &[T], dst: &mut [T]) {
    assert_eq!(src.len(), dst.len(), "copy: length mismatch");
    dst.copy_from_slice(src);
}

/// `out = x - y`.
///
/// # Panics
/// When lengths differ.
pub fn sub<T: Scalar>(x: &[T], y: &[T]) -> Vec<T> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y.iter()).map(|(&a, &b)| a - b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = vec![3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm2::<f64>(&[]), 0.0);
    }

    #[test]
    fn axpy_updates() {
        let x = vec![1.0, 2.0];
        let mut y = vec![10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0]);
    }

    #[test]
    fn xpby_updates() {
        let x = vec![1.0, 1.0];
        let mut y = vec![3.0, 5.0];
        xpby(&x, 2.0, &mut y);
        assert_eq!(y, vec![7.0, 11.0]);
    }

    #[test]
    fn scale_copy_sub() {
        let mut x = vec![1.0, -2.0];
        scale(3.0, &mut x);
        assert_eq!(x, vec![3.0, -6.0]);
        let mut y = vec![0.0; 2];
        copy(&x, &mut y);
        assert_eq!(y, x);
        assert_eq!(sub(&x, &y), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "dot: length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
