//! The width-generic **lane layer**: one kernel core for scalar and
//! panel execution paths.
//!
//! Every hot kernel in the workspace — the tiled spmv, the triangular
//! solve engines' row retirement, the batched Krylov drivers — operates
//! on a block of `k` right-hand-side *lanes* at once. Before this layer
//! existed each kernel carried two hand-maintained copies: a scalar
//! path and a dynamic-width panel path. A [`Lanes`] value collapses
//! them into one generic core:
//!
//! * [`FixedLanes<K>`](FixedLanes) — a zero-sized, const-generic width.
//!   Monomorphizing a kernel at `FixedLanes<1>` *is* the scalar path
//!   (every per-lane loop has compile-time trip count 1 and folds
//!   away); `FixedLanes<4>` / `FixedLanes<8>` give the compiler exact
//!   trip counts for its vectorizer — the SIMD panel kernels of the
//!   roadmap, for free.
//! * [`DynLanes`] — the runtime-width fallback for arbitrary `k`,
//!   running exactly the loops the fixed widths unroll. Bitwise, a
//!   column computed through `DynLanes(k)` is identical to the same
//!   column through any `FixedLanes<K>` instantiation: lane arithmetic
//!   is column-independent and entry-ordered, so only codegen changes,
//!   never results.
//!
//! The [`with_lanes!`](crate::with_lanes) macro is the single dispatch
//! point: `k ∈ {1, 4, 8}` routes to the monomorphized kernels,
//! everything else to the dynamic fallback.
//!
//! The layer also owns the two conventions the kernels share:
//!
//! * **Row-interleaved element access**: lane `c` of row `r` lives at
//!   [`Lanes::idx`]`(r, c) = r·k + c`, keeping a row's `k` lanes
//!   contiguous for the per-entry inner loops (the layout of the solve
//!   engines' `xbuf` and the spmv plan's panel partials).
//! * **Column chunking**: [`for_each_chunk`] walks lane ranges in
//!   blocks of at most [`LANE_CHUNK`] so accumulators stay in
//!   fixed-size stack arrays for any runtime width; for `FixedLanes<K>`
//!   with `K ≤ LANE_CHUNK` the walk collapses to a single
//!   constant-width block.
//!
//! On top sit [`LaneMask`] — the per-column masking vocabulary of the
//! lockstep batch solvers (a converged or broken-down lane freezes in
//! place; the panel never changes shape) — and the per-lane micro-ops
//! ([`lane_axpy`], [`lane_dot`], [`lane_scale`]) over row-interleaved
//! buffers. The micro-ops are the reference semantics for the
//! interleaved layout (pinned bitwise against the scalar path by this
//! module's tests) and the substrate for future interleaved solver
//! state; today's batch drivers keep their per-column state
//! column-major and use `vecops` per lane instead.

use crate::scalar::Scalar;
use std::ops::Range;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)] // core::arch intrinsics; see lanes/simd.rs module docs.
mod simd;

/// Columns per stack-resident accumulator block: the chunk width lane
/// kernels use so arbitrary dynamic widths run allocation-free. Fixed
/// widths `K ≤ LANE_CHUNK` run as one exact-width chunk.
pub const LANE_CHUNK: usize = 8;

/// A panel width, threaded through the kernel cores as a value whose
/// type decides codegen: const-generic [`FixedLanes`] monomorphizes the
/// per-lane loops, [`DynLanes`] keeps them runtime.
///
/// The contract every kernel relies on: [`Lanes::width`] is pure (the
/// same value on every call), and lane arithmetic routed through
/// [`Lanes::idx`] touches lane `c` of a row independently of every
/// other lane — which is why column `c` of any lane-generic kernel is
/// bit-identical across `Lanes` implementations.
pub trait Lanes: Copy + Send + Sync + std::fmt::Debug {
    /// Compile-time width when monomorphized; `None` for [`DynLanes`].
    const FIXED: Option<usize>;

    /// The panel width `k` (≥ 1).
    fn width(&self) -> usize;

    /// Row-interleaved element index: lane `c` of row `r` at `r·k + c`.
    #[inline(always)]
    fn idx(&self, r: usize, c: usize) -> usize {
        r * self.width() + c
    }
}

/// A compile-time panel width (see module docs). `FixedLanes<1>` is the
/// scalar path; `FixedLanes<4>` / `FixedLanes<8>` are the SIMD-friendly
/// monomorphizations [`with_lanes!`](crate::with_lanes) dispatches to.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FixedLanes<const K: usize>;

impl<const K: usize> Lanes for FixedLanes<K> {
    const FIXED: Option<usize> = Some(K);

    #[inline(always)]
    fn width(&self) -> usize {
        K
    }
}

/// A runtime panel width — the fallback instantiation for widths the
/// dispatch table does not monomorphize. Bitwise-identical per column
/// to every fixed-width instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynLanes(pub usize);

impl Lanes for DynLanes {
    const FIXED: Option<usize> = None;

    #[inline(always)]
    fn width(&self) -> usize {
        self.0
    }
}

/// Dispatches a width-generic kernel: binds `$lanes` to the
/// monomorphized [`FixedLanes`] for `k ∈ {1, 4, 8}` and to
/// [`DynLanes`]`(k)` otherwise, then evaluates `$body` — the single
/// dispatch table between the scalar path (`K = 1`), the SIMD panel
/// kernels (`K = 4, 8`) and the dynamic fallback.
///
/// ```
/// use javelin_sparse::lanes::Lanes;
/// use javelin_sparse::with_lanes;
///
/// fn width_through_dispatch(k: usize) -> usize {
///     with_lanes!(k, lanes => lanes.width())
/// }
/// assert_eq!(width_through_dispatch(4), 4);
/// assert_eq!(width_through_dispatch(5), 5);
/// ```
#[macro_export]
macro_rules! with_lanes {
    ($k:expr, $lanes:ident => $body:expr) => {{
        match $k {
            1 => {
                let $lanes = $crate::lanes::FixedLanes::<1>;
                $body
            }
            4 => {
                let $lanes = $crate::lanes::FixedLanes::<4>;
                $body
            }
            8 => {
                let $lanes = $crate::lanes::FixedLanes::<8>;
                $body
            }
            k => {
                let $lanes = $crate::lanes::DynLanes(k);
                $body
            }
        }
    }};
}

/// Walks the lane range `cols` in blocks `(c0, cw)` of at most
/// [`LANE_CHUNK`] lanes — the accumulator-sizing discipline of every
/// lane kernel. For a full fixed-width range (`0..K`, `K ≤ LANE_CHUNK`)
/// this is a single constant-width block after inlining.
#[inline(always)]
pub fn for_each_chunk(cols: Range<usize>, mut f: impl FnMut(usize, usize)) {
    let mut c0 = cols.start;
    while c0 < cols.end {
        let cw = (cols.end - c0).min(LANE_CHUNK);
        f(c0, cw);
        c0 += cw;
    }
}

/// Per-lane axpy over row-interleaved buffers:
/// `y[r·k + c] += alpha[c] · x[r·k + c]` for every row and lane.
/// Lane `c` sees exactly the scalar `vecops::axpy` operation order.
pub fn lane_axpy<T: Scalar, L: Lanes>(lanes: L, alpha: &[T], x: &[T], y: &mut [T]) {
    let k = lanes.width();
    debug_assert_eq!(alpha.len(), k, "lane_axpy: alpha length");
    debug_assert_eq!(x.len(), y.len(), "lane_axpy: buffer lengths");
    debug_assert_eq!(x.len() % k.max(1), 0, "lane_axpy: ragged buffer");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd::axpy::<T, L>(alpha, x, y) {
        return;
    }
    for (r, yrow) in y.chunks_exact_mut(k).enumerate() {
        for c in 0..k {
            yrow[c] += alpha[c] * x[lanes.idx(r, c)];
        }
    }
}

/// Per-lane fused negative multiply-add over row-interleaved buffers:
/// `y[r·k + c] -= l[c] · x[r·k + c]` for every row and lane — the
/// elimination inner-loop update `a[r,j] -= l·u[c,j]` with per-lane
/// multipliers. "Fused" refers to the one-pass micro-op shape, **not**
/// to hardware FMA: like [`Scalar::mul_add`], both the scalar body and
/// the SIMD paths compute multiply-then-subtract in two rounded steps,
/// so every lane stays bit-identical to the scalar kernels.
pub fn lane_fnma<T: Scalar, L: Lanes>(lanes: L, l: &[T], x: &[T], y: &mut [T]) {
    let k = lanes.width();
    debug_assert_eq!(l.len(), k, "lane_fnma: multiplier length");
    debug_assert_eq!(x.len(), y.len(), "lane_fnma: buffer lengths");
    debug_assert_eq!(x.len() % k.max(1), 0, "lane_fnma: ragged buffer");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd::fnma::<T, L>(l, x, y) {
        return;
    }
    for (r, yrow) in y.chunks_exact_mut(k).enumerate() {
        for c in 0..k {
            yrow[c] -= l[c] * x[lanes.idx(r, c)];
        }
    }
}

/// Per-lane dot products over row-interleaved buffers:
/// `out[c] = Σ_r x[r·k + c] · y[r·k + c]`. Lane `c` accumulates in row
/// order — the scalar `vecops::dot` order.
pub fn lane_dot<T: Scalar, L: Lanes>(lanes: L, x: &[T], y: &[T], out: &mut [T]) {
    let k = lanes.width();
    debug_assert_eq!(out.len(), k, "lane_dot: out length");
    debug_assert_eq!(x.len(), y.len(), "lane_dot: buffer lengths");
    debug_assert_eq!(x.len() % k.max(1), 0, "lane_dot: ragged buffer");
    out.fill(T::ZERO);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd::dot::<T, L>(x, y, out) {
        return;
    }
    for (xrow, yrow) in x.chunks_exact(k).zip(y.chunks_exact(k)) {
        for c in 0..k {
            out[c] += xrow[c] * yrow[c];
        }
    }
}

/// Per-lane scaling over a row-interleaved buffer:
/// `x[r·k + c] *= alpha[c]`.
pub fn lane_scale<T: Scalar, L: Lanes>(lanes: L, alpha: &[T], x: &mut [T]) {
    let k = lanes.width();
    debug_assert_eq!(alpha.len(), k, "lane_scale: alpha length");
    debug_assert_eq!(x.len() % k.max(1), 0, "lane_scale: ragged buffer");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd::scale::<T, L>(alpha, x) {
        return;
    }
    for xrow in x.chunks_exact_mut(k) {
        for c in 0..k {
            xrow[c] *= alpha[c];
        }
    }
}

/// Lane is still iterating.
pub const LANE_ACTIVE: u8 = 0;
/// Lane met its convergence target (result frozen in place).
pub const LANE_DONE: u8 = 1;
/// Lane hit a breakdown (result frozen where the scalar solver would
/// have returned).
pub const LANE_HALTED: u8 = 2;
/// Lane finished a restart cycle and waits, masked, for the panel's
/// next shared boundary (lockstep-restart GMRES).
pub const LANE_PENDING: u8 = 3;

/// Per-column masking state of a lockstep batch solve: each lane is
/// [`LANE_ACTIVE`], [`LANE_DONE`], [`LANE_HALTED`] or [`LANE_PENDING`].
/// Masked lanes keep their panel slot — the shared panel applies never
/// change shape — so freezing one lane cannot perturb a bit of its
/// neighbours.
#[derive(Debug, Clone, Default)]
pub struct LaneMask {
    state: Vec<u8>,
}

impl LaneMask {
    /// Resets to `k` lanes, all [`LANE_ACTIVE`] (grow-only storage).
    pub fn reset(&mut self, k: usize) {
        self.state.clear();
        self.state.resize(k, LANE_ACTIVE);
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// `true` when the mask covers zero lanes.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// Lane `c`'s state.
    #[inline(always)]
    pub fn get(&self, c: usize) -> u8 {
        self.state[c]
    }

    /// Sets lane `c`'s state.
    #[inline(always)]
    pub fn set(&mut self, c: usize, s: u8) {
        self.state[c] = s;
    }

    /// `true` while lane `c` is [`LANE_ACTIVE`].
    #[inline(always)]
    pub fn is_active(&self, c: usize) -> bool {
        self.state[c] == LANE_ACTIVE
    }

    /// `true` while lane `c` is in state `s`.
    #[inline(always)]
    pub fn is(&self, c: usize, s: u8) -> bool {
        self.state[c] == s
    }

    /// `true` while any lane is still [`LANE_ACTIVE`].
    pub fn any_active(&self) -> bool {
        self.state.contains(&LANE_ACTIVE)
    }

    /// `true` while any lane is in state `s`.
    pub fn any(&self, s: u8) -> bool {
        self.state.contains(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_dyn_report_the_same_geometry() {
        let f = FixedLanes::<4>;
        let d = DynLanes(4);
        assert_eq!(f.width(), d.width());
        assert_eq!(<FixedLanes<4> as Lanes>::FIXED, Some(4));
        assert_eq!(<DynLanes as Lanes>::FIXED, None);
        for r in 0..5 {
            for c in 0..4 {
                assert_eq!(f.idx(r, c), d.idx(r, c));
                assert_eq!(f.idx(r, c), r * 4 + c);
            }
        }
    }

    #[test]
    fn dispatch_table_covers_fixed_and_dynamic_widths() {
        for k in [1usize, 2, 3, 4, 5, 7, 8, 9] {
            let fixed = with_lanes!(k, lanes => <_ as LanesProbe>::fixed(&lanes));
            let width = with_lanes!(k, lanes => lanes.width());
            assert_eq!(width, k);
            match k {
                1 | 4 | 8 => assert_eq!(fixed, Some(k), "k={k} must monomorphize"),
                _ => assert_eq!(fixed, None, "k={k} must fall back to DynLanes"),
            }
        }
        trait LanesProbe {
            fn fixed(&self) -> Option<usize>;
        }
        impl<L: Lanes> LanesProbe for L {
            fn fixed(&self) -> Option<usize> {
                L::FIXED
            }
        }
    }

    #[test]
    fn chunks_cover_ranges_exactly() {
        for (lo, hi) in [(0usize, 0usize), (0, 1), (0, 8), (0, 9), (3, 20), (5, 6)] {
            let mut seen = Vec::new();
            for_each_chunk(lo..hi, |c0, cw| {
                assert!((1..=LANE_CHUNK).contains(&cw));
                seen.extend(c0..c0 + cw);
            });
            assert_eq!(seen, (lo..hi).collect::<Vec<_>>(), "range {lo}..{hi}");
        }
    }

    /// The defining bitwise contract: each micro-op's lane `c` is
    /// bit-identical between every fixed instantiation and the dynamic
    /// fallback, and to the scalar (`FixedLanes<1>`) run of that lane.
    #[test]
    fn micro_ops_fixed_dyn_and_scalar_agree_bitwise() {
        let n = 13usize;
        for k in [1usize, 4, 5, 8] {
            let x: Vec<f64> = (0..n * k).map(|i| 0.3 + (i as f64 * 0.7).sin()).collect();
            let y0: Vec<f64> = (0..n * k).map(|i| (i as f64 * 0.11).cos()).collect();
            let alpha: Vec<f64> = (0..k).map(|c| 0.5 - c as f64 * 0.125).collect();

            let run_dyn = {
                let lanes = DynLanes(k);
                let mut y = y0.clone();
                lane_axpy(lanes, &alpha, &x, &mut y);
                lane_fnma(lanes, &alpha, &x, &mut y);
                let mut d = vec![0.0; k];
                lane_dot(lanes, &x, &y, &mut d);
                lane_scale(lanes, &alpha, &mut y);
                (y, d)
            };
            // Per lane, the scalar instantiation on the de-interleaved
            // lane must agree bit for bit.
            for c in 0..k {
                let lanes1 = FixedLanes::<1>;
                let xc: Vec<f64> = (0..n).map(|r| x[r * k + c]).collect();
                let mut yc: Vec<f64> = (0..n).map(|r| y0[r * k + c]).collect();
                lane_axpy(lanes1, &alpha[c..c + 1], &xc, &mut yc);
                lane_fnma(lanes1, &alpha[c..c + 1], &xc, &mut yc);
                let mut dc = [0.0f64];
                lane_dot(lanes1, &xc, &yc, &mut dc);
                lane_scale(lanes1, &alpha[c..c + 1], &mut yc);
                assert_eq!(dc[0].to_bits(), run_dyn.1[c].to_bits(), "k={k} lane {c}");
                for r in 0..n {
                    assert_eq!(
                        yc[r].to_bits(),
                        run_dyn.0[r * k + c].to_bits(),
                        "k={k} lane {c} row {r}"
                    );
                }
            }
        }
    }

    /// Poisoned inputs (NaN, ±∞, signed zero, subnormals): the fixed
    /// widths 4 and 8 — the explicit-SIMD instantiations when the
    /// `simd` feature is on — must propagate specials bit-identically
    /// to the dynamic (always-scalar) fallback. x86 `mulpd` quiets and
    /// forwards NaNs exactly like `mulsd`, and the vector bodies keep
    /// the scalar operand order, so even `∞·0 → NaN` lanes match.
    #[test]
    fn micro_ops_with_nan_and_inf_agree_bitwise() {
        let n = 11usize;
        let specials = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            0.0,
            1.0e-310, // subnormal
            2.5,
            -7.25,
        ];
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        for k in [4usize, 8] {
            let x: Vec<f64> = (0..n * k).map(|i| specials[i % specials.len()]).collect();
            let y0: Vec<f64> = (0..n * k)
                .map(|i| specials[(i * 3 + 1) % specials.len()])
                .collect();
            let alpha: Vec<f64> = (0..k).map(|c| specials[(c + 2) % specials.len()]).collect();

            // Dynamic width: always the portable scalar body.
            let dynl = DynLanes(k);
            let (mut ya_d, mut yf_d, mut ys_d) = (y0.clone(), y0.clone(), x.clone());
            lane_axpy(dynl, &alpha, &x, &mut ya_d);
            lane_fnma(dynl, &alpha, &x, &mut yf_d);
            let mut d_d = vec![0.0; k];
            lane_dot(dynl, &x, &y0, &mut d_d);
            lane_scale(dynl, &alpha, &mut ys_d);

            // Fixed width: the SIMD path when built with `--features
            // simd` on AVX2 hardware, the same scalar body otherwise.
            let (ya_f, yf_f, d_f, ys_f) = with_lanes!(k, lanes => {
                let (mut ya, mut yf, mut ys) = (y0.clone(), y0.clone(), x.clone());
                lane_axpy(lanes, &alpha, &x, &mut ya);
                lane_fnma(lanes, &alpha, &x, &mut yf);
                let mut d = vec![0.0; k];
                lane_dot(lanes, &x, &y0, &mut d);
                lane_scale(lanes, &alpha, &mut ys);
                (ya, yf, d, ys)
            });

            assert_eq!(bits(&ya_f), bits(&ya_d), "axpy k={k}");
            assert_eq!(bits(&yf_f), bits(&yf_d), "fnma k={k}");
            assert_eq!(bits(&d_f), bits(&d_d), "dot k={k}");
            assert_eq!(bits(&ys_f), bits(&ys_d), "scale k={k}");
            // And the poison actually reached the outputs: NaN lanes
            // must exist, or this test proves nothing.
            assert!(ya_f.iter().any(|v| v.is_nan()), "axpy k={k} no NaN?");
            assert!(d_f.iter().any(|v| v.is_nan()), "dot k={k} no NaN?");
        }
    }

    #[test]
    fn mask_tracks_lane_states() {
        let mut m = LaneMask::default();
        assert!(m.is_empty());
        m.reset(3);
        assert_eq!(m.len(), 3);
        assert!(m.any_active() && m.is_active(1));
        m.set(0, LANE_DONE);
        m.set(1, LANE_HALTED);
        assert!(m.any_active());
        m.set(2, LANE_PENDING);
        assert!(!m.any_active());
        assert!(m.any(LANE_PENDING) && m.is(2, LANE_PENDING));
        assert!(!m.any(LANE_ACTIVE));
        assert_eq!(m.get(1), LANE_HALTED);
        // Reset rearms every lane.
        m.reset(2);
        assert!(m.is_active(0) && m.is_active(1));
    }
}
