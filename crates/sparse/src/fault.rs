//! Hand-rolled failpoint registry for chaos testing.
//!
//! Production numerical code rarely exercises its breakdown paths: zero
//! pivots, NaN payloads and mid-region panics are one-in-a-million
//! events in normal operation, so the code that survives them rots. This
//! module gives the test tree a way to *inject* those events at named
//! sites inside the numeric kernel, the triangular-solve engines and the
//! Matrix Market reader.
//!
//! The whole mechanism is gated behind the `fault-injection` cargo
//! feature. Without the feature, [`fire`] is a `const`-foldable inline
//! function returning `None`, so instrumented sites cost nothing in
//! release builds — no atomic load, no branch that survives
//! optimization. With the feature, a process-global registry maps site
//! names to one-shot armed faults.
//!
//! Because the registry is process-global, tests that arm faults must be
//! serialized (the chaos suite holds a lock around each scenario).

/// What an armed failpoint does when it fires. The site interprets the
/// action: a value-producing site applies `Nan`/`Zero` to its value, any
/// site can honor `Panic`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic at the site (exercises unwind containment).
    Panic,
    /// Replace the site's value with NaN (exercises non-finite guards).
    Nan,
    /// Replace the site's value with zero (exercises pivot breakdown).
    Zero,
}

#[cfg(feature = "fault-injection")]
mod registry {
    use super::FaultAction;
    use std::sync::{Mutex, OnceLock};

    struct Armed {
        site: &'static str,
        action: FaultAction,
        /// Number of matching [`fire`] calls to let through before
        /// firing.
        skip: usize,
        fired: bool,
    }

    fn slots() -> &'static Mutex<Vec<Armed>> {
        static SLOTS: OnceLock<Mutex<Vec<Armed>>> = OnceLock::new();
        SLOTS.get_or_init(|| Mutex::new(Vec::new()))
    }

    /// Arms `site` to perform `action` on its `skip + 1`-th hit. The
    /// fault is one-shot: it disarms itself after firing. Re-arming an
    /// already-armed site replaces the previous arming.
    pub fn arm(site: &'static str, action: FaultAction, skip: usize) {
        let mut s = slots().lock().unwrap_or_else(|e| e.into_inner());
        s.retain(|a| a.site != site);
        s.push(Armed {
            site,
            action,
            skip,
            fired: false,
        });
    }

    /// Disarms every failpoint.
    pub fn clear() {
        slots().lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// `true` if `site` is armed and has not fired yet.
    pub fn is_armed(site: &str) -> bool {
        slots()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .any(|a| a.site == site && !a.fired)
    }

    /// Called by instrumented sites: returns the armed action exactly
    /// once when the hit count is reached.
    pub fn fire(site: &str) -> Option<FaultAction> {
        let mut s = slots().lock().unwrap_or_else(|e| e.into_inner());
        let a = s.iter_mut().find(|a| a.site == site && !a.fired)?;
        if a.skip > 0 {
            a.skip -= 1;
            return None;
        }
        a.fired = true;
        Some(a.action)
    }
}

#[cfg(feature = "fault-injection")]
pub use registry::{arm, clear, fire, is_armed};

/// Feature-off stub: never fires and folds to nothing.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn fire(_site: &str) -> Option<FaultAction> {
    None
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    #[test]
    fn one_shot_with_skip() {
        clear();
        arm("test.site", FaultAction::Zero, 2);
        assert!(is_armed("test.site"));
        assert_eq!(fire("test.site"), None);
        assert_eq!(fire("test.site"), None);
        assert_eq!(fire("test.site"), Some(FaultAction::Zero));
        assert_eq!(fire("test.site"), None);
        assert!(!is_armed("test.site"));
        assert_eq!(fire("other.site"), None);
        clear();
    }

    #[test]
    fn rearming_replaces() {
        clear();
        arm("test.rearm", FaultAction::Panic, 5);
        arm("test.rearm", FaultAction::Nan, 0);
        assert_eq!(fire("test.rearm"), Some(FaultAction::Nan));
        clear();
    }
}
