//! Error type shared by the sparse substrate.

use std::fmt;

/// Errors produced while constructing, converting or reading sparse
/// matrices.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// An index was outside the matrix dimensions.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// Number of rows in the matrix.
        nrows: usize,
        /// Number of columns in the matrix.
        ncols: usize,
    },
    /// A CSR/CSC structural invariant was violated (unsorted or duplicate
    /// column indices, row-pointer not monotone, length mismatch, …).
    InvalidStructure(String),
    /// A permutation vector was not a bijection on `0..n`.
    InvalidPermutation(String),
    /// The operation requires a square matrix.
    NotSquare {
        /// Number of rows.
        nrows: usize,
        /// Number of columns.
        ncols: usize,
    },
    /// A zero (or numerically unusable) pivot was encountered.
    ZeroPivot {
        /// Row at which factorization broke down.
        row: usize,
    },
    /// The matrix is missing a structural diagonal entry required by the
    /// algorithm (ILU requires a full diagonal).
    MissingDiagonal {
        /// First row with no diagonal entry.
        row: usize,
    },
    /// An I/O or parse failure while reading/writing an external format.
    Io(String),
    /// Two operands had incompatible shapes.
    DimensionMismatch(String),
    /// A matrix's sparsity pattern differs from the pattern an analysis
    /// was built for (numeric refactorization requires an identical
    /// pattern).
    PatternMismatch(String),
    /// A non-finite (NaN or infinite) value where a finite number is
    /// required — hostile input files and poisoned matrices are rejected
    /// at the boundary rather than propagated into the kernels.
    NonFinite {
        /// Row index of the offending value.
        row: usize,
        /// Column index of the offending value.
        col: usize,
    },
    /// Factorization broke down and every recovery attempt was
    /// exhausted (see `ZeroPivotPolicy::ShiftRetry` in the core crate).
    Breakdown {
        /// Row at which the final attempt collapsed.
        row: usize,
        /// Number of numeric attempts performed (including the first).
        attempts: usize,
        /// Absolute diagonal shift applied on the final attempt.
        shift: f64,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row},{col}) out of bounds for {nrows}x{ncols} matrix"
            ),
            SparseError::InvalidStructure(msg) => write!(f, "invalid sparse structure: {msg}"),
            SparseError::InvalidPermutation(msg) => write!(f, "invalid permutation: {msg}"),
            SparseError::NotSquare { nrows, ncols } => {
                write!(f, "operation requires a square matrix, got {nrows}x{ncols}")
            }
            SparseError::ZeroPivot { row } => write!(f, "zero pivot at row {row}"),
            SparseError::MissingDiagonal { row } => {
                write!(f, "missing structural diagonal entry at row {row}")
            }
            SparseError::Io(msg) => write!(f, "i/o error: {msg}"),
            SparseError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            SparseError::PatternMismatch(msg) => write!(f, "sparsity pattern mismatch: {msg}"),
            SparseError::NonFinite { row, col } => {
                write!(f, "non-finite value at entry ({row},{col})")
            }
            SparseError::Breakdown {
                row,
                attempts,
                shift,
            } => write!(
                f,
                "factorization breakdown at row {row} after {attempts} attempt(s) \
                 (final diagonal shift {shift:e})"
            ),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SparseError::IndexOutOfBounds {
            row: 5,
            col: 7,
            nrows: 3,
            ncols: 3,
        };
        assert!(e.to_string().contains("(5,7)"));
        assert!(e.to_string().contains("3x3"));
        let e = SparseError::ZeroPivot { row: 42 };
        assert!(e.to_string().contains("42"));
        let e = SparseError::MissingDiagonal { row: 3 };
        assert!(e.to_string().contains("row 3"));
        let e = SparseError::NonFinite { row: 1, col: 2 };
        assert!(e.to_string().contains("(1,2)"));
        let e = SparseError::Breakdown {
            row: 9,
            attempts: 4,
            shift: 1e-2,
        };
        assert!(e.to_string().contains("row 9"));
        assert!(e.to_string().contains("4 attempt"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: SparseError = io.into();
        assert!(matches!(e, SparseError::Io(_)));
    }
}
