//! Coordinate-format (triplet) builder.
//!
//! `CooMatrix` is the mutable staging area: generators and file readers
//! push `(row, col, value)` triplets in any order (duplicates allowed —
//! they are summed, the Matrix Market convention) and convert once into
//! the immutable [`CsrMatrix`] on which everything else
//! operates.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;

/// A sparse matrix in coordinate (triplet) format.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix<T> {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<T>,
}

impl<T: Scalar> CooMatrix<T> {
    /// Creates an empty `nrows × ncols` triplet matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty triplet matrix with room for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (before duplicate summation).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Appends one triplet. Duplicates are permitted and will be summed
    /// during [`CooMatrix::to_csr`].
    ///
    /// # Errors
    /// Returns [`SparseError::IndexOutOfBounds`] when the coordinates do
    /// not fit the declared shape.
    pub fn push(&mut self, row: usize, col: usize, val: T) -> Result<(), SparseError> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
        Ok(())
    }

    /// Appends one triplet without bounds checking in release builds
    /// (debug builds assert). Useful in generators that construct indices
    /// by arithmetic that is provably in bounds.
    pub fn push_unchecked(&mut self, row: usize, col: usize, val: T) {
        debug_assert!(row < self.nrows && col < self.ncols);
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Iterates stored triplets in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        self.rows
            .iter()
            .zip(self.cols.iter())
            .zip(self.vals.iter())
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Converts to CSR, sorting entries and **summing duplicates**.
    ///
    /// The conversion is the classic two-pass counting sort on rows
    /// followed by a per-row sort on columns; O(nnz + n + Σ rowlen·log).
    pub fn to_csr(&self) -> CsrMatrix<T> {
        let nnz = self.vals.len();
        let mut rowptr = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            rowptr[r + 1] += 1;
        }
        for i in 0..self.nrows {
            rowptr[i + 1] += rowptr[i];
        }
        let mut colidx = vec![0usize; nnz];
        let mut vals = vec![T::ZERO; nnz];
        let mut next = rowptr.clone();
        for k in 0..nnz {
            let r = self.rows[k];
            let dst = next[r];
            colidx[dst] = self.cols[k];
            vals[dst] = self.vals[k];
            next[r] += 1;
        }
        // Sort each row by column and fold duplicates.
        let mut out_colidx = Vec::with_capacity(nnz);
        let mut out_vals = Vec::with_capacity(nnz);
        let mut out_rowptr = vec![0usize; self.nrows + 1];
        let mut scratch: Vec<(usize, T)> = Vec::new();
        for r in 0..self.nrows {
            let (s, e) = (rowptr[r], rowptr[r + 1]);
            scratch.clear();
            scratch.extend(colidx[s..e].iter().copied().zip(vals[s..e].iter().copied()));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let (c, mut v) = scratch[i];
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                out_colidx.push(c);
                out_vals.push(v);
                i = j;
            }
            out_rowptr[r + 1] = out_colidx.len();
        }
        CsrMatrix::from_raw_unchecked(self.nrows, self.ncols, out_rowptr, out_colidx, out_vals)
    }

    /// Builds a COO matrix from parallel triplet slices.
    ///
    /// # Errors
    /// Returns an error when slice lengths differ or any index is out of
    /// bounds.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: &[usize],
        cols: &[usize],
        vals: &[T],
    ) -> Result<Self, SparseError> {
        if rows.len() != cols.len() || rows.len() != vals.len() {
            return Err(SparseError::InvalidStructure(format!(
                "triplet slice lengths differ: {} rows, {} cols, {} vals",
                rows.len(),
                cols.len(),
                vals.len()
            )));
        }
        let mut coo = CooMatrix::with_capacity(nrows, ncols, vals.len());
        for k in 0..rows.len() {
            coo.push(rows[k], cols[k], vals[k])?;
        }
        Ok(coo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_converts() {
        let coo = CooMatrix::<f64>::new(3, 4);
        let csr = coo.to_csr();
        assert_eq!(csr.nrows(), 3);
        assert_eq!(csr.ncols(), 4);
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn push_rejects_out_of_bounds() {
        let mut coo = CooMatrix::<f64>::new(2, 2);
        assert!(coo.push(2, 0, 1.0).is_err());
        assert!(coo.push(0, 2, 1.0).is_err());
        assert!(coo.push(1, 1, 1.0).is_ok());
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::<f64>::new(2, 2);
        coo.push(0, 1, 2.0).unwrap();
        coo.push(0, 1, 3.0).unwrap();
        coo.push(1, 0, -1.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 1), Some(5.0));
        assert_eq!(csr.get(1, 0), Some(-1.0));
        assert_eq!(csr.get(0, 0), None);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let mut coo = CooMatrix::<f64>::new(1, 5);
        for &c in &[4usize, 0, 3, 1, 2] {
            coo.push(0, c, c as f64).unwrap();
        }
        let csr = coo.to_csr();
        assert_eq!(csr.row_cols(0), &[0, 1, 2, 3, 4]);
        assert_eq!(csr.row_vals(0), &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn from_triplets_validates() {
        let r = CooMatrix::<f64>::from_triplets(2, 2, &[0], &[0, 1], &[1.0]);
        assert!(r.is_err());
        let coo = CooMatrix::from_triplets(2, 2, &[0, 1], &[1, 0], &[1.0, 2.0]).unwrap();
        assert_eq!(coo.nnz(), 2);
        let got: Vec<_> = coo.iter().collect();
        assert_eq!(got, vec![(0, 1, 1.0), (1, 0, 2.0)]);
    }

    #[test]
    fn f32_works_too() {
        let mut coo = CooMatrix::<f32>::new(2, 2);
        coo.push(0, 0, 1.5).unwrap();
        coo.push(1, 1, 2.5).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 0), Some(1.5f32));
        assert_eq!(csr.get(1, 1), Some(2.5f32));
    }
}
