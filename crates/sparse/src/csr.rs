//! Compressed Sparse Row — the format every Javelin algorithm runs on.
//!
//! The paper's thesis is that scalable incomplete factorization and
//! triangular solves do **not** require exotic storage: a conventional
//! CSR plus a level permutation and a few index arrays suffice. This
//! module therefore keeps `CsrMatrix` immutable after construction;
//! factorizations build *new* CSR structures (first-touch friendly) and
//! never mutate the input.

use crate::csc::CscMatrix;
use crate::error::SparseError;
use crate::perm::Perm;
use crate::scalar::Scalar;

/// An immutable sparse matrix in CSR format.
///
/// Invariants (enforced by [`CsrMatrix::try_from_parts`], assumed
/// elsewhere):
/// * `rowptr.len() == nrows + 1`, `rowptr[0] == 0`, monotone
///   non-decreasing, `rowptr[nrows] == colidx.len() == vals.len()`;
/// * within each row, column indices are strictly increasing and
///   `< ncols`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T> {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colidx: Vec<usize>,
    vals: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Builds a CSR matrix after validating all structural invariants.
    ///
    /// # Errors
    /// [`SparseError::InvalidStructure`] when any invariant fails.
    pub fn try_from_parts(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<usize>,
        vals: Vec<T>,
    ) -> Result<Self, SparseError> {
        if rowptr.len() != nrows + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "rowptr length {} != nrows + 1 = {}",
                rowptr.len(),
                nrows + 1
            )));
        }
        if rowptr[0] != 0 {
            return Err(SparseError::InvalidStructure("rowptr[0] != 0".into()));
        }
        if colidx.len() != vals.len() {
            return Err(SparseError::InvalidStructure(format!(
                "colidx length {} != vals length {}",
                colidx.len(),
                vals.len()
            )));
        }
        if rowptr[nrows] != colidx.len() {
            return Err(SparseError::InvalidStructure(format!(
                "rowptr[nrows] = {} != nnz = {}",
                rowptr[nrows],
                colidx.len()
            )));
        }
        for r in 0..nrows {
            if rowptr[r] > rowptr[r + 1] {
                return Err(SparseError::InvalidStructure(format!(
                    "rowptr not monotone at row {r}"
                )));
            }
            let row = &colidx[rowptr[r]..rowptr[r + 1]];
            for (k, &c) in row.iter().enumerate() {
                if c >= ncols {
                    return Err(SparseError::InvalidStructure(format!(
                        "column {c} out of bounds in row {r} (ncols = {ncols})"
                    )));
                }
                if k > 0 && row[k - 1] >= c {
                    return Err(SparseError::InvalidStructure(format!(
                        "columns not strictly increasing in row {r}: {} then {c}",
                        row[k - 1]
                    )));
                }
            }
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            rowptr,
            colidx,
            vals,
        })
    }

    /// Builds a CSR matrix **without** validation. Callers must uphold
    /// the structural invariants; debug builds verify them.
    pub fn from_raw_unchecked(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<usize>,
        vals: Vec<T>,
    ) -> Self {
        #[cfg(debug_assertions)]
        {
            Self::try_from_parts(nrows, ncols, rowptr, colidx, vals)
                .expect("from_raw_unchecked: invalid structure")
        }
        #[cfg(not(debug_assertions))]
        CsrMatrix {
            nrows,
            ncols,
            rowptr,
            colidx,
            vals,
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            rowptr: (0..=n).collect(),
            colidx: (0..n).collect(),
            vals: vec![T::ONE; n],
        }
    }

    /// Number of rows.
    #[inline(always)]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of explicitly stored entries.
    #[inline(always)]
    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }

    /// `true` for a square matrix.
    #[inline(always)]
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Average number of stored entries per row — the paper's "RD"
    /// (row-density) statistic from Table I.
    pub fn row_density(&self) -> f64 {
        if self.nrows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.nrows as f64
        }
    }

    /// The row-pointer array (`nrows + 1` entries).
    #[inline(always)]
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// The column-index array.
    #[inline(always)]
    pub fn colidx(&self) -> &[usize] {
        &self.colidx
    }

    /// The value array.
    #[inline(always)]
    pub fn vals(&self) -> &[T] {
        &self.vals
    }

    /// Mutable access to values (pattern stays frozen). Used by in-place
    /// numeric phases that keep the symbolic structure.
    #[inline(always)]
    pub fn vals_mut(&mut self) -> &mut [T] {
        &mut self.vals
    }

    /// Half-open range of entry indices belonging to `row`.
    #[inline(always)]
    pub fn row_range(&self, row: usize) -> std::ops::Range<usize> {
        self.rowptr[row]..self.rowptr[row + 1]
    }

    /// Column indices of `row`.
    #[inline(always)]
    pub fn row_cols(&self, row: usize) -> &[usize] {
        &self.colidx[self.row_range(row)]
    }

    /// Values of `row`.
    #[inline(always)]
    pub fn row_vals(&self, row: usize) -> &[T] {
        &self.vals[self.row_range(row)]
    }

    /// Number of entries in `row`.
    #[inline(always)]
    pub fn row_nnz(&self, row: usize) -> usize {
        self.rowptr[row + 1] - self.rowptr[row]
    }

    /// Looks up entry `(row, col)` by binary search; `None` when the
    /// position is not stored.
    pub fn get(&self, row: usize, col: usize) -> Option<T> {
        let cols = self.row_cols(row);
        cols.binary_search(&col)
            .ok()
            .map(|k| self.vals[self.rowptr[row] + k])
    }

    /// Iterates `(row, col, value)` over all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            self.row_cols(r)
                .iter()
                .zip(self.row_vals(r).iter())
                .map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Consumes the matrix, returning `(nrows, ncols, rowptr, colidx, vals)`.
    pub fn into_parts(self) -> (usize, usize, Vec<usize>, Vec<usize>, Vec<T>) {
        (self.nrows, self.ncols, self.rowptr, self.colidx, self.vals)
    }

    /// Transposed copy (CSR of `Aᵀ`), O(nnz + n).
    pub fn transpose(&self) -> CsrMatrix<T> {
        let mut rowptr = vec![0usize; self.ncols + 1];
        for &c in &self.colidx {
            rowptr[c + 1] += 1;
        }
        for i in 0..self.ncols {
            rowptr[i + 1] += rowptr[i];
        }
        let mut colidx = vec![0usize; self.nnz()];
        let mut vals = vec![T::ZERO; self.nnz()];
        let mut next = rowptr.clone();
        for r in 0..self.nrows {
            for k in self.row_range(r) {
                let c = self.colidx[k];
                let dst = next[c];
                colidx[dst] = r;
                vals[dst] = self.vals[k];
                next[c] += 1;
            }
        }
        // Row-major traversal emits ascending row indices per column, so
        // the transposed rows are already sorted.
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            rowptr,
            colidx,
            vals,
        }
    }

    /// Column-major copy of the same matrix.
    pub fn to_csc(&self) -> CscMatrix<T> {
        let t = self.transpose();
        CscMatrix::from_raw_unchecked(self.nrows, self.ncols, t.rowptr, t.colidx, t.vals)
    }

    /// `true` when the sparsity pattern is structurally symmetric — the
    /// paper's "SP" column in Table I. Values are ignored.
    pub fn is_pattern_symmetric(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        let t = self.transpose();
        self.rowptr == t.rowptr && self.colidx == t.colidx
    }

    /// `true` when `A == Aᵀ` numerically (within `tol` absolute).
    pub fn is_symmetric(&self, tol: T) -> bool {
        if !self.is_square() {
            return false;
        }
        let t = self.transpose();
        if self.rowptr != t.rowptr || self.colidx != t.colidx {
            return false;
        }
        self.vals
            .iter()
            .zip(t.vals.iter())
            .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Extracts the diagonal as a dense vector (`ZERO` where absent).
    pub fn diag(&self) -> Vec<T> {
        let n = self.nrows.min(self.ncols);
        let mut d = vec![T::ZERO; n];
        for (r, item) in d.iter_mut().enumerate() {
            if let Some(v) = self.get(r, r) {
                *item = v;
            }
        }
        d
    }

    /// Index of the diagonal entry within each row's slice, or an error
    /// naming the first row whose structural diagonal is missing.
    ///
    /// Incomplete factorization requires every diagonal position to be
    /// present in the pattern.
    pub fn diag_positions(&self) -> Result<Vec<usize>, SparseError> {
        if !self.is_square() {
            return Err(SparseError::NotSquare {
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        let mut pos = vec![0usize; self.nrows];
        for r in 0..self.nrows {
            match self.row_cols(r).binary_search(&r) {
                Ok(k) => pos[r] = self.rowptr[r] + k,
                Err(_) => return Err(SparseError::MissingDiagonal { row: r }),
            }
        }
        Ok(pos)
    }

    /// Symmetric permutation `B = P·A·Pᵀ`, i.e. `B[i,j] = A[p(i), p(j)]`
    /// where `p = perm.new_to_old`.
    ///
    /// # Errors
    /// [`SparseError::DimensionMismatch`] when the permutation length
    /// differs from the matrix dimension (square required).
    pub fn permute_sym(&self, perm: &Perm) -> Result<CsrMatrix<T>, SparseError> {
        if !self.is_square() {
            return Err(SparseError::NotSquare {
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        if perm.len() != self.nrows {
            return Err(SparseError::DimensionMismatch(format!(
                "permutation length {} != matrix dimension {}",
                perm.len(),
                self.nrows
            )));
        }
        self.permute(perm, perm)
    }

    /// General two-sided permutation `B = P·A·Qᵀ`:
    /// `B[i,j] = A[rowp(i), colp(j)]`.
    pub fn permute(&self, rowp: &Perm, colp: &Perm) -> Result<CsrMatrix<T>, SparseError> {
        if rowp.len() != self.nrows || colp.len() != self.ncols {
            return Err(SparseError::DimensionMismatch(format!(
                "perm lengths ({}, {}) != matrix shape ({}, {})",
                rowp.len(),
                colp.len(),
                self.nrows,
                self.ncols
            )));
        }
        let col_inv = colp.old_to_new();
        let mut rowptr = vec![0usize; self.nrows + 1];
        for newr in 0..self.nrows {
            rowptr[newr + 1] = rowptr[newr] + self.row_nnz(rowp.new_to_old()[newr]);
        }
        let nnz = self.nnz();
        let mut colidx = vec![0usize; nnz];
        let mut vals = vec![T::ZERO; nnz];
        let mut pairs: Vec<(usize, T)> = Vec::new();
        for newr in 0..self.nrows {
            let oldr = rowp.new_to_old()[newr];
            pairs.clear();
            pairs.extend(
                self.row_cols(oldr)
                    .iter()
                    .zip(self.row_vals(oldr).iter())
                    .map(|(&c, &v)| (col_inv[c], v)),
            );
            pairs.sort_unstable_by_key(|&(c, _)| c);
            let base = rowptr[newr];
            for (k, &(c, v)) in pairs.iter().enumerate() {
                colidx[base + k] = c;
                vals[base + k] = v;
            }
        }
        Ok(CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr,
            colidx,
            vals,
        })
    }

    /// Strictly-lower / lower-with-diagonal triangular part.
    pub fn lower_triangular(&self, include_diag: bool) -> CsrMatrix<T> {
        self.filter(|r, c| if include_diag { c <= r } else { c < r })
    }

    /// Strictly-upper / upper-with-diagonal triangular part.
    pub fn upper_triangular(&self, include_diag: bool) -> CsrMatrix<T> {
        self.filter(|r, c| if include_diag { c >= r } else { c > r })
    }

    /// Keeps entries for which `keep(row, col)` holds.
    pub fn filter(&self, keep: impl Fn(usize, usize) -> bool) -> CsrMatrix<T> {
        let mut rowptr = vec![0usize; self.nrows + 1];
        let mut colidx = Vec::new();
        let mut vals = Vec::new();
        for r in 0..self.nrows {
            for k in self.row_range(r) {
                let c = self.colidx[k];
                if keep(r, c) {
                    colidx.push(c);
                    vals.push(self.vals[k]);
                }
            }
            rowptr[r + 1] = colidx.len();
        }
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr,
            colidx,
            vals,
        }
    }

    /// Applies `f` to every stored value, keeping the pattern.
    pub fn map_values(&self, f: impl Fn(T) -> T) -> CsrMatrix<T> {
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr: self.rowptr.clone(),
            colidx: self.colidx.clone(),
            vals: self.vals.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Serial sparse matrix–vector product `y = A·x`.
    ///
    /// # Panics
    /// When `x.len() != ncols` or `y.len() != nrows`.
    pub fn spmv_into(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.ncols, "spmv: x length mismatch");
        assert_eq!(y.len(), self.nrows, "spmv: y length mismatch");
        for r in 0..self.nrows {
            let mut acc = T::ZERO;
            for k in self.row_range(r) {
                acc += self.vals[k] * x[self.colidx[k]];
            }
            y[r] = acc;
        }
    }

    /// Convenience allocating spmv.
    pub fn spmv(&self, x: &[T]) -> Vec<T> {
        let mut y = vec![T::ZERO; self.nrows];
        self.spmv_into(x, &mut y);
        y
    }

    /// Dense copy for small tests and debugging. Row-major `nrows × ncols`.
    pub fn to_dense(&self) -> Vec<Vec<T>> {
        let mut d = vec![vec![T::ZERO; self.ncols]; self.nrows];
        for (r, c, v) in self.iter() {
            d[r][c] = v;
        }
        d
    }

    /// `true` when `self` and `other` share a pattern and all values agree
    /// within absolute tolerance `tol`.
    pub fn approx_eq(&self, other: &CsrMatrix<T>, tol: T) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.rowptr == other.rowptr
            && self.colidx == other.colidx
            && self
                .vals
                .iter()
                .zip(other.vals.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Maximum absolute value difference over the union pattern (entries
    /// missing from one side count with value zero). Useful for comparing
    /// factorizations with slightly different drop outcomes.
    pub fn max_abs_diff(&self, other: &CsrMatrix<T>) -> T {
        let mut worst = T::ZERO;
        for (r, c, v) in self.iter() {
            let o = other.get(r, c).unwrap_or(T::ZERO);
            worst = worst.max((v - o).abs());
        }
        for (r, c, v) in other.iter() {
            if self.get(r, c).is_none() {
                worst = worst.max(v.abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn small() -> CsrMatrix<f64> {
        // [ 4 -1  0 ]
        // [-1  4 -1 ]
        // [ 0 -1  4 ]
        let mut coo = CooMatrix::new(3, 3);
        for (r, c, v) in [
            (0, 0, 4.0),
            (0, 1, -1.0),
            (1, 0, -1.0),
            (1, 1, 4.0),
            (1, 2, -1.0),
            (2, 1, -1.0),
            (2, 2, 4.0),
        ] {
            coo.push(r, c, v).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn validation_catches_bad_structures() {
        // rowptr too short
        assert!(CsrMatrix::<f64>::try_from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // rowptr[0] != 0
        assert!(CsrMatrix::<f64>::try_from_parts(1, 1, vec![1, 1], vec![], vec![]).is_err());
        // non-monotone rowptr
        assert!(
            CsrMatrix::<f64>::try_from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0])
                .is_err()
        );
        // column out of bounds
        assert!(CsrMatrix::<f64>::try_from_parts(1, 1, vec![0, 1], vec![3], vec![1.0]).is_err());
        // duplicate column
        assert!(
            CsrMatrix::<f64>::try_from_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err()
        );
        // unsorted columns
        assert!(
            CsrMatrix::<f64>::try_from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err()
        );
        // vals length mismatch
        assert!(CsrMatrix::<f64>::try_from_parts(1, 2, vec![0, 1], vec![0], vec![]).is_err());
    }

    #[test]
    fn identity_is_identity() {
        let i = CsrMatrix::<f64>::identity(4);
        assert_eq!(i.nnz(), 4);
        for r in 0..4 {
            assert_eq!(i.get(r, r), Some(1.0));
        }
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.spmv(&x), x);
    }

    #[test]
    fn accessors() {
        let a = small();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.ncols(), 3);
        assert_eq!(a.nnz(), 7);
        assert!(a.is_square());
        assert!((a.row_density() - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.row_cols(1), &[0, 1, 2]);
        assert_eq!(a.row_vals(1), &[-1.0, 4.0, -1.0]);
        assert_eq!(a.row_nnz(0), 2);
        assert_eq!(a.get(0, 2), None);
        assert_eq!(a.get(2, 2), Some(4.0));
    }

    #[test]
    fn transpose_involution() {
        let a = small();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
    }

    #[test]
    fn transpose_rectangular() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 2, 5.0).unwrap();
        coo.push(1, 0, 7.0).unwrap();
        let a = coo.to_csr();
        let t = a.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.get(2, 0), Some(5.0));
        assert_eq!(t.get(0, 1), Some(7.0));
    }

    #[test]
    fn pattern_symmetry() {
        assert!(small().is_pattern_symmetric());
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        assert!(!coo.to_csr().is_pattern_symmetric());
    }

    #[test]
    fn numeric_symmetry() {
        assert!(small().is_symmetric(0.0));
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 1.0 + 1e-3).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        let a = coo.to_csr();
        assert!(!a.is_symmetric(1e-6));
        assert!(a.is_symmetric(1e-2));
    }

    #[test]
    fn diag_extraction() {
        let a = small();
        assert_eq!(a.diag(), vec![4.0, 4.0, 4.0]);
        let pos = a.diag_positions().unwrap();
        for r in 0..3 {
            assert_eq!(a.colidx()[pos[r]], r);
        }
    }

    #[test]
    fn diag_positions_missing() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        let a = coo.to_csr();
        assert_eq!(
            a.diag_positions(),
            Err(SparseError::MissingDiagonal { row: 1 })
        );
    }

    #[test]
    fn symmetric_permutation_reverses() {
        let a = small();
        let p = Perm::from_new_to_old(vec![2, 1, 0]).unwrap();
        let b = a.permute_sym(&p).unwrap();
        // Reversal of a symmetric tridiagonal keeps it tridiagonal.
        assert_eq!(b.get(0, 0), Some(4.0));
        assert_eq!(b.get(0, 1), Some(-1.0));
        assert_eq!(b.get(0, 2), None);
        // Round-trip through the inverse restores A.
        let back = b.permute_sym(&p.inverse()).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn triangular_extraction() {
        let a = small();
        let l = a.lower_triangular(true);
        assert_eq!(l.nnz(), 5);
        assert_eq!(l.get(0, 1), None);
        let lstrict = a.lower_triangular(false);
        assert_eq!(lstrict.nnz(), 2);
        let u = a.upper_triangular(true);
        assert_eq!(u.nnz(), 5);
        let ustrict = a.upper_triangular(false);
        assert_eq!(ustrict.nnz(), 2);
        // L_strict + diag + U_strict == A (as patterns and values).
        assert_eq!(lstrict.nnz() + ustrict.nnz() + 3, a.nnz());
    }

    #[test]
    fn spmv_matches_dense() {
        let a = small();
        let x = vec![1.0, 2.0, 3.0];
        let y = a.spmv(&x);
        assert_eq!(y, vec![4.0 - 2.0, -1.0 + 8.0 - 3.0, -2.0 + 12.0]);
    }

    #[test]
    fn map_and_filter() {
        let a = small();
        let b = a.map_values(|v| v * 2.0);
        assert_eq!(b.get(0, 0), Some(8.0));
        let d = a.filter(|r, c| r == c);
        assert_eq!(d.nnz(), 3);
    }

    #[test]
    fn max_abs_diff_covers_union() {
        let a = small();
        let b = a.map_values(|v| v + 0.5);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-12);
        let l = a.lower_triangular(true);
        // Entries missing from `l` count at their absolute value (=1).
        assert!((a.max_abs_diff(&l) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn into_parts_roundtrip() {
        let a = small();
        let (m, n, rp, ci, vs) = a.clone().into_parts();
        let b = CsrMatrix::try_from_parts(m, n, rp, ci, vs).unwrap();
        assert_eq!(a, b);
    }
}
