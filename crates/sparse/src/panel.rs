//! Dense right-hand-side panels: column-major `n × k` blocks.
//!
//! Serving-scale workloads retire many simultaneous solves through one
//! preconditioner; the execution layers (`SpmvPlan::execute_panel`, the
//! panel trisolve engines, `solve_batch`) are generic over the panel
//! width `k` so one schedule traversal serves a whole block of vectors.
//! [`Panel`] and [`PanelMut`] are the borrowed views those layers
//! consume: column-major, each column a contiguous length-`nrows`
//! slice, consecutive columns `col_stride` apart.
//!
//! ## Layout invariants
//!
//! * **Column-major**: entry `(r, c)` lives at `data[c · col_stride + r]`.
//! * `col_stride ≥ nrows` — columns never overlap; the gap
//!   (`col_stride − nrows` entries) is never read or written, so a
//!   panel can view every `j`-th column of a wider block.
//! * `data` must cover the last column:
//!   `len ≥ (ncols − 1) · col_stride + nrows` (no constraint when
//!   `ncols == 0`).
//! * `ncols == 1` with `col_stride == nrows` makes any plain vector a
//!   panel ([`Panel::from_col`] / [`PanelMut::from_col`]) — the `k = 1`
//!   fast path everywhere.
//!
//! Constructors check the invariants and panic on violation: panels are
//! built by solver plumbing over buffers it sized itself, so a mismatch
//! is a programming error, not a data error.

use crate::scalar::Scalar;

#[inline]
fn check_layout(len: usize, nrows: usize, ncols: usize, col_stride: usize) {
    assert!(
        col_stride >= nrows,
        "panel: col_stride {col_stride} < nrows {nrows}"
    );
    if ncols > 0 {
        let need = (ncols - 1) * col_stride + nrows;
        assert!(
            len >= need,
            "panel: buffer of {len} entries cannot hold {ncols} columns \
             of {nrows} rows at stride {col_stride} (need {need})"
        );
    }
}

/// Shared view of a column-major `nrows × ncols` dense panel.
#[derive(Debug, Clone, Copy)]
pub struct Panel<'a, T> {
    data: &'a [T],
    nrows: usize,
    ncols: usize,
    col_stride: usize,
}

impl<'a, T: Scalar> Panel<'a, T> {
    /// Contiguous panel: `ncols` columns of `nrows` entries, stride
    /// equal to `nrows`.
    ///
    /// # Panics
    /// When `data` is shorter than `nrows · ncols`.
    pub fn new(data: &'a [T], nrows: usize, ncols: usize) -> Self {
        Self::with_stride(data, nrows, ncols, nrows)
    }

    /// Panel with an explicit column stride (see module docs for the
    /// layout invariants).
    ///
    /// # Panics
    /// When the invariants do not hold.
    pub fn with_stride(data: &'a [T], nrows: usize, ncols: usize, col_stride: usize) -> Self {
        check_layout(data.len(), nrows, ncols, col_stride);
        Panel {
            data,
            nrows,
            ncols,
            col_stride,
        }
    }

    /// A single vector as a width-1 panel.
    pub fn from_col(col: &'a [T]) -> Self {
        Panel {
            nrows: col.len(),
            ncols: 1,
            col_stride: col.len(),
            data: col,
        }
    }

    /// Rows per column.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (the panel width `k`).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Distance between consecutive columns in the backing buffer.
    pub fn col_stride(&self) -> usize {
        self.col_stride
    }

    /// Column `c` as a contiguous slice.
    ///
    /// # Panics
    /// When `c >= ncols`.
    #[inline]
    pub fn col(&self, c: usize) -> &'a [T] {
        assert!(c < self.ncols, "panel: column {c} of {}", self.ncols);
        let lo = c * self.col_stride;
        &self.data[lo..lo + self.nrows]
    }

    /// Entry `(r, c)`.
    ///
    /// # Panics
    /// On out-of-range indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> T {
        assert!(r < self.nrows, "panel: row {r} of {}", self.nrows);
        self.col(c)[r]
    }
}

/// Exclusive view of a column-major `nrows × ncols` dense panel.
#[derive(Debug)]
pub struct PanelMut<'a, T> {
    data: &'a mut [T],
    nrows: usize,
    ncols: usize,
    col_stride: usize,
}

impl<'a, T: Scalar> PanelMut<'a, T> {
    /// Contiguous mutable panel (stride equal to `nrows`).
    ///
    /// # Panics
    /// When `data` is shorter than `nrows · ncols`.
    pub fn new(data: &'a mut [T], nrows: usize, ncols: usize) -> Self {
        Self::with_stride(data, nrows, ncols, nrows)
    }

    /// Mutable panel with an explicit column stride.
    ///
    /// # Panics
    /// When the layout invariants (module docs) do not hold.
    pub fn with_stride(data: &'a mut [T], nrows: usize, ncols: usize, col_stride: usize) -> Self {
        check_layout(data.len(), nrows, ncols, col_stride);
        PanelMut {
            data,
            nrows,
            ncols,
            col_stride,
        }
    }

    /// A single vector as a width-1 mutable panel.
    pub fn from_col(col: &'a mut [T]) -> Self {
        PanelMut {
            nrows: col.len(),
            ncols: 1,
            col_stride: col.len(),
            data: col,
        }
    }

    /// Rows per column.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (the panel width `k`).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Distance between consecutive columns in the backing buffer.
    pub fn col_stride(&self) -> usize {
        self.col_stride
    }

    /// Column `c` as a contiguous shared slice.
    ///
    /// # Panics
    /// When `c >= ncols`.
    #[inline]
    pub fn col(&self, c: usize) -> &[T] {
        assert!(c < self.ncols, "panel: column {c} of {}", self.ncols);
        let lo = c * self.col_stride;
        &self.data[lo..lo + self.nrows]
    }

    /// Column `c` as a contiguous mutable slice.
    ///
    /// # Panics
    /// When `c >= ncols`.
    #[inline]
    pub fn col_mut(&mut self, c: usize) -> &mut [T] {
        assert!(c < self.ncols, "panel: column {c} of {}", self.ncols);
        let lo = c * self.col_stride;
        &mut self.data[lo..lo + self.nrows]
    }

    /// Entry `(r, c)`.
    ///
    /// # Panics
    /// On out-of-range indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> T {
        assert!(r < self.nrows, "panel: row {r} of {}", self.nrows);
        self.col(c)[r]
    }

    /// Writes entry `(r, c)`.
    ///
    /// # Panics
    /// On out-of-range indices.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        assert!(r < self.nrows, "panel: row {r} of {}", self.nrows);
        self.col_mut(c)[r] = v;
    }

    /// Reborrows as a shared [`Panel`].
    pub fn as_panel(&self) -> Panel<'_, T> {
        Panel {
            data: self.data,
            nrows: self.nrows,
            ncols: self.ncols,
            col_stride: self.col_stride,
        }
    }
}

/// Owned, grow-only, column-major panel storage: the staging buffer
/// between *owned columns* (independent right-hand sides arriving from
/// separate clients) and the contiguous [`Panel`] views the batch
/// drivers consume.
///
/// The backing buffer only ever grows ([`PanelBuf::ensure`]), so after
/// warm-up at a given `(nrows, ncols)` the gather → solve → scatter
/// cycle performs zero heap allocations — the contract the solve
/// service's steady-state dispatch is tested against. The *shape* may
/// shrink freely (a narrower coalesced batch reuses the wide buffer).
#[derive(Debug, Clone, Default)]
pub struct PanelBuf<T> {
    data: Vec<T>,
    nrows: usize,
    ncols: usize,
}

impl<T: Scalar> PanelBuf<T> {
    /// Empty buffer (shape `0 × 0`, no storage).
    pub fn new() -> Self {
        PanelBuf {
            data: Vec::new(),
            nrows: 0,
            ncols: 0,
        }
    }

    /// Sets the current shape to `nrows × ncols`, growing the backing
    /// storage if (and only if) the new shape needs more entries.
    /// Entries are not cleared — callers overwrite via gather or
    /// [`PanelBuf::panel_mut`].
    pub fn ensure(&mut self, nrows: usize, ncols: usize) {
        let need = nrows * ncols;
        if self.data.len() < need {
            self.data.resize(need, T::ZERO);
        }
        self.nrows = nrows;
        self.ncols = ncols;
    }

    /// Rows per column of the current shape.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Columns of the current shape.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Gathers owned columns into the staging storage: sets the shape
    /// to `nrows × cols.len()` and copies each slice in as one column.
    ///
    /// # Panics
    /// When any column's length differs from `nrows`.
    pub fn gather<'s>(&mut self, nrows: usize, cols: impl ExactSizeIterator<Item = &'s [T]>)
    where
        T: 's,
    {
        self.ensure(nrows, cols.len());
        for (c, col) in cols.enumerate() {
            assert_eq!(col.len(), nrows, "panel gather: column {c} length");
            self.data[c * nrows..(c + 1) * nrows].copy_from_slice(col);
        }
    }

    /// Zero-fills the current shape (an initial-guess panel).
    pub fn fill_zero(&mut self) {
        self.data[..self.nrows * self.ncols].fill(T::ZERO);
    }

    /// Column `c` of the current shape as a contiguous slice.
    ///
    /// # Panics
    /// When `c >= ncols`.
    pub fn col(&self, c: usize) -> &[T] {
        assert!(c < self.ncols, "panel buf: column {c} of {}", self.ncols);
        &self.data[c * self.nrows..(c + 1) * self.nrows]
    }

    /// Copies column `c` out into a caller-owned slice (the scatter
    /// half of the gather/scatter cycle).
    ///
    /// # Panics
    /// When `c >= ncols` or `out.len() != nrows`.
    pub fn scatter_col(&self, c: usize, out: &mut [T]) {
        assert_eq!(out.len(), self.nrows, "panel buf: scatter length");
        out.copy_from_slice(self.col(c));
    }

    /// Borrowed [`Panel`] view of the current shape.
    pub fn panel(&self) -> Panel<'_, T> {
        Panel::new(
            &self.data[..self.nrows * self.ncols],
            self.nrows,
            self.ncols,
        )
    }

    /// Borrowed [`PanelMut`] view of the current shape.
    pub fn panel_mut(&mut self) -> PanelMut<'_, T> {
        PanelMut::new(
            &mut self.data[..self.nrows * self.ncols],
            self.nrows,
            self.ncols,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_columns_round_trip() {
        let data: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let p = Panel::new(&data, 4, 3);
        assert_eq!(p.nrows(), 4);
        assert_eq!(p.ncols(), 3);
        assert_eq!(p.col_stride(), 4);
        assert_eq!(p.col(0), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(p.col(2), &[8.0, 9.0, 10.0, 11.0]);
        assert_eq!(p.get(1, 2), 9.0);
    }

    #[test]
    fn strided_panel_skips_gap_entries() {
        // 2 rows per column inside stride-3 storage; the third entry of
        // each stride block is padding.
        let data = vec![1.0, 2.0, -1.0, 3.0, 4.0, -1.0];
        let p = Panel::with_stride(&data, 2, 2, 3);
        assert_eq!(p.col(0), &[1.0, 2.0]);
        assert_eq!(p.col(1), &[3.0, 4.0]);
    }

    #[test]
    fn mutable_panel_writes_and_reborrows() {
        let mut data = vec![0.0f64; 6];
        {
            let mut p = PanelMut::new(&mut data, 3, 2);
            p.set(2, 1, 7.0);
            p.col_mut(0)[1] = 5.0;
            assert_eq!(p.get(2, 1), 7.0);
            let shared = p.as_panel();
            assert_eq!(shared.col(0), &[0.0, 5.0, 0.0]);
            assert_eq!(shared.col(1), &[0.0, 0.0, 7.0]);
        }
        assert_eq!(data, vec![0.0, 5.0, 0.0, 0.0, 0.0, 7.0]);
    }

    #[test]
    fn single_vector_is_a_width_one_panel() {
        let mut v = vec![1.0, 2.0, 3.0];
        let p = Panel::from_col(&v);
        assert_eq!((p.nrows(), p.ncols(), p.col_stride()), (3, 1, 3));
        assert_eq!(p.col(0), &[1.0, 2.0, 3.0]);
        let mut m = PanelMut::from_col(&mut v);
        m.set(0, 0, 9.0);
        assert_eq!(v[0], 9.0);
    }

    #[test]
    fn zero_width_panel_is_fine() {
        let data: [f64; 0] = [];
        let p = Panel::new(&data, 5, 0);
        assert_eq!(p.ncols(), 0);
    }

    #[test]
    #[should_panic(expected = "panel: buffer")]
    fn short_buffer_rejected() {
        let data = vec![0.0f64; 5];
        let _ = Panel::new(&data, 3, 2);
    }

    #[test]
    #[should_panic(expected = "col_stride")]
    fn stride_below_nrows_rejected() {
        let data = vec![0.0f64; 10];
        let _ = Panel::with_stride(&data, 4, 2, 3);
    }

    #[test]
    #[should_panic(expected = "column 2")]
    fn column_out_of_range_rejected() {
        let data = vec![0.0f64; 4];
        let p = Panel::new(&data, 2, 2);
        let _ = p.col(2);
    }

    #[test]
    fn panel_buf_gathers_scatters_and_reshapes_without_regrowth() {
        let mut buf = PanelBuf::<f64>::new();
        let c0 = [1.0, 2.0, 3.0];
        let c1 = [4.0, 5.0, 6.0];
        buf.gather(3, [c0.as_slice(), c1.as_slice()].into_iter());
        assert_eq!((buf.nrows(), buf.ncols()), (3, 2));
        assert_eq!(buf.panel().col(1), &c1);
        let mut out = [0.0; 3];
        buf.scatter_col(0, &mut out);
        assert_eq!(out, c0);
        // Shrinking the shape reuses storage; the wide gather's data is
        // simply overwritten on the next use.
        buf.ensure(2, 1);
        buf.panel_mut().col_mut(0).copy_from_slice(&[9.0, 8.0]);
        assert_eq!(buf.col(0), &[9.0, 8.0]);
        buf.fill_zero();
        assert_eq!(buf.col(0), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "column 0 length")]
    fn panel_buf_rejects_ragged_columns() {
        let mut buf = PanelBuf::<f64>::new();
        buf.gather(3, [[1.0, 2.0].as_slice()].into_iter());
    }
}
