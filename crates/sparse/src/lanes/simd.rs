//! Explicit AVX2 paths for the `f64` lane micro-ops at the fixed panel
//! widths 4 and 8 (`simd` feature, x86_64 only).
//!
//! Each entry point returns `false` when it cannot take over —
//! dynamic width, non-`f64` scalar, or no AVX2 at runtime — and the
//! caller falls through to the portable chunked-scalar body.
//!
//! ## Bitwise contract
//!
//! The vector bodies perform exactly the scalar bodies' arithmetic,
//! lane-slotted: one IEEE-754 multiply then one add/subtract per
//! element, in the same per-lane order (elementwise ops have no order;
//! `dot` keeps its row-major accumulation by holding one vector
//! accumulator whose slot `c` is lane `c`). **No FMA instructions**:
//! [`Scalar::mul_add`](crate::scalar::Scalar::mul_add) is deliberately
//! plain `a*b + c` with two roundings, and a contracted `vfmadd` would
//! change low bits — so these kernels use `_mm256_mul_pd` followed by
//! `_mm256_add_pd`/`_mm256_sub_pd`, never `_mm256_fmadd_pd`. x86 NaN
//! propagation is identical between `mulpd`/`mulsd`, so even poisoned
//! lanes stay bit-identical (pinned by the NaN/∞ tests in `lanes.rs`).
//!
//! ## Safety
//!
//! * The `f64` slice casts are guarded by a `TypeId` equality check
//!   (`Scalar: 'static`), making the pointer cast a same-type no-op.
//! * The `#[target_feature(enable = "avx2")]` bodies are only reached
//!   after a cached `is_x86_feature_detected!("avx2")` probe.
//! * All loads/stores are unaligned (`loadu`/`storeu`) and bounded by
//!   the `while i + W <= len` loop conditions.

use super::Lanes;
use crate::scalar::Scalar;
use core::arch::x86_64::{
    __m256d, _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_setzero_pd, _mm256_storeu_pd,
    _mm256_sub_pd,
};
use std::any::TypeId;
use std::sync::atomic::{AtomicU8, Ordering};

/// Cached runtime AVX2 probe (0 = unknown, 1 = no, 2 = yes).
#[inline]
fn avx2_available() -> bool {
    static STATE: AtomicU8 = AtomicU8::new(0);
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let yes = std::arch::is_x86_feature_detected!("avx2");
            STATE.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
            yes
        }
    }
}

/// `true` when `(T, L)` is a combination the vector bodies cover and
/// the CPU agrees. `L::FIXED` and the `TypeId` test are compile-time
/// constants, so the ineligible monomorphizations fold to `false`.
#[inline(always)]
fn eligible<T: Scalar, L: Lanes>() -> bool {
    matches!(L::FIXED, Some(4) | Some(8))
        && TypeId::of::<T>() == TypeId::of::<f64>()
        && avx2_available()
}

/// Reinterprets a `&[T]` whose `T` was proven (by `TypeId`) to be `f64`.
#[inline(always)]
fn as_f64<T: Scalar>(x: &[T]) -> &[f64] {
    debug_assert_eq!(TypeId::of::<T>(), TypeId::of::<f64>());
    // Safety: T == f64 (checked above), so layout and validity match.
    unsafe { std::slice::from_raw_parts(x.as_ptr().cast::<f64>(), x.len()) }
}

/// Mutable variant of [`as_f64`].
#[inline(always)]
fn as_f64_mut<T: Scalar>(x: &mut [T]) -> &mut [f64] {
    debug_assert_eq!(TypeId::of::<T>(), TypeId::of::<f64>());
    // Safety: as above; exclusivity carries over from the input borrow.
    unsafe { std::slice::from_raw_parts_mut(x.as_mut_ptr().cast::<f64>(), x.len()) }
}

/// `y[i] += alpha[i % k] · x[i]`, vectorized. Returns `false` if not taken.
#[inline]
pub(super) fn axpy<T: Scalar, L: Lanes>(alpha: &[T], x: &[T], y: &mut [T]) -> bool {
    if !eligible::<T, L>() {
        return false;
    }
    let (alpha, x, y) = (as_f64(alpha), as_f64(x), as_f64_mut(y));
    // Safety: AVX2 presence established by `eligible`.
    unsafe {
        match L::FIXED {
            Some(4) => axpy4(alpha, x, y),
            _ => axpy8(alpha, x, y),
        }
    }
    true
}

/// `y[i] -= l[i % k] · x[i]`, vectorized. Returns `false` if not taken.
#[inline]
pub(super) fn fnma<T: Scalar, L: Lanes>(l: &[T], x: &[T], y: &mut [T]) -> bool {
    if !eligible::<T, L>() {
        return false;
    }
    let (l, x, y) = (as_f64(l), as_f64(x), as_f64_mut(y));
    // Safety: AVX2 presence established by `eligible`.
    unsafe {
        match L::FIXED {
            Some(4) => fnma4(l, x, y),
            _ => fnma8(l, x, y),
        }
    }
    true
}

/// `out[c] = Σ_r x[r·k+c] · y[r·k+c]` (out pre-zeroed by the caller),
/// vectorized. Returns `false` if not taken.
#[inline]
pub(super) fn dot<T: Scalar, L: Lanes>(x: &[T], y: &[T], out: &mut [T]) -> bool {
    if !eligible::<T, L>() {
        return false;
    }
    let (x, y, out) = (as_f64(x), as_f64(y), as_f64_mut(out));
    // Safety: AVX2 presence established by `eligible`.
    unsafe {
        match L::FIXED {
            Some(4) => dot4(x, y, out),
            _ => dot8(x, y, out),
        }
    }
    true
}

/// `x[i] *= alpha[i % k]`, vectorized. Returns `false` if not taken.
#[inline]
pub(super) fn scale<T: Scalar, L: Lanes>(alpha: &[T], x: &mut [T]) -> bool {
    if !eligible::<T, L>() {
        return false;
    }
    let (alpha, x) = (as_f64(alpha), as_f64_mut(x));
    // Safety: AVX2 presence established by `eligible`.
    unsafe {
        match L::FIXED {
            Some(4) => scale4(alpha, x),
            _ => scale8(alpha, x),
        }
    }
    true
}

// ---- width-4 bodies: one 256-bit vector per interleaved row ----

#[target_feature(enable = "avx2")]
unsafe fn axpy4(alpha: &[f64], x: &[f64], y: &mut [f64]) {
    let av = _mm256_loadu_pd(alpha.as_ptr());
    let n = y.len();
    let mut i = 0;
    while i + 4 <= n {
        let xv = _mm256_loadu_pd(x.as_ptr().add(i));
        let yv = _mm256_loadu_pd(y.as_ptr().add(i));
        // mul then add — two roundings, matching Scalar semantics.
        let r = _mm256_add_pd(yv, _mm256_mul_pd(av, xv));
        _mm256_storeu_pd(y.as_mut_ptr().add(i), r);
        i += 4;
    }
}

#[target_feature(enable = "avx2")]
unsafe fn fnma4(l: &[f64], x: &[f64], y: &mut [f64]) {
    let lv = _mm256_loadu_pd(l.as_ptr());
    let n = y.len();
    let mut i = 0;
    while i + 4 <= n {
        let xv = _mm256_loadu_pd(x.as_ptr().add(i));
        let yv = _mm256_loadu_pd(y.as_ptr().add(i));
        let r = _mm256_sub_pd(yv, _mm256_mul_pd(lv, xv));
        _mm256_storeu_pd(y.as_mut_ptr().add(i), r);
        i += 4;
    }
}

#[target_feature(enable = "avx2")]
unsafe fn dot4(x: &[f64], y: &[f64], out: &mut [f64]) {
    // One accumulator vector: slot c is lane c, added in row order —
    // exactly the scalar accumulation sequence per lane.
    let mut acc = _mm256_setzero_pd();
    let n = x.len();
    let mut i = 0;
    while i + 4 <= n {
        let xv = _mm256_loadu_pd(x.as_ptr().add(i));
        let yv = _mm256_loadu_pd(y.as_ptr().add(i));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(xv, yv));
        i += 4;
    }
    _mm256_storeu_pd(out.as_mut_ptr(), acc);
}

#[target_feature(enable = "avx2")]
unsafe fn scale4(alpha: &[f64], x: &mut [f64]) {
    let av = _mm256_loadu_pd(alpha.as_ptr());
    let n = x.len();
    let mut i = 0;
    while i + 4 <= n {
        let xv = _mm256_loadu_pd(x.as_ptr().add(i));
        // x · alpha, matching the scalar body's operand order.
        _mm256_storeu_pd(x.as_mut_ptr().add(i), _mm256_mul_pd(xv, av));
        i += 4;
    }
}

// ---- width-8 bodies: two 256-bit vectors per interleaved row ----

#[target_feature(enable = "avx2")]
unsafe fn axpy8(alpha: &[f64], x: &[f64], y: &mut [f64]) {
    let (a0, a1) = load2(alpha.as_ptr());
    let n = y.len();
    let mut i = 0;
    while i + 8 <= n {
        let (x0, x1) = load2(x.as_ptr().add(i));
        let (y0, y1) = load2(y.as_ptr().add(i));
        store2(
            y.as_mut_ptr().add(i),
            _mm256_add_pd(y0, _mm256_mul_pd(a0, x0)),
            _mm256_add_pd(y1, _mm256_mul_pd(a1, x1)),
        );
        i += 8;
    }
}

#[target_feature(enable = "avx2")]
unsafe fn fnma8(l: &[f64], x: &[f64], y: &mut [f64]) {
    let (l0, l1) = load2(l.as_ptr());
    let n = y.len();
    let mut i = 0;
    while i + 8 <= n {
        let (x0, x1) = load2(x.as_ptr().add(i));
        let (y0, y1) = load2(y.as_ptr().add(i));
        store2(
            y.as_mut_ptr().add(i),
            _mm256_sub_pd(y0, _mm256_mul_pd(l0, x0)),
            _mm256_sub_pd(y1, _mm256_mul_pd(l1, x1)),
        );
        i += 8;
    }
}

#[target_feature(enable = "avx2")]
unsafe fn dot8(x: &[f64], y: &[f64], out: &mut [f64]) {
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let n = x.len();
    let mut i = 0;
    while i + 8 <= n {
        let (x0, x1) = load2(x.as_ptr().add(i));
        let (y0, y1) = load2(y.as_ptr().add(i));
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(x0, y0));
        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(x1, y1));
        i += 8;
    }
    store2(out.as_mut_ptr(), acc0, acc1);
}

#[target_feature(enable = "avx2")]
unsafe fn scale8(alpha: &[f64], x: &mut [f64]) {
    let (a0, a1) = load2(alpha.as_ptr());
    let n = x.len();
    let mut i = 0;
    while i + 8 <= n {
        let (x0, x1) = load2(x.as_ptr().add(i));
        store2(
            x.as_mut_ptr().add(i),
            _mm256_mul_pd(x0, a0),
            _mm256_mul_pd(x1, a1),
        );
        i += 8;
    }
}

#[target_feature(enable = "avx2")]
#[inline]
unsafe fn load2(p: *const f64) -> (__m256d, __m256d) {
    (_mm256_loadu_pd(p), _mm256_loadu_pd(p.add(4)))
}

#[target_feature(enable = "avx2")]
#[inline]
unsafe fn store2(p: *mut f64, lo: __m256d, hi: __m256d) {
    _mm256_storeu_pd(p, lo);
    _mm256_storeu_pd(p.add(4), hi);
}
