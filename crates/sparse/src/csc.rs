//! Compressed Sparse Column companion format.
//!
//! Javelin's algorithms are row-oriented (up-looking), but a handful of
//! substrate operations — column counts for orderings, left-looking
//! reference implementations, transposed access in the heavy baseline —
//! want column-major storage. `CscMatrix` is deliberately thin: it shares
//! the validation logic with CSR by construction through
//! [`crate::CsrMatrix::to_csc`] or validated raw parts.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;

/// An immutable sparse matrix in CSC format.
///
/// `colptr` has `ncols + 1` entries; within each column row indices are
/// strictly increasing.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix<T> {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowidx: Vec<usize>,
    vals: Vec<T>,
}

impl<T: Scalar> CscMatrix<T> {
    /// Builds a CSC matrix after validating all structural invariants.
    ///
    /// # Errors
    /// [`SparseError::InvalidStructure`] when any invariant fails.
    pub fn try_from_parts(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowidx: Vec<usize>,
        vals: Vec<T>,
    ) -> Result<Self, SparseError> {
        // Validate by viewing the arrays as a CSR of the transpose.
        CsrMatrix::try_from_parts(ncols, nrows, colptr, rowidx, vals).map(|m| {
            let (nc, _nr, colptr, rowidx, vals) = m.into_parts();
            CscMatrix {
                nrows,
                ncols: nc,
                colptr,
                rowidx,
                vals,
            }
        })
    }

    /// Builds a CSC matrix without validation (debug builds assert).
    pub fn from_raw_unchecked(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowidx: Vec<usize>,
        vals: Vec<T>,
    ) -> Self {
        #[cfg(debug_assertions)]
        {
            Self::try_from_parts(nrows, ncols, colptr, rowidx, vals)
                .expect("from_raw_unchecked: invalid CSC structure")
        }
        #[cfg(not(debug_assertions))]
        CscMatrix {
            nrows,
            ncols,
            colptr,
            rowidx,
            vals,
        }
    }

    /// Number of rows.
    #[inline(always)]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline(always)]
    pub fn nnz(&self) -> usize {
        self.rowidx.len()
    }

    /// Column pointer array (`ncols + 1` entries).
    #[inline(always)]
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// Row index array.
    #[inline(always)]
    pub fn rowidx(&self) -> &[usize] {
        &self.rowidx
    }

    /// Value array.
    #[inline(always)]
    pub fn vals(&self) -> &[T] {
        &self.vals
    }

    /// Half-open range of entry indices belonging to `col`.
    #[inline(always)]
    pub fn col_range(&self, col: usize) -> std::ops::Range<usize> {
        self.colptr[col]..self.colptr[col + 1]
    }

    /// Row indices of `col`.
    #[inline(always)]
    pub fn col_rows(&self, col: usize) -> &[usize] {
        &self.rowidx[self.col_range(col)]
    }

    /// Values of `col`.
    #[inline(always)]
    pub fn col_vals(&self, col: usize) -> &[T] {
        &self.vals[self.col_range(col)]
    }

    /// Row-major copy of the same matrix.
    pub fn to_csr(&self) -> CsrMatrix<T> {
        // CSC of A is CSR of Aᵀ; transposing that yields CSR of A.
        CsrMatrix::from_raw_unchecked(
            self.ncols,
            self.nrows,
            self.colptr.clone(),
            self.rowidx.clone(),
            self.vals.clone(),
        )
        .transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(3, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, 2.0).unwrap();
        coo.push(2, 0, 3.0).unwrap();
        coo.push(2, 1, 4.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn csr_csc_roundtrip() {
        let a = sample();
        let c = a.to_csc();
        assert_eq!(c.nrows(), 3);
        assert_eq!(c.ncols(), 2);
        assert_eq!(c.nnz(), 4);
        assert_eq!(c.col_rows(0), &[0, 2]);
        assert_eq!(c.col_vals(0), &[1.0, 3.0]);
        assert_eq!(c.col_rows(1), &[1, 2]);
        let back = c.to_csr();
        assert_eq!(a, back);
    }

    #[test]
    fn validation_rejects_garbage() {
        assert!(CscMatrix::<f64>::try_from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(
            CscMatrix::<f64>::try_from_parts(2, 1, vec![0, 2], vec![1, 0], vec![1.0, 2.0]).is_err()
        );
        assert!(CscMatrix::<f64>::try_from_parts(2, 1, vec![0, 1], vec![5], vec![1.0]).is_err());
    }

    #[test]
    fn empty_csc() {
        let c = CscMatrix::<f64>::try_from_parts(0, 0, vec![0], vec![], vec![]).unwrap();
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.to_csr().nrows(), 0);
    }
}
