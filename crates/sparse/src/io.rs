//! Matrix Market I/O.
//!
//! The paper evaluates on SuiteSparse matrices distributed in Matrix
//! Market (`.mtx`) format. This reader/writer supports the subset those
//! files use: `matrix coordinate {real|integer|pattern}
//! {general|symmetric|skew-symmetric}` with `%` comments. A user holding
//! the original test matrices can reproduce every experiment on the real
//! inputs by pointing the bench binaries at a directory of `.mtx` files.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Symmetry declared in a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmSymmetry {
    /// All entries stored explicitly.
    General,
    /// Lower triangle stored; `(j,i)` implied equal to `(i,j)`.
    Symmetric,
    /// Lower triangle stored; `(j,i)` implied equal to `-(i,j)`.
    SkewSymmetric,
}

/// Value field declared in a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmField {
    /// Floating-point values.
    Real,
    /// Integer values (read as floats).
    Integer,
    /// Structure only; values set to 1.
    Pattern,
}

/// Reads a Matrix Market file from a path.
///
/// # Errors
/// [`SparseError::Io`] on file-system or parse failures.
pub fn read_matrix_market<T: Scalar>(path: impl AsRef<Path>) -> Result<CsrMatrix<T>, SparseError> {
    let f = std::fs::File::open(path.as_ref())
        .map_err(|e| SparseError::Io(format!("{}: {e}", path.as_ref().display())))?;
    read_matrix_market_from(BufReader::new(f))
}

/// Reads a Matrix Market stream.
///
/// # Errors
/// [`SparseError::Io`] on malformed headers or entries.
pub fn read_matrix_market_from<T: Scalar, R: Read>(reader: R) -> Result<CsrMatrix<T>, SparseError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| SparseError::Io("empty matrix market stream".into()))?
        .map_err(|e| SparseError::Io(e.to_string()))?;
    let head_l = header.to_ascii_lowercase();
    let toks: Vec<&str> = head_l.split_whitespace().collect();
    if toks.len() < 5 || toks[0] != "%%matrixmarket" || toks[1] != "matrix" {
        return Err(SparseError::Io(format!(
            "bad MatrixMarket banner: {header}"
        )));
    }
    if toks[2] != "coordinate" {
        return Err(SparseError::Io(format!(
            "only coordinate format supported, got {}",
            toks[2]
        )));
    }
    let field = match toks[3] {
        "real" => MmField::Real,
        "integer" => MmField::Integer,
        "pattern" => MmField::Pattern,
        other => return Err(SparseError::Io(format!("unsupported field type: {other}"))),
    };
    let symmetry = match toks[4] {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        "skew-symmetric" => MmSymmetry::SkewSymmetric,
        other => return Err(SparseError::Io(format!("unsupported symmetry: {other}"))),
    };

    // Size line: first non-comment line.
    let mut size_line = String::new();
    for line in lines.by_ref() {
        let line = line.map_err(|e| SparseError::Io(e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = trimmed.to_string();
        break;
    }
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| SparseError::Io(format!("bad size line '{size_line}': {e}")))?;
    if dims.len() != 3 {
        return Err(SparseError::Io(format!("bad size line '{size_line}'")));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);
    // Hostile-header guards: a forged size line must not drive a huge
    // allocation or overflow the mirror-capacity arithmetic below.
    if nnz > nrows.saturating_mul(ncols) {
        return Err(SparseError::Io(format!(
            "header declares {nnz} entries for a {nrows}x{ncols} matrix"
        )));
    }
    let cap = match symmetry {
        MmSymmetry::General => nnz,
        _ => nnz
            .checked_mul(2)
            .ok_or_else(|| SparseError::Io(format!("entry count {nnz} overflows capacity")))?,
    };
    // The header is untrusted: reserve at most a bounded prefix and let
    // the triplet buffers grow with the entries actually present, so a
    // forged nnz cannot drive an OOM (or a capacity panic) up front.
    const MAX_HEADER_RESERVE: usize = 1 << 20;
    let mut coo = CooMatrix::with_capacity(nrows, ncols, cap.min(MAX_HEADER_RESERVE));
    let mut seen = 0usize;
    for line in lines {
        let line = line.map_err(|e| SparseError::Io(e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| SparseError::Io(format!("short entry line: {trimmed}")))?
            .parse()
            .map_err(|e| SparseError::Io(format!("bad row index: {e}")))?;
        let c: usize = it
            .next()
            .ok_or_else(|| SparseError::Io(format!("short entry line: {trimmed}")))?
            .parse()
            .map_err(|e| SparseError::Io(format!("bad col index: {e}")))?;
        if r == 0 || c == 0 {
            return Err(SparseError::Io("matrix market indices are 1-based".into()));
        }
        if r > nrows || c > ncols {
            return Err(SparseError::IndexOutOfBounds {
                row: r - 1,
                col: c - 1,
                nrows,
                ncols,
            });
        }
        let v = match field {
            MmField::Pattern => T::ONE,
            _ => {
                let tok = it
                    .next()
                    .ok_or_else(|| SparseError::Io(format!("missing value: {trimmed}")))?;
                let mut parsed = tok
                    .parse::<f64>()
                    .map_err(|e| SparseError::Io(format!("bad value '{tok}': {e}")))?;
                if crate::fault::fire("io.value") == Some(crate::fault::FaultAction::Nan) {
                    parsed = f64::NAN;
                }
                if !parsed.is_finite() {
                    return Err(SparseError::NonFinite {
                        row: r - 1,
                        col: c - 1,
                    });
                }
                T::from_f64(parsed)
            }
        };
        coo.push(r - 1, c - 1, v)?;
        match symmetry {
            MmSymmetry::General => {}
            MmSymmetry::Symmetric => {
                if r != c {
                    coo.push(c - 1, r - 1, v)?;
                }
            }
            MmSymmetry::SkewSymmetric => {
                if r != c {
                    coo.push(c - 1, r - 1, T::ZERO - v)?;
                }
            }
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Io(format!(
            "entry count mismatch: header says {nnz}, file has {seen}"
        )));
    }
    Ok(coo.to_csr())
}

/// Writes a CSR matrix as `matrix coordinate real general`.
///
/// # Errors
/// [`SparseError::Io`] on write failures.
pub fn write_matrix_market<T: Scalar>(
    path: impl AsRef<Path>,
    a: &CsrMatrix<T>,
) -> Result<(), SparseError> {
    let f = std::fs::File::create(path.as_ref())
        .map_err(|e| SparseError::Io(format!("{}: {e}", path.as_ref().display())))?;
    write_matrix_market_to(BufWriter::new(f), a)
}

/// Writes a CSR matrix to a stream as `matrix coordinate real general`.
///
/// # Errors
/// [`SparseError::Io`] on write failures.
pub fn write_matrix_market_to<T: Scalar, W: Write>(
    mut w: W,
    a: &CsrMatrix<T>,
) -> Result<(), SparseError> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% generated by javelin-sparse")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for (r, c, v) in a.iter() {
        writeln!(w, "{} {} {:e}", r + 1, c + 1, v)?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<CsrMatrix<f64>, SparseError> {
        read_matrix_market_from(s.as_bytes())
    }

    #[test]
    fn reads_general_real() {
        let a = parse(
            "%%MatrixMarket matrix coordinate real general\n\
             % a comment\n\
             3 3 4\n\
             1 1 2.0\n\
             2 2 3.0\n\
             3 1 -1.5\n\
             3 3 4.0\n",
        )
        .unwrap();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(2, 0), Some(-1.5));
    }

    #[test]
    fn reads_symmetric_expands() {
        let a = parse(
            "%%MatrixMarket matrix coordinate real symmetric\n\
             2 2 2\n\
             1 1 1.0\n\
             2 1 5.0\n",
        )
        .unwrap();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 1), Some(5.0));
        assert_eq!(a.get(1, 0), Some(5.0));
    }

    #[test]
    fn reads_skew_symmetric() {
        let a = parse(
            "%%MatrixMarket matrix coordinate real skew-symmetric\n\
             2 2 1\n\
             2 1 3.0\n",
        )
        .unwrap();
        assert_eq!(a.get(1, 0), Some(3.0));
        assert_eq!(a.get(0, 1), Some(-3.0));
    }

    #[test]
    fn reads_pattern_and_integer() {
        let a = parse(
            "%%MatrixMarket matrix coordinate pattern general\n\
             2 2 2\n\
             1 2\n\
             2 1\n",
        )
        .unwrap();
        assert_eq!(a.get(0, 1), Some(1.0));
        let b = parse(
            "%%MatrixMarket matrix coordinate integer general\n\
             1 1 1\n\
             1 1 7\n",
        )
        .unwrap();
        assert_eq!(b.get(0, 0), Some(7.0));
    }

    #[test]
    fn rejects_bad_banner_and_counts() {
        assert!(parse("%%NotMM matrix coordinate real general\n1 1 0\n").is_err());
        assert!(parse("%%MatrixMarket matrix array real general\n1 1\n1.0\n").is_err());
        assert!(parse("%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n").is_err());
        assert!(parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n").is_err());
    }

    #[test]
    fn rejects_non_finite_values() {
        let e =
            parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 nan\n").unwrap_err();
        assert_eq!(e, SparseError::NonFinite { row: 0, col: 1 });
        let e =
            parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n2 1 inf\n").unwrap_err();
        assert_eq!(e, SparseError::NonFinite { row: 1, col: 0 });
        assert!(
            parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n2 1 -infinity\n").is_err()
        );
    }

    #[test]
    fn rejects_out_of_range_indices() {
        let e =
            parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n").unwrap_err();
        assert!(matches!(e, SparseError::IndexOutOfBounds { row: 2, .. }));
        let e =
            parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 9 1.0\n").unwrap_err();
        assert!(matches!(e, SparseError::IndexOutOfBounds { col: 8, .. }));
    }

    #[test]
    fn rejects_overflowing_headers() {
        // nnz larger than the matrix can hold: must fail before any
        // large allocation happens.
        let huge = usize::MAX;
        let e = parse(&format!(
            "%%MatrixMarket matrix coordinate real general\n2 2 {huge}\n"
        ))
        .unwrap_err();
        assert!(matches!(e, SparseError::Io(_)));
        // Symmetric capacity doubling must not wrap.
        let e = parse(&format!(
            "%%MatrixMarket matrix coordinate real symmetric\n{huge} {huge} {huge}\n"
        ))
        .unwrap_err();
        assert!(matches!(e, SparseError::Io(_)));
        // A general header where nnz == nrows·ncols (saturated) slips
        // past the density check; the bounded reservation must keep it
        // from allocating, and the missing entries make it an error.
        let e = parse(&format!(
            "%%MatrixMarket matrix coordinate real general\n{huge} {huge} {huge}\n"
        ))
        .unwrap_err();
        assert!(matches!(e, SparseError::Io(_)));
    }

    #[test]
    fn write_read_roundtrip() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.25).unwrap();
        coo.push(1, 2, -7.5e-3).unwrap();
        coo.push(2, 1, 42.0).unwrap();
        let a = coo.to_csr();
        let mut buf = Vec::new();
        write_matrix_market_to(&mut buf, &a).unwrap();
        let b: CsrMatrix<f64> = read_matrix_market_from(buf.as_slice()).unwrap();
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("javelin_sparse_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.mtx");
        let a = CsrMatrix::<f64>::identity(4);
        write_matrix_market(&path, &a).unwrap();
        let b: CsrMatrix<f64> = read_matrix_market(&path).unwrap();
        assert!(a.approx_eq(&b, 0.0));
        std::fs::remove_dir_all(&dir).ok();
    }
}
