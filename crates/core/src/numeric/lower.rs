//! The lower-stage factorization methods (paper §III-B).
//!
//! Both methods exploit the same structural fact: a row demoted to the
//! lower stage depends only on (finished) upper-stage rows until its
//! columns cross into the corner, so all trailing rows' sub-corner work
//! is mutually independent.
//!
//! * **Even-Rows** ([`factor_lower_er`], Figs. 7–8): threads take
//!   contiguous chunks of whole trailing rows and run `FACTOR_L` against
//!   the finished upper stage; good when there are clearly more demoted
//!   rows than threads.
//! * **Segmented-Rows** ([`factor_lower_sr`], Figs. 5–6): each trailing
//!   row's sub-corner entries are segmented into per-level *blocks*
//!   (contiguous column ranges, independent within a block thanks to the
//!   `lower(A+Aᵀ)` level order), blocks are optionally split into
//!   *tiles* whose updates accumulate into private delta buffers, and
//!   the whole thing runs as a DAG on the lightweight task graph —
//!   DIVIDE_COLUMNS / UPDATE_BLOCK in the paper's terms. Chosen when
//!   the demoted rows are few but heavy.
//!
//! Both finish with `FACTOR_LU` on the corner ([`factor_corner`]),
//! serial by default ("for most matrices, serial seems to be good
//! enough" — §III-B), optionally point-to-point parallel.
//!
//! Every path preserves the serial within-row operation order, so
//! results are bit-identical to the serial sweep.

// SR tiles take `LuVals` row views over their exclusively-owned entry
// subranges; the ownership protocol is documented in `kernel.rs`.
#![allow(unsafe_code)]

use crate::numeric::kernel::{eliminate_columns, finalize_row, RowWorkspace};
use crate::numeric::parallel::{factor_rows_serial, factor_rows_serial_ws};
use crate::numeric::NumericCtx;
use javelin_sparse::Scalar;
use javelin_sync::{pool, Exec, TaskGraph};
use parking_lot::Mutex;
use std::sync::atomic::Ordering;

/// Even-Rows: factors trailing rows `n_upper..n` against the finished
/// upper stage, then the corner.
pub fn factor_lower_er<T: Scalar>(
    ctx: &NumericCtx<'_, T>,
    n_upper: usize,
    nthreads: usize,
    parallel_corner: bool,
) {
    let n = ctx.rowptr.len() - 1;
    let n_lower = n - n_upper;
    if n_lower == 0 {
        return;
    }
    pool::parallel_chunks(nthreads, n_lower, |_tid, range| {
        let mut ws = RowWorkspace::new(n);
        for off in range {
            let r = n_upper + off;
            ws.load_row(ctx.rowptr, ctx.colidx, r);
            // FACTOR_L: everything left of the corner.
            eliminate_columns(ctx, &ws, r, 0, n_upper);
        }
    });
    if parallel_corner {
        factor_corner_parallel(ctx, n_upper, nthreads);
    } else {
        factor_corner(ctx, n_upper);
    }
}

/// Even-Rows on pre-built execution state: the `FACTOR_L` sweep over
/// trailing rows runs as one region on `exec` (a persistent worker team
/// by default) with each participant borrowing its preallocated
/// [`RowWorkspace`], then the corner is factored serially through
/// participant 0's workspace — zero heap allocations, zero thread
/// spawns. The numeric-refactorization path; bit-identical to
/// [`factor_lower_er`] (and, by the engines' determinism contract, to
/// Segmented-Rows and the parallel corner).
pub fn factor_lower_er_planned<T: Scalar>(
    ctx: &NumericCtx<'_, T>,
    n_upper: usize,
    exec: &Exec,
    workspaces: &[Mutex<RowWorkspace>],
) {
    let n = ctx.rowptr.len() - 1;
    let n_lower = n - n_upper;
    if n_lower == 0 {
        return;
    }
    let nthreads = exec.nthreads();
    debug_assert_eq!(workspaces.len(), nthreads);
    let chunk = n_lower.div_ceil(nthreads.max(1)).max(1);
    exec.run(|tid| {
        let start = (tid * chunk).min(n_lower);
        let end = ((tid + 1) * chunk).min(n_lower);
        if start >= end {
            return;
        }
        let mut ws = workspaces[tid].lock();
        for off in start..end {
            let r = n_upper + off;
            ws.load_row(ctx.rowptr, ctx.colidx, r);
            eliminate_columns(ctx, &ws, r, 0, n_upper);
        }
    });
    factor_rows_serial_ws(ctx, n_upper, n, n_upper, &mut workspaces[0].lock());
}

/// One Segmented-Rows work item.
enum SrNode {
    /// Small segment: divide + update directly (entry range `k_lo..k_hi`
    /// of `row`, all columns inside one level block).
    Seg {
        row: usize,
        k_lo: usize,
        k_hi: usize,
    },
    /// Tile of a large segment: divide its entries and collect update
    /// deltas into `buf`.
    Tile {
        row: usize,
        k_lo: usize,
        k_hi: usize,
        buf: usize,
    },
    /// Applies the delta buffers `bufs` (in order) to `row`.
    Apply { bufs: std::ops::Range<usize> },
}

/// Segmented-Rows: factors trailing rows via per-(row, level-block)
/// segments with tiled updates on the task graph, then the corner.
///
/// Requires the factorization to have been scheduled on the
/// `lower(A+Aᵀ)` pattern (columns within one level block are then
/// mutually independent — the observation of §III-B).
pub fn factor_lower_sr<T: Scalar>(
    ctx: &NumericCtx<'_, T>,
    n_upper: usize,
    upper_level_ptr: &[usize],
    nthreads: usize,
    tile_size: usize,
    parallel_corner: bool,
) {
    let n = ctx.rowptr.len() - 1;
    let n_lower = n - n_upper;
    if n_lower == 0 {
        return;
    }
    let tile_size = tile_size.max(4);

    // Enumerate nodes row by row, chaining each row's blocks.
    let mut nodes: Vec<SrNode> = Vec::new();
    let mut deps: Vec<(usize, usize)> = Vec::new();
    let mut n_bufs = 0usize;
    for r in n_upper..n {
        let (rs, re) = (ctx.rowptr[r], ctx.rowptr[r + 1]);
        // Sub-corner entries: columns < n_upper form a sorted prefix.
        let sub_end = rs + ctx.colidx[rs..re].partition_point(|&c| c < n_upper);
        let mut k = rs;
        let mut prev_last: Option<usize> = None; // last node of previous block
        let mut lvl = 0usize;
        while k < sub_end {
            // Find this block: the maximal run of columns within one
            // upper level.
            while upper_level_ptr[lvl + 1] <= ctx.colidx[k] {
                lvl += 1;
            }
            let block_col_end = upper_level_ptr[lvl + 1];
            let seg_end = rs + ctx.colidx[rs..re].partition_point(|&c| c < block_col_end);
            debug_assert!(seg_end > k);
            let seg_len = seg_end - k;
            let first_node = nodes.len();
            let last_node;
            if seg_len <= tile_size {
                nodes.push(SrNode::Seg {
                    row: r,
                    k_lo: k,
                    k_hi: seg_end,
                });
                last_node = first_node;
            } else {
                // DIVIDE_COLUMNS over tiles, then one UPDATE apply.
                let buf_lo = n_bufs;
                let mut t = k;
                while t < seg_end {
                    let t_hi = (t + tile_size).min(seg_end);
                    nodes.push(SrNode::Tile {
                        row: r,
                        k_lo: t,
                        k_hi: t_hi,
                        buf: n_bufs,
                    });
                    n_bufs += 1;
                    t = t_hi;
                }
                let apply = nodes.len();
                nodes.push(SrNode::Apply {
                    bufs: buf_lo..n_bufs,
                });
                for tile_node in first_node..apply {
                    deps.push((tile_node, apply));
                }
                last_node = apply;
            }
            if let Some(p) = prev_last {
                // Chain: previous block of this row must fully finish
                // first (its updates feed this block's values).
                for node in first_node..=last_node {
                    if matches!(nodes[node], SrNode::Apply { .. }) {
                        continue; // already chained through its tiles
                    }
                    deps.push((p, node));
                }
            }
            prev_last = Some(last_node);
            k = seg_end;
        }
    }

    let bufs: Vec<Mutex<Vec<(usize, T)>>> = (0..n_bufs).map(|_| Mutex::new(Vec::new())).collect();
    let graph = TaskGraph::new(nodes.len(), &deps);
    let workspaces: Vec<Mutex<RowWorkspace>> = (0..nthreads)
        .map(|_| Mutex::new(RowWorkspace::new(n)))
        .collect();
    let dropping = !ctx.drop_thresh.is_empty();
    graph.execute_with_tid(nthreads, |tid, node| {
        match &nodes[node] {
            SrNode::Seg { row, k_lo, k_hi } => {
                let mut ws = workspaces[tid].lock();
                ws.load_row(ctx.rowptr, ctx.colidx, *row);
                let col_lo = ctx.colidx[*k_lo];
                let col_hi = ctx.colidx[*k_hi - 1] + 1;
                eliminate_columns(ctx, &ws, *row, col_lo, col_hi);
            }
            SrNode::Tile {
                row,
                k_lo,
                k_hi,
                buf,
            } => {
                // DIVIDE_COLUMNS + delta collection (race-free: each
                // tile writes only its own entries and its own buffer).
                let mut ws = workspaces[tid].lock();
                ws.load_row(ctx.rowptr, ctx.colidx, *row);
                let mut deltas: Vec<(usize, T)> = Vec::new();
                // Safety: concurrent tiles of one block own disjoint
                // entry subranges, and same-row blocks are chained
                // through the task graph — `k_lo..k_hi` is exclusively
                // this tile's until its graph successors run.
                let vt = unsafe { ctx.vals.view_mut(*k_lo..*k_hi) };
                for (i, kk) in (*k_lo..*k_hi).enumerate() {
                    let c = ctx.colidx[kk];
                    // Safety: row `c` is an upper-stage row, finalized
                    // before the lower stage started.
                    let uc = unsafe { ctx.vals.view(ctx.diag_pos[c]..ctx.rowptr[c + 1]) };
                    let l = vt[i] / uc[0];
                    if dropping && l.abs() < ctx.drop_thresh[*row] {
                        vt[i] = T::ZERO;
                        ctx.dropped.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    vt[i] = l;
                    for (off, uk) in ((ctx.diag_pos[c] + 1)..ctx.rowptr[c + 1]).enumerate() {
                        let j = ctx.colidx[uk];
                        if let Some(p) = ws.entry_of(j) {
                            deltas.push((p, l * uc[off + 1]));
                        }
                    }
                }
                *bufs[*buf].lock() = deltas;
            }
            SrNode::Apply { bufs: range } => {
                // UPDATE_BLOCK: apply deltas in tile order — exactly the
                // serial left-to-right accumulation.
                for b in range.clone() {
                    let deltas = bufs[b].lock();
                    for &(p, d) in deltas.iter() {
                        ctx.vals.set(p, ctx.vals.get(p) - d);
                    }
                }
            }
        }
    });
    if parallel_corner {
        factor_corner_parallel(ctx, n_upper, nthreads);
    } else {
        factor_corner(ctx, n_upper);
    }
}

/// FACTOR_LU on the corner: up-looking over trailing rows restricted to
/// corner columns, in row order.
pub fn factor_corner<T: Scalar>(ctx: &NumericCtx<'_, T>, n_upper: usize) {
    let n = ctx.rowptr.len() - 1;
    factor_rows_serial(ctx, n_upper, n, n_upper);
}

/// Point-to-point parallel FACTOR_LU on the corner — the paper's
/// optional variant ("the factorization of the corner can be done in
/// serial or parallel"; §III-B). Levels are computed on the corner's
/// own dependency sub-pattern, then the standard pruned-wait machinery
/// runs. Bit-identical to [`factor_corner`].
pub fn factor_corner_parallel<T: Scalar>(ctx: &NumericCtx<'_, T>, n_upper: usize, nthreads: usize) {
    use javelin_level::P2PSchedule;
    use javelin_sync::ProgressCounters;

    let n = ctx.rowptr.len() - 1;
    let m = n - n_upper;
    if m == 0 {
        return;
    }
    if nthreads <= 1 || m < 2 {
        factor_corner(ctx, n_upper);
        return;
    }
    // Corner levels: dep = corner column c (n_upper <= c < r).
    let mut level_of = vec![0usize; m];
    let mut n_levels = 1usize;
    for e in 0..m {
        let r = n_upper + e;
        let mut lev = 0usize;
        for k in ctx.rowptr[r]..ctx.diag_pos[r] {
            let c = ctx.colidx[k];
            if c >= n_upper {
                lev = lev.max(level_of[c - n_upper] + 1);
            }
        }
        level_of[e] = lev;
        n_levels = n_levels.max(lev + 1);
    }
    // Group rows by level (stable): exec order stays topological.
    let mut level_ptr = vec![0usize; n_levels + 1];
    for &l in &level_of {
        level_ptr[l + 1] += 1;
    }
    for l in 0..n_levels {
        level_ptr[l + 1] += level_ptr[l];
    }
    let mut row_of_task = vec![0usize; m];
    let mut next = level_ptr.clone();
    for (e, &l) in level_of.iter().enumerate() {
        row_of_task[next[l]] = n_upper + e;
        next[l] += 1;
    }
    let mut task_of_row = vec![0usize; m];
    for (t, &r) in row_of_task.iter().enumerate() {
        task_of_row[r - n_upper] = t;
    }
    let schedule = P2PSchedule::build(m, nthreads, &level_ptr, |task, out| {
        let r = row_of_task[task];
        for k in ctx.rowptr[r]..ctx.diag_pos[r] {
            let c = ctx.colidx[k];
            if c >= n_upper {
                out.push(task_of_row[c - n_upper]);
            }
        }
    });
    let progress = ProgressCounters::new(nthreads);
    pool::run_on_threads(nthreads, |tid| {
        let mut ws = RowWorkspace::new(n);
        for &task in schedule.thread_tasks(tid) {
            progress.wait_all(schedule.waits(task));
            let r = row_of_task[task];
            ws.load_row(ctx.rowptr, ctx.colidx, r);
            eliminate_columns(ctx, &ws, r, n_upper, n);
            finalize_row(ctx, r);
            progress.bump(tid);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::kernel::LuVals;
    use crate::numeric::parallel::factor_serial;
    use crate::options::ZeroPivotPolicy;
    use std::sync::atomic::AtomicUsize;

    /// Builds a small system with a wide level-0 block (cols 0..6) and
    /// two heavy trailing rows (6, 7) that depend on all of it.
    fn two_stage_case() -> (Vec<usize>, Vec<usize>, Vec<usize>, Vec<f64>, Vec<usize>) {
        // Rows 0..6: diagonal only (level 0). Rows 6..8: full lower
        // coupling + corner 2x2.
        let n = 8;
        let mut rowptr = vec![0usize];
        let mut colidx = Vec::new();
        let mut vals = Vec::new();
        for r in 0..6 {
            colidx.push(r);
            vals.push(4.0 + r as f64);
            rowptr.push(colidx.len());
        }
        for r in 6..n {
            for c in 0..6 {
                colidx.push(c);
                vals.push(1.0 + (r * 7 + c) as f64 * 0.1);
            }
            if r == 7 {
                colidx.push(6);
                vals.push(0.5);
            }
            colidx.push(r);
            vals.push(20.0 + r as f64);
            rowptr.push(colidx.len());
        }
        let diag_pos = (0..n)
            .map(|r| {
                let lo = rowptr[r];
                lo + colidx[lo..rowptr[r + 1]].binary_search(&r).unwrap()
            })
            .collect();
        // Upper level structure: single level covering cols 0..6.
        let upper_level_ptr = vec![0, 6];
        (rowptr, colidx, diag_pos, vals, upper_level_ptr)
    }

    fn run_engine(which: &str, nthreads: usize, tile: usize) -> Vec<u64> {
        let (rowptr, colidx, diag_pos, flat, upper_level_ptr) = two_stage_case();
        let vals = LuVals::from_values(&flat);
        let replaced = AtomicUsize::new(0);
        let dropped = AtomicUsize::new(0);
        let failed = AtomicUsize::new(usize::MAX);
        let ctx = NumericCtx {
            rowptr: &rowptr,
            colidx: &colidx,
            diag_pos: &diag_pos,
            vals: &vals,
            drop_thresh: &[],
            milu_omega: 0.0,
            pivot_threshold: 1e-14,
            zero_pivot: ZeroPivotPolicy::Error,
            replaced: &replaced,
            dropped: &dropped,
            failed_row: &failed,
        };
        match which {
            "serial" => factor_serial(&ctx),
            "er" => {
                // Upper stage: rows 0..6 are diagonal-only; finalize them.
                factor_rows_serial(&ctx, 0, 6, 0);
                factor_lower_er(&ctx, 6, nthreads, false);
            }
            "sr" => {
                factor_rows_serial(&ctx, 0, 6, 0);
                factor_lower_sr(&ctx, 6, &upper_level_ptr, nthreads, tile, false);
            }
            other => panic!("unknown engine {other}"),
        }
        vals.into_values().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn er_matches_serial_bitwise() {
        let reference = run_engine("serial", 1, 4);
        for nthreads in [1, 2, 4] {
            assert_eq!(
                run_engine("er", nthreads, 4),
                reference,
                "nthreads={nthreads}"
            );
        }
    }

    #[test]
    fn sr_matches_serial_bitwise_across_tiles_and_threads() {
        let reference = run_engine("serial", 1, 4);
        for nthreads in [1, 2, 3] {
            for tile in [4, 5, 64] {
                assert_eq!(
                    run_engine("sr", nthreads, tile),
                    reference,
                    "nthreads={nthreads} tile={tile}"
                );
            }
        }
    }

    #[test]
    fn empty_lower_stage_is_noop() {
        let (rowptr, colidx, diag_pos, flat, upper_level_ptr) = two_stage_case();
        let vals = LuVals::from_values(&flat);
        let replaced = AtomicUsize::new(0);
        let dropped = AtomicUsize::new(0);
        let failed = AtomicUsize::new(usize::MAX);
        let ctx = NumericCtx {
            rowptr: &rowptr,
            colidx: &colidx,
            diag_pos: &diag_pos,
            vals: &vals,
            drop_thresh: &[],
            milu_omega: 0.0,
            pivot_threshold: 1e-14,
            zero_pivot: ZeroPivotPolicy::Error,
            replaced: &replaced,
            dropped: &dropped,
            failed_row: &failed,
        };
        let n = rowptr.len() - 1;
        factor_lower_er(&ctx, n, 2, false);
        factor_lower_sr(&ctx, n, &upper_level_ptr, 2, 8, false);
        // Values untouched.
        assert_eq!(vals.into_values(), flat);
    }
}
