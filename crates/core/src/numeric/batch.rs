//! Batched numeric factorization: `k` value-sets through **one**
//! schedule walk.
//!
//! The scenario workloads of the paper's motivating domain (circuit
//! parameter sweeps, Monte-Carlo corners) produce many
//! *pattern-identical* matrices. Factoring them one by one repeats the
//! part that does not depend on the values at all: the level-schedule
//! walk, the point-to-point waits, the counter resets, the team
//! regions and the per-row sparse-accumulator loads. The batch kernels
//! here run that pattern machinery **once** and loop the per-row
//! arithmetic over the `k` value-sets through the
//! [`Lanes`] layer — `FixedLanes<K>`
//! monomorphizations for `k ∈ {1, 4, 8}`, the bit-identical `DynLanes`
//! fallback otherwise.
//!
//! Layout: factor values are **row-interleaved** per entry — scenario
//! `c` of LU entry `e` lives at `e·k + c` (the [`Lanes::idx`]
//! convention), so one entry's `k` scenarios are contiguous for the
//! inner per-lane loops. Per-scenario drop thresholds use the same
//! interleaving over rows (`r·k + c`).
//!
//! Determinism: lane arithmetic touches only lane-`c` positions and
//! lane-`c` counters, and within a lane the operations run in exactly
//! the scalar kernel's order. Scenario `c` of any batch engine is
//! therefore **bit-identical** to the scalar engines run on matrix `c`
//! alone — the contract the differential proptests in
//! `crates/core/tests/batch_differential.rs` enforce.

#![allow(unsafe_code)] // LuVals row views; protocol documented in kernel.rs.

use crate::numeric::kernel::{LuVals, RowWorkspace};
use crate::options::ZeroPivotPolicy;
use javelin_level::P2PSchedule;
use javelin_sparse::lanes::{lane_fnma, Lanes};
use javelin_sparse::Scalar;
use javelin_sync::{Exec, ProgressCounters};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Shared mutable state of a batched numeric run: the interleaved
/// value buffer plus **per-scenario** counters, so one scenario's
/// breakdown or drop statistics never bleed into its neighbours.
pub struct BatchNumericCtx<'a, T: Scalar> {
    /// Combined-LU pattern row pointers (permuted).
    pub rowptr: &'a [usize],
    /// Combined-LU pattern column indices (permuted).
    pub colidx: &'a [usize],
    /// Diagonal entry position of each row.
    pub diag_pos: &'a [usize],
    /// Interleaved bit-packed values: scenario `c` of entry `e` at
    /// `e·k + c`.
    pub vals: &'a LuVals<T>,
    /// Interleaved per-scenario τ drop thresholds (`r·k + c`); an empty
    /// slice disables dropping for every scenario.
    pub drop_thresh: &'a [T],
    /// MILU compensation factor ω (shared: an options knob, not data).
    pub milu_omega: T,
    /// Pivot breakdown threshold.
    pub pivot_threshold: T,
    /// Breakdown policy.
    pub zero_pivot: ZeroPivotPolicy,
    /// Per-scenario replaced-pivot counters.
    pub replaced: &'a [AtomicUsize],
    /// Per-scenario dropped-entry counters.
    pub dropped: &'a [AtomicUsize],
    /// Per-scenario breakdown flags: `usize::MAX` = ok, else the
    /// smallest failing row + 1 of that scenario.
    pub failed_row: &'a [AtomicUsize],
}

impl<'a, T: Scalar> BatchNumericCtx<'a, T> {
    /// Entry range of a row.
    #[inline(always)]
    pub fn row_range(&self, r: usize) -> std::ops::Range<usize> {
        self.rowptr[r]..self.rowptr[r + 1]
    }

    /// Records a pivot breakdown of scenario `lane` at `row`.
    #[inline]
    pub fn record_failure(&self, lane: usize, row: usize) {
        // Keep the smallest failing row for a deterministic error.
        self.failed_row[lane].fetch_min(row + 1, Ordering::AcqRel);
    }
}

/// Batched [`eliminate_columns`](crate::numeric::kernel::eliminate_columns):
/// the up-looking elimination steps of row `r` restricted to the column
/// window, with the per-entry arithmetic looped over the `k` scenario
/// lanes. The pattern walk (entry scan, window clipping, U-row
/// traversal, `ws` lookups) runs once and serves every lane; within a
/// lane the operations follow exactly the scalar kernel's order.
#[inline]
pub fn eliminate_columns_lanes<T: Scalar, L: Lanes>(
    lanes: L,
    ctx: &BatchNumericCtx<'_, T>,
    ws: &RowWorkspace,
    r: usize,
    col_lo: usize,
    col_hi: usize,
) {
    let k = lanes.width();
    let hi = col_hi.min(r);
    let dropping = !ctx.drop_thresh.is_empty();
    let erange = ctx.row_range(r);
    let base = erange.start;
    // Safety: the batch engines call this only while row `r` is
    // exclusively owned by this worker (between its ready- and
    // retire-signal), so its `k` interleaved lanes are private.
    let vr = unsafe { ctx.vals.view_mut(base * k..erange.end * k) };
    for e in erange {
        let c = ctx.colidx[e];
        if c >= hi {
            break;
        }
        if c < col_lo {
            continue;
        }
        let dp = ctx.diag_pos[c];
        let u_hi = ctx.rowptr[c + 1];
        // Safety: row `c < r` is finalized, hence quiescent; its lanes
        // (diagonal included) are read-only for the rest of the run.
        let uc = unsafe { ctx.vals.view(dp * k..u_hi * k) };
        let le = (e - base) * k;
        if dropping {
            // τ-dropping is per-lane control flow (each lane decides
            // independently whether to zero the entry and skip its
            // sweep), so keep the scalar lane-major walk.
            for lane in 0..k {
                let l = vr[le + lane] / uc[lane];
                if l.abs() < ctx.drop_thresh[lanes.idx(r, lane)] {
                    // This lane treats the entry as zero: skip its update
                    // sweep. The position stays in the (shared) pattern.
                    vr[le + lane] = T::ZERO;
                    ctx.dropped[lane].fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                vr[le + lane] = l;
                // a[r, j] -= l * u[c, j] for every j > c stored in both rows.
                for (off, kk) in ((dp + 1)..u_hi).enumerate() {
                    let j = ctx.colidx[kk];
                    if let Some(p) = ws.entry_of(j) {
                        vr[(p - base) * k + lane] -= l * uc[(off + 1) * k + lane];
                    }
                }
            }
        } else {
            // Fused path: no lane can drop, so compute every lane's
            // multiplier first, then retire the update sweep one entry
            // at a time through the k-lane `lane_fnma` micro-op.
            // Entry-major vs lane-major is bit-identical: each
            // (entry, lane) location is updated exactly once per
            // eliminated column, in the same per-location order, with
            // the same multiply-then-subtract expression.
            //
            // Columns are sorted within a row, so every update position
            // `p` lies strictly past entry `e`; splitting at the end of
            // `e`'s lane block lets the stored multipliers serve as
            // `lane_fnma`'s per-lane coefficients.
            let (head, tail) = vr.split_at_mut(le + k);
            let lrow = &mut head[le..];
            for (lv, &piv) in lrow.iter_mut().zip(&uc[..k]) {
                *lv /= piv;
            }
            for (off, kk) in ((dp + 1)..u_hi).enumerate() {
                let j = ctx.colidx[kk];
                if let Some(p) = ws.entry_of(j) {
                    let pe = (p - base) * k - (le + k);
                    lane_fnma(
                        lanes,
                        lrow,
                        &uc[(off + 1) * k..(off + 2) * k],
                        &mut tail[pe..pe + k],
                    );
                }
            }
        }
    }
}

/// Batched [`finalize_row`](crate::numeric::kernel::finalize_row):
/// τ-drop on the strict U part, MILU compensation and the pivot
/// breakdown policy, per scenario lane. A collapsing pivot marks (or,
/// under [`ZeroPivotPolicy::Replace`], repairs) **only its own lane**;
/// neighbours finalize untouched. The `numeric.pivot` failpoint fires
/// once per lane, so chaos tests can poison a single scenario column.
#[inline]
pub fn finalize_row_lanes<T: Scalar, L: Lanes>(lanes: L, ctx: &BatchNumericCtx<'_, T>, r: usize) {
    let k = lanes.width();
    let dp = ctx.diag_pos[r];
    let dropping = !ctx.drop_thresh.is_empty();
    // Safety: finalize runs exactly once per row, inside row `r`'s
    // exclusive ownership window, before any dependent row reads it.
    let vr = unsafe { ctx.vals.view_mut(dp * k..ctx.rowptr[r + 1] * k) };
    for lane in 0..k {
        let mut dropped_sum = T::ZERO;
        if dropping {
            let thresh = ctx.drop_thresh[lanes.idx(r, lane)];
            for e in 1..vr.len() / k {
                let v = vr[e * k + lane];
                if v != T::ZERO && v.abs() < thresh {
                    vr[e * k + lane] = T::ZERO;
                    dropped_sum += v;
                    ctx.dropped[lane].fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let mut d = vr[lane];
        if ctx.milu_omega != T::ZERO {
            d += ctx.milu_omega * dropped_sum;
        }
        match javelin_sparse::fault::fire("numeric.pivot") {
            Some(javelin_sparse::fault::FaultAction::Zero) => d = T::ZERO,
            Some(javelin_sparse::fault::FaultAction::Nan) => d = T::from_f64(f64::NAN),
            Some(javelin_sparse::fault::FaultAction::Panic) => {
                panic!("fault injected at numeric.pivot")
            }
            None => {}
        }
        if d.abs() < ctx.pivot_threshold || !d.is_finite() {
            match ctx.zero_pivot {
                ZeroPivotPolicy::Error | ZeroPivotPolicy::ShiftRetry { .. } => {
                    ctx.record_failure(lane, r)
                }
                ZeroPivotPolicy::Replace { replacement } => {
                    let rep = T::from_f64(replacement);
                    d = if d < T::ZERO { -rep } else { rep };
                    ctx.replaced[lane].fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        vr[lane] = d;
    }
}

/// Batched serial up-looking factorization of rows `lo..hi` against
/// columns `col_lo..` — one `load_row` per row serves all `k` lanes.
pub fn factor_batch_rows_serial_ws<T: Scalar, L: Lanes>(
    lanes: L,
    ctx: &BatchNumericCtx<'_, T>,
    lo: usize,
    hi: usize,
    col_lo: usize,
    ws: &mut RowWorkspace,
) {
    let n = ctx.rowptr.len() - 1;
    for r in lo..hi {
        ws.load_row(ctx.rowptr, ctx.colidx, r);
        eliminate_columns_lanes(lanes, ctx, ws, r, col_lo, n);
        finalize_row_lanes(lanes, ctx, r);
    }
}

/// Batched serial sweep over all rows — the reference the parallel
/// batch engines must match bit-for-bit per lane.
pub fn factor_batch_serial_ws<T: Scalar, L: Lanes>(
    lanes: L,
    ctx: &BatchNumericCtx<'_, T>,
    ws: &mut RowWorkspace,
) {
    let n = ctx.rowptr.len() - 1;
    factor_batch_rows_serial_ws(lanes, ctx, 0, n, 0, ws);
}

/// Batched
/// [`factor_upper_p2p_planned`](crate::numeric::parallel::factor_upper_p2p_planned):
/// the point-to-point upper stage on pre-built execution state, with
/// every row's waits, workspace load and release-bump performed once
/// for all `k` scenario lanes — the walk amortization of the batch. A
/// zero-allocation, zero-spawn region on the persistent team.
pub fn factor_batch_upper_p2p_planned<T: Scalar, L: Lanes>(
    lanes: L,
    ctx: &BatchNumericCtx<'_, T>,
    schedule: &P2PSchedule,
    exec: &Exec,
    progress: &ProgressCounters,
    workspaces: &[Mutex<RowWorkspace>],
) {
    let nthreads = schedule.nthreads();
    debug_assert_eq!(exec.nthreads(), nthreads);
    debug_assert_eq!(progress.len(), nthreads);
    debug_assert_eq!(workspaces.len(), nthreads);
    if nthreads == 1 {
        factor_batch_rows_serial_ws(
            lanes,
            ctx,
            0,
            schedule.n_tasks(),
            0,
            &mut workspaces[0].lock(),
        );
        return;
    }
    progress.reset();
    let n = ctx.rowptr.len() - 1;
    exec.run(|tid| {
        let mut ws = workspaces[tid].lock();
        for &row in schedule.thread_tasks(tid) {
            progress.wait_all(schedule.waits(row));
            ws.load_row(ctx.rowptr, ctx.colidx, row);
            eliminate_columns_lanes(lanes, ctx, &ws, row, 0, n);
            finalize_row_lanes(lanes, ctx, row);
            progress.bump(tid);
        }
    });
}

/// Batched
/// [`factor_lower_er_planned`](crate::numeric::lower::factor_lower_er_planned):
/// the Even-Rows `FACTOR_L` sweep over trailing rows as one region on
/// the persistent team, then the serial corner — all `k` lanes retired
/// per row under one chunking and one workspace load.
pub fn factor_batch_lower_er_planned<T: Scalar, L: Lanes>(
    lanes: L,
    ctx: &BatchNumericCtx<'_, T>,
    n_upper: usize,
    exec: &Exec,
    workspaces: &[Mutex<RowWorkspace>],
) {
    let n = ctx.rowptr.len() - 1;
    let n_lower = n - n_upper;
    if n_lower == 0 {
        return;
    }
    let nthreads = exec.nthreads();
    debug_assert_eq!(workspaces.len(), nthreads);
    let chunk = n_lower.div_ceil(nthreads.max(1)).max(1);
    exec.run(|tid| {
        let start = (tid * chunk).min(n_lower);
        let end = ((tid + 1) * chunk).min(n_lower);
        if start >= end {
            return;
        }
        let mut ws = workspaces[tid].lock();
        for off in start..end {
            let r = n_upper + off;
            ws.load_row(ctx.rowptr, ctx.colidx, r);
            eliminate_columns_lanes(lanes, ctx, &ws, r, 0, n_upper);
        }
    });
    factor_batch_rows_serial_ws(lanes, ctx, n_upper, n, n_upper, &mut workspaces[0].lock());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::kernel::{eliminate_columns, finalize_row};
    use crate::numeric::NumericCtx;
    use javelin_sparse::lanes::{DynLanes, FixedLanes};

    /// Dense 4x4 nonsymmetric matrix as CSR parts.
    fn dense4(scale: f64) -> (Vec<usize>, Vec<usize>, Vec<usize>, Vec<f64>) {
        let a = [
            [10.0, 1.0, 2.0, 0.5],
            [1.5, 9.0, 0.5, 1.0],
            [2.0, 0.5, 8.0, 1.5],
            [0.5, 1.0, 1.5, 7.0],
        ];
        let rowptr = (0..=4).map(|i| i * 4).collect();
        let colidx = (0..4).flat_map(|_| 0..4).collect();
        let diag_pos = (0..4).map(|i| i * 4 + i).collect();
        let vals = a
            .iter()
            .flatten()
            .enumerate()
            .map(|(i, v)| v * scale + i as f64 * 0.01 * (scale - 1.0))
            .collect();
        (rowptr, colidx, diag_pos, vals)
    }

    fn scalar_reference(flat: &[f64]) -> Vec<u64> {
        let (rowptr, colidx, diag_pos, _) = dense4(1.0);
        let vals = LuVals::from_values(flat);
        let replaced = AtomicUsize::new(0);
        let dropped = AtomicUsize::new(0);
        let failed = AtomicUsize::new(usize::MAX);
        let ctx = NumericCtx {
            rowptr: &rowptr,
            colidx: &colidx,
            diag_pos: &diag_pos,
            vals: &vals,
            drop_thresh: &[],
            milu_omega: 0.0,
            pivot_threshold: 1e-14,
            zero_pivot: ZeroPivotPolicy::Error,
            replaced: &replaced,
            dropped: &dropped,
            failed_row: &failed,
        };
        let mut ws = RowWorkspace::new(4);
        for r in 0..4 {
            ws.load_row(&rowptr, &colidx, r);
            eliminate_columns(&ctx, &ws, r, 0, 4);
            finalize_row(&ctx, r);
        }
        vals.into_values().iter().map(|v| v.to_bits()).collect()
    }

    fn run_batch<L: Lanes>(lanes: L, scenarios: &[Vec<f64>]) -> Vec<Vec<u64>> {
        let k = lanes.width();
        assert_eq!(scenarios.len(), k);
        let (rowptr, colidx, diag_pos, _) = dense4(1.0);
        let nnz = colidx.len();
        let vals = LuVals::<f64>::zeroed(nnz * k);
        for (c, s) in scenarios.iter().enumerate() {
            for (e, v) in s.iter().enumerate() {
                vals.set(e * k + c, *v);
            }
        }
        let replaced: Vec<AtomicUsize> = (0..k).map(|_| AtomicUsize::new(0)).collect();
        let dropped: Vec<AtomicUsize> = (0..k).map(|_| AtomicUsize::new(0)).collect();
        let failed: Vec<AtomicUsize> = (0..k).map(|_| AtomicUsize::new(usize::MAX)).collect();
        let ctx = BatchNumericCtx {
            rowptr: &rowptr,
            colidx: &colidx,
            diag_pos: &diag_pos,
            vals: &vals,
            drop_thresh: &[],
            milu_omega: 0.0,
            pivot_threshold: 1e-14,
            zero_pivot: ZeroPivotPolicy::Error,
            replaced: &replaced,
            dropped: &dropped,
            failed_row: &failed,
        };
        let mut ws = RowWorkspace::new(4);
        factor_batch_serial_ws(lanes, &ctx, &mut ws);
        for f in &failed {
            assert_eq!(f.load(Ordering::Relaxed), usize::MAX);
        }
        (0..k)
            .map(|c| (0..nnz).map(|e| vals.get(e * k + c).to_bits()).collect())
            .collect()
    }

    #[test]
    fn batch_lane_matches_scalar_kernel_bitwise() {
        let scenarios: Vec<Vec<f64>> = [1.0, 1.25, 0.8, 2.0].iter().map(|&s| dense4(s).3).collect();
        let got = run_batch(FixedLanes::<4>, &scenarios);
        for (c, s) in scenarios.iter().enumerate() {
            assert_eq!(got[c], scalar_reference(s), "scenario {c}");
        }
    }

    #[test]
    fn fixed_and_dyn_batch_agree_bitwise() {
        let scenarios: Vec<Vec<f64>> = [1.0, 1.25, 0.8, 2.0].iter().map(|&s| dense4(s).3).collect();
        assert_eq!(
            run_batch(FixedLanes::<4>, &scenarios),
            run_batch(DynLanes(4), &scenarios)
        );
    }

    #[test]
    fn width_one_batch_is_the_scalar_path() {
        let s = dense4(1.3).3;
        let got = run_batch(FixedLanes::<1>, std::slice::from_ref(&s));
        assert_eq!(got[0], scalar_reference(&s));
    }

    #[test]
    fn one_singular_lane_fails_without_perturbing_neighbours() {
        // Scenario 1's diagonal is zeroed at row 2; the other lanes'
        // factors and counters must be exactly those of a clean run.
        let clean: Vec<Vec<f64>> = [1.0, 1.25, 0.8].iter().map(|&s| dense4(s).3).collect();
        let reference = run_batch(DynLanes(3), &clean);
        let mut poisoned = clean.clone();
        // Make row 2 of scenario 1 exactly dependent on rows 0/1 so the
        // pivot collapses: easiest is a zero row scaled into the diag.
        for e in 8..12 {
            poisoned[1][e] = 0.0;
        }
        let (rowptr, colidx, diag_pos, _) = dense4(1.0);
        let k = 3;
        let nnz = colidx.len();
        let vals = LuVals::<f64>::zeroed(nnz * k);
        for (c, s) in poisoned.iter().enumerate() {
            for (e, v) in s.iter().enumerate() {
                vals.set(e * k + c, *v);
            }
        }
        let replaced: Vec<AtomicUsize> = (0..k).map(|_| AtomicUsize::new(0)).collect();
        let dropped: Vec<AtomicUsize> = (0..k).map(|_| AtomicUsize::new(0)).collect();
        let failed: Vec<AtomicUsize> = (0..k).map(|_| AtomicUsize::new(usize::MAX)).collect();
        let ctx = BatchNumericCtx {
            rowptr: &rowptr,
            colidx: &colidx,
            diag_pos: &diag_pos,
            vals: &vals,
            drop_thresh: &[],
            milu_omega: 0.0,
            pivot_threshold: 1e-14,
            zero_pivot: ZeroPivotPolicy::Error,
            replaced: &replaced,
            dropped: &dropped,
            failed_row: &failed,
        };
        let mut ws = RowWorkspace::new(4);
        factor_batch_serial_ws(DynLanes(3), &ctx, &mut ws);
        assert_eq!(failed[0].load(Ordering::Relaxed), usize::MAX);
        assert_eq!(failed[1].load(Ordering::Relaxed), 3); // row 2 + 1
        assert_eq!(failed[2].load(Ordering::Relaxed), usize::MAX);
        for c in [0usize, 2] {
            let bits: Vec<u64> = (0..nnz).map(|e| vals.get(e * k + c).to_bits()).collect();
            assert_eq!(bits, reference[c], "lane {c}");
        }
    }
}
