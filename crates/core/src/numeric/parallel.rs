//! Engine orchestration: serial sweep and the point-to-point upper
//! stage.

use crate::numeric::kernel::{eliminate_columns, finalize_row, RowWorkspace};
use crate::numeric::NumericCtx;
use javelin_level::P2PSchedule;
use javelin_sparse::Scalar;
use javelin_sync::{pool, Exec, ProgressCounters};
use parking_lot::Mutex;

/// Serial up-looking factorization of rows `0..n` — the reference every
/// parallel engine must match bit-for-bit.
pub fn factor_serial<T: Scalar>(ctx: &NumericCtx<'_, T>) {
    let n = ctx.rowptr.len() - 1;
    let mut ws = RowWorkspace::new(n);
    factor_serial_ws(ctx, &mut ws);
}

/// [`factor_serial`] with a caller-owned workspace — the allocation-free
/// form the numeric-refactorization path uses.
pub fn factor_serial_ws<T: Scalar>(ctx: &NumericCtx<'_, T>, ws: &mut RowWorkspace) {
    let n = ctx.rowptr.len() - 1;
    factor_rows_serial_ws(ctx, 0, n, 0, ws);
}

/// Serial up-looking factorization restricted to rows `lo..hi`
/// (used for the lower-stage corner).
pub fn factor_rows_serial<T: Scalar>(ctx: &NumericCtx<'_, T>, lo: usize, hi: usize, col_lo: usize) {
    let n = ctx.rowptr.len() - 1;
    let mut ws = RowWorkspace::new(n);
    factor_rows_serial_ws(ctx, lo, hi, col_lo, &mut ws);
}

/// [`factor_rows_serial`] with a caller-owned workspace.
pub fn factor_rows_serial_ws<T: Scalar>(
    ctx: &NumericCtx<'_, T>,
    lo: usize,
    hi: usize,
    col_lo: usize,
    ws: &mut RowWorkspace,
) {
    let n = ctx.rowptr.len() - 1;
    for r in lo..hi {
        ws.load_row(ctx.rowptr, ctx.colidx, r);
        eliminate_columns(ctx, ws, r, col_lo, n);
        finalize_row(ctx, r);
    }
}

/// Point-to-point upper-stage factorization: each thread walks its
/// static task sequence, spin-waits on the pruned `(thread, progress)`
/// list, factors the row, and release-bumps its counter — the paper's
/// replacement for inter-level barriers (§III-A).
///
/// Rows are the first `schedule.n_tasks()` rows of the permuted matrix
/// (execution index = row index).
pub fn factor_upper_p2p<T: Scalar>(ctx: &NumericCtx<'_, T>, schedule: &P2PSchedule) {
    let nthreads = schedule.nthreads();
    if nthreads == 1 {
        // Degenerate single-thread run: plain sweep over the upper rows.
        factor_rows_serial(ctx, 0, schedule.n_tasks(), 0);
        return;
    }
    let n = ctx.rowptr.len() - 1;
    let progress = ProgressCounters::new(nthreads);
    pool::run_on_threads(nthreads, |tid| {
        // Workspace allocated inside the worker: first-touch local, as
        // the paper's copy-fill-in phase recommends.
        let mut ws = RowWorkspace::new(n);
        for &row in schedule.thread_tasks(tid) {
            progress.wait_all(schedule.waits(row));
            ws.load_row(ctx.rowptr, ctx.colidx, row);
            eliminate_columns(ctx, &ws, row, 0, n);
            finalize_row(ctx, row);
            progress.bump(tid);
        }
    });
}

/// [`factor_upper_p2p`] on pre-built execution state: the region runs on
/// `exec` (a persistent worker team by default), the progress counters
/// are reset and reused, and each participant borrows its preallocated
/// [`RowWorkspace`] — zero heap allocations and zero thread spawns. This
/// is the numeric-refactorization path; results are bit-identical to
/// [`factor_upper_p2p`].
///
/// `exec`, `progress` and `workspaces` must all carry
/// `schedule.nthreads()` participants.
pub fn factor_upper_p2p_planned<T: Scalar>(
    ctx: &NumericCtx<'_, T>,
    schedule: &P2PSchedule,
    exec: &Exec,
    progress: &ProgressCounters,
    workspaces: &[Mutex<RowWorkspace>],
) {
    let nthreads = schedule.nthreads();
    debug_assert_eq!(exec.nthreads(), nthreads);
    debug_assert_eq!(progress.len(), nthreads);
    debug_assert_eq!(workspaces.len(), nthreads);
    if nthreads == 1 {
        factor_rows_serial_ws(ctx, 0, schedule.n_tasks(), 0, &mut workspaces[0].lock());
        return;
    }
    progress.reset();
    let n = ctx.rowptr.len() - 1;
    exec.run(|tid| {
        let mut ws = workspaces[tid].lock();
        for &row in schedule.thread_tasks(tid) {
            progress.wait_all(schedule.waits(row));
            ws.load_row(ctx.rowptr, ctx.colidx, row);
            eliminate_columns(ctx, &ws, row, 0, n);
            finalize_row(ctx, row);
            progress.bump(tid);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::kernel::LuVals;
    use crate::options::ZeroPivotPolicy;
    use std::sync::atomic::AtomicUsize;

    /// Dense 4x4 SPD-ish matrix stored as CSR.
    fn dense4() -> (Vec<usize>, Vec<usize>, Vec<usize>, Vec<f64>) {
        let a = [
            [10.0, 1.0, 2.0, 0.5],
            [1.0, 9.0, 0.5, 1.0],
            [2.0, 0.5, 8.0, 1.5],
            [0.5, 1.0, 1.5, 7.0],
        ];
        let rowptr = (0..=4).map(|i| i * 4).collect();
        let colidx = (0..4).flat_map(|_| 0..4).collect();
        let diag_pos = (0..4).map(|i| i * 4 + i).collect();
        let vals = a.iter().flatten().copied().collect();
        (rowptr, colidx, diag_pos, vals)
    }

    fn ctx_parts() -> (AtomicUsize, AtomicUsize, AtomicUsize) {
        (
            AtomicUsize::new(0),
            AtomicUsize::new(0),
            AtomicUsize::new(usize::MAX),
        )
    }

    #[test]
    fn serial_dense4_matches_dense_lu() {
        let (rowptr, colidx, diag_pos, flat) = dense4();
        let vals = LuVals::from_values(&flat);
        let (replaced, dropped, failed) = ctx_parts();
        let ctx = NumericCtx {
            rowptr: &rowptr,
            colidx: &colidx,
            diag_pos: &diag_pos,
            vals: &vals,
            drop_thresh: &[],
            milu_omega: 0.0,
            pivot_threshold: 1e-14,
            zero_pivot: ZeroPivotPolicy::Error,
            replaced: &replaced,
            dropped: &dropped,
            failed_row: &failed,
        };
        factor_serial(&ctx);
        let lu = vals.into_values();
        // Dense Doolittle reference.
        let mut a = [
            [10.0, 1.0, 2.0, 0.5],
            [1.0, 9.0, 0.5, 1.0],
            [2.0, 0.5, 8.0, 1.5],
            [0.5, 1.0, 1.5, 7.0],
        ];
        for i in 1..4 {
            for c in 0..i {
                let l = a[i][c] / a[c][c];
                a[i][c] = l;
                for j in (c + 1)..4 {
                    a[i][j] -= l * a[c][j];
                }
            }
        }
        let reference: Vec<f64> = a.iter().flatten().copied().collect();
        for (got, want) in lu.iter().zip(reference.iter()) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn p2p_matches_serial_bitwise() {
        let (rowptr, colidx, diag_pos, flat) = dense4();
        let run_serial = {
            let vals = LuVals::from_values(&flat);
            let (replaced, dropped, failed) = ctx_parts();
            let ctx = NumericCtx {
                rowptr: &rowptr,
                colidx: &colidx,
                diag_pos: &diag_pos,
                vals: &vals,
                drop_thresh: &[],
                milu_omega: 0.0,
                pivot_threshold: 1e-14,
                zero_pivot: ZeroPivotPolicy::Error,
                replaced: &replaced,
                dropped: &dropped,
                failed_row: &failed,
            };
            factor_serial(&ctx);
            vals.into_values()
        };
        for nthreads in [1, 2, 3] {
            let vals = LuVals::from_values(&flat);
            let (replaced, dropped, failed) = ctx_parts();
            let ctx = NumericCtx {
                rowptr: &rowptr,
                colidx: &colidx,
                diag_pos: &diag_pos,
                vals: &vals,
                drop_thresh: &[],
                milu_omega: 0.0,
                pivot_threshold: 1e-14,
                zero_pivot: ZeroPivotPolicy::Error,
                replaced: &replaced,
                dropped: &dropped,
                failed_row: &failed,
            };
            // Dense lower triangle: each row is its own level.
            let level_ptr: Vec<usize> = (0..=4).collect();
            let deps = |r: usize, out: &mut Vec<usize>| out.extend(0..r);
            let schedule = P2PSchedule::build(4, nthreads, &level_ptr, deps);
            factor_upper_p2p(&ctx, &schedule);
            let lu = vals.into_values();
            let same: Vec<u64> = lu.iter().map(|v| v.to_bits()).collect();
            let expect: Vec<u64> = run_serial.iter().map(|v| v.to_bits()).collect();
            assert_eq!(same, expect, "nthreads = {nthreads}");
        }
    }
}
