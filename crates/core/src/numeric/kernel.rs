//! The up-looking row kernel and its workspaces.
//!
//! ## `LuVals` and the row-ownership protocol
//!
//! `LuVals` stores factor values in plain (`UnsafeCell`) memory that
//! several threads access concurrently — on **disjoint entries**. The
//! engines' synchronization protocols guarantee race freedom (see
//! `docs/ARCHITECTURE.md` §7 "Memory model"):
//!
//! * every entry belongs to exactly one row, and a row's values are
//!   written only by the worker that currently *owns* the row;
//! * ownership is handed off through a release-bump of a progress
//!   counter (or barrier arrival / task-graph edge / team-region join)
//!   after the row's last write, and acquired through the matching
//!   acquire-wait before any dependent read — the same happens-before
//!   edges that previously ordered the relaxed-atomic accesses;
//! * Segmented-Rows tiles that share a row write disjoint entry
//!   subranges, chained per block, so exclusivity holds at entry
//!   granularity there too.
//!
//! Under that protocol the hot kernels can check out a whole row (or a
//! tile of one) as an exclusive `&mut [T]` via [`LuVals::view_mut`] and
//! read finalized rows as `&[T]` via [`LuVals::view`] — contiguous
//! loads/stores the compiler can vectorize, instead of per-element
//! atomic round-trips that block coalescing. This is what an earlier
//! revision's bit-packed `AtomicU64` representation (all `Relaxed`)
//! could not offer: atomics pessimize vectorization even though they
//! compile to plain moves on x86, and bit-packing made `&mut [f32]`
//! views impossible.
//!
//! The safe `get`/`set` accessors remain for cold paths; they are plain
//! reads/writes bound by the same protocol.

#![allow(unsafe_code)] // LuVals views; soundness argument in the module docs above.

use crate::numeric::NumericCtx;
use crate::options::ZeroPivotPolicy;
use javelin_sparse::Scalar;
use std::cell::UnsafeCell;
use std::ops::Range;
use std::sync::atomic::Ordering;

/// One factor value in engine-shared plain memory.
///
/// `#[repr(transparent)]` guarantees a `[ValCell<T>]` has exactly the
/// layout of `[T]`, which is what lets [`LuVals::view`] /
/// [`LuVals::view_mut`] hand out real value slices.
#[repr(transparent)]
struct ValCell<T>(UnsafeCell<T>);

// Safety: cross-thread access to a cell is externally synchronized by
// the engines' row-ownership protocol (module docs): concurrent
// accesses always target disjoint entries, and same-entry accesses are
// ordered by a release/acquire edge.
unsafe impl<T: Send + Sync> Sync for ValCell<T> {}

/// Concurrently accessible factor values (see the module docs for the
/// ownership protocol that makes the shared-reference API race-free).
pub struct LuVals<T> {
    cells: Vec<ValCell<T>>,
}

impl<T> std::fmt::Debug for LuVals<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LuVals")
            .field("len", &self.cells.len())
            .finish()
    }
}

impl<T: Scalar> LuVals<T> {
    /// Copies in a value slice.
    pub fn from_values(vals: &[T]) -> Self {
        LuVals {
            cells: vals.iter().map(|&v| ValCell(UnsafeCell::new(v))).collect(),
        }
    }

    /// `n` zero-valued entries — the shape used by reusable plan/
    /// workspace buffers, which are loaded per call instead of built
    /// from a value slice.
    pub fn zeroed(n: usize) -> Self {
        LuVals {
            cells: (0..n).map(|_| ValCell(UnsafeCell::new(T::ZERO))).collect(),
        }
    }

    /// Like [`LuVals::zeroed`], but the zero-fill (the pages'
    /// first touch) is performed by the participants of `exec`, each
    /// initializing a contiguous chunk — so on first-touch NUMA systems
    /// a buffer's pages land near the workers that will stream it.
    pub fn zeroed_on(n: usize, exec: &javelin_sync::Exec) -> Self {
        let nthreads = exec.nthreads();
        if nthreads <= 1 || n == 0 {
            return Self::zeroed(n);
        }
        let mut cells: Vec<ValCell<T>> = Vec::with_capacity(n);
        let base = cells.as_mut_ptr();
        let chunk = n.div_ceil(nthreads);
        // Wrap the raw pointer so the region closure can share it (the
        // method keeps the 2021-edition closure capturing the whole
        // Sync wrapper, not the non-Sync pointer field).
        struct Ptr<T>(*mut ValCell<T>);
        unsafe impl<T> Sync for Ptr<T> {}
        impl<T> Ptr<T> {
            fn get(&self) -> *mut ValCell<T> {
                self.0
            }
        }
        let ptr = Ptr(base);
        exec.run(|tid| {
            let lo = (tid * chunk).min(n);
            let hi = ((tid + 1) * chunk).min(n);
            for i in lo..hi {
                // Safety: chunks are disjoint per tid and lie within the
                // reserved capacity; every index is written exactly once.
                unsafe { ptr.get().add(i).write(ValCell(UnsafeCell::new(T::ZERO))) };
            }
        });
        // Safety: all `n` elements were initialized in the region above,
        // and the region join happens-before this call.
        unsafe { cells.set_len(n) };
        LuVals { cells }
    }

    /// Overwrites every entry from `vals` (lengths must match). Caller
    /// must guarantee quiescence; used to load a reused workspace
    /// buffer without reallocating.
    pub fn load_from(&self, vals: &[T]) {
        assert_eq!(vals.len(), self.cells.len(), "LuVals::load_from length");
        for (i, &v) in vals.iter().enumerate() {
            self.set(i, v);
        }
    }

    /// Copies every entry into `out` (lengths must match).
    pub fn store_to(&self, out: &mut [T]) {
        assert_eq!(out.len(), self.cells.len(), "LuVals::store_to length");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.get(i);
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Reads entry `i`. A plain load; the caller must not race a
    /// concurrent write of the same entry (the ownership protocol
    /// guarantees this everywhere the engines call it).
    #[inline(always)]
    pub fn get(&self, i: usize) -> T {
        // Safety: in-bounds (indexing the Vec checks), and same-entry
        // write/read pairs are ordered per the module docs.
        unsafe { *self.cells[i].0.get() }
    }

    /// Writes entry `i`. A plain store; same contract as [`LuVals::get`].
    #[inline(always)]
    pub fn set(&self, i: usize, v: T) {
        // Safety: see `get`.
        unsafe { *self.cells[i].0.get() = v }
    }

    /// A shared view of `range`.
    ///
    /// # Safety
    /// No entry in `range` may be written by any thread for the
    /// lifetime of the returned slice (the entries must be finalized or
    /// otherwise quiescent under the row-ownership protocol).
    #[inline(always)]
    pub unsafe fn view(&self, range: Range<usize>) -> &[T] {
        debug_assert!(range.end <= self.cells.len());
        std::slice::from_raw_parts(
            self.cells.as_ptr().cast::<T>().add(range.start),
            range.len(),
        )
    }

    /// An exclusive view of `range`.
    ///
    /// # Safety
    /// The caller must exclusively own every entry in `range` for the
    /// lifetime of the returned slice: no other thread may read *or*
    /// write them (the row-ownership window between a row's ready- and
    /// retire-signal).
    #[inline(always)]
    #[allow(clippy::mut_from_ref)] // checked-out row ownership; see Safety
    pub unsafe fn view_mut(&self, range: Range<usize>) -> &mut [T] {
        debug_assert!(range.end <= self.cells.len());
        std::slice::from_raw_parts_mut(
            self.cells.as_ptr().cast::<T>().cast_mut().add(range.start),
            range.len(),
        )
    }

    /// Unpacks into a plain vector.
    pub fn into_values(self) -> Vec<T> {
        self.cells.into_iter().map(|c| c.0.into_inner()).collect()
    }
}

/// Per-thread sparse-accumulator workspace: an epoch-stamped map from
/// column to entry index of the currently loaded row. Loading is O(row
/// length); clearing is free (epoch bump).
pub struct RowWorkspace {
    pos: Vec<usize>,
    epoch: Vec<u64>,
    cur: u64,
}

impl RowWorkspace {
    /// Workspace for matrices of dimension `n`.
    pub fn new(n: usize) -> Self {
        RowWorkspace {
            pos: vec![0; n],
            epoch: vec![0; n],
            cur: 0,
        }
    }

    /// Loads the column→entry map of row `r`.
    #[inline]
    pub fn load_row(&mut self, rowptr: &[usize], colidx: &[usize], r: usize) {
        self.cur += 1;
        for k in rowptr[r]..rowptr[r + 1] {
            let c = colidx[k];
            self.pos[c] = k;
            self.epoch[c] = self.cur;
        }
    }

    /// Entry index of column `c` in the loaded row, if present.
    #[inline(always)]
    pub fn entry_of(&self, c: usize) -> Option<usize> {
        (self.epoch[c] == self.cur).then(|| self.pos[c])
    }
}

/// Processes the L-columns of row `r` with `col_lo <= c < min(col_hi, r)`
/// — the up-looking elimination steps of the paper's Fig. 1, restricted
/// to a column window so the two-stage engines can split a row's work.
///
/// Requires `ws` to hold row `r` (see [`RowWorkspace::load_row`]) and
/// every row `c` in the window to be finalized. The caller must own row
/// `r` exclusively (all engines call this only inside the row's
/// ownership window; tiles that share a row use their own subrange
/// kernels instead).
#[inline]
pub fn eliminate_columns<T: Scalar>(
    ctx: &NumericCtx<'_, T>,
    ws: &RowWorkspace,
    r: usize,
    col_lo: usize,
    col_hi: usize,
) {
    let hi = col_hi.min(r);
    let dropping = !ctx.drop_thresh.is_empty();
    let range = ctx.row_range(r);
    let base = range.start;
    // Safety: row `r` is exclusively owned by this worker between its
    // ready- and retire-signal (function contract above).
    let vr = unsafe { ctx.vals.view_mut(range.clone()) };
    let cols = &ctx.colidx[range];
    for (kr, &c) in cols.iter().enumerate() {
        if c >= hi {
            break;
        }
        if c < col_lo {
            continue;
        }
        let piv = ctx.vals.get(ctx.diag_pos[c]);
        let l = vr[kr] / piv;
        if dropping && l.abs() < ctx.drop_thresh[r] {
            // Treat as zero immediately: skip the update sweep. The
            // position stays in the pattern so schedules remain valid.
            vr[kr] = T::ZERO;
            ctx.dropped.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        vr[kr] = l;
        // a[r, j] -= l * u[c, j] for every j > c stored in both rows.
        let u_lo = ctx.diag_pos[c] + 1;
        // Safety: row `c < r` is finalized (function contract), hence
        // quiescent for the remainder of the factorization.
        let uc = unsafe { ctx.vals.view(u_lo..ctx.rowptr[c + 1]) };
        for (off, &ucv) in uc.iter().enumerate() {
            let j = ctx.colidx[u_lo + off];
            if let Some(p) = ws.entry_of(j) {
                vr[p - base] -= l * ucv;
            }
        }
    }
}

/// Finalizes row `r`: applies the τ drop rule to the strict U part,
/// MILU compensation, and the pivot breakdown policy. Must be called
/// exactly once per row, after its last elimination step and before any
/// dependent row reads it.
#[inline]
pub fn finalize_row<T: Scalar>(ctx: &NumericCtx<'_, T>, r: usize) {
    let range = ctx.row_range(r);
    let dp = ctx.diag_pos[r] - range.start;
    // Safety: finalize runs exactly once, inside row `r`'s exclusive
    // ownership window, before any dependent row reads it.
    let vr = unsafe { ctx.vals.view_mut(range) };
    let mut dropped_sum = T::ZERO;
    if !ctx.drop_thresh.is_empty() {
        let thresh = ctx.drop_thresh[r];
        for v in vr[dp + 1..].iter_mut() {
            if *v != T::ZERO && v.abs() < thresh {
                dropped_sum += *v;
                *v = T::ZERO;
                ctx.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let mut d = vr[dp];
    if ctx.milu_omega != T::ZERO {
        d += ctx.milu_omega * dropped_sum;
    }
    match javelin_sparse::fault::fire("numeric.pivot") {
        Some(javelin_sparse::fault::FaultAction::Zero) => d = T::ZERO,
        Some(javelin_sparse::fault::FaultAction::Nan) => d = T::from_f64(f64::NAN),
        Some(javelin_sparse::fault::FaultAction::Panic) => {
            panic!("fault injected at numeric.pivot")
        }
        None => {}
    }
    // A non-finite pivot is a breakdown too: NaN/Inf compares false
    // against the threshold but would poison every dependent row.
    if d.abs() < ctx.pivot_threshold || !d.is_finite() {
        match ctx.zero_pivot {
            // ShiftRetry attempts run with Error semantics per sweep;
            // the retry loop above the engines applies the shifts.
            ZeroPivotPolicy::Error | ZeroPivotPolicy::ShiftRetry { .. } => ctx.record_failure(r),
            ZeroPivotPolicy::Replace { replacement } => {
                let rep = T::from_f64(replacement);
                d = if d < T::ZERO { -rep } else { rep };
                ctx.replaced.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    vr[dp] = d;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn luvals_roundtrip_f64() {
        let v = LuVals::<f64>::from_values(&[1.5, -2.25, 0.0]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert_eq!(v.get(1), -2.25);
        v.set(1, 7.0);
        assert_eq!(v.into_values(), vec![1.5, 7.0, 0.0]);
    }

    #[test]
    fn luvals_roundtrip_f32() {
        let v = LuVals::<f32>::from_values(&[0.5, 3.5]);
        v.set(0, -1.25);
        assert_eq!(v.into_values(), vec![-1.25f32, 3.5]);
    }

    #[test]
    fn workspace_maps_current_row_only() {
        let rowptr = vec![0, 2, 4];
        let colidx = vec![0, 1, 0, 1];
        let mut ws = RowWorkspace::new(2);
        ws.load_row(&rowptr, &colidx, 0);
        assert_eq!(ws.entry_of(0), Some(0));
        assert_eq!(ws.entry_of(1), Some(1));
        ws.load_row(&rowptr, &colidx, 1);
        assert_eq!(ws.entry_of(0), Some(2));
        assert_eq!(ws.entry_of(1), Some(3));
    }

    /// 2x2 dense: A = [[4, 2], [1, 3]]; LU: l21 = 1/4, u22 = 3 - 2/4.
    #[test]
    fn eliminates_a_2x2_row() {
        let rowptr = vec![0, 2, 4];
        let colidx = vec![0, 1, 0, 1];
        let diag_pos = vec![0, 3];
        let vals = LuVals::from_values(&[4.0, 2.0, 1.0, 3.0]);
        let replaced = AtomicUsize::new(0);
        let dropped = AtomicUsize::new(0);
        let failed = AtomicUsize::new(usize::MAX);
        let ctx = NumericCtx {
            rowptr: &rowptr,
            colidx: &colidx,
            diag_pos: &diag_pos,
            vals: &vals,
            drop_thresh: &[],
            milu_omega: 0.0,
            pivot_threshold: 1e-14,
            zero_pivot: ZeroPivotPolicy::Error,
            replaced: &replaced,
            dropped: &dropped,
            failed_row: &failed,
        };
        let mut ws = RowWorkspace::new(2);
        finalize_row(&ctx, 0);
        ws.load_row(&rowptr, &colidx, 1);
        eliminate_columns(&ctx, &ws, 1, 0, 2);
        finalize_row(&ctx, 1);
        let out = vals.into_values();
        assert_eq!(out, vec![4.0, 2.0, 0.25, 2.5]);
        assert_eq!(failed.load(Ordering::Relaxed), usize::MAX);
    }

    #[test]
    fn window_split_equals_full_sweep() {
        // Row 2 of a dense 3x3 processed as [0,1) then [1,2) must equal
        // one [0,2) sweep.
        let a = [[4.0, 1.0, 2.0], [1.0, 5.0, 1.0], [2.0, 1.0, 6.0]];
        let build = || {
            let rowptr = vec![0, 3, 6, 9];
            let colidx = vec![0, 1, 2, 0, 1, 2, 0, 1, 2];
            let diag_pos = vec![0, 4, 8];
            let flat: Vec<f64> = a.iter().flatten().copied().collect();
            (rowptr, colidx, diag_pos, LuVals::from_values(&flat))
        };
        let run = |windows: &[(usize, usize)]| -> Vec<f64> {
            let (rowptr, colidx, diag_pos, vals) = build();
            let replaced = AtomicUsize::new(0);
            let dropped = AtomicUsize::new(0);
            let failed = AtomicUsize::new(usize::MAX);
            let ctx = NumericCtx {
                rowptr: &rowptr,
                colidx: &colidx,
                diag_pos: &diag_pos,
                vals: &vals,
                drop_thresh: &[],
                milu_omega: 0.0,
                pivot_threshold: 1e-14,
                zero_pivot: ZeroPivotPolicy::Error,
                replaced: &replaced,
                dropped: &dropped,
                failed_row: &failed,
            };
            let mut ws = RowWorkspace::new(3);
            for r in 0..3 {
                ws.load_row(&rowptr, &colidx, r);
                if r < 2 {
                    eliminate_columns(&ctx, &ws, r, 0, 3);
                } else {
                    for &(lo, hi) in windows {
                        eliminate_columns(&ctx, &ws, r, lo, hi);
                    }
                }
                finalize_row(&ctx, r);
            }
            vals.into_values()
        };
        let full = run(&[(0, 3)]);
        let split = run(&[(0, 1), (1, 3)]);
        assert_eq!(full, split);
    }

    #[test]
    fn pivot_replacement_policy() {
        // Diagonal becomes exactly zero: 1x1 matrix with value 0.
        let rowptr = vec![0, 1];
        let colidx = vec![0];
        let diag_pos = vec![0];
        let vals = LuVals::from_values(&[0.0]);
        let replaced = AtomicUsize::new(0);
        let dropped = AtomicUsize::new(0);
        let failed = AtomicUsize::new(usize::MAX);
        let ctx = NumericCtx {
            rowptr: &rowptr,
            colidx: &colidx,
            diag_pos: &diag_pos,
            vals: &vals,
            drop_thresh: &[],
            milu_omega: 0.0,
            pivot_threshold: 1e-14,
            zero_pivot: ZeroPivotPolicy::Replace { replacement: 1e-6 },
            replaced: &replaced,
            dropped: &dropped,
            failed_row: &failed,
        };
        finalize_row(&ctx, 0);
        assert_eq!(replaced.load(Ordering::Relaxed), 1);
        assert_eq!(vals.get(0), 1e-6);
    }

    #[test]
    fn pivot_error_policy_records_row() {
        let rowptr = vec![0, 1];
        let colidx = vec![0];
        let diag_pos = vec![0];
        let vals = LuVals::from_values(&[0.0f64]);
        let replaced = AtomicUsize::new(0);
        let dropped = AtomicUsize::new(0);
        let failed = AtomicUsize::new(usize::MAX);
        let ctx = NumericCtx {
            rowptr: &rowptr,
            colidx: &colidx,
            diag_pos: &diag_pos,
            vals: &vals,
            drop_thresh: &[],
            milu_omega: 0.0,
            pivot_threshold: 1e-14,
            zero_pivot: ZeroPivotPolicy::Error,
            replaced: &replaced,
            dropped: &dropped,
            failed_row: &failed,
        };
        finalize_row(&ctx, 0);
        assert_eq!(failed.load(Ordering::Relaxed), 1); // row 0 + 1
    }

    #[test]
    fn dropping_zeroes_small_u_entries_and_milu_compensates() {
        // Row 0: diag 2.0 with tiny U neighbour 1e-9.
        let rowptr = vec![0, 2, 3];
        let colidx = vec![0, 1, 1];
        let diag_pos = vec![0, 2];
        let vals = LuVals::from_values(&[2.0, 1e-9, 1.0]);
        let replaced = AtomicUsize::new(0);
        let dropped = AtomicUsize::new(0);
        let failed = AtomicUsize::new(usize::MAX);
        let thresh = vec![1e-6, 1e-6];
        let ctx = NumericCtx {
            rowptr: &rowptr,
            colidx: &colidx,
            diag_pos: &diag_pos,
            vals: &vals,
            drop_thresh: &thresh,
            milu_omega: 1.0,
            pivot_threshold: 1e-14,
            zero_pivot: ZeroPivotPolicy::Error,
            replaced: &replaced,
            dropped: &dropped,
            failed_row: &failed,
        };
        finalize_row(&ctx, 0);
        assert_eq!(dropped.load(Ordering::Relaxed), 1);
        assert_eq!(vals.get(1), 0.0);
        // MILU: diag absorbed the dropped value.
        assert_eq!(vals.get(0), 2.0 + 1e-9);
    }
}
