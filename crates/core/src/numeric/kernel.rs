//! The up-looking row kernel and its workspaces.
//!
//! `LuVals` stores factor values bit-packed in `AtomicU64` cells so
//! different threads can write disjoint rows and read finalized rows
//! without `unsafe`. All accesses are `Relaxed`: the necessary
//! happens-before edges come from the progress counters / barriers /
//! task graph that order row completion (a release-bump after the last
//! write of a row, an acquire-wait before the first read). On x86 these
//! relaxed atomics compile to plain moves — the paper's "no overhead"
//! claim carries over.

use crate::numeric::NumericCtx;
use crate::options::ZeroPivotPolicy;
use javelin_sparse::Scalar;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bit-packed, concurrently accessible factor values.
#[derive(Debug)]
pub struct LuVals<T> {
    bits: Vec<AtomicU64>,
    _ty: PhantomData<T>,
}

impl<T: Scalar> LuVals<T> {
    /// Packs a value slice.
    pub fn from_values(vals: &[T]) -> Self {
        LuVals {
            bits: vals.iter().map(|v| AtomicU64::new(v.to_bits64())).collect(),
            _ty: PhantomData,
        }
    }

    /// `n` zero-valued entries — the shape used by reusable plan/
    /// workspace buffers, which are loaded per call instead of built
    /// from a value slice.
    pub fn zeroed(n: usize) -> Self {
        LuVals {
            bits: (0..n)
                .map(|_| AtomicU64::new(T::ZERO.to_bits64()))
                .collect(),
            _ty: PhantomData,
        }
    }

    /// Overwrites every entry from `vals` (lengths must match). Caller
    /// must guarantee quiescence; used to load a reused workspace
    /// buffer without reallocating.
    pub fn load_from(&self, vals: &[T]) {
        assert_eq!(vals.len(), self.bits.len(), "LuVals::load_from length");
        for (cell, v) in self.bits.iter().zip(vals.iter()) {
            cell.store(v.to_bits64(), Ordering::Relaxed);
        }
    }

    /// Copies every entry into `out` (lengths must match).
    pub fn store_to(&self, out: &mut [T]) {
        assert_eq!(out.len(), self.bits.len(), "LuVals::store_to length");
        for (o, cell) in out.iter_mut().zip(self.bits.iter()) {
            *o = T::from_bits64(cell.load(Ordering::Relaxed));
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Reads entry `i`.
    #[inline(always)]
    pub fn get(&self, i: usize) -> T {
        T::from_bits64(self.bits[i].load(Ordering::Relaxed))
    }

    /// Writes entry `i`.
    #[inline(always)]
    pub fn set(&self, i: usize, v: T) {
        self.bits[i].store(v.to_bits64(), Ordering::Relaxed);
    }

    /// Unpacks into a plain vector.
    pub fn into_values(self) -> Vec<T> {
        self.bits
            .into_iter()
            .map(|b| T::from_bits64(b.into_inner()))
            .collect()
    }
}

/// Per-thread sparse-accumulator workspace: an epoch-stamped map from
/// column to entry index of the currently loaded row. Loading is O(row
/// length); clearing is free (epoch bump).
pub struct RowWorkspace {
    pos: Vec<usize>,
    epoch: Vec<u64>,
    cur: u64,
}

impl RowWorkspace {
    /// Workspace for matrices of dimension `n`.
    pub fn new(n: usize) -> Self {
        RowWorkspace {
            pos: vec![0; n],
            epoch: vec![0; n],
            cur: 0,
        }
    }

    /// Loads the column→entry map of row `r`.
    #[inline]
    pub fn load_row(&mut self, rowptr: &[usize], colidx: &[usize], r: usize) {
        self.cur += 1;
        for k in rowptr[r]..rowptr[r + 1] {
            let c = colidx[k];
            self.pos[c] = k;
            self.epoch[c] = self.cur;
        }
    }

    /// Entry index of column `c` in the loaded row, if present.
    #[inline(always)]
    pub fn entry_of(&self, c: usize) -> Option<usize> {
        (self.epoch[c] == self.cur).then(|| self.pos[c])
    }
}

/// Processes the L-columns of row `r` with `col_lo <= c < min(col_hi, r)`
/// — the up-looking elimination steps of the paper's Fig. 1, restricted
/// to a column window so the two-stage engines can split a row's work.
///
/// Requires `ws` to hold row `r` (see [`RowWorkspace::load_row`]) and
/// every row `c` in the window to be finalized.
#[inline]
pub fn eliminate_columns<T: Scalar>(
    ctx: &NumericCtx<'_, T>,
    ws: &RowWorkspace,
    r: usize,
    col_lo: usize,
    col_hi: usize,
) {
    let hi = col_hi.min(r);
    let dropping = !ctx.drop_thresh.is_empty();
    for k in ctx.row_range(r) {
        let c = ctx.colidx[k];
        if c >= hi {
            break;
        }
        if c < col_lo {
            continue;
        }
        let piv = ctx.vals.get(ctx.diag_pos[c]);
        let l = ctx.vals.get(k) / piv;
        if dropping && l.abs() < ctx.drop_thresh[r] {
            // Treat as zero immediately: skip the update sweep. The
            // position stays in the pattern so schedules remain valid.
            ctx.vals.set(k, T::ZERO);
            ctx.dropped.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        ctx.vals.set(k, l);
        // a[r, j] -= l * u[c, j] for every j > c stored in both rows.
        for kk in (ctx.diag_pos[c] + 1)..ctx.rowptr[c + 1] {
            let j = ctx.colidx[kk];
            if let Some(p) = ws.entry_of(j) {
                ctx.vals.set(p, ctx.vals.get(p) - l * ctx.vals.get(kk));
            }
        }
    }
}

/// Finalizes row `r`: applies the τ drop rule to the strict U part,
/// MILU compensation, and the pivot breakdown policy. Must be called
/// exactly once per row, after its last elimination step and before any
/// dependent row reads it.
#[inline]
pub fn finalize_row<T: Scalar>(ctx: &NumericCtx<'_, T>, r: usize) {
    let dp = ctx.diag_pos[r];
    let mut dropped_sum = T::ZERO;
    if !ctx.drop_thresh.is_empty() {
        let thresh = ctx.drop_thresh[r];
        for k in (dp + 1)..ctx.rowptr[r + 1] {
            let v = ctx.vals.get(k);
            if v != T::ZERO && v.abs() < thresh {
                ctx.vals.set(k, T::ZERO);
                dropped_sum += v;
                ctx.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let mut d = ctx.vals.get(dp);
    if ctx.milu_omega != T::ZERO {
        d += ctx.milu_omega * dropped_sum;
    }
    match javelin_sparse::fault::fire("numeric.pivot") {
        Some(javelin_sparse::fault::FaultAction::Zero) => d = T::ZERO,
        Some(javelin_sparse::fault::FaultAction::Nan) => d = T::from_f64(f64::NAN),
        Some(javelin_sparse::fault::FaultAction::Panic) => {
            panic!("fault injected at numeric.pivot")
        }
        None => {}
    }
    // A non-finite pivot is a breakdown too: NaN/Inf compares false
    // against the threshold but would poison every dependent row.
    if d.abs() < ctx.pivot_threshold || !d.is_finite() {
        match ctx.zero_pivot {
            // ShiftRetry attempts run with Error semantics per sweep;
            // the retry loop above the engines applies the shifts.
            ZeroPivotPolicy::Error | ZeroPivotPolicy::ShiftRetry { .. } => ctx.record_failure(r),
            ZeroPivotPolicy::Replace { replacement } => {
                let rep = T::from_f64(replacement);
                d = if d < T::ZERO { -rep } else { rep };
                ctx.replaced.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    ctx.vals.set(dp, d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn luvals_roundtrip_f64() {
        let v = LuVals::<f64>::from_values(&[1.5, -2.25, 0.0]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert_eq!(v.get(1), -2.25);
        v.set(1, 7.0);
        assert_eq!(v.into_values(), vec![1.5, 7.0, 0.0]);
    }

    #[test]
    fn luvals_roundtrip_f32() {
        let v = LuVals::<f32>::from_values(&[0.5, 3.5]);
        v.set(0, -1.25);
        assert_eq!(v.into_values(), vec![-1.25f32, 3.5]);
    }

    #[test]
    fn workspace_maps_current_row_only() {
        let rowptr = vec![0, 2, 4];
        let colidx = vec![0, 1, 0, 1];
        let mut ws = RowWorkspace::new(2);
        ws.load_row(&rowptr, &colidx, 0);
        assert_eq!(ws.entry_of(0), Some(0));
        assert_eq!(ws.entry_of(1), Some(1));
        ws.load_row(&rowptr, &colidx, 1);
        assert_eq!(ws.entry_of(0), Some(2));
        assert_eq!(ws.entry_of(1), Some(3));
    }

    /// 2x2 dense: A = [[4, 2], [1, 3]]; LU: l21 = 1/4, u22 = 3 - 2/4.
    #[test]
    fn eliminates_a_2x2_row() {
        let rowptr = vec![0, 2, 4];
        let colidx = vec![0, 1, 0, 1];
        let diag_pos = vec![0, 3];
        let vals = LuVals::from_values(&[4.0, 2.0, 1.0, 3.0]);
        let replaced = AtomicUsize::new(0);
        let dropped = AtomicUsize::new(0);
        let failed = AtomicUsize::new(usize::MAX);
        let ctx = NumericCtx {
            rowptr: &rowptr,
            colidx: &colidx,
            diag_pos: &diag_pos,
            vals: &vals,
            drop_thresh: &[],
            milu_omega: 0.0,
            pivot_threshold: 1e-14,
            zero_pivot: ZeroPivotPolicy::Error,
            replaced: &replaced,
            dropped: &dropped,
            failed_row: &failed,
        };
        let mut ws = RowWorkspace::new(2);
        finalize_row(&ctx, 0);
        ws.load_row(&rowptr, &colidx, 1);
        eliminate_columns(&ctx, &ws, 1, 0, 2);
        finalize_row(&ctx, 1);
        let out = vals.into_values();
        assert_eq!(out, vec![4.0, 2.0, 0.25, 2.5]);
        assert_eq!(failed.load(Ordering::Relaxed), usize::MAX);
    }

    #[test]
    fn window_split_equals_full_sweep() {
        // Row 2 of a dense 3x3 processed as [0,1) then [1,2) must equal
        // one [0,2) sweep.
        let a = [[4.0, 1.0, 2.0], [1.0, 5.0, 1.0], [2.0, 1.0, 6.0]];
        let build = || {
            let rowptr = vec![0, 3, 6, 9];
            let colidx = vec![0, 1, 2, 0, 1, 2, 0, 1, 2];
            let diag_pos = vec![0, 4, 8];
            let flat: Vec<f64> = a.iter().flatten().copied().collect();
            (rowptr, colidx, diag_pos, LuVals::from_values(&flat))
        };
        let run = |windows: &[(usize, usize)]| -> Vec<f64> {
            let (rowptr, colidx, diag_pos, vals) = build();
            let replaced = AtomicUsize::new(0);
            let dropped = AtomicUsize::new(0);
            let failed = AtomicUsize::new(usize::MAX);
            let ctx = NumericCtx {
                rowptr: &rowptr,
                colidx: &colidx,
                diag_pos: &diag_pos,
                vals: &vals,
                drop_thresh: &[],
                milu_omega: 0.0,
                pivot_threshold: 1e-14,
                zero_pivot: ZeroPivotPolicy::Error,
                replaced: &replaced,
                dropped: &dropped,
                failed_row: &failed,
            };
            let mut ws = RowWorkspace::new(3);
            for r in 0..3 {
                ws.load_row(&rowptr, &colidx, r);
                if r < 2 {
                    eliminate_columns(&ctx, &ws, r, 0, 3);
                } else {
                    for &(lo, hi) in windows {
                        eliminate_columns(&ctx, &ws, r, lo, hi);
                    }
                }
                finalize_row(&ctx, r);
            }
            vals.into_values()
        };
        let full = run(&[(0, 3)]);
        let split = run(&[(0, 1), (1, 3)]);
        assert_eq!(full, split);
    }

    #[test]
    fn pivot_replacement_policy() {
        // Diagonal becomes exactly zero: 1x1 matrix with value 0.
        let rowptr = vec![0, 1];
        let colidx = vec![0];
        let diag_pos = vec![0];
        let vals = LuVals::from_values(&[0.0]);
        let replaced = AtomicUsize::new(0);
        let dropped = AtomicUsize::new(0);
        let failed = AtomicUsize::new(usize::MAX);
        let ctx = NumericCtx {
            rowptr: &rowptr,
            colidx: &colidx,
            diag_pos: &diag_pos,
            vals: &vals,
            drop_thresh: &[],
            milu_omega: 0.0,
            pivot_threshold: 1e-14,
            zero_pivot: ZeroPivotPolicy::Replace { replacement: 1e-6 },
            replaced: &replaced,
            dropped: &dropped,
            failed_row: &failed,
        };
        finalize_row(&ctx, 0);
        assert_eq!(replaced.load(Ordering::Relaxed), 1);
        assert_eq!(vals.get(0), 1e-6);
    }

    #[test]
    fn pivot_error_policy_records_row() {
        let rowptr = vec![0, 1];
        let colidx = vec![0];
        let diag_pos = vec![0];
        let vals = LuVals::from_values(&[0.0f64]);
        let replaced = AtomicUsize::new(0);
        let dropped = AtomicUsize::new(0);
        let failed = AtomicUsize::new(usize::MAX);
        let ctx = NumericCtx {
            rowptr: &rowptr,
            colidx: &colidx,
            diag_pos: &diag_pos,
            vals: &vals,
            drop_thresh: &[],
            milu_omega: 0.0,
            pivot_threshold: 1e-14,
            zero_pivot: ZeroPivotPolicy::Error,
            replaced: &replaced,
            dropped: &dropped,
            failed_row: &failed,
        };
        finalize_row(&ctx, 0);
        assert_eq!(failed.load(Ordering::Relaxed), 1); // row 0 + 1
    }

    #[test]
    fn dropping_zeroes_small_u_entries_and_milu_compensates() {
        // Row 0: diag 2.0 with tiny U neighbour 1e-9.
        let rowptr = vec![0, 2, 3];
        let colidx = vec![0, 1, 1];
        let diag_pos = vec![0, 2];
        let vals = LuVals::from_values(&[2.0, 1e-9, 1.0]);
        let replaced = AtomicUsize::new(0);
        let dropped = AtomicUsize::new(0);
        let failed = AtomicUsize::new(usize::MAX);
        let thresh = vec![1e-6, 1e-6];
        let ctx = NumericCtx {
            rowptr: &rowptr,
            colidx: &colidx,
            diag_pos: &diag_pos,
            vals: &vals,
            drop_thresh: &thresh,
            milu_omega: 1.0,
            pivot_threshold: 1e-14,
            zero_pivot: ZeroPivotPolicy::Error,
            replaced: &replaced,
            dropped: &dropped,
            failed_row: &failed,
        };
        finalize_row(&ctx, 0);
        assert_eq!(dropped.load(Ordering::Relaxed), 1);
        assert_eq!(vals.get(1), 0.0);
        // MILU: diag absorbed the dropped value.
        assert_eq!(vals.get(0), 2.0 + 1e-9);
    }
}
