//! Numeric up-looking incomplete factorization (paper Fig. 1, §III).
//!
//! All engines execute the *same* per-row kernel in the *same*
//! within-row operation order, so the serial, point-to-point,
//! Even-Rows and Segmented-Rows paths produce **bit-identical**
//! factors — a property the test suite enforces. Engine choice affects
//! only who executes which row when.

pub mod batch;
pub mod kernel;
pub mod lower;
pub mod parallel;

pub use kernel::{LuVals, RowWorkspace};

use crate::options::ZeroPivotPolicy;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Shared mutable state of a numeric factorization run: the bit-packed
/// values plus the counters every engine updates.
pub struct NumericCtx<'a, T: javelin_sparse::Scalar> {
    /// Combined-LU pattern row pointers (permuted).
    pub rowptr: &'a [usize],
    /// Combined-LU pattern column indices (permuted).
    pub colidx: &'a [usize],
    /// Diagonal entry position of each row.
    pub diag_pos: &'a [usize],
    /// Bit-packed values (initialized from `A`, overwritten in place).
    pub vals: &'a LuVals<T>,
    /// Per-row τ drop thresholds (empty slice disables dropping).
    pub drop_thresh: &'a [T],
    /// MILU compensation factor ω.
    pub milu_omega: T,
    /// Pivot breakdown threshold.
    pub pivot_threshold: T,
    /// Breakdown policy.
    pub zero_pivot: ZeroPivotPolicy,
    /// Replaced-pivot counter (all engines).
    pub replaced: &'a AtomicUsize,
    /// Dropped-entry counter.
    pub dropped: &'a AtomicUsize,
    /// Breakdown flag for [`ZeroPivotPolicy::Error`]: initialized to
    /// `usize::MAX` (= ok), lowered to `row + 1` of the smallest failing
    /// row.
    pub failed_row: &'a AtomicUsize,
}

impl<'a, T: javelin_sparse::Scalar> NumericCtx<'a, T> {
    /// Entry range of a row.
    #[inline(always)]
    pub fn row_range(&self, r: usize) -> std::ops::Range<usize> {
        self.rowptr[r]..self.rowptr[r + 1]
    }

    /// Records a pivot breakdown at `row`.
    #[inline]
    pub fn record_failure(&self, row: usize) {
        // Keep the smallest failing row for a deterministic error.
        self.failed_row.fetch_min(row + 1, Ordering::AcqRel);
    }
}
