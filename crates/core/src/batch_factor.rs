//! Batched refactorization: `k` pattern-identical value-sets through
//! **one** schedule walk.
//!
//! [`SymbolicIlu::factor_batch`] turns `k` pattern-identical matrices
//! (the scenario corners of a parameter sweep) into a [`FactorsBatch`]:
//! `k` independent [`IluFactors`] produced by a single pass of the
//! numeric engines in which the level-schedule / point-to-point walk,
//! the counter resets, the team regions and the per-row
//! sparse-accumulator loads are shared, and only the per-entry
//! arithmetic loops over the `k` value-sets (through the
//! [`Lanes`](javelin_sparse::lanes::Lanes) layer — see
//! [`crate::numeric::batch`]). [`FactorsBatch::refactor_batch`] redoes
//! the numeric phase for the next sweep step with **zero heap
//! allocations and zero thread spawns** on the persistent team.
//!
//! Per-scenario breakdown semantics: every scenario carries its own
//! [`ZeroPivotPolicy`] state. Under
//! `ShiftRetry`, a singular corner escalates **its own** sticky
//! diagonal shift across full re-runs of the batch while never-failed
//! neighbours rerun unshifted — and because the engines are
//! deterministic, those neighbours reproduce bit-identical factors on
//! every sweep, so one bad corner cannot perturb the others. A corner
//! that exhausts its attempt budget (or fails under `Error`) gets a
//! **typed per-scenario error** in [`FactorsBatch::statuses`] and keeps
//! its previous factors, exactly like the scalar
//! [`IluFactors::refactor`] contract.
//!
//! Bit-identity: scenario `c` of any batch run is bit-identical to the
//! scalar `refactor` of matrix `c` alone — per lane, the kernels
//! execute the scalar operation order on lane-`c` data only, and the
//! retry loop applies the same reload + shift sequence the scalar
//! policy would. The differential proptests in
//! `crates/core/tests/batch_differential.rs` enforce this across
//! engines × threads × k × pivot policies.

use crate::factors::IluFactors;
use crate::numeric::batch::{
    factor_batch_lower_er_planned, factor_batch_serial_ws, factor_batch_upper_p2p_planned,
    BatchNumericCtx,
};
use crate::numeric::kernel::LuVals;
use crate::options::ZeroPivotPolicy;
use crate::precond::ScenarioPrecond;
use crate::symbolic_ilu::{NumericScratch, SymCore, SymbolicIlu, FILL};
use crate::SolveEngine;
use javelin_sparse::{with_lanes, CsrMatrix, Scalar, SparseError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// `k` scenario factorizations of one symbolic analysis, produced and
/// refreshed as a batch (see module docs). Obtain with
/// [`SymbolicIlu::factor_batch`]; refresh each sweep step with
/// [`FactorsBatch::refactor_batch`]; feed panel solves with
/// [`FactorsBatch::precond`].
pub struct FactorsBatch<T: Scalar> {
    sym: SymbolicIlu<T>,
    k: usize,
    /// Interleaved batch value buffer: scenario `c` of LU entry `e` at
    /// `e·k + c`.
    lu_vals: LuVals<T>,
    /// Interleaved per-scenario τ thresholds (`r·k + c`); empty when
    /// dropping is off.
    drop_thresh: Vec<T>,
    replaced: Vec<AtomicUsize>,
    dropped: Vec<AtomicUsize>,
    failed: Vec<AtomicUsize>,
    /// Failed sweeps per scenario (ShiftRetry bookkeeping).
    failures: Vec<usize>,
    /// Last failing row per scenario.
    fail_rows: Vec<usize>,
    /// Last absolute diagonal shift applied per scenario.
    shifts: Vec<f64>,
    factors: Vec<IluFactors<T>>,
    statuses: Vec<Result<(), SparseError>>,
}

impl<T: Scalar> SymbolicIlu<T> {
    /// Numeric factorization of `k` pattern-identical matrices in one
    /// batched pass of the engines (see [`FactorsBatch`]). Every matrix
    /// must have exactly the analyzed pattern.
    ///
    /// Scenario breakdowns are **per-scenario**, reported through
    /// [`FactorsBatch::statuses`]; this only errs globally.
    ///
    /// # Errors
    /// * [`SparseError::DimensionMismatch`] when `mats` is empty;
    /// * [`SparseError::PatternMismatch`] when any matrix's pattern
    ///   differs from the analyzed one.
    pub fn factor_batch(&self, mats: &[&CsrMatrix<T>]) -> Result<FactorsBatch<T>, SparseError> {
        let k = mats.len();
        if k == 0 {
            return Err(SparseError::DimensionMismatch(
                "factor_batch needs at least one scenario matrix".to_string(),
            ));
        }
        for a in mats {
            self.check_pattern(a)?;
        }
        let c = self.core();
        let nnz = c.colidx.len();
        // Seed every scenario with an identity-safe factor (unit
        // diagonal, zero off-diagonal): a corner that breaks down on
        // the very first batch still leaves a usable — if weak —
        // preconditioner, mirroring the scalar keep-previous contract.
        let mut seed_vals = vec![T::ZERO; nnz];
        for &dp in c.diag_pos.iter() {
            seed_vals[dp] = T::from_f64(1.0);
        }
        let factors = (0..k)
            .map(|_| {
                let lu = CsrMatrix::from_raw_unchecked(
                    c.n,
                    c.n,
                    c.rowptr.clone(),
                    c.colidx.clone(),
                    seed_vals.clone(),
                );
                IluFactors::from_parts(self.clone(), lu, c.stats.clone())
            })
            .collect();
        let mut batch = FactorsBatch {
            sym: self.clone(),
            k,
            // First-touch on the factorization's own threads (see
            // `LuVals::zeroed_on`) — the batch buffer is k× the scalar
            // one, so placement matters most here.
            lu_vals: LuVals::zeroed_on(nnz * k, self.exec()),
            drop_thresh: if c.opts.drop_tol > 0.0 {
                vec![T::ZERO; c.n * k]
            } else {
                Vec::new()
            },
            replaced: (0..k).map(|_| AtomicUsize::new(0)).collect(),
            dropped: (0..k).map(|_| AtomicUsize::new(0)).collect(),
            failed: (0..k).map(|_| AtomicUsize::new(usize::MAX)).collect(),
            failures: vec![0; k],
            fail_rows: vec![0; k],
            shifts: vec![0.0; k],
            factors,
            statuses: (0..k).map(|_| Ok(())).collect(),
        };
        batch.refactor_batch(mats)?;
        Ok(batch)
    }
}

impl<T: Scalar> FactorsBatch<T> {
    /// Scenario count (the lane width of the batch).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The symbolic analysis shared by every scenario factor.
    pub fn symbolic(&self) -> &SymbolicIlu<T> {
        &self.sym
    }

    /// The `k` scenario factors, in input order.
    pub fn factors(&self) -> &[IluFactors<T>] {
        &self.factors
    }

    /// Scenario `c`'s factors.
    pub fn factor(&self, c: usize) -> &IluFactors<T> {
        &self.factors[c]
    }

    /// Per-scenario outcome of the latest batch: `Ok` when the
    /// scenario factored (possibly shift-retried — see its
    /// `stats().shift_attempts`), [`SparseError::ZeroPivot`] under the
    /// `Error` policy, [`SparseError::Breakdown`] when `ShiftRetry`
    /// exhausted its budget. Failed scenarios keep their previous
    /// factors.
    pub fn statuses(&self) -> &[Result<(), SparseError>] {
        &self.statuses
    }

    /// Whether every scenario of the latest batch factored.
    pub fn all_ok(&self) -> bool {
        self.statuses.iter().all(|s| s.is_ok())
    }

    /// A per-scenario panel preconditioner: column `c` of a batched
    /// Krylov solve is preconditioned by scenario `c`'s factors.
    pub fn precond(&self, engine: SolveEngine) -> ScenarioPrecond<'_, T> {
        ScenarioPrecond::new(&self.factors, engine)
    }

    /// Redoes the numeric phase of **all** `k` scenarios in one batched
    /// pass — the sweep-stepping entry point. The schedule walk, team
    /// regions, counter resets and row loads run once; the per-row
    /// arithmetic loops over the scenario lanes. In the steady state
    /// this performs **zero heap allocations and zero thread spawns**
    /// (enforced by `tests/refactor_alloc.rs`).
    ///
    /// Scenario breakdowns are per-scenario: consult
    /// [`FactorsBatch::statuses`] (or [`FactorsBatch::all_ok`]) after
    /// the call. A failed scenario keeps its previous factors and
    /// statistics; its neighbours are bit-identical to a run without
    /// the bad corner.
    ///
    /// # Errors
    /// * [`SparseError::DimensionMismatch`] when `mats.len() != k`;
    /// * [`SparseError::PatternMismatch`] when any matrix's pattern
    ///   differs from the analyzed one. In both cases no factor is
    ///   touched.
    pub fn refactor_batch(&mut self, mats: &[&CsrMatrix<T>]) -> Result<(), SparseError> {
        if mats.len() != self.k {
            return Err(SparseError::DimensionMismatch(format!(
                "refactor_batch got {} matrices, batch was built for k = {}",
                mats.len(),
                self.k
            )));
        }
        for a in mats {
            self.sym.check_pattern(a)?;
        }
        let t2 = Instant::now();
        let Self {
            sym,
            k,
            lu_vals,
            drop_thresh,
            replaced,
            dropped,
            failed,
            failures,
            fail_rows,
            shifts,
            factors,
            statuses,
        } = self;
        let k = *k;
        let c = sym.core();
        {
            let mut num = c.numeric.lock();
            for lane in 0..k {
                failures[lane] = 0;
                fail_rows[lane] = 0;
                shifts[lane] = 0.0;
                statuses[lane] = Ok(());
                replaced[lane].store(0, Ordering::Relaxed);
                dropped[lane].store(0, Ordering::Relaxed);
            }
            let (initial, growth, max_attempts) = match c.opts.zero_pivot {
                ZeroPivotPolicy::ShiftRetry {
                    initial,
                    growth,
                    max_attempts,
                } => (initial, growth, max_attempts),
                _ => (0.0, 0.0, 0),
            };
            // Sweep loop. Non-ShiftRetry policies run exactly one
            // sweep; ShiftRetry re-runs the whole batch while any
            // non-exhausted scenario still fails, with per-scenario
            // sticky shifts. Deterministic engines make re-runs of
            // already-succeeding scenarios bit-identical, so the loop
            // cannot perturb them.
            loop {
                load_batch(c, k, lu_vals, drop_thresh, mats);
                for lane in 0..k {
                    if failures[lane] > 0 && failures[lane] <= max_attempts {
                        // Same escalation the scalar retry loop applies
                        // on its `failures[lane]`-th retry.
                        let rel = initial * growth.powi(failures[lane] as i32 - 1);
                        shifts[lane] = shift_lane(c, k, lu_vals, lane, rel);
                    }
                    failed[lane].store(usize::MAX, Ordering::Relaxed);
                }
                run_batch_engines(
                    c,
                    &mut num,
                    k,
                    lu_vals,
                    drop_thresh,
                    replaced,
                    dropped,
                    failed,
                );
                let mut retry = false;
                for lane in 0..k {
                    let f = failed[lane].load(Ordering::Relaxed);
                    if f == usize::MAX || statuses[lane].is_err() {
                        continue;
                    }
                    let row = f - 1;
                    failures[lane] += 1;
                    fail_rows[lane] = row;
                    match c.opts.zero_pivot {
                        ZeroPivotPolicy::ShiftRetry { .. } => {
                            if failures[lane] > max_attempts {
                                // Budget exhausted: typed per-scenario
                                // breakdown, factors stay as they were.
                                statuses[lane] = Err(SparseError::Breakdown {
                                    row: fail_rows[lane],
                                    attempts: max_attempts + 1,
                                    shift: shifts[lane],
                                });
                            } else {
                                retry = true;
                            }
                        }
                        _ => statuses[lane] = Err(SparseError::ZeroPivot { row }),
                    }
                }
                if !retry {
                    break;
                }
            }
        }
        // Commit phase: de-interleave every successful scenario into
        // its factor object and complete its statistics; failed
        // scenarios keep the previous factorization.
        let t_numeric = t2.elapsed();
        let nnz = c.colidx.len();
        for lane in 0..k {
            if statuses[lane].is_err() {
                continue;
            }
            let out = factors[lane].lu_vals_mut();
            for (e, slot) in out.iter_mut().enumerate().take(nnz) {
                *slot = lu_vals.get(e * k + lane);
            }
            let stats = factors[lane].stats_mut();
            stats.replaced_pivots = replaced[lane].load(Ordering::Relaxed);
            stats.dropped_entries = dropped[lane].load(Ordering::Relaxed);
            stats.shift_attempts = failures[lane] + 1;
            stats.diag_shift = shifts[lane];
            stats.t_numeric = t_numeric;
        }
        Ok(())
    }
}

/// Loads every scenario's values into the interleaved batch buffer
/// through the precomputed source map (fill positions get zero) and
/// recomputes the per-scenario τ thresholds — the batched
/// `load_values`. Allocation-free.
fn load_batch<T: Scalar>(
    c: &SymCore<T>,
    k: usize,
    lu_vals: &LuVals<T>,
    drop_thresh: &mut [T],
    mats: &[&CsrMatrix<T>],
) {
    for (e, &src) in c.a_src.iter().enumerate() {
        for (lane, a) in mats.iter().enumerate() {
            lu_vals.set(
                e * k + lane,
                if src == FILL { T::ZERO } else { a.vals()[src] },
            );
        }
    }
    if c.opts.drop_tol > 0.0 {
        let new_to_old = c.perm.new_to_old();
        for new_r in 0..c.n {
            let old_r = new_to_old[new_r];
            for (lane, a) in mats.iter().enumerate() {
                let norm = a.row_vals(old_r).iter().map(|&v| v * v).sum::<T>().sqrt();
                drop_thresh[new_r * k + lane] = T::from_f64(c.opts.drop_tol) * norm;
            }
        }
    }
}

/// Boosts scenario `lane`'s diagonal away from zero by
/// `relative_shift · max|aᵢᵢ|` of **that scenario's** freshly loaded
/// diagonal — the per-lane `apply_diag_shift`, bit-identical to the
/// scalar one run on matrix `lane` alone. Returns the absolute shift.
fn shift_lane<T: Scalar>(
    c: &SymCore<T>,
    k: usize,
    lu_vals: &LuVals<T>,
    lane: usize,
    relative_shift: f64,
) -> f64 {
    let mut scale = 0.0f64;
    for &dp in c.diag_pos.iter() {
        scale = scale.max(lu_vals.get(dp * k + lane).abs().to_f64());
    }
    if scale == 0.0 {
        scale = 1.0;
    }
    let shift = relative_shift * scale;
    let shift_t = T::from_f64(shift);
    for &dp in c.diag_pos.iter() {
        let d = lu_vals.get(dp * k + lane);
        lu_vals.set(
            dp * k + lane,
            if d < T::ZERO {
                d - shift_t
            } else {
                d + shift_t
            },
        );
    }
    shift
}

/// One batched numeric sweep over the loaded interleaved buffer on the
/// planned engines: serial when single-threaded, otherwise the
/// point-to-point upper stage plus the Even-Rows lower stage as regions
/// on the persistent team — the batch analogue of the scalar
/// `NumericPath::Planned`. Breakdown policy inside the kernels is
/// forced to flag-only (`record_failure`); the retry/error policy is
/// applied per scenario by the caller.
#[allow(clippy::too_many_arguments)]
fn run_batch_engines<T: Scalar>(
    c: &SymCore<T>,
    num: &mut NumericScratch<T>,
    k: usize,
    lu_vals: &LuVals<T>,
    drop_thresh: &[T],
    replaced: &[AtomicUsize],
    dropped: &[AtomicUsize],
    failed: &[AtomicUsize],
) {
    let ctx = BatchNumericCtx {
        rowptr: &c.rowptr,
        colidx: &c.colidx,
        diag_pos: &c.diag_pos,
        vals: lu_vals,
        drop_thresh,
        milu_omega: T::from_f64(c.opts.milu_omega),
        pivot_threshold: T::from_f64(c.opts.pivot_threshold),
        zero_pivot: match c.opts.zero_pivot {
            ZeroPivotPolicy::Replace { replacement } => ZeroPivotPolicy::Replace { replacement },
            // Error and ShiftRetry both record per-lane failure flags;
            // the caller turns them into errors or retries.
            _ => ZeroPivotPolicy::Error,
        },
        replaced,
        dropped,
        failed_row: failed,
    };
    let n_upper = c.plan.n_upper;
    let n_lower = c.n - n_upper;
    with_lanes!(k, lanes => {
        if c.nthreads == 1 {
            factor_batch_serial_ws(lanes, &ctx, &mut num.row_ws[0].lock());
        } else {
            factor_batch_upper_p2p_planned(
                lanes,
                &ctx,
                &c.plan.fwd,
                &c.exec,
                &num.progress,
                &num.row_ws,
            );
            if n_lower > 0 {
                factor_batch_lower_er_planned(lanes, &ctx, n_upper, &c.exec, &num.row_ws);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use crate::options::IluOptions;
    use crate::symbolic_ilu::SymbolicIlu;
    use javelin_sparse::{CsrMatrix, SparseError};
    use javelin_synth::grid::laplace_2d;
    use javelin_synth::util::revalue;

    fn corners(a: &CsrMatrix<f64>, k: usize) -> Vec<CsrMatrix<f64>> {
        (0..k)
            .map(|c| revalue(a, 0.3 + c as f64 * 0.77, 0.05))
            .collect()
    }

    fn bits(f: &crate::IluFactors<f64>) -> Vec<u64> {
        f.lu().vals().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn factor_batch_matches_looped_refactor_bitwise() {
        let a = laplace_2d(13, 13);
        for nthreads in [1usize, 2] {
            let sym = SymbolicIlu::analyze(&a, &IluOptions::ilu0(nthreads)).unwrap();
            let mats = corners(&a, 4);
            let refs: Vec<&CsrMatrix<f64>> = mats.iter().collect();
            let batch = sym.factor_batch(&refs).unwrap();
            assert!(batch.all_ok());
            for (c, m) in mats.iter().enumerate() {
                let mut scalar = sym.factor(&a).unwrap();
                scalar.refactor(m).unwrap();
                assert_eq!(
                    bits(batch.factor(c)),
                    bits(&scalar),
                    "scenario {c}, nthreads {nthreads}"
                );
            }
        }
    }

    #[test]
    fn refactor_batch_steps_match_scalar() {
        let a = laplace_2d(11, 11);
        let sym = SymbolicIlu::analyze(&a, &IluOptions::ilu0(2)).unwrap();
        let mats0 = corners(&a, 3);
        let refs0: Vec<&CsrMatrix<f64>> = mats0.iter().collect();
        let mut batch = sym.factor_batch(&refs0).unwrap();
        let mats1: Vec<CsrMatrix<f64>> = mats0.iter().map(|m| revalue(m, 1.5, 0.1)).collect();
        let refs1: Vec<&CsrMatrix<f64>> = mats1.iter().collect();
        batch.refactor_batch(&refs1).unwrap();
        assert!(batch.all_ok());
        for (c, m) in mats1.iter().enumerate() {
            let mut scalar = sym.factor(&a).unwrap();
            scalar.refactor(m).unwrap();
            assert_eq!(bits(batch.factor(c)), bits(&scalar), "scenario {c}");
        }
    }

    #[test]
    fn wrong_k_and_wrong_pattern_are_global_errors() {
        let a = laplace_2d(9, 9);
        let sym = SymbolicIlu::analyze(&a, &IluOptions::ilu0(1)).unwrap();
        let mats = corners(&a, 2);
        let refs: Vec<&CsrMatrix<f64>> = mats.iter().collect();
        let mut batch = sym.factor_batch(&refs).unwrap();
        let before: Vec<Vec<u64>> = batch.factors().iter().map(super::tests::bits).collect();
        assert!(matches!(
            batch.refactor_batch(&refs[..1]),
            Err(SparseError::DimensionMismatch(_))
        ));
        let other = laplace_2d(10, 10);
        assert!(matches!(
            batch.refactor_batch(&[&other, &other]),
            Err(SparseError::PatternMismatch(_))
        ));
        let after: Vec<Vec<u64>> = batch.factors().iter().map(super::tests::bits).collect();
        assert_eq!(before, after, "global errors must leave factors untouched");
        assert!(sym.factor_batch(&[]).is_err());
    }
}
