//! Numeric factor objects — the value-carrying half of the two-phase
//! symbolic/numeric API (see [`crate::symbolic_ilu`]) — plus the legacy
//! one-shot pipeline entry.

use crate::options::SolveEngine;
use crate::stats::FactorStats;
use crate::symbolic_ilu::SymbolicIlu;
use crate::trisolve::{engines, serial};
use javelin_level::{LevelSets, P2PSchedule};
use javelin_sparse::lanes::{DynLanes, Lanes};
use javelin_sparse::{with_lanes, CsrMatrix, Panel, PanelMut, Perm, Scalar, SparseError};
use javelin_sync::Exec;

/// Everything the triangular-solve engines need, precomputed once at
/// analysis time — the co-design the paper stresses: the factor
/// layout *is* the solve layout.
#[derive(Debug)]
pub struct SolvePlan {
    /// Rows in the upper (point-to-point) stage.
    pub n_upper: usize,
    /// Level boundaries of the upper stage (new row indices).
    pub upper_level_ptr: Vec<usize>,
    /// Forward p2p schedule (execution index = row index).
    pub fwd: P2PSchedule,
    /// Backward p2p schedule over upper-stage rows (execution indices
    /// mapped through [`SolvePlan::bwd_row_of_task`]).
    pub bwd: P2PSchedule,
    /// Row solved by each backward execution index.
    pub bwd_row_of_task: Vec<usize>,
    /// Level boundaries of the backward upper-stage schedule (execution
    /// indices) — kept so simulators can rebuild the schedule for any
    /// thread count.
    pub bwd_level_ptr: Vec<usize>,
    /// Full-matrix lower-pattern levels (the CSR-LS baseline).
    pub fwd_levels: LevelSets,
    /// Full-matrix upper-pattern levels (the CSR-LS baseline).
    pub bwd_levels: LevelSets,
    /// Per trailing row: entry range `(k_lo, k_hi)` of its sub-corner
    /// prefix (columns `< n_upper`) inside the LU arrays.
    pub block_rows: Vec<(usize, usize)>,
    /// Cumulative sub-corner entry counts (`n_lower + 1` entries) — the
    /// segment pointer of the tiled trailing-block gather.
    pub block_seg_ptr: Vec<usize>,
}

/// An incomplete LU factorization `P·A·Pᵀ ≈ L·U` packaged for fast
/// repeated triangular solves.
///
/// Beyond the factor values, this holds a [`SymbolicIlu`] handle — the
/// pattern-dependent execution state shared by every factor object of
/// one analysis: the [`SolvePlan`] (schedules, levels, the
/// trailing-block layout), a reusable solve scratch (counters, barrier,
/// tiled-gather partials, the in-place solve buffer) and an
/// [`Exec`] — by default a persistent worker team — so that after the
/// numeric phase returns, every solve runs with zero heap allocations
/// and zero thread spawns. The scratch is mutex-guarded: concurrent
/// applies from different threads serialize instead of racing.
///
/// For time-stepping workloads, [`IluFactors::refactor`] redoes only
/// the numeric phase in place when the values change but the pattern
/// does not.
pub struct IluFactors<T> {
    sym: SymbolicIlu<T>,
    lu: CsrMatrix<T>,
    stats: FactorStats,
}

/// Runs the full pipeline in one call: symbolic analysis plus numeric
/// factorization (see crate docs). Prefer the explicit two-phase form —
/// [`SymbolicIlu::analyze`] then [`SymbolicIlu::factor`] — whenever the
/// same pattern is factored more than once.
///
/// # Errors
/// Everything [`SymbolicIlu::analyze`] and [`SymbolicIlu::factor`] can
/// return.
pub fn factorize<T: Scalar>(
    a: &CsrMatrix<T>,
    opts: &crate::options::IluOptions,
) -> Result<IluFactors<T>, SparseError> {
    SymbolicIlu::analyze(a, opts)?.factor(a)
}

/// The legacy fused entry point (symbolic + numeric in one call,
/// no refactorization).
///
/// # Errors
/// See [`factorize`].
#[deprecated(
    since = "0.1.0",
    note = "use `SymbolicIlu::analyze` + `SymbolicIlu::factor` (or the one-shot \
            `factorize`) so pattern-stable workloads can call `IluFactors::refactor`; \
            applications should prefer the `javelin::Session` façade"
)]
pub fn compute<T: Scalar>(
    a: &CsrMatrix<T>,
    opts: &crate::options::IluOptions,
) -> Result<IluFactors<T>, SparseError> {
    factorize(a, opts)
}

impl<T: Scalar> IluFactors<T> {
    /// Assembles a factor object (numeric-phase internal constructor).
    pub(crate) fn from_parts(sym: SymbolicIlu<T>, lu: CsrMatrix<T>, stats: FactorStats) -> Self {
        IluFactors { sym, lu, stats }
    }

    /// The symbolic analysis these factors were produced from. Cloning
    /// the handle is cheap and shares the plans, worker team and
    /// scratch.
    pub fn symbolic(&self) -> &SymbolicIlu<T> {
        &self.sym
    }

    /// Redoes the **numeric phase only**, in place, for a matrix with
    /// exactly the analyzed sparsity pattern but new values — the
    /// time-stepping entry point. The symbolic analysis, level
    /// schedules, trisolve/spmv plans, permutation, worker team and all
    /// scratch buffers are reused verbatim: in the steady state this
    /// performs **zero heap allocations and zero thread spawns** (the
    /// planned engines run as regions on the persistent team).
    ///
    /// The resulting factor values are **bit-identical** to a fresh
    /// [`SymbolicIlu::factor`] of the same matrix — the engines'
    /// determinism contract, enforced by the test suite.
    ///
    /// # Errors
    /// * [`SparseError::PatternMismatch`] when `a`'s pattern differs
    ///   from the analyzed one (the factors are left untouched);
    /// * [`SparseError::ZeroPivot`] under
    ///   [`crate::ZeroPivotPolicy::Error`] when a pivot collapses — the
    ///   factor values and statistics then keep the previous successful
    ///   factorization, so the old preconditioner stays usable.
    pub fn refactor(&mut self, a: &CsrMatrix<T>) -> Result<(), SparseError> {
        self.sym
            .refactor_into(a, self.lu.vals_mut(), &mut self.stats)
    }

    /// Like [`IluFactors::refactor`], but unconditionally boosts the
    /// diagonal by `relative_shift · max|aᵢᵢ|` before the numeric sweep,
    /// trading a little preconditioner accuracy for stability — the
    /// engine behind breakdown-aware solve retries, where the unshifted
    /// factorization completed but produced factors too ill-conditioned
    /// to apply. Same zero-allocation planned path as `refactor`; the
    /// applied absolute shift lands in `stats().diag_shift`.
    ///
    /// # Errors
    /// See [`IluFactors::refactor`].
    pub fn refactor_with_shift(
        &mut self,
        a: &CsrMatrix<T>,
        relative_shift: f64,
    ) -> Result<(), SparseError> {
        self.sym
            .refactor_shifted_into(a, self.lu.vals_mut(), &mut self.stats, relative_shift)
    }

    /// Mutable factor-value storage — the batched-refactor commit path
    /// (`crate::batch_factor`) de-interleaves scenario lanes into it.
    pub(crate) fn lu_vals_mut(&mut self) -> &mut [T] {
        self.lu.vals_mut()
    }

    /// Mutable statistics — completed per scenario by the batched
    /// numeric phase.
    pub(crate) fn stats_mut(&mut self) -> &mut FactorStats {
        &mut self.stats
    }

    /// Pre-grows the internal solve scratch to panel width `k`, so the
    /// first width-`k` panel solve is already allocation-free. Widths
    /// are grow-only; narrower panels reuse the wide buffers.
    pub fn reserve_panel_width(&self, k: usize) {
        if k > 1 {
            self.sym.core().scratch.lock().ensure_width(k);
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.lu.nrows()
    }

    /// The combined LU factor (unit L diagonal implicit) in the
    /// permuted ordering.
    pub fn lu(&self) -> &CsrMatrix<T> {
        &self.lu
    }

    /// Diagonal entry positions within the LU arrays.
    pub fn diag_positions(&self) -> &[usize] {
        &self.sym.core().diag_pos
    }

    /// The two-stage level permutation `P` (`LU ≈ P·A·Pᵀ`).
    pub fn perm(&self) -> &Perm {
        &self.sym.core().perm
    }

    /// Factorization statistics.
    pub fn stats(&self) -> &FactorStats {
        &self.stats
    }

    /// The solve plan (schedules, levels, trailing-block layout).
    pub fn plan(&self) -> &SolvePlan {
        &self.sym.core().plan
    }

    /// Threads the factors were built for.
    pub fn nthreads(&self) -> usize {
        self.sym.core().nthreads
    }

    /// Tile size used by Segmented-Rows and the tiled solve kernels.
    pub fn tile_size(&self) -> usize {
        self.sym.core().tile_size
    }

    /// Splits the combined factor into `(L, U)` with L's unit diagonal
    /// stored explicitly.
    pub fn split_lu(&self) -> (CsrMatrix<T>, CsrMatrix<T>) {
        let n = self.n();
        let mut l = self.lu.lower_triangular(false);
        // Add the unit diagonal to L.
        let (nr, nc, rp, ci, vs) = l.into_parts();
        let mut rowptr = vec![0usize; n + 1];
        let mut colidx = Vec::with_capacity(ci.len() + n);
        let mut vals = Vec::with_capacity(vs.len() + n);
        for r in 0..n {
            for k in rp[r]..rp[r + 1] {
                colidx.push(ci[k]);
                vals.push(vs[k]);
            }
            colidx.push(r);
            vals.push(T::ONE);
            rowptr[r + 1] = colidx.len();
        }
        l = CsrMatrix::from_raw_unchecked(nr, nc, rowptr, colidx, vals);
        let u = self.lu.upper_triangular(true);
        (l, u)
    }

    /// The engine used when none is named: LS+Lower when threaded and
    /// the machine actually has the cores, serial otherwise — including
    /// the oversubscribed case (`nthreads` above
    /// `std::thread::available_parallelism()` at plan time), where the
    /// point-to-point spin waits would churn against each other on
    /// shared cores.
    pub fn default_engine(&self) -> SolveEngine {
        self.sym.core().engine_hint
    }

    /// Solves `A·x ≈ b` through the factors with the default engine
    /// (see [`IluFactors::default_engine`]).
    ///
    /// # Errors
    /// [`SparseError::DimensionMismatch`] on length mismatches.
    pub fn solve_into(&self, b: &[T], x: &mut [T]) -> Result<(), SparseError> {
        self.solve_with(self.default_engine(), b, x)
    }

    /// Solves `A·x ≈ b` with an explicit engine.
    ///
    /// # Errors
    /// [`SparseError::DimensionMismatch`] on length mismatches.
    pub fn solve_with(&self, engine: SolveEngine, b: &[T], x: &mut [T]) -> Result<(), SparseError> {
        let n = self.n();
        if b.len() != n || x.len() != n {
            return Err(SparseError::DimensionMismatch(format!(
                "solve: rhs/solution lengths ({}, {}) != {}",
                b.len(),
                x.len(),
                n
            )));
        }
        // Permuted RHS.
        let mut z = self.perm().apply_vec(b);
        self.solve_permuted_inplace(engine, &mut z);
        // Un-permute into x.
        for (i, &o) in self.perm().new_to_old().iter().enumerate() {
            x[o] = z[i];
        }
        Ok(())
    }

    /// Like [`IluFactors::solve_with`], but the permutation buffer is
    /// caller-provided (resized on first use, reused after): together
    /// with the internal scratch this makes the whole solve
    /// allocation-free in the steady state — the path
    /// [`crate::Preconditioner::apply_with`] takes inside Krylov loops.
    ///
    /// # Errors
    /// [`SparseError::DimensionMismatch`] on length mismatches.
    pub fn solve_with_buffer(
        &self,
        engine: SolveEngine,
        perm_buf: &mut Vec<T>,
        b: &[T],
        x: &mut [T],
    ) -> Result<(), SparseError> {
        let n = self.n();
        if b.len() != n || x.len() != n {
            return Err(SparseError::DimensionMismatch(format!(
                "solve: rhs/solution lengths ({}, {}) != {}",
                b.len(),
                x.len(),
                n
            )));
        }
        perm_buf.resize(n, T::ZERO);
        let old_to_new = self.perm().old_to_new();
        for (o, &bo) in b.iter().enumerate() {
            perm_buf[old_to_new[o]] = bo;
        }
        self.solve_permuted_inplace(engine, perm_buf);
        for (i, &o) in self.perm().new_to_old().iter().enumerate() {
            x[o] = perm_buf[i];
        }
        Ok(())
    }

    /// The execution context solves run on (persistent team by default).
    pub fn exec(&self) -> &Exec {
        &self.sym.core().exec
    }

    /// Runs forward + backward substitution on an already-permuted
    /// buffer (in place). Exposed for benchmarking `stri` without
    /// permutation overhead, mirroring the paper's Fig. 12 measurement.
    ///
    /// Allocation-free: the parallel engines run through the reusable
    /// solve scratch on the analysis's [`Exec`] (a persistent team by
    /// default). Concurrent callers serialize on the scratch mutex.
    pub fn solve_permuted_inplace(&self, engine: SolveEngine, z: &mut [T]) {
        match engine {
            SolveEngine::Serial => {
                serial::forward_inplace(&self.lu, self.diag_positions(), z);
                serial::backward_inplace(&self.lu, self.diag_positions(), z);
            }
            _ => {
                let mut scratch = self.sym.core().scratch.lock();
                scratch.ensure_width(1);
                scratch.load_cols(Panel::from_col(z));
                self.run_parallel_engine(engine, &scratch);
                scratch.store_cols(&mut PanelMut::from_col(z));
            }
        }
    }

    /// Dispatches a non-serial engine over the scratch's loaded `xbuf`
    /// at its current panel width: `k ∈ {1, 4, 8}` route to the
    /// monomorphized fixed-lane kernels, everything else to the
    /// bit-identical dynamic-width fallback (the lane layer's dispatch
    /// table).
    fn run_parallel_engine(
        &self,
        engine: SolveEngine,
        scratch: &crate::trisolve::engines::SolveScratch<T>,
    ) {
        with_lanes!(scratch.width(), lanes => self.run_engine_lanes(lanes, engine, scratch));
    }

    /// The lane-generic engine dispatch behind
    /// [`IluFactors::run_parallel_engine`].
    fn run_engine_lanes<L: Lanes>(
        &self,
        lanes: L,
        engine: SolveEngine,
        scratch: &crate::trisolve::engines::SolveScratch<T>,
    ) {
        let core = self.sym.core();
        match engine {
            SolveEngine::Serial => unreachable!("serial substitution has no parallel scratch"),
            SolveEngine::BarrierLevel => engines::solve_barrier_fused(
                lanes,
                &self.lu,
                &core.diag_pos,
                &core.plan.fwd_levels,
                &core.plan.bwd_levels,
                scratch,
                &core.exec,
                &scratch.xbuf,
            ),
            SolveEngine::PointToPoint | SolveEngine::PointToPointLower => {
                let tiles = if engine == SolveEngine::PointToPointLower {
                    engines::LowerTiles::On
                } else {
                    engines::LowerTiles::Off
                };
                engines::solve_p2p_fused(
                    lanes,
                    &self.lu,
                    &core.diag_pos,
                    &core.plan,
                    scratch,
                    &core.exec,
                    tiles,
                    &scratch.xbuf,
                );
            }
        }
    }

    /// Solves `A·X ≈ B` for a whole panel of right-hand sides with the
    /// default engine: one schedule walk retires all `k` columns (see
    /// [`IluFactors::solve_permuted_panel_inplace`]).
    ///
    /// # Errors
    /// [`SparseError::DimensionMismatch`] on shape mismatches.
    pub fn solve_panel_into(&self, b: Panel<'_, T>, x: PanelMut<'_, T>) -> Result<(), SparseError> {
        self.solve_panel_with(self.default_engine(), b, x)
    }

    /// Panel solve with an explicit engine (allocates the permutation
    /// buffer; repeated callers should use
    /// [`IluFactors::solve_panel_with_buffer`]).
    ///
    /// # Errors
    /// [`SparseError::DimensionMismatch`] on shape mismatches.
    pub fn solve_panel_with(
        &self,
        engine: SolveEngine,
        b: Panel<'_, T>,
        x: PanelMut<'_, T>,
    ) -> Result<(), SparseError> {
        let mut perm_buf = Vec::new();
        self.solve_panel_with_buffer(engine, &mut perm_buf, b, x)
    }

    /// Panel analogue of [`IluFactors::solve_with_buffer`]: permutes a
    /// whole `n × k` RHS panel into the caller-provided buffer (grown to
    /// `n·k` on first use, reused after), runs one panel solve through
    /// the chosen engine, and un-permutes into `x`. In the steady state
    /// — buffer and internal scratch warmed at this width — the entire
    /// panel solve is allocation-free.
    ///
    /// Column `c` of the result is bit-identical to a single-RHS
    /// [`IluFactors::solve_with_buffer`] of column `c`.
    ///
    /// # Errors
    /// [`SparseError::DimensionMismatch`] on shape mismatches.
    pub fn solve_panel_with_buffer(
        &self,
        engine: SolveEngine,
        perm_buf: &mut Vec<T>,
        b: Panel<'_, T>,
        x: PanelMut<'_, T>,
    ) -> Result<(), SparseError> {
        self.solve_panel_buffered_impl(engine, perm_buf, b, x, false)
    }

    /// [`IluFactors::solve_panel_with_buffer`] pinned to the
    /// dynamic-width lane fallback regardless of `k` — a measurement
    /// aid so benchmarks can quantify what the fixed-width lane
    /// monomorphizations buy at `k ∈ {4, 8}`. Bit-identical to the
    /// dispatched path.
    ///
    /// # Errors
    /// [`SparseError::DimensionMismatch`] on shape mismatches.
    pub fn solve_panel_dynwidth_with_buffer(
        &self,
        engine: SolveEngine,
        perm_buf: &mut Vec<T>,
        b: Panel<'_, T>,
        x: PanelMut<'_, T>,
    ) -> Result<(), SparseError> {
        self.solve_panel_buffered_impl(engine, perm_buf, b, x, true)
    }

    fn solve_panel_buffered_impl(
        &self,
        engine: SolveEngine,
        perm_buf: &mut Vec<T>,
        b: Panel<'_, T>,
        mut x: PanelMut<'_, T>,
        dynwidth: bool,
    ) -> Result<(), SparseError> {
        let n = self.n();
        let k = b.ncols();
        if b.nrows() != n || x.nrows() != n || x.ncols() != k {
            return Err(SparseError::DimensionMismatch(format!(
                "panel solve: rhs {}x{} / solution {}x{} against factors of dimension {}",
                b.nrows(),
                b.ncols(),
                x.nrows(),
                x.ncols(),
                n
            )));
        }
        if k == 0 {
            return Ok(());
        }
        if perm_buf.len() < n * k {
            perm_buf.resize(n * k, T::ZERO);
        }
        let old_to_new = self.perm().old_to_new();
        let new_to_old = self.perm().new_to_old();
        let mut z = PanelMut::new(&mut perm_buf[..n * k], n, k);
        for c in 0..k {
            let bc = b.col(c);
            let zc = z.col_mut(c);
            for (o, &bo) in bc.iter().enumerate() {
                zc[old_to_new[o]] = bo;
            }
        }
        if dynwidth {
            self.solve_permuted_panel_lanes(engine, DynLanes(k), &mut z);
        } else {
            self.solve_permuted_panel_inplace(engine, &mut z);
        }
        for c in 0..k {
            let zc = z.col(c);
            let xc = x.col_mut(c);
            for (i, &o) in new_to_old.iter().enumerate() {
                xc[o] = zc[i];
            }
        }
        Ok(())
    }

    /// Runs forward + backward substitution on an already-permuted
    /// panel, in place: the multi-RHS analogue of
    /// [`IluFactors::solve_permuted_inplace`]. The parallel engines
    /// retire all `k` columns per row under **one** counter/barrier
    /// protocol, so the schedule walk is paid once per panel; the
    /// internal scratch grows (grow-only) to the widest panel seen.
    /// Widths `k ∈ {1, 4, 8}` run the monomorphized fixed-lane
    /// kernels; every other width the bit-identical dynamic fallback.
    pub fn solve_permuted_panel_inplace(&self, engine: SolveEngine, z: &mut PanelMut<'_, T>) {
        let k = z.ncols();
        if k == 0 {
            return;
        }
        with_lanes!(k, lanes => self.solve_permuted_panel_lanes(engine, lanes, z));
    }

    /// The lane-generic body of
    /// [`IluFactors::solve_permuted_panel_inplace`].
    fn solve_permuted_panel_lanes<L: Lanes>(
        &self,
        engine: SolveEngine,
        lanes: L,
        z: &mut PanelMut<'_, T>,
    ) {
        match engine {
            SolveEngine::Serial => {
                serial::forward_panel_inplace(&self.lu, self.diag_positions(), z);
                serial::backward_panel_inplace(&self.lu, self.diag_positions(), z);
            }
            _ => {
                let mut scratch = self.sym.core().scratch.lock();
                scratch.ensure_lanes(lanes);
                scratch.load_cols(z.as_panel());
                self.run_engine_lanes(lanes, engine, &scratch);
                scratch.store_cols(z);
            }
        }
    }

    /// Extracts the incomplete-Cholesky factor `L_c = L·D^{1/2}` for
    /// symmetric positive definite inputs, so `L_c·L_cᵀ ≈ P·A·Pᵀ` on the
    /// pattern — the `M = L·Lᵀ` form that IC-preconditioned CG uses
    /// (the paper's §II motivating case: "preconditioned CG using
    /// incomplete Cholesky ... spends up to 70% of its execution time in
    /// forward and backward stri").
    ///
    /// For a symmetric matrix, ILU(0) produces `U = D·Lᵀ` exactly, so no
    /// separate IC factorization is needed.
    ///
    /// # Errors
    /// [`SparseError::ZeroPivot`] when a pivot is not strictly positive
    /// (input not SPD, or dropping destroyed definiteness).
    pub fn to_incomplete_cholesky(&self) -> Result<CsrMatrix<T>, SparseError> {
        let n = self.n();
        let diag_pos = self.diag_positions();
        // sqrt of pivots, validated.
        let mut sqrt_d = Vec::with_capacity(n);
        for (r, &dp) in diag_pos.iter().enumerate() {
            let d = self.lu.vals()[dp];
            if !(d > T::ZERO) {
                return Err(SparseError::ZeroPivot { row: r });
            }
            sqrt_d.push(d.sqrt());
        }
        let mut rowptr = vec![0usize; n + 1];
        let mut colidx = Vec::new();
        let mut vals = Vec::new();
        for r in 0..n {
            for k in self.lu.rowptr()[r]..diag_pos[r] {
                let c = self.lu.colidx()[k];
                colidx.push(c);
                vals.push(self.lu.vals()[k] * sqrt_d[c]);
            }
            colidx.push(r);
            vals.push(sqrt_d[r]);
            rowptr[r + 1] = colidx.len();
        }
        Ok(CsrMatrix::from_raw_unchecked(n, n, rowptr, colidx, vals))
    }

    /// Pivot extrema `(min |uᵢᵢ|, max |uᵢᵢ|)` — the cheap local health
    /// indicator the paper alludes to ("up-looking LU allows for local
    /// estimates of resilience from soft-errors and the convergence
    /// rate"): a collapsing minimum signals an unstable preconditioner
    /// before any Krylov iteration is spent on it.
    pub fn pivot_extrema(&self) -> (T, T) {
        let mut lo = T::from_f64(f64::INFINITY);
        let mut hi = T::ZERO;
        for &dp in self.diag_positions() {
            let d = self.lu.vals()[dp].abs();
            lo = lo.min(d);
            hi = hi.max(d);
        }
        (lo, hi)
    }

    /// Ratio `max |uᵢᵢ| / min |uᵢᵢ|` — a one-number conditioning proxy
    /// for the factors (∞ when a pivot was replaced by ~0).
    pub fn pivot_spread(&self) -> f64 {
        let (lo, hi) = self.pivot_extrema();
        if lo == T::ZERO {
            f64::INFINITY
        } else {
            (hi / lo).to_f64()
        }
    }

    /// Maximum absolute deviation of `(L·U)ᵢⱼ` from `(P·A·Pᵀ)ᵢⱼ` over the
    /// factor pattern — the defining identity of ILU (zero up to
    /// roundoff for ILU(k) without dropping). Test/diagnostic helper,
    /// O(Σ nnz(L row) · nnz(U row)).
    pub fn product_error_on_pattern(&self, a: &CsrMatrix<T>) -> T {
        let n = self.n();
        let diag_pos = self.diag_positions();
        let pa = a.permute_sym(self.perm()).expect("factor perm fits A");
        let mut acc: Vec<T> = vec![T::ZERO; n];
        let mut touched: Vec<usize> = Vec::new();
        let mut worst = T::ZERO;
        for i in 0..n {
            // (LU)(i, :) = Σ_{c < i} L[i,c]·U(c,:) + U(i,:)
            for k in self.lu.rowptr()[i]..diag_pos[i] {
                let c = self.lu.colidx()[k];
                let lic = self.lu.vals()[k];
                for kk in diag_pos[c]..self.lu.rowptr()[c + 1] {
                    let j = self.lu.colidx()[kk];
                    if acc[j] == T::ZERO {
                        touched.push(j);
                    }
                    acc[j] += lic * self.lu.vals()[kk];
                }
            }
            for kk in diag_pos[i]..self.lu.rowptr()[i + 1] {
                let j = self.lu.colidx()[kk];
                if acc[j] == T::ZERO {
                    touched.push(j);
                }
                acc[j] += self.lu.vals()[kk];
            }
            // Compare on the pattern of row i only.
            for k in self.lu.rowptr()[i]..self.lu.rowptr()[i + 1] {
                let j = self.lu.colidx()[k];
                let aij = pa.get(i, j).unwrap_or(T::ZERO);
                worst = worst.max((acc[j] - aij).abs());
            }
            for &j in &touched {
                acc[j] = T::ZERO;
            }
            touched.clear();
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{IluOptions, LowerMethod, ZeroPivotPolicy};
    use javelin_sparse::pattern::LevelPattern;
    use javelin_sparse::CooMatrix;

    fn laplace_2d(nx: usize, ny: usize) -> CsrMatrix<f64> {
        let n = nx * ny;
        let idx = |i: usize, j: usize| i * ny + j;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..nx {
            for j in 0..ny {
                let r = idx(i, j);
                coo.push(r, r, 4.0).unwrap();
                if i + 1 < nx {
                    coo.push(r, idx(i + 1, j), -1.0).unwrap();
                    coo.push(idx(i + 1, j), r, -1.0).unwrap();
                }
                if j + 1 < ny {
                    coo.push(r, idx(i, j + 1), -1.0).unwrap();
                    coo.push(idx(i, j + 1), r, -1.0).unwrap();
                }
            }
        }
        coo.to_csr()
    }

    /// Irregular nonsymmetric-pattern matrix with a structural diagonal.
    fn irregular(n: usize) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 8.0 + i as f64 * 0.01).unwrap();
            if i >= 1 {
                coo.push(i, i - 1, -1.0).unwrap();
            }
            if i >= 7 {
                coo.push(i, i - 7, -0.5).unwrap();
            }
            if i + 3 < n {
                coo.push(i, i + 3, -0.25).unwrap();
            }
            if i % 5 == 0 && i + 11 < n {
                coo.push(i, i + 11, -0.125).unwrap();
            }
        }
        coo.to_csr()
    }

    /// Same pattern as the input, deterministically different values.
    fn revalue(a: &CsrMatrix<f64>, seed: f64) -> CsrMatrix<f64> {
        javelin_synth::util::revalue(a, seed, 0.01)
    }

    #[test]
    fn ilu0_product_identity_on_pattern() {
        let a = laplace_2d(8, 8);
        let f = compute_factors(&a, &IluOptions::default());
        assert!(f.product_error_on_pattern(&a) < 1e-12);
    }

    fn compute_factors(a: &CsrMatrix<f64>, o: &IluOptions) -> IluFactors<f64> {
        factorize(a, o).expect("factorization succeeds")
    }

    #[test]
    fn deprecated_compute_still_works() {
        // The legacy fused entry stays available (deprecated, not
        // removed) and produces the same factors.
        let a = laplace_2d(6, 6);
        #[allow(deprecated)]
        let old = compute(&a, &IluOptions::default()).unwrap();
        let new = compute_factors(&a, &IluOptions::default());
        let ob: Vec<u64> = old.lu().vals().iter().map(|v| v.to_bits()).collect();
        let nb: Vec<u64> = new.lu().vals().iter().map(|v| v.to_bits()).collect();
        assert_eq!(ob, nb);
    }

    #[test]
    fn refactor_is_bit_identical_to_fresh_factor() {
        // The tentpole contract: refactor(a2) == analyze-once,
        // factor(a2), for every engine family and thread count.
        for a in [laplace_2d(9, 7), irregular(150)] {
            for nthreads in [1usize, 2, 4] {
                for method in [
                    LowerMethod::Auto,
                    LowerMethod::EvenRows,
                    LowerMethod::SegmentedRows,
                ] {
                    let mut opts = IluOptions::ilu0(nthreads);
                    opts.lower_method = method;
                    opts.split.min_rows_per_level = 8;
                    opts.split.location_frac = 0.0;
                    opts.split.max_lower_frac = 0.4;
                    let sym = SymbolicIlu::analyze(&a, &opts).unwrap();
                    let mut f = sym.factor(&a).unwrap();
                    let a2 = revalue(&a, 0.37);
                    let fresh = sym.factor(&a2).unwrap();
                    f.refactor(&a2).unwrap();
                    let rb: Vec<u64> = f.lu().vals().iter().map(|v| v.to_bits()).collect();
                    let fb: Vec<u64> = fresh.lu().vals().iter().map(|v| v.to_bits()).collect();
                    assert_eq!(rb, fb, "nthreads={nthreads} method={method}");
                }
            }
        }
    }

    #[test]
    fn refactor_with_dropping_and_milu_matches_fresh() {
        let a = irregular(120);
        let opts = IluOptions::ilu0(3)
            .with_fill(1)
            .with_drop_tol(0.02)
            .with_milu(1.0);
        let sym = SymbolicIlu::analyze(&a, &opts).unwrap();
        let mut f = sym.factor(&a).unwrap();
        let a2 = revalue(&a, 0.71);
        let fresh = sym.factor(&a2).unwrap();
        f.refactor(&a2).unwrap();
        assert_eq!(
            f.lu()
                .vals()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            fresh
                .lu()
                .vals()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
        assert!(f.stats().dropped_entries > 0, "τ should drop entries");
        assert_eq!(f.stats().dropped_entries, fresh.stats().dropped_entries);
        assert_eq!(f.stats().replaced_pivots, fresh.stats().replaced_pivots);
    }

    #[test]
    fn refactor_rejects_pattern_mismatch_and_leaves_factors_intact() {
        let a = laplace_2d(8, 8);
        let sym = SymbolicIlu::analyze(&a, &IluOptions::ilu0(2)).unwrap();
        let mut f = sym.factor(&a).unwrap();
        let before: Vec<u64> = f.lu().vals().iter().map(|v| v.to_bits()).collect();
        // Different dimension.
        let small = laplace_2d(4, 4);
        assert!(matches!(
            f.refactor(&small),
            Err(SparseError::PatternMismatch(_))
        ));
        // Same dimension, different pattern.
        let other = irregular(64);
        assert!(matches!(
            f.refactor(&other),
            Err(SparseError::PatternMismatch(_))
        ));
        // And factor() checks too.
        assert!(matches!(
            sym.factor(&other),
            Err(SparseError::PatternMismatch(_))
        ));
        let after: Vec<u64> = f.lu().vals().iter().map(|v| v.to_bits()).collect();
        assert_eq!(before, after, "failed refactor must not corrupt factors");
    }

    #[test]
    fn refactor_then_solve_matches_fresh_solve_bitwise() {
        let a = irregular(150);
        let n = a.nrows();
        let mut opts = IluOptions::ilu0(3);
        opts.split.min_rows_per_level = 8;
        opts.split.location_frac = 0.0;
        let sym = SymbolicIlu::analyze(&a, &opts).unwrap();
        let mut f = sym.factor(&a).unwrap();
        let a2 = revalue(&a, 1.3);
        f.refactor(&a2).unwrap();
        let fresh = compute_factors(&a2, &opts);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.29).sin()).collect();
        for engine in [
            crate::options::SolveEngine::Serial,
            crate::options::SolveEngine::BarrierLevel,
            crate::options::SolveEngine::PointToPoint,
            crate::options::SolveEngine::PointToPointLower,
        ] {
            let mut xr = vec![0.0; n];
            let mut xf = vec![0.0; n];
            f.solve_with(engine, &b, &mut xr).unwrap();
            fresh.solve_with(engine, &b, &mut xf).unwrap();
            let rb: Vec<u64> = xr.iter().map(|v| v.to_bits()).collect();
            let fb: Vec<u64> = xf.iter().map(|v| v.to_bits()).collect();
            assert_eq!(rb, fb, "engine={engine}");
        }
    }

    #[test]
    fn symbolic_handle_is_shared_and_cheap_to_clone() {
        let a = laplace_2d(7, 7);
        let sym = SymbolicIlu::analyze(&a, &IluOptions::ilu0(2)).unwrap();
        let f1 = sym.factor(&a).unwrap();
        let f2 = sym.factor(&revalue(&a, 0.5)).unwrap();
        // Same plan object behind both factor objects.
        assert!(std::ptr::eq(f1.plan(), f2.plan()));
        assert!(std::ptr::eq(f1.plan(), sym.plan()));
        assert_eq!(sym.n(), 49);
        assert_eq!(sym.nnz(), a.nnz());
        assert_eq!(sym.nthreads(), 2);
        assert!(!format!("{sym:?}").is_empty());
    }

    #[test]
    fn parallel_matches_serial_bitwise_all_engines() {
        for a in [laplace_2d(9, 7), irregular(120)] {
            let serial = compute_factors(&a, &IluOptions::default());
            for nthreads in [2, 4] {
                for method in [
                    LowerMethod::Auto,
                    LowerMethod::EvenRows,
                    LowerMethod::SegmentedRows,
                ] {
                    let mut opts = IluOptions::ilu0(nthreads);
                    opts.lower_method = method;
                    // Aggressive split so the lower stage actually runs.
                    opts.split.min_rows_per_level = 8;
                    opts.split.location_frac = 0.0;
                    opts.split.max_lower_frac = 0.4;
                    let f = compute_factors(&a, &opts);
                    // Same permutation => directly comparable values.
                    assert_eq!(serial_perm(&serial), serial_perm(&f));
                    let sb: Vec<u64> = serial.lu().vals().iter().map(|v| v.to_bits()).collect();
                    let fb: Vec<u64> = f.lu().vals().iter().map(|v| v.to_bits()).collect();
                    assert_eq!(sb, fb, "nthreads={nthreads} method={method}");
                }
            }
        }
    }

    fn serial_perm(f: &IluFactors<f64>) -> Vec<usize> {
        f.perm().new_to_old().to_vec()
    }

    #[test]
    fn solve_engines_agree_with_serial() {
        let a = irregular(150);
        let mut opts = IluOptions::ilu0(3);
        opts.split.min_rows_per_level = 8;
        opts.split.location_frac = 0.0;
        let f = compute_factors(&a, &opts);
        let b: Vec<f64> = (0..150).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut x_ref = vec![0.0; 150];
        f.solve_with(SolveEngine::Serial, &b, &mut x_ref).unwrap();
        for engine in [
            SolveEngine::BarrierLevel,
            SolveEngine::PointToPoint,
            SolveEngine::PointToPointLower,
        ] {
            let mut x = vec![0.0; 150];
            f.solve_with(engine, &b, &mut x).unwrap();
            for (g, w) in x.iter().zip(x_ref.iter()) {
                assert!(
                    (g - w).abs() <= 1e-12 * w.abs().max(1.0),
                    "{engine}: {g} vs {w}"
                );
            }
        }
    }

    #[test]
    fn workspace_reuse_is_bitwise_identical_to_fresh_path() {
        // Repeated solves through one factorization reuse its scratch
        // (progress counters, barrier, gather partials, xbuf); a second
        // factorization's first solve is the fresh-allocation path.
        // Both must produce identical bits, for every engine and with
        // the persistent team on or off.
        let a = irregular(150);
        let b: Vec<f64> = (0..150).map(|i| (i as f64 * 0.31).cos()).collect();
        for persistent in [true, false] {
            let mut opts = IluOptions::ilu0(3);
            opts.split.min_rows_per_level = 8;
            opts.split.location_frac = 0.0;
            opts.persistent_team = persistent;
            let reused = compute_factors(&a, &opts);
            let fresh = compute_factors(&a, &opts);
            for engine in [
                SolveEngine::BarrierLevel,
                SolveEngine::PointToPoint,
                SolveEngine::PointToPointLower,
            ] {
                let fresh_bits = {
                    let mut x = vec![0.0; 150];
                    fresh.solve_with(engine, &b, &mut x).unwrap();
                    x.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                };
                for rep in 0..4 {
                    let mut x = vec![0.0; 150];
                    reused.solve_with(engine, &b, &mut x).unwrap();
                    let bits: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(
                        bits, fresh_bits,
                        "engine={engine} rep={rep} persistent={persistent}"
                    );
                }
            }
        }
    }

    #[test]
    fn team_and_spawn_execution_agree_bitwise() {
        let a = laplace_2d(12, 11);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 23) as f64) - 11.0).collect();
        let mut team_opts = IluOptions::ilu0(4);
        team_opts.split.min_rows_per_level = 8;
        team_opts.split.location_frac = 0.0;
        let mut spawn_opts = team_opts.clone();
        spawn_opts.persistent_team = false;
        let ft = compute_factors(&a, &team_opts);
        let fs = compute_factors(&a, &spawn_opts);
        for engine in [SolveEngine::PointToPoint, SolveEngine::PointToPointLower] {
            let mut xt = vec![0.0; n];
            let mut xs = vec![0.0; n];
            ft.solve_with(engine, &b, &mut xt).unwrap();
            fs.solve_with(engine, &b, &mut xs).unwrap();
            let bt: Vec<u64> = xt.iter().map(|v| v.to_bits()).collect();
            let bs: Vec<u64> = xs.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bt, bs, "engine={engine}");
        }
    }

    #[test]
    fn panel_solve_matches_single_rhs_bitwise_all_engines() {
        // One panel solve retires k columns under one schedule walk;
        // every column must carry exactly the bits of a single-RHS
        // solve of that column, for every engine and width — including
        // width changes against one reused scratch (8 → 1 exercises the
        // grow-only narrowing path).
        let a = irregular(150);
        let n = a.nrows();
        let mut opts = IluOptions::ilu0(3);
        opts.split.min_rows_per_level = 8;
        opts.split.location_frac = 0.0;
        let f = compute_factors(&a, &opts);
        // Fixed-lane widths (1, 4, 8) and DynLanes widths (2, 3, 5, 7),
        // wide-first so 8 → 1 exercises the grow-only narrowing path.
        for k in [8usize, 1, 2, 3, 4, 5, 7] {
            let b: Vec<f64> = (0..n * k)
                .map(|i| ((i * 29 % 41) as f64 - 20.0) * 0.21)
                .collect();
            for engine in [
                SolveEngine::Serial,
                SolveEngine::BarrierLevel,
                SolveEngine::PointToPoint,
                SolveEngine::PointToPointLower,
            ] {
                let mut xp = vec![0.0; n * k];
                f.solve_panel_with(engine, Panel::new(&b, n, k), PanelMut::new(&mut xp, n, k))
                    .unwrap();
                for c in 0..k {
                    let mut x = vec![0.0; n];
                    f.solve_with(engine, &b[c * n..(c + 1) * n], &mut x)
                        .unwrap();
                    let pb: Vec<u64> = xp[c * n..(c + 1) * n].iter().map(|v| v.to_bits()).collect();
                    let sb: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(pb, sb, "engine={engine} k={k} col={c}");
                }
                // The forced dynamic-width fallback is bit-identical to
                // whatever the dispatch table picked.
                let mut xd = vec![0.0; n * k];
                let mut dbuf = Vec::new();
                f.solve_panel_dynwidth_with_buffer(
                    engine,
                    &mut dbuf,
                    Panel::new(&b, n, k),
                    PanelMut::new(&mut xd, n, k),
                )
                .unwrap();
                let pb: Vec<u64> = xp.iter().map(|v| v.to_bits()).collect();
                let db: Vec<u64> = xd.iter().map(|v| v.to_bits()).collect();
                assert_eq!(pb, db, "dynwidth engine={engine} k={k}");
            }
        }
    }

    #[test]
    fn panel_solve_reuses_buffer_and_rejects_bad_shapes() {
        let a = laplace_2d(9, 9);
        let n = a.nrows();
        let f = compute_factors(&a, &IluOptions::ilu0(2));
        f.reserve_panel_width(2);
        let b: Vec<f64> = (0..n * 2).map(|i| (i as f64 * 0.13).sin()).collect();
        let mut perm_buf = Vec::new();
        let mut x = vec![0.0; n * 2];
        f.solve_panel_with_buffer(
            SolveEngine::Serial,
            &mut perm_buf,
            Panel::new(&b, n, 2),
            PanelMut::new(&mut x, n, 2),
        )
        .unwrap();
        assert_eq!(perm_buf.len(), n * 2);
        let cap = perm_buf.capacity();
        // Narrower reuse keeps the wide buffer (grow-only).
        f.solve_panel_with_buffer(
            SolveEngine::Serial,
            &mut perm_buf,
            Panel::new(&b[..n], n, 1),
            PanelMut::new(&mut x[..n], n, 1),
        )
        .unwrap();
        assert_eq!(perm_buf.capacity(), cap);
        // Shape mismatches are reported, not panicked.
        let short = vec![0.0; n];
        let mut xs = vec![0.0; n * 2];
        assert!(f
            .solve_panel_into(Panel::new(&short, n, 1), PanelMut::new(&mut xs, n, 2))
            .is_err());
        // Zero-width panels are a no-op.
        let empty: [f64; 0] = [];
        let mut empty_x: [f64; 0] = [];
        f.solve_panel_into(Panel::new(&empty, n, 0), PanelMut::new(&mut empty_x, n, 0))
            .unwrap();
    }

    #[test]
    fn shared_team_serves_many_factorizations() {
        use javelin_sync::WorkerTeam;
        use std::sync::Arc;
        let a = irregular(140);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 13 % 29) as f64) - 14.0).collect();
        let mut owned = IluOptions::ilu0(3);
        owned.split.min_rows_per_level = 8;
        owned.split.location_frac = 0.0;
        let team = Arc::new(WorkerTeam::new(3));
        let shared = owned.clone().with_shared_team(Arc::clone(&team));
        let f_owned = compute_factors(&a, &owned);
        let f1 = compute_factors(&a, &shared);
        let f2 = compute_factors(&a, &shared.clone());
        for engine in [
            SolveEngine::BarrierLevel,
            SolveEngine::PointToPoint,
            SolveEngine::PointToPointLower,
        ] {
            let mut x0 = vec![0.0; n];
            let mut x1 = vec![0.0; n];
            let mut x2 = vec![0.0; n];
            f_owned.solve_with(engine, &b, &mut x0).unwrap();
            f1.solve_with(engine, &b, &mut x1).unwrap();
            f2.solve_with(engine, &b, &mut x2).unwrap();
            let b0: Vec<u64> = x0.iter().map(|v| v.to_bits()).collect();
            let b1: Vec<u64> = x1.iter().map(|v| v.to_bits()).collect();
            let b2: Vec<u64> = x2.iter().map(|v| v.to_bits()).collect();
            assert_eq!(b0, b1, "engine={engine}");
            assert_eq!(b1, b2, "engine={engine}");
        }
        // Both factorizations hold the same team, not copies.
        assert!(Arc::strong_count(&team) >= 3);
        // A team whose participant count disagrees with nthreads is
        // rejected up front.
        let mut bad = owned.clone();
        bad.shared_team = Some(Arc::new(WorkerTeam::new(2)));
        assert!(matches!(
            factorize(&a, &bad),
            Err(SparseError::DimensionMismatch(_))
        ));
    }

    #[test]
    fn oversubscription_falls_back_to_serial_default_engine() {
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        let a = irregular(100);
        let n = a.nrows();
        // Requesting more threads than the machine has cores must flip
        // the unnamed-engine path to serial substitution at plan time.
        let f = compute_factors(&a, &IluOptions::ilu0(cores + 1));
        assert_eq!(f.default_engine(), SolveEngine::Serial);
        // The default path still solves correctly (and explicit engines
        // remain available for measurements).
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 17) as f64) - 8.0).collect();
        let mut x_def = vec![0.0; n];
        let mut x_ser = vec![0.0; n];
        f.solve_into(&b, &mut x_def).unwrap();
        f.solve_with(SolveEngine::Serial, &b, &mut x_ser).unwrap();
        assert_eq!(x_def, x_ser);
        let mut x_p2p = vec![0.0; n];
        f.solve_with(SolveEngine::PointToPointLower, &b, &mut x_p2p)
            .unwrap();
        for (g, w) in x_p2p.iter().zip(x_ser.iter()) {
            assert!((g - w).abs() <= 1e-12 * w.abs().max(1.0));
        }
        // Within the core budget the threaded default survives.
        if cores > 1 {
            let f2 = compute_factors(&a, &IluOptions::ilu0(2));
            assert_eq!(f2.default_engine(), SolveEngine::PointToPointLower);
        }
        assert_eq!(
            compute_factors(&a, &IluOptions::default()).default_engine(),
            SolveEngine::Serial
        );
    }

    #[test]
    fn solve_actually_preconditions() {
        // For ILU(0) of a diagonally dominant matrix, ||x - A^{-1}b||
        // through the factors is a decent approximation: check the
        // preconditioned residual is much smaller than the raw rhs.
        let a = laplace_2d(10, 10);
        let f = compute_factors(&a, &IluOptions::default());
        let n = a.nrows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        f.solve_into(&b, &mut x).unwrap();
        // r = b - A x should be noticeably smaller than b for a useful
        // preconditioner.
        let ax = a.spmv(&x);
        let r_norm: f64 = b
            .iter()
            .zip(ax.iter())
            .map(|(bi, axi)| (bi - axi) * (bi - axi))
            .sum::<f64>()
            .sqrt();
        let b_norm = (n as f64).sqrt();
        assert!(r_norm < 0.8 * b_norm, "residual {r_norm} vs rhs {b_norm}");
    }

    #[test]
    fn split_lu_multiplies_back() {
        let a = laplace_2d(6, 6);
        let f = compute_factors(&a, &IluOptions::default());
        let (l, u) = f.split_lu();
        // L has unit diagonal.
        for r in 0..l.nrows() {
            assert_eq!(l.get(r, r), Some(1.0));
        }
        // L strictly lower + diag; U upper incl diag.
        for (r, c, _) in l.iter() {
            assert!(c <= r);
        }
        for (r, c, _) in u.iter() {
            assert!(c >= r);
        }
        // nnz(L) + nnz(U) = nnz(LU) + n (unit diagonal added).
        assert_eq!(l.nnz() + u.nnz(), f.lu().nnz() + a.nrows());
    }

    #[test]
    fn iluk_reduces_product_error_off_pattern() {
        // With k = n the factorization becomes exact: product error on
        // the (full) pattern stays ~0 and the solve is a direct solve.
        let a = irregular(40);
        let mut exact_opts = IluOptions::default();
        exact_opts.fill_level = 40;
        let f = compute_factors(&a, &exact_opts);
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let b = a.spmv(&x_true);
        let mut x = vec![0.0; n];
        f.solve_into(&b, &mut x).unwrap();
        for (g, w) in x.iter().zip(x_true.iter()) {
            assert!((g - w).abs() < 1e-8, "{g} vs {w}");
        }
    }

    #[test]
    fn drop_tolerance_drops_and_milu_compensates() {
        let a = irregular(100);
        let base = compute_factors(&a, &IluOptions::default());
        let tau = compute_factors(&a, &IluOptions::default().with_fill(1).with_drop_tol(0.02));
        assert!(tau.stats().dropped_entries > 0, "τ should drop entries");
        assert_eq!(base.stats().dropped_entries, 0);
        let milu = compute_factors(
            &a,
            &IluOptions::default()
                .with_fill(1)
                .with_drop_tol(0.02)
                .with_milu(1.0),
        );
        // MILU shifts diagonals; factors must differ from plain τ.
        assert!(milu.stats().dropped_entries > 0);
    }

    #[test]
    fn zero_pivot_error_policy_reports_row() {
        // Second row becomes exactly zero after elimination:
        // A = [[1, 1], [1, 1]].
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        let a = coo.to_csr();
        let mut opts = IluOptions::default();
        opts.zero_pivot = ZeroPivotPolicy::Error;
        match factorize(&a, &opts) {
            Err(SparseError::ZeroPivot { row }) => assert_eq!(row, 1),
            Err(other) => panic!("expected zero pivot, got {other:?}"),
            Ok(_) => panic!("expected zero pivot, got a factorization"),
        }
        // Replace policy succeeds and counts the replacement.
        let mut opts2 = IluOptions::default();
        opts2.zero_pivot = ZeroPivotPolicy::Replace { replacement: 1e-8 };
        let f = factorize(&a, &opts2).unwrap();
        assert_eq!(f.stats().replaced_pivots, 1);
    }

    #[test]
    fn rejects_bad_inputs() {
        // Rectangular.
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        assert!(factorize(&coo.to_csr(), &IluOptions::default()).is_err());
        // Missing diagonal.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        assert!(matches!(
            factorize(&coo.to_csr(), &IluOptions::default()),
            Err(SparseError::MissingDiagonal { row: 1 })
        ));
    }

    #[test]
    fn solve_rejects_bad_lengths() {
        let a = laplace_2d(4, 4);
        let f = compute_factors(&a, &IluOptions::default());
        let b = vec![1.0; 16];
        let mut x = vec![0.0; 15];
        assert!(f.solve_into(&b, &mut x).is_err());
    }

    #[test]
    fn stats_are_populated() {
        let a = laplace_2d(12, 12);
        let mut opts = IluOptions::ilu0(2);
        opts.split.min_rows_per_level = 6;
        opts.split.location_frac = 0.0;
        let f = compute_factors(&a, &opts);
        let s = f.stats();
        assert_eq!(s.n, 144);
        assert_eq!(s.nnz_a, a.nnz());
        assert_eq!(s.nnz_lu, a.nnz()); // ILU(0): same pattern
        assert!(s.n_levels > 1);
        assert!(s.n_upper_levels <= s.n_levels);
        assert!(s.n_waits <= s.n_raw_deps);
        assert_eq!(s.fill_ratio(), 1.0);
    }

    #[test]
    fn level_scheduling_only_has_no_lower_rows() {
        let a = laplace_2d(10, 10);
        let f = compute_factors(&a, &IluOptions::level_scheduling_only(2));
        assert_eq!(f.stats().n_lower_rows, 0);
        assert_eq!(f.plan().n_upper, 100);
    }

    #[test]
    fn lower_a_pattern_falls_back_to_er() {
        let a = irregular(140);
        let mut opts = IluOptions::ilu0(2);
        opts.level_pattern = LevelPattern::LowerA;
        opts.lower_method = LowerMethod::SegmentedRows;
        opts.split.min_rows_per_level = 8;
        opts.split.location_frac = 0.0;
        let f = compute_factors(&a, &opts);
        assert_eq!(f.stats().lower_method, LowerMethod::EvenRows);
        // Still bit-identical to serial.
        let s = compute_factors(
            &a,
            &IluOptions {
                level_pattern: LevelPattern::LowerA,
                split: opts.split,
                ..IluOptions::default()
            },
        );
        let sb: Vec<u64> = s.lu().vals().iter().map(|v| v.to_bits()).collect();
        let fb: Vec<u64> = f.lu().vals().iter().map(|v| v.to_bits()).collect();
        assert_eq!(sb, fb);
    }

    #[test]
    fn incomplete_cholesky_reconstructs_spd_matrix() {
        let a = laplace_2d(7, 7);
        let f = compute_factors(&a, &IluOptions::default());
        let lc = f.to_incomplete_cholesky().expect("SPD input");
        // L_c is lower triangular with positive diagonal.
        for (r, c, _) in lc.iter() {
            assert!(c <= r);
        }
        for r in 0..lc.nrows() {
            assert!(lc.get(r, r).unwrap() > 0.0);
        }
        // L_c·L_cᵀ == P·A·Pᵀ on the pattern (ILU(0) identity in IC form).
        let pa = a.permute_sym(f.perm()).unwrap();
        for (r, c, want) in pa.iter() {
            // (L_c L_cᵀ)[r][c] = Σ_k L_c[r][k]·L_c[c][k]: sparse dot of
            // two rows of L_c.
            let (ra, rb) = (lc.row_cols(r), lc.row_cols(c));
            let (va, vb) = (lc.row_vals(r), lc.row_vals(c));
            let mut i = 0;
            let mut j = 0;
            let mut got = 0.0;
            while i < ra.len() && j < rb.len() {
                use std::cmp::Ordering::*;
                match ra[i].cmp(&rb[j]) {
                    Less => i += 1,
                    Greater => j += 1,
                    Equal => {
                        got += va[i] * vb[j];
                        i += 1;
                        j += 1;
                    }
                }
            }
            assert!((got - want).abs() < 1e-10, "({r},{c}): {got} vs {want}");
        }
    }

    #[test]
    fn incomplete_cholesky_rejects_indefinite() {
        // A symmetric indefinite matrix: negative pivot appears.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 1, 2.0).unwrap();
        coo.push(1, 0, 2.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        let a = coo.to_csr();
        let f = compute_factors(&a, &IluOptions::default());
        assert!(matches!(
            f.to_incomplete_cholesky(),
            Err(SparseError::ZeroPivot { .. })
        ));
    }

    #[test]
    fn pivot_diagnostics() {
        let a = laplace_2d(8, 8);
        let f = compute_factors(&a, &IluOptions::default());
        let (lo, hi) = f.pivot_extrema();
        assert!(lo > 0.0 && hi >= lo);
        assert!(hi <= 4.0 + 1e-12, "pivots bounded by the diagonal of A");
        let spread = f.pivot_spread();
        assert!((1.0..100.0).contains(&spread), "spread = {spread}");
    }

    #[test]
    fn parallel_corner_matches_serial_corner() {
        let a = irregular(160);
        let mut base = IluOptions::ilu0(3);
        base.split.min_rows_per_level = 10;
        base.split.location_frac = 0.1;
        let mut pc = base.clone();
        pc.parallel_corner = true;
        let f1 = compute_factors(&a, &base);
        let f2 = compute_factors(&a, &pc);
        let b1: Vec<u64> = f1.lu().vals().iter().map(|v| v.to_bits()).collect();
        let b2: Vec<u64> = f2.lu().vals().iter().map(|v| v.to_bits()).collect();
        assert_eq!(b1, b2);
        // And refactor through the parallel-corner analysis matches too
        // (the planned path substitutes the serial corner — identical
        // bits by the determinism contract).
        let sym = SymbolicIlu::analyze(&a, &pc).unwrap();
        let mut f3 = sym.factor(&a).unwrap();
        f3.refactor(&a).unwrap();
        let b3: Vec<u64> = f3.lu().vals().iter().map(|v| v.to_bits()).collect();
        assert_eq!(b1, b3);
    }

    #[test]
    fn f32_factorization_works() {
        let n = 30;
        let mut coo = CooMatrix::<f32>::new(n, n);
        for i in 0..n {
            coo.push(i, i, 3.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -1.0).unwrap();
            }
        }
        let a = coo.to_csr();
        let sym = SymbolicIlu::analyze(&a, &IluOptions::ilu0(2)).unwrap();
        let mut f = sym.factor(&a).unwrap();
        f.refactor(&a).unwrap();
        let b = vec![1.0f32; n];
        let mut x = vec![0.0f32; n];
        f.solve_into(&b, &mut x).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::options::{IluOptions, LowerMethod, SolveEngine};
    use javelin_sparse::CooMatrix;
    use proptest::prelude::*;

    /// Random diagonally dominant square matrix with full diagonal.
    fn arb_matrix(n_max: usize) -> impl Strategy<Value = CsrMatrix<f64>> {
        (4..n_max).prop_flat_map(|n| {
            proptest::collection::vec((0..n, 0..n, 0.05..1.0f64), n..n * 4).prop_map(move |trips| {
                let mut coo = CooMatrix::new(n, n);
                let mut rowsum = vec![0.0f64; n];
                for (r, c, v) in &trips {
                    if r != c {
                        coo.push(*r, *c, -*v).unwrap();
                        rowsum[*r] += v;
                    }
                }
                for (r, item) in rowsum.iter().enumerate() {
                    coo.push(r, r, item + 1.0).unwrap();
                }
                coo.to_csr()
            })
        })
    }

    /// Same pattern, deterministically perturbed values (still
    /// diagonally dominant enough to factor).
    fn revalue(a: &CsrMatrix<f64>, seed: f64) -> CsrMatrix<f64> {
        javelin_synth::util::revalue(a, seed, 0.05)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The defining ILU(0) identity on random matrices.
        #[test]
        fn ilu0_identity_on_random_matrices(a in arb_matrix(28)) {
            let f = factorize(&a, &IluOptions::default()).unwrap();
            prop_assert!(f.product_error_on_pattern(&a) < 1e-9);
        }

        /// Parallel == serial, bitwise, on random matrices and random
        /// engine/thread choices.
        #[test]
        fn engines_bitwise_equal_on_random_matrices(
            a in arb_matrix(28),
            nthreads in 2usize..5,
            use_sr in proptest::bool::ANY,
        ) {
            let mut opts = IluOptions::ilu0(nthreads);
            opts.lower_method = if use_sr {
                LowerMethod::SegmentedRows
            } else {
                LowerMethod::EvenRows
            };
            opts.split.min_rows_per_level = 4;
            opts.split.location_frac = 0.0;
            let mut serial = opts.clone();
            serial.nthreads = 1;
            let fp = factorize(&a, &opts).unwrap();
            let fs = factorize(&a, &serial).unwrap();
            let bp: Vec<u64> = fp.lu().vals().iter().map(|v| v.to_bits()).collect();
            let bs: Vec<u64> = fs.lu().vals().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(bp, bs);
        }

        /// The refactor satellite contract: `symbolic.factor(&a2)` and
        /// `factors.refactor(&a2)` (same pattern, new values) are
        /// bit-identical — across lower-stage engines, thread counts and
        /// panel widths (the refactored factors' panel solves must carry
        /// exactly the fresh factors' bits too).
        #[test]
        fn refactor_bitwise_equals_fresh_factor(
            a in arb_matrix(24),
            nthreads in 1usize..4,
            use_sr in proptest::bool::ANY,
            k_idx in 0usize..4,
            seed in 0.1..2.0f64,
        ) {
            let k = [1usize, 2, 3, 8][k_idx];
            let n = a.nrows();
            let mut opts = IluOptions::ilu0(nthreads);
            opts.lower_method = if use_sr {
                LowerMethod::SegmentedRows
            } else {
                LowerMethod::EvenRows
            };
            opts.split.min_rows_per_level = 4;
            opts.split.location_frac = 0.0;
            let sym = SymbolicIlu::analyze(&a, &opts).unwrap();
            let mut f = sym.factor(&a).unwrap();
            let a2 = revalue(&a, seed);
            let fresh = sym.factor(&a2).unwrap();
            f.refactor(&a2).unwrap();
            let rb: Vec<u64> = f.lu().vals().iter().map(|v| v.to_bits()).collect();
            let fb: Vec<u64> = fresh.lu().vals().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(rb, fb);
            // Panel solves through refactored vs fresh factors agree
            // bitwise at every width.
            let b: Vec<f64> = (0..n * k)
                .map(|i| ((i * 31 % 23) as f64 - 11.0) * 0.17)
                .collect();
            let mut xr = vec![0.0; n * k];
            let mut xf = vec![0.0; n * k];
            f.solve_panel_into(
                javelin_sparse::Panel::new(&b, n, k),
                javelin_sparse::PanelMut::new(&mut xr, n, k),
            )
            .unwrap();
            fresh
                .solve_panel_into(
                    javelin_sparse::Panel::new(&b, n, k),
                    javelin_sparse::PanelMut::new(&mut xf, n, k),
                )
                .unwrap();
            let xrb: Vec<u64> = xr.iter().map(|v| v.to_bits()).collect();
            let xfb: Vec<u64> = xf.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(xrb, xfb, "panel width {}", k);
        }

        /// Panel trisolves are column-for-column bit-identical to `k`
        /// independent single-RHS solves — the panel contract, over
        /// random matrices, widths, thread counts and tile sizes, for
        /// every engine.
        #[test]
        fn panel_solves_bitwise_match_looped_single_rhs(
            a in arb_matrix(24),
            nthreads in 1usize..4,
            k_idx in 0usize..4,
            tile_idx in 0usize..3,
        ) {
            let k = [1usize, 2, 3, 8][k_idx];
            let n = a.nrows();
            let mut opts = IluOptions::ilu0(nthreads);
            opts.tile_size = [1usize, 3, 64][tile_idx];
            opts.split.min_rows_per_level = 4;
            opts.split.location_frac = 0.0;
            let f = factorize(&a, &opts).unwrap();
            let b: Vec<f64> = (0..n * k)
                .map(|i| ((i * 31 % 23) as f64 - 11.0) * 0.17)
                .collect();
            for engine in [
                SolveEngine::Serial,
                SolveEngine::BarrierLevel,
                SolveEngine::PointToPoint,
                SolveEngine::PointToPointLower,
            ] {
                let mut xp = vec![0.0; n * k];
                f.solve_panel_with(
                    engine,
                    javelin_sparse::Panel::new(&b, n, k),
                    javelin_sparse::PanelMut::new(&mut xp, n, k),
                )
                .unwrap();
                for c in 0..k {
                    let mut x = vec![0.0; n];
                    f.solve_with(engine, &b[c * n..(c + 1) * n], &mut x).unwrap();
                    let pb: Vec<u64> =
                        xp[c * n..(c + 1) * n].iter().map(|v| v.to_bits()).collect();
                    let sb: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
                    prop_assert_eq!(pb, sb, "engine={} k={} col={}", engine, k, c);
                }
            }
        }

        /// Forward+backward substitution through any engine equals the
        /// serial reference.
        #[test]
        fn solves_agree_on_random_matrices(a in arb_matrix(24), nthreads in 2usize..4) {
            let n = a.nrows();
            let opts = IluOptions::ilu0(nthreads);
            let f = factorize(&a, &opts).unwrap();
            let b: Vec<f64> = (0..n).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
            let mut x_ref = vec![0.0; n];
            f.solve_with(SolveEngine::Serial, &b, &mut x_ref).unwrap();
            for engine in [
                SolveEngine::BarrierLevel,
                SolveEngine::PointToPoint,
                SolveEngine::PointToPointLower,
            ] {
                let mut x = vec![0.0; n];
                f.solve_with(engine, &b, &mut x).unwrap();
                for (g, w) in x.iter().zip(x_ref.iter()) {
                    prop_assert!((g - w).abs() <= 1e-10 * w.abs().max(1.0));
                }
            }
        }
    }
}
